"""End-to-end CLI tests for ``python -m repro.experiments``."""

import subprocess
import sys

import pytest


def run_cli(*args: str, env_extra: dict | None = None) -> str:
    import os

    env = dict(os.environ)
    env.update(
        {
            "REPRO_NO_CACHE": "1",
            "REPRO_SIZES": "12",
            **(env_extra or {}),
        }
    )
    out = subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


class TestCLI:
    def test_table1(self):
        text = run_cli("table1")
        assert "matches the paper's Table 1" in text

    def test_figure5_tiny(self):
        text = run_cli("figure5")
        assert "Figure 5" in text
        assert "speedup ranges" in text

    def test_figure6_tiny(self):
        text = run_cli("figure6")
        assert "Figure 6" in text

    def test_jacobi_tiny(self):
        text = run_cli("jacobi")
        assert "Jacobi in-text statistics" in text

    def test_output_dir(self, tmp_path):
        text = run_cli("table1", "--output", str(tmp_path))
        assert (tmp_path / "figure5.csv").exists()
        assert "wrote figure5" in text

    def test_bad_target_rejected(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "figure99"],
            capture_output=True,
            text=True,
        )
        assert out.returncode != 0


class TestTelemetryCLI:
    def test_telemetry_flag_writes_artifacts(self, tmp_path):
        run_dir = tmp_path / "run"
        text = run_cli("table1", "--telemetry", str(run_dir))
        for artifact in (
            "trace.jsonl", "metrics.json", "summary.txt", "trace_chrome.json"
        ):
            assert (run_dir / artifact).exists(), artifact
            assert f"telemetry {artifact}" in text
        summary = (run_dir / "summary.txt").read_text()
        assert "== span tree ==" in summary
        assert "== block-tier fallbacks ==" in summary

    def test_env_var_equivalent(self, tmp_path):
        run_dir = tmp_path / "envrun"
        run_cli("table1", env_extra={"REPRO_TELEMETRY": str(run_dir)})
        assert (run_dir / "trace.jsonl").exists()

    def test_stdout_identical_with_and_without_telemetry(self, tmp_path):
        plain = run_cli("table1")
        traced = run_cli("table1", "--telemetry", str(tmp_path / "t"))
        assert traced.startswith(plain)  # report text unchanged; paths appended

    def test_telemetry_report_diff(self, tmp_path):
        run_cli("table1", "--telemetry", str(tmp_path / "a"))
        run_cli("table1", "--telemetry", str(tmp_path / "b"))
        text = run_cli(
            "telemetry_report", "--diff", str(tmp_path / "a"), str(tmp_path / "b")
        )
        assert "Telemetry diff" in text
        assert "Time per layer" in text

    def test_telemetry_report_requires_diff(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "telemetry_report"],
            capture_output=True,
            text=True,
        )
        assert out.returncode != 0
        assert "--diff" in out.stderr
