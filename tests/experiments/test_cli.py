"""End-to-end CLI tests for ``python -m repro.experiments``."""

import subprocess
import sys

import pytest


def run_cli(*args: str, env_extra: dict | None = None) -> str:
    import os

    env = dict(os.environ)
    env.update(
        {
            "REPRO_NO_CACHE": "1",
            "REPRO_SIZES": "12",
            **(env_extra or {}),
        }
    )
    out = subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


class TestCLI:
    def test_table1(self):
        text = run_cli("table1")
        assert "matches the paper's Table 1" in text

    def test_figure5_tiny(self):
        text = run_cli("figure5")
        assert "Figure 5" in text
        assert "speedup ranges" in text

    def test_figure6_tiny(self):
        text = run_cli("figure6")
        assert "Figure 6" in text

    def test_jacobi_tiny(self):
        text = run_cli("jacobi")
        assert "Jacobi in-text statistics" in text

    def test_output_dir(self, tmp_path):
        text = run_cli("table1", "--output", str(tmp_path))
        assert (tmp_path / "figure5.csv").exists()
        assert "wrote figure5" in text

    def test_bad_target_rejected(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "figure99"],
            capture_output=True,
            text=True,
        )
        assert out.returncode != 0
