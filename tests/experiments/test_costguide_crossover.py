"""Unit tests for the cost-model guide and the crossover scan."""

import pytest

from repro.experiments.costguide import TileChoice, choose_tile, choose_variant
from repro.experiments.crossover import Crossover, find_crossover
from repro.experiments.sweep import SweepConfig
from repro.machine.configs import octane2_scaled


@pytest.fixture(scope="module")
def config() -> SweepConfig:
    return SweepConfig(
        machine=octane2_scaled(), sizes=(16, 24), jacobi_m=3, tile_policy="pdat"
    )


class TestChooseTile:
    def test_probe_in_target_regime(self, config):
        choice = choose_tile("cholesky", 200, config, candidates=(4, 8))
        assert choice.probe_n == 89  # 1.4 * 64, past the L2 transition
        assert choice.chosen_tile in choice.probe_cycles

    def test_probe_never_exceeds_target(self, config):
        choice = choose_tile("cholesky", 20, config, candidates=(4,))
        assert choice.probe_n <= 20

    def test_pdat_always_a_candidate(self, config):
        choice = choose_tile("cholesky", 32, config, candidates=(4,))
        assert 11 in choice.probe_cycles

    def test_ranking_sorted_by_cycles(self, config):
        choice = choose_tile("cholesky", 32, config, candidates=(4, 8))
        ranking = choice.ranking()
        cycles = [choice.probe_cycles[t] for t in ranking]
        assert cycles == sorted(cycles)
        assert ranking[0] == choice.chosen_tile
        assert isinstance(choice, TileChoice)


class TestChooseVariant:
    def test_small_size_prefers_winner(self, config):
        from repro.experiments.runner import measure_variant

        decision = choose_variant("cholesky", 16, config)
        seq = measure_variant("cholesky", "seq", 16, config).report.total_cycles
        tiled = measure_variant("cholesky", "tiled", 16, config).report.total_cycles
        assert decision == ("tiled" if tiled < seq else "seq")


class TestCrossover:
    def test_scan_structure(self, config):
        result = find_crossover("jacobi", config, lo=16, hi=32, step=8)
        assert isinstance(result, Crossover)
        assert [n for n, _ in result.probes] == [16, 24, 32]

    def test_jacobi_breaks_even_early(self, config):
        result = find_crossover("jacobi", config, lo=16, hi=24, step=8)
        assert result.break_even_n == 16

    def test_never_crossing_reports_none(self, config):
        # LU's sunk-guard code does not break even below the L2 transition.
        result = find_crossover("lu", config, lo=16, hi=24, step=8)
        assert result.break_even_n is None
