"""Tests for the experiment harness (tiny sizes to stay fast)."""

from dataclasses import replace

import pytest

from repro.experiments import default_config
from repro.experiments.runner import measure_variant, run_pair
from repro.experiments.sweep import SweepConfig
from repro.machine.configs import octane2_scaled


@pytest.fixture(scope="module")
def tiny_config() -> SweepConfig:
    return SweepConfig(
        machine=octane2_scaled(), sizes=(12, 16), jacobi_m=3, tile_policy="pdat"
    )


class TestSweepConfig:
    def test_default_config_scaled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_MACHINE", raising=False)
        monkeypatch.delenv("REPRO_SIZES", raising=False)
        monkeypatch.delenv("REPRO_FULL_SWEEP", raising=False)
        cfg = default_config()
        assert cfg.machine.name == "octane2-scaled"
        assert len(cfg.sizes) >= 4

    def test_env_sizes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIZES", "10,20")
        assert default_config().sizes == (10, 20)

    def test_tile_policies(self, tiny_config):
        assert tiny_config.tile_for(16) == 11
        lrw = replace(tiny_config, tile_policy="lrw")
        assert lrw.tile_for(16) >= 2
        fixed = replace(tiny_config, tile_policy="fixed:7")
        assert fixed.tile_for(16) == 7
        bad = replace(tiny_config, tile_policy="magic")
        with pytest.raises(ValueError):
            bad.tile_for(16)


class TestRunner:
    def test_measure_variant_all_kernels(self, tiny_config):
        for kernel in ("cholesky", "jacobi"):
            m = measure_variant(kernel, "seq", 12, tiny_config)
            assert m.report.accesses > 0
            assert m.report.total_cycles > 0

    def test_memoisation_returns_same_object(self, tiny_config):
        a = measure_variant("cholesky", "seq", 12, tiny_config)
        b = measure_variant("cholesky", "seq", 12, tiny_config)
        assert a is b

    def test_run_pair_speedup_positive(self, tiny_config):
        seq, tiled, speedup = run_pair("jacobi", 16, tiny_config)
        assert speedup > 0
        assert tiled.tile == 11

    def test_unknown_variant(self, tiny_config):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            measure_variant("jacobi", "bogus", 12, tiny_config)


class TestTable1:
    def test_matches_paper(self):
        from repro.experiments import table1

        assert table1.generate() == table1.PAPER_TABLE1

    def test_predicates(self):
        from repro.experiments.table1 import (
            has_cross_nest_scalar_reduction,
            has_data_dependent_control,
            is_stencil,
            is_triangular_factorisation,
        )
        from repro.kernels import cholesky, jacobi, lu, qr

        assert is_stencil(jacobi.sequential())
        assert not is_stencil(cholesky.sequential())
        assert is_triangular_factorisation(cholesky.sequential())
        assert not is_triangular_factorisation(jacobi.sequential())
        assert has_data_dependent_control(lu.sequential())
        assert not has_data_dependent_control(cholesky.sequential())
        assert has_cross_nest_scalar_reduction(qr.sequential())
        assert not has_cross_nest_scalar_reduction(jacobi.sequential())

    def test_render_reports_agreement(self):
        from repro.experiments import table1

        assert "matches the paper" in table1.render()


class TestFigures:
    def test_figure5_rows(self, tiny_config):
        from repro.experiments import figure5

        rows = figure5.generate(replace(tiny_config, sizes=(12,)))
        assert len(rows) == 4  # four kernels
        text = figure5.render(rows)
        assert "speedup ranges" in text

    def test_figure678_rows(self, tiny_config):
        from repro.experiments import figure678

        rows = figure678.generate(replace(tiny_config, sizes=(12,)))
        assert len(rows) == 1
        assert rows[0].tiled_instructions > rows[0].seq_instructions
        out = figure678.main(replace(tiny_config, sizes=(12,)))
        assert "Figure 6" in out and "Figure 7" in out and "Figure 8" in out

    def test_jacobi_stats_direction(self, tiny_config):
        from repro.experiments import jacobi_stats

        rows = jacobi_stats.generate(replace(tiny_config, sizes=(16,)))
        # fusion reduces both memory ops and instructions (paper direction)
        assert rows[0].load_reduction > 0
        assert rows[0].instr_change > 0
