"""Parallel sweep orchestration: worker pools, shared disk cache, atomic
writes, and byte-identical figure output regardless of ``REPRO_JOBS``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments import figure5, runner
from repro.experiments.sweep import default_config, resolve_jobs


def _config(sizes=(8,)):
    return replace(default_config(quick=True), sizes=tuple(sizes))


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_env_and_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4
        assert resolve_jobs(2) == 2  # explicit argument wins

    def test_floor_at_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-3) == 1


class TestAtomicDiskCache:
    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        return tmp_path

    @pytest.fixture
    def report(self):
        runner.clear_caches()
        return runner.measure_variant("cholesky", "seq", 8, _config()).report

    def test_store_load_roundtrip(self, cache_dir, report):
        runner._store_cached("k1", report)
        assert runner._load_cached("k1") == report
        # The temp file must not survive the rename.
        assert (cache_dir / "k1.json").exists()
        assert not list(cache_dir.glob("*.tmp"))

    def test_load_tolerates_truncated_json(self, cache_dir):
        (cache_dir / "k2.json").write_text('{"total_cycles": 1')
        assert runner._load_cached("k2") is None

    def test_load_tolerates_oserror(self, cache_dir):
        # A directory where the file should be: read_text raises
        # IsADirectoryError (an OSError), which must mean "not cached",
        # not a crashed sweep.
        (cache_dir / "k3.json").mkdir()
        assert runner._load_cached("k3") is None

    def test_load_tolerates_wrong_schema(self, cache_dir):
        (cache_dir / "k4.json").write_text('{"no_such_field": 1}')
        assert runner._load_cached("k4") is None


class TestMeasurePoints:
    POINTS = [
        ("cholesky", "seq", 8),
        ("cholesky", "tiled", 8),
        ("lu", "seq", 8),
    ]

    def test_parallel_equals_serial(self):
        runner.clear_caches()
        serial = runner.measure_points(self.POINTS, _config(), jobs=1)
        runner.clear_caches()
        parallel = runner.measure_points(self.POINTS, _config(), jobs=2)
        assert [m.report for m in parallel] == [m.report for m in serial]
        assert [(m.kernel, m.variant, m.n) for m in parallel] == self.POINTS

    def test_parallel_seeds_parent_memo(self):
        """After a parallel run the serial assembly path answers from the
        in-process memo even with the disk cache disabled (conftest sets
        REPRO_NO_CACHE=1)."""
        runner.clear_caches()
        [m] = runner.measure_points([("lu", "seq", 8)], _config(), jobs=2)
        again = runner.measure_variant("lu", "seq", 8, _config())
        assert again is m  # identity: memo hit, not a recomputation

    def test_workers_hit_cache_written_before(self, tmp_path, monkeypatch):
        """A 2-job sweep serves points already in the shared disk cache:
        a sentinel report planted under the point's key comes back from
        the pool verbatim, proving workers read (not recompute) it."""
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = _config()
        runner.clear_caches()
        real = runner.measure_variant("cholesky", "seq", 8, config)
        sentinel = replace(real.report, total_cycles=12345.0)
        program, _, recipe = runner.build_program("cholesky", "seq")
        key = runner._point_key("cholesky", "seq", 8, config, None, program, recipe)
        runner._store_cached(key, sentinel)
        runner.clear_caches()  # workers must go to disk, not inherit memos
        results = runner.measure_points(
            [("cholesky", "seq", 8), ("lu", "seq", 8)], config, jobs=2
        )
        assert results[0].report.total_cycles == 12345.0
        assert results[1].report.total_cycles > 0

    def test_disk_cache_survives_for_serial_reader(self, tmp_path, monkeypatch):
        """Reports written by pool workers are readable by a later process
        with cold memos — recomputation is impossible here because the
        measurement entry points are stubbed to raise."""
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = _config()
        runner.clear_caches()
        runner.measure_points(
            [("cholesky", "seq", 8), ("lu", "seq", 8)], config, jobs=2
        )
        assert list(tmp_path.glob("*.json"))
        runner.clear_caches()

        def boom(*a, **k):
            raise AssertionError("should have been served from disk cache")

        monkeypatch.setattr(runner, "measure_streaming", boom)
        monkeypatch.setattr(runner, "measure", boom)
        m = runner.measure_variant("cholesky", "seq", 8, config)
        assert m.report.total_cycles > 0


def test_figure5_rows_identical_across_jobs(monkeypatch):
    """`REPRO_JOBS` is a wall-clock knob only: figure rows are equal."""
    config = _config(sizes=(12,))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    runner.clear_caches()
    serial = figure5.generate(config)
    runner.clear_caches()
    monkeypatch.setenv("REPRO_JOBS", "2")
    parallel = figure5.generate(config)
    assert parallel == serial
