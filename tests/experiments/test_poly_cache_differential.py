"""Differential guarantee of the analysis-layer cache (PR-5 tentpole).

``REPRO_POLY_CACHE=off`` is the oracle: with every memo, intern table,
disk entry and FM fast path disabled, the compiler must produce exactly
the same dependence graphs, FixDeps output and emitted programs as the
cached default. The program-hash check runs the full 43-point registry
matrix in two subprocesses (each mode as a user process would see it);
the dependence/FixDeps checks toggle the knob in-process through
``clear_caches`` to also cover the documented mid-process toggle path.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

_CHILD = """
import json, sys
from repro.kernels.recipes import registry_program_hashes
json.dump(registry_program_hashes(), sys.stdout)
"""


def _hashes(poly_cache: str) -> dict[str, str]:
    env = dict(os.environ)
    env["REPRO_POLY_CACHE"] = poly_cache
    env["REPRO_NO_CACHE"] = "1"  # isolate from any on-disk analysis state
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    out = subprocess.run(
        [sys.executable, "-c", _CHILD],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


@pytest.mark.slow
def test_all_43_program_hashes_match_oracle():
    cached = _hashes("on")
    oracle = _hashes("off")
    assert len(oracle) == 43
    assert cached == oracle


def _toggle(monkeypatch, mode: str) -> None:
    from repro.experiments import runner

    monkeypatch.setenv("REPRO_POLY_CACHE", mode)
    runner.clear_caches()


def test_dependence_graph_matches_oracle(monkeypatch):
    from repro.deps.graph import dependence_graph
    from repro.ir.builder import assign, idx, loop, sym

    N, i = sym("N"), sym("i")
    loops = [
        loop("i", 2, N, [
            assign(idx("B", i), idx("A", i - 1)),
            assign(idx("A", i), 3.0),
        ]),
        loop("i", 2, N, [
            assign(idx("A", i), idx("B", i - 1)),
            assign(idx("B", i), idx("A", i)),
            assign(idx("C", i), idx("C", i + 1)),
        ]),
    ]

    def edges() -> list:
        return [sorted(dependence_graph(l).edges) for l in loops]

    _toggle(monkeypatch, "on")
    cached = edges()
    _toggle(monkeypatch, "off")
    oracle = edges()
    assert cached == oracle
    assert any(e for e in oracle)  # non-vacuous


def test_fixdeps_output_matches_oracle(monkeypatch):
    from repro.ir.serialize import dumps
    from repro.kernels.recipes import build_variant

    def fixed() -> list[str]:
        return [
            dumps(build_variant(kernel, "fixed"))
            for kernel in ("lu", "qr", "cholesky")
        ]

    _toggle(monkeypatch, "on")
    cached = fixed()
    _toggle(monkeypatch, "off")
    oracle = fixed()
    assert cached == oracle


def test_violated_dependences_match_oracle(monkeypatch):
    from repro.deps.fusionpreventing import summarize, violated_dependences
    from repro.kernels import jacobi, qr

    def counts() -> list[dict[str, int]]:
        return [
            summarize(violated_dependences(jacobi.fused_nest())),
            summarize(violated_dependences(qr.fused_nest())),
        ]

    _toggle(monkeypatch, "on")
    cached = counts()
    _toggle(monkeypatch, "off")
    oracle = counts()
    assert cached == oracle and any(oracle)


def test_clear_caches_rebuilds_bit_identically(monkeypatch):
    """Satellite: a cleared process must rebuild exactly what it built
    before clearing (no state leaks through the analysis memos)."""
    from repro.experiments import runner
    from repro.ir.serialize import dumps
    from repro.kernels.recipes import build_variant
    from repro.poly import memo

    monkeypatch.setenv("REPRO_POLY_CACHE", "on")
    runner.clear_caches()
    first = dumps(build_variant("lu", "tiled", tile=16))
    assert memo.stats()["memo_entries"] > 0
    runner.clear_caches()
    assert memo.stats()["memo_entries"] == 0
    assert memo.stats()["ops"] == {}
    second = dumps(build_variant("lu", "tiled", tile=16))
    assert first == second
