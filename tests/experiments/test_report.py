"""Tests for the report writer."""

from repro.experiments.report import write_all
from repro.experiments.sweep import SweepConfig
from repro.machine.configs import octane2_scaled


def test_write_all_artifacts(tmp_path):
    config = SweepConfig(
        machine=octane2_scaled(), sizes=(12,), jacobi_m=2, tile_policy="pdat"
    )
    written = write_all(tmp_path, config)
    assert set(written) == {
        "figure5", "figure678", "table1", "jacobi_stats", "pipeline"
    }
    for path in written.values():
        assert path.exists() and path.read_text().strip()
    # CSVs alongside the markdown
    assert (tmp_path / "figure5.csv").exists()
    csv_text = (tmp_path / "figure5.csv").read_text()
    assert "speedup" in csv_text.splitlines()[0]
    assert len(csv_text.splitlines()) == 1 + 4  # header + four kernels
    # per-pass timing shows up in the pipeline report
    pipeline_md = (tmp_path / "pipeline.md").read_text()
    assert "ms total" in pipeline_md and "FixDeps" in pipeline_md
    assert "seconds" in (tmp_path / "pipeline.csv").read_text().splitlines()[0]
    # provenance
    assert "octane2-scaled" in (tmp_path / "config.md").read_text()
