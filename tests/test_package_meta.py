"""Packaging hygiene: every module imports, every __all__ name resolves."""

import importlib
import pathlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", MODULES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    for attr in getattr(module, "__all__", ()):
        assert getattr(module, attr, None) is not None, f"{name}.{attr}"


def test_every_module_has_docstring():
    for name in MODULES:
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), name


def test_source_tree_has_no_todo_markers():
    root = pathlib.Path(repro.__file__).parent
    offenders = []
    for path in root.rglob("*.py"):
        text = path.read_text()
        for marker in ("TODO", "FIXME", "XXX"):
            if marker in text:
                offenders.append(f"{path.name}: {marker}")
    assert not offenders, offenders


def test_lazy_trans_exports_resolve():
    import repro.trans as trans

    for name in trans.__all__:
        assert getattr(trans, name) is not None
    with pytest.raises(AttributeError):
        trans.does_not_exist
