"""Unit tests for LRW and PDAT tile-size selection."""

import pytest

from repro.errors import MachineError
from repro.machine.cache import CacheConfig
from repro.machine.configs import octane2, octane2_scaled
from repro.tilesize.lrw import _self_interference, lrw_tile
from repro.tilesize.pdat import pdat_tile


class TestPDAT:
    def test_paper_machine_value(self):
        # C = 32KB / 8B = 4096 doubles, K = 2: sqrt(2048) ~ 45.
        assert pdat_tile(octane2().l1) == 45

    def test_scaled_machine_value(self):
        # C = 2KB / 8B = 256, K = 2: sqrt(128) ~ 11.
        assert pdat_tile(octane2_scaled().l1) == 11

    def test_independent_of_problem_size(self):
        t = pdat_tile(octane2().l1)
        assert t == pdat_tile(octane2().l1)

    def test_direct_mapped(self):
        c = CacheConfig("L", 2048, 32, 1)
        assert pdat_tile(c) >= 2

    def test_bad_element_size(self):
        with pytest.raises(MachineError):
            pdat_tile(octane2().l1, element_bytes=0)


class TestLRW:
    def test_tile_fits_cache(self):
        cache = octane2_scaled().l1
        for n in (24, 64, 100, 128):
            edge = lrw_tile(cache, n)
            assert 2 <= edge
            assert edge * edge * 8 <= cache.size_bytes

    def test_no_self_interference_for_chosen_edge(self):
        cache = octane2_scaled().l1
        n = 96
        edge = lrw_tile(cache, n)
        assert _self_interference(cache, n, edge, 8) == 0

    def test_pathological_size_shrinks_tile(self):
        cache = octane2_scaled().l1
        # leading dimension equal to a multiple of the set span is the
        # classic pathological case: columns collide heavily.
        bad_n = cache.num_sets * cache.line_bytes // 8 * 2
        good_n = bad_n + 1
        assert lrw_tile(cache, bad_n) <= lrw_tile(cache, good_n)

    def test_small_problem(self):
        assert lrw_tile(octane2_scaled().l1, 4) <= 4

    def test_invalid_n(self):
        with pytest.raises(MachineError):
            lrw_tile(octane2_scaled().l1, 0)

    def test_lrw_close_to_pdat_generally(self):
        # The paper: LRW and PDAT curves "almost always coincide".
        cache = octane2_scaled().l1
        pdat = pdat_tile(cache)
        close = sum(
            1 for n in (31, 47, 63, 97, 129) if abs(lrw_tile(cache, n) - pdat) <= 6
        )
        assert close >= 3
