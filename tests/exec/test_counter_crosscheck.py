"""Cross-check: compiled static counters == interpreter dynamic counters.

The compiler accumulates costs statically per block; the interpreter counts
every event as it happens. Agreement on loads/stores/branches/loop
iterations across all kernels and variants pins both accounting schemes.
"""

import pytest

from repro.exec.compiled import run_compiled
from repro.exec.interp import run_interpreted
from repro.kernels.registry import KERNELS, get_kernel

CHECKED = ("loads", "stores", "branches", "loop_iters")


_CASES = [
    (kernel, variant)
    for kernel in KERNELS + ("gauss_seidel",)
    for variant in ("sequential", "fixed", "tiled")
    # the extension kernel has no FixDeps stage (already a single nest)
    if not (kernel == "gauss_seidel" and variant == "fixed")
]


@pytest.mark.parametrize("kernel,variant", _CASES)
def test_counters_agree(kernel, variant):
    mod = get_kernel(kernel)
    if variant == "tiled":
        program = mod.tiled(4)
    elif variant == "fixed":
        program = mod.fixed()
    else:
        program = mod.sequential()
    params = {"N": 8}
    if "M" in mod.PARAMS:
        params["M"] = 3
    inputs = mod.make_inputs(params)
    a = run_compiled(program, params, inputs).counters
    b = run_interpreted(program, params, inputs).counters
    for field in CHECKED:
        assert getattr(a, field) == getattr(b, field), (kernel, variant, field)


def test_select_arm_loads_counted_dynamically():
    """Only the taken Select arm's loads count — in both engines."""
    from repro.ir.builder import assign, cge, idx, loop, sym
    from repro.ir.expr import Select
    from repro.ir.program import ArrayDecl, Program

    N, i = sym("N"), sym("i")
    body = loop(
        "i",
        1,
        N,
        [
            assign(
                idx("C", i),
                Select(cge(i, 3), idx("A", i), idx("B", i)),
            )
        ],
    )
    p = Program(
        "sel",
        ("N",),
        (ArrayDecl("A", (N,)), ArrayDecl("B", (N,)), ArrayDecl("C", (N,))),
        (),
        (body,),
    )
    a = run_compiled(p, {"N": 6}).counters
    b = run_interpreted(p, {"N": 6}).counters
    assert a.loads == b.loads == 6  # one arm per iteration
    assert a.branches == b.branches == 6
