"""Unit tests for the compiling executor."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.compiled import CompiledProgram, run_compiled
from repro.ir.builder import (
    assign,
    ceq,
    cgt,
    cne,
    fabs,
    idx,
    if_,
    loop,
    sqrt,
    sym,
    val,
)
from repro.ir.expr import Select
from repro.ir.program import ArrayDecl, Program, ScalarDecl

N = sym("N")
i = sym("i")


def prog(body, arrays=(("A", 1),), scalars=(), params=("N",)):
    decls = tuple(
        ArrayDecl(name, (N,) * rank) for name, rank in arrays
    )
    sdecls = tuple(ScalarDecl(s) for s in scalars)
    return Program("t", params, decls, sdecls, tuple(body))


class TestBasics:
    def test_fill_loop(self):
        p = prog([loop("i", 1, N, [assign(idx("A", i), 2.0)])])
        out = run_compiled(p, {"N": 5})
        assert np.allclose(out.arrays["A"], 2.0)

    def test_one_based_indexing(self):
        p = prog([assign(idx("A", val(1)), 7.0), assign(idx("A", N), 9.0)])
        out = run_compiled(p, {"N": 4})
        assert out.arrays["A"][0] == 7.0 and out.arrays["A"][3] == 9.0

    def test_column_major_semantics(self):
        # A(i, j): first index fastest — B(2,1) differs from B(1,2).
        p = Program(
            "t2",
            ("N",),
            (ArrayDecl("B", (N, N)),),
            (),
            (assign(idx("B", val(2), val(1)), 5.0),),
        )
        out = run_compiled(p, {"N": 3})
        assert out.arrays["B"][1, 0] == 5.0 and out.arrays["B"][0, 1] == 0.0

    def test_inputs_seed_arrays(self, rng):
        a0 = rng.random(6)
        p = prog([loop("i", 1, N, [assign(idx("A", i), idx("A", i) * 2.0)])])
        out = run_compiled(p, {"N": 6}, {"A": a0})
        assert np.allclose(out.arrays["A"], a0 * 2)

    def test_input_shape_checked(self):
        p = prog([assign(idx("A", val(1)), 0.0)])
        with pytest.raises(ExecutionError):
            run_compiled(p, {"N": 4}, {"A": np.zeros(5)})

    def test_missing_param(self):
        p = prog([assign(idx("A", val(1)), 0.0)])
        with pytest.raises(ExecutionError):
            run_compiled(p, {})

    def test_scalars_returned(self):
        p = prog([assign("s", 3.5)], scalars=("s",))
        assert run_compiled(p, {"N": 1}).scalars["s"] == 3.5

    def test_intrinsics(self):
        p = prog([assign("s", sqrt(val(16.0)) + fabs(val(-2.0)))], scalars=("s",))
        assert run_compiled(p, {"N": 1}).scalars["s"] == 6.0

    def test_select_expression(self):
        body = loop(
            "i",
            1,
            N,
            [assign(idx("A", i), Select(cgt(i, 2), val(1.0), val(0.0)))],
        )
        out = run_compiled(prog([body]), {"N": 4})
        assert list(out.arrays["A"]) == [0.0, 0.0, 1.0, 1.0]

    def test_keyword_loop_var(self):
        body = loop("is", 1, N, [assign(idx("A", sym("is")), 1.0)])
        out = run_compiled(prog([body]), {"N": 3})
        assert np.allclose(out.arrays["A"], 1.0)

    def test_if_else(self):
        body = loop(
            "i", 1, N,
            [if_(ceq(i, 2), assign(idx("A", i), 1.0), assign(idx("A", i), 2.0))],
        )
        out = run_compiled(prog([body]), {"N": 3})
        assert list(out.arrays["A"]) == [2.0, 1.0, 2.0]

    def test_stepped_loop(self):
        body = loop("i", 1, N, [assign(idx("A", i), 1.0)], step=2)
        out = run_compiled(prog([body]), {"N": 5})
        assert list(out.arrays["A"]) == [1.0, 0.0, 1.0, 0.0, 1.0]


class TestCounters:
    def test_loads_stores(self):
        body = loop("i", 1, N, [assign(idx("A", i), idx("A", i) + 1.0)])
        out = run_compiled(prog([body]), {"N": 10})
        assert out.counters.loads == 10 and out.counters.stores == 10
        assert out.counters.loop_iters == 10

    def test_branches_counted(self):
        body = loop("i", 1, N, [if_(ceq(i, 1), assign("s", 1.0))])
        out = run_compiled(prog([body], scalars=("s",)), {"N": 7})
        assert out.counters.branches == 7

    def test_flops_exclude_subscript_arith(self):
        body = loop("i", 1, N - 1, [assign(idx("A", i + 1), idx("A", i) * 2.0)])
        out = run_compiled(prog([body]), {"N": 5})
        assert out.counters.flops == 4  # one multiply per iteration


class TestTrace:
    def test_trace_matches_counters(self):
        body = loop("i", 1, N, [assign(idx("A", i), idx("A", i) + 1.0)])
        cp = CompiledProgram(prog([body]), trace=True)
        out = cp.run({"N": 8})
        aid, lin, rw = out.trace.memory_events()
        assert len(aid) == out.counters.loads + out.counters.stores
        assert int((rw == 1).sum()) == out.counters.stores

    def test_trace_order_load_before_store(self):
        body = assign(idx("A", val(1)), idx("A", val(2)))
        cp = CompiledProgram(prog([body]), trace=True)
        out = cp.run({"N": 2})
        _aid, lin, rw = out.trace.memory_events()
        assert list(rw) == [0, 1]
        assert list(lin) == [1, 0]

    def test_branch_trace_sites(self):
        body = loop("i", 1, N, [if_(cne(i, 1), assign("s", 1.0))])
        cp = CompiledProgram(prog([body], scalars=("s",)), trace=True)
        out = cp.run({"N": 5})
        sid, taken = out.trace.branch_events()
        assert set(sid) == {0}
        assert list(taken) == [0, 1, 1, 1, 1]
        assert 0 in out.branch_sites

    def test_untraced_has_no_buffers(self):
        out = run_compiled(prog([assign(idx("A", val(1)), 0.0)]), {"N": 1})
        assert out.trace is None
