"""Unit tests for per-array trace statistics."""

import pytest

from repro.errors import ExecutionError
from repro.exec.compiled import CompiledProgram, run_compiled
from repro.exec.tracestats import footprint_bytes, trace_statistics
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program

N, i = sym("N"), sym("i")


def copy_program() -> Program:
    body = loop("i", 1, N, [assign(idx("B", i), idx("A", i) * 2.0)])
    return Program(
        "cp", ("N",), (ArrayDecl("A", (N,)), ArrayDecl("B", (N,))), (), (body,)
    )


def traced(program, params):
    return CompiledProgram(program, trace=True).run(params)


class TestTraceStatistics:
    def test_loads_and_stores_attributed(self):
        run = traced(copy_program(), {"N": 10})
        stats = trace_statistics(run)
        assert stats["A"].loads == 10 and stats["A"].stores == 0
        assert stats["B"].loads == 0 and stats["B"].stores == 10

    def test_distinct_elements(self):
        run = traced(copy_program(), {"N": 10})
        stats = trace_statistics(run)
        assert stats["A"].distinct_elements == 10
        assert stats["B"].distinct_elements == 10

    def test_reuse_factor(self):
        body = loop(
            "i", 1, N, [assign(idx("B", sym("i")), idx("A", 1) * 1.0)]
        )
        p = Program(
            "r", ("N",), (ArrayDecl("A", (N,)), ArrayDecl("B", (N,))), (), (body,)
        )
        stats = trace_statistics(traced(p, {"N": 8}))
        assert stats["A"].reuse_factor == 8.0

    def test_untouched_array(self):
        p = Program(
            "u",
            ("N",),
            (ArrayDecl("A", (N,)), ArrayDecl("Z", (N,))),
            (),
            (assign(idx("A", 1), 0.0),),
        )
        stats = trace_statistics(traced(p, {"N": 4}))
        assert stats["Z"].accesses == 0

    def test_footprint(self):
        run = traced(copy_program(), {"N": 10})
        assert footprint_bytes(run) == 20 * 8

    def test_requires_trace(self):
        run = run_compiled(copy_program(), {"N": 4})
        with pytest.raises(ExecutionError):
            trace_statistics(run)

    def test_jacobi_fusion_cuts_l_traffic(self):
        from repro.kernels import jacobi

        params = {"N": 12, "M": 2}
        inputs = jacobi.make_inputs(params)
        seq = traced(jacobi.sequential(), params)
        stats = trace_statistics(seq)
        assert stats["L"].loads > 0 and stats["L"].stores > 0
        fixed = traced(jacobi.fixed(), params)
        fixed_stats = trace_statistics(fixed)
        assert "L" not in fixed_stats  # scalarised away
        assert "H_A" in fixed_stats
