"""Differential suite: the block tier is bit-identical to the scalar oracle.

Every registered recipe (all kernels x all variants, small N) must produce
the same encoded event streams, counters, output arrays, scalars and
``PerfReport``s under ``exec_mode="block"`` as under ``exec_mode="scalar"``
— that is the block tier's entire correctness contract. QR's *unfixed*
fused program is broken by design (it divides by a not-yet-computed
pivot); both tiers must fail it with :class:`ExecutionError`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.compiled import CompiledProgram, resolve_exec_mode
from repro.experiments.runner import build_program
from repro.experiments.sweep import default_config
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program
from repro.kernels.registry import ALL_KERNELS, get_kernel, variants_for
from repro.machine.perfcounters import measure_streaming

ALL_PAIRS = [
    (kernel, variant)
    for kernel in ALL_KERNELS
    for variant in variants_for(kernel)
]

N = 12
TILE = 4


def _setup(kernel, variant):
    tile = TILE if variant in ("tiled", "tiled_sunk") else None
    program, _, _ = build_program(kernel, variant, tile=tile)
    mod = get_kernel(kernel)
    params = {"N": N}
    if "M" in mod.PARAMS:
        params["M"] = 3
    inputs = mod.make_inputs(params, np.random.default_rng(7))
    return program, params, inputs


def _compile_pair(program):
    scalar = CompiledProgram(program, trace=True, exec_mode="scalar")
    # min_block_trip=1 so even the short trips of N=12 take the block
    # path — the differential coverage must exercise it, not skip it.
    block = CompiledProgram(
        program, trace=True, exec_mode="block", min_block_trip=1
    )
    return scalar, block


@pytest.mark.parametrize("kernel,variant", ALL_PAIRS)
def test_recipe_bit_identical(kernel, variant):
    program, params, inputs = _setup(kernel, variant)
    scalar, block = _compile_pair(program)
    try:
        rs = scalar.run(params, inputs)
    except ExecutionError:
        assert (kernel, variant) == ("qr", "fused")
        with pytest.raises(ExecutionError):
            block.run(params, inputs)
        return
    rb = block.run(params, inputs)
    assert np.array_equal(rs.trace.memory, rb.trace.memory)
    assert np.array_equal(rs.trace.branches, rb.trace.branches)
    assert rs.counters == rb.counters
    for name in rs.arrays:
        assert np.array_equal(rs.arrays[name], rb.arrays[name]), name
    for name in rs.scalars:
        assert rs.scalars[name] == rb.scalars[name], name


@pytest.mark.parametrize("kernel,variant", ALL_PAIRS)
def test_recipe_perfreport_identical(kernel, variant):
    """Streaming through the machine model: identical PerfReports."""
    if (kernel, variant) == ("qr", "fused"):
        pytest.skip("broken by design; cannot execute under either tier")
    program, params, inputs = _setup(kernel, variant)
    scalar, block = _compile_pair(program)
    config = default_config(quick=True)
    _, rep_s = measure_streaming(scalar, params, config.machine, inputs)
    _, rep_b = measure_streaming(block, params, config.machine, inputs)
    assert rep_s == rep_b


def test_block_tier_actually_engages():
    """The suite above is vacuous if nothing ever vectorizes: across the
    registered recipes a healthy number of loops must get a block path."""
    total = 0
    for kernel, variant in ALL_PAIRS:
        program, _, _ = _setup(kernel, variant)
        total += CompiledProgram(
            program, trace=True, exec_mode="block", min_block_trip=1
        ).block_loops
    assert total >= 20


def _flat_program(body):
    return Program("t", ("N",), (ArrayDecl("A", (sym("N"),)),), (), tuple(body))


def test_non_affine_body_falls_back():
    """A quadratic subscript defeats the affine analysis: no block path."""
    i = sym("i")
    p = _flat_program([loop("i", 1, 3, [assign(idx("A", i * i), 1.0)])])
    cp = CompiledProgram(p, trace=True, exec_mode="block", min_block_trip=1)
    assert cp.block_loops == 0
    rs = CompiledProgram(p, trace=True, exec_mode="scalar").run({"N": 9})
    rb = cp.run({"N": 9})
    assert np.array_equal(rs.trace.memory, rb.trace.memory)
    assert np.array_equal(rs.arrays["A"], rb.arrays["A"])


def test_recurrence_guard_falls_back_at_runtime():
    """A(i) = A(i-1) + 1 is statically affine but carries a RAW dependence
    at distance 1: the loop compiles a block path, yet the runtime guard
    must route every entry to the scalar fallback — and stay exact."""
    i = sym("i")
    p = _flat_program(
        [loop("i", 2, sym("N"), [assign(idx("A", i), idx("A", i - 1) + 1.0)])]
    )
    cp = CompiledProgram(p, trace=True, exec_mode="block", min_block_trip=1)
    assert cp.block_loops == 1  # eligible at compile time...
    rb = cp.run({"N": 40})
    rs = CompiledProgram(p, trace=True, exec_mode="scalar").run({"N": 40})
    # ...but a blocked gather-all would read stale zeros; only the guard's
    # fallback produces the prefix sums.
    assert rb.arrays["A"][-1] == 39.0
    assert np.array_equal(rs.trace.memory, rb.trace.memory)
    assert np.array_equal(rs.arrays["A"], rb.arrays["A"])
    assert rs.counters == rb.counters


def test_independent_copy_takes_block_path():
    """B(i) = A(i) has no loop-carried dependence: the guard admits it and
    the vector path produces the scalar tier's exact event stream."""
    i = sym("i")
    p = Program(
        "copy",
        ("N",),
        (ArrayDecl("A", (sym("N"),)), ArrayDecl("B", (sym("N"),))),
        (),
        (loop("i", 1, sym("N"), [assign(idx("B", i), idx("A", i) * 2.0)]),),
    )
    a0 = np.arange(1.0, 33.0)
    cp = CompiledProgram(p, trace=True, exec_mode="block", min_block_trip=1)
    assert cp.block_loops == 1
    rb = cp.run({"N": 32}, {"A": a0})
    rs = CompiledProgram(p, trace=True, exec_mode="scalar").run({"N": 32}, {"A": a0})
    assert np.array_equal(rs.trace.memory, rb.trace.memory)
    assert np.array_equal(rs.arrays["B"], rb.arrays["B"])
    assert rs.counters == rb.counters


def test_exec_mode_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_EXEC_MODE", raising=False)
    assert resolve_exec_mode() == "block"
    assert resolve_exec_mode("scalar") == "scalar"
    monkeypatch.setenv("REPRO_EXEC_MODE", "scalar")
    assert resolve_exec_mode() == "scalar"
    with pytest.raises(ExecutionError):
        resolve_exec_mode("vector")
