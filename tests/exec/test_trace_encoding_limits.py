"""Layout-time validation of the trace event encoding.

A memory event packs the linear element index into ADDR_BITS (40) low
bits; an array too large for that field would silently alias its high
indices into the array-id field. Traced runs must refuse it up front.
"""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.compiled import CompiledProgram
from repro.exec.events import ADDR_MASK, check_addressable
from repro.ir.builder import assign, idx, loop, sym, val
from repro.ir.program import ArrayDecl, Program

N = sym("N")


def cubed_prog():
    # A(N, N, N): N = 2^14 overflows the 40-bit index field (2^42 elements).
    return Program(
        "big",
        ("N",),
        (ArrayDecl("A", (N, N, N)),),
        (),
        (assign(idx("A", val(1), val(1), val(1)), 1.0),),
    )


class TestCheckAddressable:
    def test_boundary_is_inclusive(self):
        check_addressable("p", "A", ADDR_MASK + 1)  # exactly 2^40: fine
        with pytest.raises(ExecutionError, match="40-bit"):
            check_addressable("p", "A", ADDR_MASK + 2)

    def test_traced_run_rejects_oversized_array(self):
        cp = CompiledProgram(cubed_prog(), trace=True)
        with pytest.raises(ExecutionError, match="do not fit"):
            cp.run({"N": 1 << 14})
        with pytest.raises(ExecutionError, match="do not fit"):
            cp.run_streaming({"N": 1 << 14})

    def test_untraced_run_is_not_constrained(self):
        # Without tracing there is no event encoding to protect; the
        # guard must not fire (the array below is small anyway).
        p = Program(
            "small",
            ("N",),
            (ArrayDecl("A", (N,)),),
            (),
            (loop("i", 1, N, [assign(idx("A", sym("i")), 3.0)]),),
        )
        out = CompiledProgram(p, trace=False).run({"N": 4})
        assert np.allclose(out.arrays["A"], 3.0)
