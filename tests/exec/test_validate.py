"""Unit tests for the equivalence checker."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.exec.validate import assert_equivalent, compare_outputs
from repro.exec.compiled import run_compiled
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program

N, i = sym("N"), sym("i")


def fill(value: float, name: str = "p") -> Program:
    return Program(
        name,
        ("N",),
        (ArrayDecl("A", (N,)),),
        (),
        (loop("i", 1, N, [assign(idx("A", i), value)]),),
    )


class TestCompareOutputs:
    def test_identical(self):
        a = run_compiled(fill(1.0), {"N": 4})
        b = run_compiled(fill(1.0, "q"), {"N": 4})
        assert compare_outputs(a, b, ("A",)) == []

    def test_differences_reported(self):
        a = run_compiled(fill(1.0), {"N": 4})
        b = run_compiled(fill(2.0, "q"), {"N": 4})
        problems = compare_outputs(a, b, ("A",))
        assert problems and "A" in problems[0]

    def test_missing_output(self):
        a = run_compiled(fill(1.0), {"N": 4})
        problems = compare_outputs(a, a, ("B",))
        assert "missing" in problems[0]


class TestAssertEquivalent:
    def test_passes(self):
        assert_equivalent(fill(3.0), fill(3.0, "q"), {"N": 5})

    def test_raises_with_location(self):
        with pytest.raises(ValidationError) as exc:
            assert_equivalent(fill(1.0), fill(2.0, "q"), {"N": 5})
        assert "N" in str(exc.value)

    def test_extra_arrays_in_transformed_ignored(self):
        original = fill(1.0)
        transformed = Program(
            "q",
            ("N",),
            (ArrayDecl("A", (N,)), ArrayDecl("H", (N,))),
            (),
            (
                loop("i", 1, N, [assign(idx("H", i), 9.0)]),
                loop("i", 1, N, [assign(idx("A", i), 1.0)]),
            ),
            outputs=("A",),
        )
        assert_equivalent(original, transformed, {"N": 4}, outputs=("A",))
