"""Unit tests for the tree-walking interpreter, including the
compiled-vs-interpreted agreement checks that guard the code generator."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec.compiled import run_compiled
from repro.exec.interp import run_interpreted
from repro.ir.builder import assign, cgt, idx, if_, loop, sym, val
from repro.ir.program import ArrayDecl, Program, ScalarDecl

N, i, j = sym("N"), sym("i"), sym("j")


class TestSemantics:
    def test_bounds_checked(self):
        p = Program(
            "t", ("N",), (ArrayDecl("A", (N,)),), (), (assign(idx("A", N + 1), 0.0),)
        )
        with pytest.raises(ExecutionError):
            run_interpreted(p, {"N": 3})

    def test_non_integer_subscript_rejected(self):
        p = Program(
            "t",
            ("N",),
            (ArrayDecl("A", (N,)),),
            (ScalarDecl("x"),),
            (assign("x", 1.5), assign(idx("A", sym("x")), 0.0)),
        )
        with pytest.raises(ExecutionError):
            run_interpreted(p, {"N": 3})

    def test_unbound_variable(self):
        p = Program(
            "t",
            ("N",),
            (ArrayDecl("A", (N,)),),
            (),
            (loop("i", 1, N, [assign(idx("A", sym("i")), 0.0)]),),
        )
        # fine: loop binds i
        run_interpreted(p, {"N": 2})

    def test_min_max_intrinsics(self):
        from repro.ir.builder import fmax, fmin

        p = Program(
            "t", (), (), (ScalarDecl("x"),),
            (assign("x", fmin(val(3.0), fmax(val(1.0), val(2.0)))),),
        )
        assert run_interpreted(p, {}).scalars["x"] == 2.0

    def test_negative_step_rejected(self):
        p = Program(
            "t", ("N",), (ArrayDecl("A", (N,)),), (),
            (loop("i", 1, N, [assign(idx("A", sym("i")), 0.0)], step=0),),
        )
        with pytest.raises(ExecutionError):
            run_interpreted(p, {"N": 2})


class TestAgreementWithCompiled:
    """The interpreter is the oracle for the code generator."""

    @pytest.mark.parametrize("kernel_name", ["lu", "qr", "cholesky", "jacobi"])
    @pytest.mark.parametrize("variant", ["sequential", "fixed"])
    def test_kernels_agree(self, kernel_name, variant):
        from repro.kernels.registry import get_kernel

        mod = get_kernel(kernel_name)
        program = getattr(mod, variant)()
        params = {"N": 7}
        if "M" in mod.PARAMS:
            params["M"] = 3
        inputs = mod.make_inputs(params)
        a = run_compiled(program, params, inputs)
        b = run_interpreted(program, params, inputs)
        for name in program.outputs:
            if name in a.arrays:
                assert np.allclose(a.arrays[name], b.arrays[name], rtol=1e-12)

    def test_guard_heavy_program_agrees(self, rng):
        body = loop(
            "i",
            1,
            N,
            [
                loop(
                    "j",
                    1,
                    N,
                    [
                        if_(
                            cgt(idx("A", i, j), 0.5),
                            assign(idx("A", i, j), idx("A", i, j) * 0.5),
                            assign(idx("A", i, j), idx("A", i, j) + 1.0),
                        )
                    ],
                )
            ],
        )
        p = Program("t", ("N",), (ArrayDecl("A", (N, N)),), (), (body,))
        a0 = rng.random((6, 6))
        ra = run_compiled(p, {"N": 6}, {"A": a0})
        rb = run_interpreted(p, {"N": 6}, {"A": a0})
        assert np.allclose(ra.arrays["A"], rb.arrays["A"])
