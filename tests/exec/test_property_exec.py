"""Property test: the compiled executor agrees with the interpreter on
randomly generated affine programs.

The generator builds small but adversarial programs: nested triangular
loops, guards, scalar accumulators, array-to-array assignments with
shifted subscripts — the constructs every kernel variant combines.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.exec.compiled import run_compiled
from repro.exec.interp import run_interpreted
from repro.ir.builder import assign, cge, cle, idx, if_, loop, sym, val
from repro.ir.expr import Expr
from repro.ir.program import ArrayDecl, Program, ScalarDecl

N = sym("N")


@st.composite
def small_expr(draw, depth: int, loop_vars: list[str]) -> Expr:
    """A float-valued expression over A(...), s and the loop vars."""
    if depth <= 0 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return val(draw(st.floats(-2, 2, allow_nan=False, width=32)))
        if choice == 1 and loop_vars:
            v = draw(st.sampled_from(loop_vars))
            return idx("A", _clamped_index(draw, v, loop_vars))
        return sym("s")
    op = draw(st.sampled_from(["+", "-", "*"]))
    lhs = draw(small_expr(depth - 1, loop_vars))
    rhs = draw(small_expr(depth - 1, loop_vars))
    from repro.ir.expr import BinOp

    return BinOp(op, lhs, rhs)


def _clamped_index(draw, v: str, loop_vars: list[str]) -> Expr:
    # index in [1, N] guaranteed: loop vars run within [1, N] and we only
    # use the bare var (shifts are exercised via dedicated tests).
    return sym(v)


@st.composite
def small_program(draw) -> Program:
    depth = draw(st.integers(1, 3))
    loop_vars = [f"v{d}" for d in range(depth)]
    stmts = []
    n_stmts = draw(st.integers(1, 3))
    for _ in range(n_stmts):
        target_kind = draw(st.integers(0, 1))
        value = draw(small_expr(2, loop_vars))
        if target_kind == 0:
            stmts.append(assign(idx("A", sym(loop_vars[-1])), value))
        else:
            stmts.append(assign("s", value))
    if draw(st.booleans()):
        guard = cge(sym(loop_vars[-1]), val(2))
        stmts = [if_(guard, stmts, [assign("s", val(0.5))])]
    body = stmts
    for d in reversed(range(depth)):
        lo = 1 if d == 0 else sym(loop_vars[d - 1])
        body = [loop(loop_vars[d], lo, N, body)]
    return Program(
        "rand",
        ("N",),
        (ArrayDecl("A", (N,)),),
        (ScalarDecl("s"),),
        tuple(body),
    )


@given(small_program(), st.integers(1, 6), st.integers(0, 2**31 - 1))
@settings(max_examples=40)
def test_compiled_matches_interpreted(program, n, seed):
    rng = np.random.default_rng(seed)
    a0 = rng.uniform(-1, 1, n)
    ra = run_compiled(program, {"N": n}, {"A": a0})
    rb = run_interpreted(program, {"N": n}, {"A": a0})
    assert np.allclose(ra.arrays["A"], rb.arrays["A"], equal_nan=True)
    assert np.isclose(ra.scalars["s"], rb.scalars["s"], equal_nan=True)


@given(st.integers(2, 9), st.integers(1, 5))
def test_triangular_guarded_sum(n, m):
    """A closed-form check: count lattice points of a guarded triangle."""
    body = loop(
        "i",
        1,
        N,
        [
            loop(
                "j",
                sym("i"),
                N,
                [if_(cle(sym("j"), val(m)), [assign("s", sym("s") + 1.0)])],
            )
        ],
    )
    p = Program("tri", ("N",), (ArrayDecl("A", (N,)),), (ScalarDecl("s"),), (body,))
    out = run_compiled(p, {"N": n})
    expected = sum(1 for i in range(1, n + 1) for j in range(i, n + 1) if j <= m)
    assert out.scalars["s"] == expected
    assert out.counters.loop_iters == n + sum(n - i + 1 for i in range(1, n + 1))
