"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("ci")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for test inputs."""
    return np.random.default_rng(1234)


@pytest.fixture(autouse=True)
def _no_experiment_cache(monkeypatch):
    """Keep experiment measurements out of the on-disk cache during tests."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
