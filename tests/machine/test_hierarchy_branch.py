"""Unit tests for the cache hierarchy and branch predictors."""

import numpy as np

from repro.machine.branch import StaticTakenPredictor, TwoBitPredictor
from repro.machine.cache import CacheConfig
from repro.machine.hierarchy import simulate_hierarchy


def l1():
    return CacheConfig("L1", 128, 32, 2)


def l2():
    return CacheConfig("L2", 512, 32, 2)


class TestHierarchy:
    def test_l2_sees_only_l1_misses(self):
        addrs = np.array([0, 0, 0, 32], dtype=np.int64)
        res = simulate_hierarchy(l1(), l2(), addrs)
        assert res.accesses == 4
        assert res.l1_misses == 2  # cold 0 and cold 32
        assert res.l2_misses == 2  # both cold in L2 as well

    def test_l2_filters_capacity(self):
        # Working set bigger than L1 but within L2: repeated sweeps hit L2.
        sweep = np.arange(0, 256, 32, dtype=np.int64)  # 8 lines > L1 (4 lines)
        addrs = np.concatenate([sweep, sweep])
        res = simulate_hierarchy(l1(), l2(), addrs)
        assert res.l1_misses > 8 - 1  # thrashing
        assert res.l2_misses == 8  # only cold misses reach memory

    def test_rates(self):
        addrs = np.array([0, 0], dtype=np.int64)
        res = simulate_hierarchy(l1(), l2(), addrs)
        assert res.l1_miss_rate == 0.5
        assert res.l2_miss_rate == 1.0

    def test_empty(self):
        res = simulate_hierarchy(l1(), l2(), np.empty(0, dtype=np.int64))
        assert res.l1_miss_rate == 0.0 and res.l2_miss_rate == 0.0


class TestTwoBit:
    def run(self, sids, taken):
        return TwoBitPredictor().simulate(
            np.array(sids, dtype=np.int64), np.array(taken, dtype=np.int64)
        )

    def test_always_taken_learns(self):
        stats = self.run([0] * 10, [1] * 10)
        assert stats.resolved == 10 and stats.mispredicted == 0

    def test_always_not_taken_pays_training(self):
        stats = self.run([0] * 10, [0] * 10)
        # starts weakly-taken (state 2): one mispredict, then state 1/0
        # predict not-taken.
        assert stats.mispredicted == 1

    def test_alternating_is_bad(self):
        stats = self.run([0] * 8, [1, 0] * 4)
        assert stats.mispredicted >= 4

    def test_sites_independent(self):
        stats = self.run([0, 1, 0, 1], [1, 0, 1, 0])
        # site 0 always taken (0 mispredicts); site 1 never taken (one
        # training mispredict from the weakly-taken start).
        assert stats.resolved == 4
        assert stats.mispredicted == 1

    def test_order_within_site_preserved(self):
        a = self.run([0, 0, 0, 0], [0, 0, 1, 1])
        b = self.run([0, 0, 0, 0], [1, 1, 0, 0])
        assert a.mispredicted != b.mispredicted or a.resolved == b.resolved

    def test_empty(self):
        stats = self.run([], [])
        assert stats.resolved == 0 and stats.misprediction_rate == 0.0


class TestStaticTaken:
    def test_counts_not_taken(self):
        stats = StaticTakenPredictor().simulate(
            np.array([0, 0, 1]), np.array([1, 0, 0])
        )
        assert stats.resolved == 3 and stats.mispredicted == 2
