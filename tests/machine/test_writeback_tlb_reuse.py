"""Unit tests for the write-back, TLB and reuse-distance models."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.cache import CacheConfig
from repro.machine.reuse import reuse_profile
from repro.machine.tlb import TLBConfig, simulate_tlb
from repro.machine.writeback import simulate_writeback


def cache(size=128, line=32, assoc=2):
    return CacheConfig("L", size, line, assoc)


class TestWriteback:
    def test_clean_evictions_free(self):
        c = cache()
        # read-only stream that thrashes: no writebacks ever.
        addrs = np.arange(0, 32 * 64, 32, dtype=np.int64)
        res = simulate_writeback(c, addrs, np.zeros(len(addrs)))
        assert res.writebacks == 0 and res.dirty_at_end == 0
        assert res.miss_count == len(addrs)

    def test_dirty_eviction_counted(self):
        c = cache(size=64, line=32, assoc=2)  # one set, two ways
        addrs = np.array([0, 32, 64], dtype=np.int64)
        writes = np.array([1, 0, 0])
        res = simulate_writeback(c, addrs, writes)
        # line 0 written, then evicted by line 64 -> one writeback
        assert res.writebacks == 1

    def test_final_flush_reported(self):
        c = cache()
        addrs = np.array([0, 32], dtype=np.int64)
        res = simulate_writeback(c, addrs, np.array([1, 1]))
        assert res.dirty_at_end == 2
        assert res.total_writeback_lines == 2

    def test_write_hit_keeps_line_dirty_once(self):
        c = cache(size=64, line=32, assoc=2)
        addrs = np.array([0, 0, 0, 32, 64], dtype=np.int64)
        writes = np.array([1, 1, 1, 0, 0])
        res = simulate_writeback(c, addrs, writes)
        assert res.writebacks == 1  # single eviction of the single dirty line

    def test_misses_match_plain_simulator(self):
        from repro.machine.cache import simulate_cache

        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 64, 500) * 8).astype(np.int64)
        writes = rng.integers(0, 2, 500)
        c = cache()
        wb = simulate_writeback(c, addrs, writes)
        plain = simulate_cache(c, addrs)
        assert (wb.misses == plain).all()

    def test_length_mismatch(self):
        with pytest.raises(MachineError):
            simulate_writeback(cache(), np.zeros(2, dtype=np.int64), np.zeros(3))


class TestTLB:
    def test_within_page_hits(self):
        cfg = TLBConfig(entries=4, page_bytes=4096)
        addrs = np.arange(0, 4096, 8, dtype=np.int64)
        assert simulate_tlb(cfg, addrs) == 1

    def test_capacity_thrash(self):
        cfg = TLBConfig(entries=2, page_bytes=4096)
        # cycle over 3 pages: every access misses after warmup
        addrs = np.array([0, 4096, 8192] * 10, dtype=np.int64)
        assert simulate_tlb(cfg, addrs) == 30

    def test_lru_order(self):
        cfg = TLBConfig(entries=2, page_bytes=4096)
        addrs = np.array([0, 4096, 0, 8192, 0], dtype=np.int64)
        # page0 stays hot; 8192 evicts 4096.
        assert simulate_tlb(cfg, addrs) == 3

    def test_config_validation(self):
        with pytest.raises(MachineError):
            TLBConfig(entries=0)
        with pytest.raises(MachineError):
            TLBConfig(page_bytes=3000)

    def test_large_stride_column_walk_thrashes(self):
        # 2-D column-major walk along a row: one access per page.
        cfg = TLBConfig(entries=8, page_bytes=4096)
        n = 1024  # leading dimension in elements: 8 KB per column
        addrs = np.array([j * n * 8 for j in range(64)] * 2, dtype=np.int64)
        assert simulate_tlb(cfg, addrs) == 128  # never fits


class TestReuseProfile:
    def test_cold_only(self):
        prof = reuse_profile(np.array([0, 64, 128], dtype=np.int64), 5)
        assert prof.cold == 3 and prof.total == 3
        assert prof.misses_at(4) == 3

    def test_histogram_and_mrc(self):
        # pattern with distance-1 reuse
        addrs = np.array([0, 64, 0, 64, 0], dtype=np.int64)
        prof = reuse_profile(addrs, 5)
        assert prof.cold == 2
        assert prof.histogram[1] == 3
        assert prof.misses_at(2) == 2  # only cold
        assert prof.misses_at(1) == 5  # distance-1 reuses all miss

    def test_mrc_monotone(self):
        rng = np.random.default_rng(1)
        addrs = (rng.integers(0, 40, 400) * 64).astype(np.int64)
        prof = reuse_profile(addrs, 6)
        curve = prof.miss_ratio_curve([1, 2, 4, 8, 16, 32, 64])
        ratios = [r for _, r in curve]
        assert ratios == sorted(ratios, reverse=True)

    def test_tiling_shifts_reuse_mass(self):
        # The analysis-grade claim: tiled Cholesky has shorter reuse
        # distances than sequential Cholesky.
        from repro.exec.compiled import CompiledProgram
        from repro.kernels import cholesky
        from repro.machine.layout import layout_for_run

        params = {"N": 40}
        inputs = cholesky.make_inputs(params)
        profs = {}
        for label, program in (
            ("seq", cholesky.sequential()),
            ("tiled", cholesky.tiled(8)),
        ):
            cp = CompiledProgram(program, trace=True)
            run = cp.run(params, inputs)
            layout = layout_for_run(run, program, params)
            aid, lin, _ = run.trace.memory_events()
            addrs = layout.addresses(aid, lin, {v: k for k, v in run.array_ids.items()})
            profs[label] = reuse_profile(addrs, 5)
        assert (
            profs["tiled"].mean_finite_distance()
            < profs["seq"].mean_finite_distance()
        )
