"""Unit tests for the next-line prefetcher."""

import numpy as np

from repro.machine.cache import CacheConfig, simulate_cache
from repro.machine.prefetch import simulate_prefetch


def cfg(size=256, line=32, assoc=2):
    return CacheConfig("L", size, line, assoc)


class TestPrefetch:
    def test_sequential_stream_mostly_covered(self):
        addrs = np.arange(0, 32 * 64, 32, dtype=np.int64)  # one new line each
        res = simulate_prefetch(cfg(), addrs)
        base = int(simulate_cache(cfg(), addrs).sum())
        assert res.demand_misses < base / 4
        assert res.covered_fraction > 0.7

    def test_random_stream_not_covered(self, rng):
        lines = rng.permutation(512)
        addrs = (lines * 32).astype(np.int64)
        res = simulate_prefetch(cfg(), addrs)
        assert res.covered_fraction < 0.2

    def test_repeat_hits_cost_nothing(self):
        addrs = np.array([0, 0, 0, 0], dtype=np.int64)
        res = simulate_prefetch(cfg(), addrs)
        assert res.demand_misses == 1
        assert res.prefetch_hits == 0

    def test_mru_protected_from_prefetch(self):
        # A prefetch evicts the LRU way, never the MRU way.
        c = cfg(size=64, line=32, assoc=2)  # one set, two ways
        addrs = np.array([0, 0, 0], dtype=np.int64)
        res = simulate_prefetch(c, addrs)
        assert res.demand_misses == 1  # line 0 stays resident

    def test_prefetch_pollution_in_tiny_cache(self):
        # The documented cost of next-line prefetch: in a cache barely
        # holding the working set, useless prefetches evict live LRU data
        # (lines 0 and 2 ping-pong once prefetches of 1 and 3 join).
        c = cfg(size=64, line=32, assoc=2)
        addrs = np.array([0, 64, 0, 64, 0, 64], dtype=np.int64)
        res = simulate_prefetch(c, addrs)
        plain = int(simulate_cache(c, addrs).sum())
        assert plain == 2
        assert res.demand_misses == 6

    def test_demand_counts_bounded_by_plain_cache(self):
        rng = np.random.default_rng(7)
        # streaming-with-reuse mixture
        addrs = np.concatenate(
            [np.arange(0, 2048, 8), np.arange(0, 2048, 8)]
        ).astype(np.int64)
        res = simulate_prefetch(cfg(), addrs)
        plain = int(simulate_cache(cfg(), addrs).sum())
        assert res.demand_misses <= plain

    def test_untiled_column_walk_benefits_more_than_tiled(self):
        """Prefetching narrows but does not close the tiling gap."""
        from repro.exec.compiled import CompiledProgram
        from repro.kernels import cholesky
        from repro.machine.configs import octane2_scaled
        from repro.machine.layout import layout_for_run

        params = {"N": 96}
        inputs = cholesky.make_inputs(params)
        machine = octane2_scaled()
        results = {}
        for label, prog in (("seq", cholesky.sequential()), ("tiled", cholesky.tiled(11))):
            cp = CompiledProgram(prog, trace=True)
            run = cp.run(params, inputs)
            layout = layout_for_run(run, prog, params)
            aid, lin, _ = run.trace.memory_events()
            addrs = layout.addresses(aid, lin, {v: k for k, v in run.array_ids.items()})
            plain = int(simulate_cache(machine.l2, addrs).sum())
            pf = simulate_prefetch(machine.l2, addrs)
            results[label] = (plain, pf.demand_misses)
        # prefetching helps the sequential column walks substantially...
        seq_plain, seq_pf = results["seq"]
        assert seq_pf < seq_plain * 0.75
        # ...but the tiled code still misses less in absolute terms.
        assert results["tiled"][1] < seq_pf
