"""Cross-check the production cache simulator against an oblivious
reference implementation on random traces and geometries."""

import numpy as np
from hypothesis import given, strategies as st

from repro.machine.cache import CacheConfig, simulate_cache


def reference_lru(config: CacheConfig, addresses) -> list[bool]:
    """Deliberately naive set-associative LRU: per-set list of (tag, last
    used timestamp), linear scans, no move-to-front tricks."""
    nsets = config.num_sets
    sets: list[list[list]] = [[] for _ in range(nsets)]
    out = []
    for time, addr in enumerate(addresses):
        line = int(addr) >> config.line_shift
        s = sets[line % nsets]
        found = None
        for entry in s:
            if entry[0] == line:
                found = entry
                break
        if found is not None:
            found[1] = time
            out.append(False)
            continue
        out.append(True)
        if len(s) >= config.assoc:
            victim = min(s, key=lambda e: e[1])
            s.remove(victim)
        s.append([line, time])
    return out


@st.composite
def geometry(draw):
    line = draw(st.sampled_from([8, 16, 32]))
    assoc = draw(st.sampled_from([1, 2, 4]))
    nsets = draw(st.sampled_from([1, 2, 4, 8]))
    return CacheConfig("L", line * assoc * nsets, line, assoc)


@given(
    geometry(),
    st.lists(st.integers(0, 255), min_size=1, max_size=300),
)
def test_simulator_matches_reference(config, track):
    addrs = np.array(track, dtype=np.int64) * 8
    fast = simulate_cache(config, addrs).tolist()
    slow = reference_lru(config, addrs)
    assert fast == slow


@given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
def test_writeback_misses_match_reference(track):
    from repro.machine.writeback import simulate_writeback

    config = CacheConfig("L", 256, 16, 2)
    addrs = np.array(track, dtype=np.int64) * 8
    writes = np.zeros(len(addrs))
    wb = simulate_writeback(config, addrs, writes)
    slow = reference_lru(config, addrs)
    assert wb.misses.tolist() == slow
