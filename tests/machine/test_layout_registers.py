"""Unit tests for memory layout and the register-file load filter."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.layout import MemoryLayout
from repro.machine.registers import filter_loads


class TestLayout:
    def test_alignment(self):
        layout = MemoryLayout.build({"A": 10, "B": 3}, align=128)
        assert layout.bases["A"] == 0
        assert layout.bases["B"] == 128  # 80 bytes rounded up

    def test_address_of(self):
        layout = MemoryLayout.build({"A": 10})
        assert layout.address_of("A", 2) == 16

    def test_bounds_checked(self):
        layout = MemoryLayout.build({"A": 4})
        with pytest.raises(MachineError):
            layout.address_of("A", 4)

    def test_vectorised_addresses(self):
        layout = MemoryLayout.build({"A": 8, "B": 8}, align=64)
        aid = np.array([0, 1, 0])
        lin = np.array([0, 0, 3])
        out = layout.addresses(aid, lin, {0: "A", 1: "B"})
        assert list(out) == [0, 64, 24]

    def test_bad_alignment(self):
        with pytest.raises(MachineError):
            MemoryLayout.build({"A": 4}, align=3)

    def test_nonpositive_size(self):
        with pytest.raises(MachineError):
            MemoryLayout.build({"A": 0})


class TestRegisterFilter:
    def test_repeat_load_elided(self):
        addrs = np.array([0, 0, 0], dtype=np.int64)
        w = np.array([0, 0, 0])
        res = filter_loads(addrs, w, capacity=4)
        assert res.load_hits == 2
        assert list(res.to_memory) == [True, False, False]

    def test_store_always_to_memory_but_makes_resident(self):
        addrs = np.array([0, 0], dtype=np.int64)
        w = np.array([1, 0])
        res = filter_loads(addrs, w, capacity=4)
        assert list(res.to_memory) == [True, False]  # forwarding

    def test_capacity_eviction_lru(self):
        # touch 0,8,16 with capacity 2: 0 evicted, reload misses.
        addrs = np.array([0, 8, 16, 0], dtype=np.int64)
        w = np.zeros(4)
        res = filter_loads(addrs, w, capacity=2)
        assert list(res.to_memory) == [True, True, True, True]

    def test_zero_capacity_disables(self):
        addrs = np.array([0, 0], dtype=np.int64)
        res = filter_loads(addrs, np.zeros(2), capacity=0)
        assert res.load_hits == 0

    def test_element_granularity(self):
        # different elements of the same cache line are distinct registers
        addrs = np.array([0, 4], dtype=np.int64)  # same 8-byte element!
        res = filter_loads(addrs, np.zeros(2), capacity=4)
        assert res.load_hits == 1  # 4 >> 3 == 0 too

    def test_negative_capacity(self):
        with pytest.raises(MachineError):
            filter_loads(np.zeros(1, dtype=np.int64), np.zeros(1), capacity=-1)
