"""measure() with a custom branch predictor (the predictor hook)."""

from repro.exec.compiled import CompiledProgram
from repro.ir.builder import assign, cle, idx, if_, loop, sym
from repro.ir.program import ArrayDecl, Program
from repro.machine import StaticTakenPredictor, measure, octane2_scaled

N, i = sym("N"), sym("i")


def biased_program() -> Program:
    body = loop(
        "i", 1, N, [if_(cle(i, 2), assign(idx("A", i), 1.0))]
    )
    return Program("b", ("N",), (ArrayDecl("A", (N,)),), (), (body,))


def test_predictor_hook_changes_mispredictions():
    p = biased_program()
    cp = CompiledProgram(p, trace=True)
    run = cp.run({"N": 20})
    params = {"N": 20}
    machine = octane2_scaled()
    default = measure(run, p, params, machine)
    static = measure(run, p, params, machine, predictor=StaticTakenPredictor())
    # 18 of 20 outcomes are not-taken: always-taken mispredicts them all,
    # the 2-bit counter learns after a short training phase.
    assert static.branches_mispredicted == 18
    assert default.branches_mispredicted < 6
    assert static.branches_resolved == default.branches_resolved == 20
