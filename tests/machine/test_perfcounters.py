"""Integration tests for the end-to-end measure() path."""

import pytest

from repro.errors import MachineError
from repro.exec.compiled import CompiledProgram, run_compiled
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program
from repro.machine.configs import octane2_scaled
from repro.machine.perfcounters import measure

N, i, j = sym("N"), sym("i"), sym("j")


def sweep_program() -> Program:
    body = loop(
        "j", 1, N, [loop("i", 1, N, [assign(idx("A", i, j), idx("A", i, j) + 1.0)])]
    )
    return Program("sweep", ("N",), (ArrayDecl("A", (N, N)),), (), (body,))


class TestMeasure:
    def test_needs_trace(self):
        out = run_compiled(sweep_program(), {"N": 8})
        with pytest.raises(MachineError):
            measure(out, sweep_program(), {"N": 8}, octane2_scaled())

    def test_column_major_sweep_is_cache_friendly(self):
        p = sweep_program()
        cp = CompiledProgram(p, trace=True)
        n = 32
        out = cp.run({"N": n})
        rep = measure(out, p, {"N": n}, octane2_scaled())
        # Column-major traversal with i innermost: 1 miss per 4-element line
        # (plus register effects on loads).
        lines = n * n / 4
        assert rep.l1_misses <= lines * 1.2
        assert rep.l2_misses <= rep.l1_misses

    def test_row_major_sweep_thrashes_more(self):
        bad = Program(
            "bad",
            ("N",),
            (ArrayDecl("A", (N, N)),),
            (),
            (
                loop(
                    "i",
                    1,
                    N,
                    [loop("j", 1, N, [assign(idx("A", i, j), idx("A", i, j) + 1.0)])],
                ),
            ),
        )
        n = 64
        good_rep = _measure(sweep_program(), {"N": n})
        bad_rep = _measure(bad, {"N": n})
        assert bad_rep.l1_misses > good_rep.l1_misses * 2

    def test_report_dict_schema(self):
        rep = _measure(sweep_program(), {"N": 8})
        d = rep.as_dict()
        assert {"l1_misses", "l2_misses", "graduated_instructions",
                "total_cycles", "register_load_hits"} <= set(d)

    def test_total_cycles_consistent(self):
        rep = _measure(sweep_program(), {"N": 16})
        costs = octane2_scaled().costs
        expected = (
            rep.graduated_instructions * costs.instruction_cycles
            + costs.memory_stall_cycles(rep.l1_misses, rep.l2_misses)
            + rep.branches_mispredicted * costs.branch_mispredict_cycles
        )
        assert rep.total_cycles == pytest.approx(expected)


def _measure(program, params):
    cp = CompiledProgram(program, trace=True)
    out = cp.run(params)
    return measure(out, program, params, octane2_scaled())
