"""Unit and property tests for the set-associative LRU cache model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineError
from repro.machine.cache import (
    CacheConfig,
    misses_fully_associative,
    simulate_cache,
    stack_distances,
)


def cfg(size=256, line=32, assoc=2):
    return CacheConfig("L", size, line, assoc)


class TestConfig:
    def test_geometry(self):
        c = cfg(1024, 32, 2)
        assert c.num_sets == 16 and c.line_shift == 5

    def test_non_power_of_two_line(self):
        with pytest.raises(MachineError):
            cfg(line=48)

    def test_indivisible_size(self):
        with pytest.raises(MachineError):
            CacheConfig("L", 100, 32, 2)

    def test_positive_fields(self):
        with pytest.raises(MachineError):
            CacheConfig("L", 0, 32, 2)


class TestSimulate:
    def test_cold_misses(self):
        addrs = np.array([0, 32, 64], dtype=np.int64)
        misses = simulate_cache(cfg(), addrs)
        assert misses.all()

    def test_hit_on_repeat(self):
        addrs = np.array([0, 0, 8, 31], dtype=np.int64)
        misses = simulate_cache(cfg(), addrs)
        assert list(misses) == [True, False, False, False]

    def test_lru_eviction_within_set(self):
        c = cfg(size=128, line=32, assoc=2)  # 2 sets
        s = c.num_sets * c.line_bytes  # stride mapping to same set
        a, b, d = 0, s, 2 * s
        addrs = np.array([a, b, d, a], dtype=np.int64)
        misses = simulate_cache(c, addrs)
        # a,b fill the set; d evicts a (LRU); the re-access to a misses.
        assert list(misses) == [True, True, True, True]

    def test_mru_protected(self):
        c = cfg(size=128, line=32, assoc=2)
        s = c.num_sets * c.line_bytes
        addrs = np.array([0, s, 0, 2 * s, 0], dtype=np.int64)
        misses = simulate_cache(c, addrs)
        # 0 stays MRU; 2s evicts s, not 0.
        assert list(misses) == [True, True, False, True, False]

    def test_empty_trace(self):
        assert len(simulate_cache(cfg(), np.empty(0, dtype=np.int64))) == 0

    def test_2d_rejected(self):
        with pytest.raises(MachineError):
            simulate_cache(cfg(), np.zeros((2, 2), dtype=np.int64))


class TestStackDistances:
    def test_cold_is_negative(self):
        d = stack_distances(np.array([0, 64, 128]), 5)
        assert list(d) == [-1, -1, -1]

    def test_distance_counts_distinct_lines(self):
        d = stack_distances(np.array([0, 64, 128, 0]), 5)
        assert d[3] == 2

    def test_fully_associative_from_distances(self):
        addrs = np.array([0, 64, 128, 0, 64], dtype=np.int64)
        assert misses_fully_associative(addrs, 5, capacity_lines=2) == 5 - 0  # all miss
        assert misses_fully_associative(addrs, 5, capacity_lines=3) == 3


@given(
    st.lists(st.integers(0, 60), min_size=1, max_size=120),
)
def test_lru_inclusion_property(track):
    """Mattson inclusion: bigger fully-associative LRU never misses more."""
    addrs = np.array(track, dtype=np.int64) * 8
    m_small = misses_fully_associative(addrs, 3, capacity_lines=2)
    m_big = misses_fully_associative(addrs, 3, capacity_lines=4)
    assert m_big <= m_small


@given(st.lists(st.integers(0, 100), min_size=1, max_size=150))
def test_setassoc_agrees_with_stack_distance_when_one_set(track):
    """A single-set cache of associativity A == fully-associative LRU of A."""
    addrs = np.array(track, dtype=np.int64) * 8
    config = CacheConfig("L", 4 * 8, 8, 4)  # one set, 4 ways, line = element
    assert config.num_sets == 1
    misses = int(simulate_cache(config, addrs).sum())
    assert misses == misses_fully_associative(addrs, 3, capacity_lines=4)


@given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
def test_determinism(track):
    addrs = np.array(track, dtype=np.int64) * 4
    c = cfg()
    assert (simulate_cache(c, addrs) == simulate_cache(c, addrs)).all()
