"""Streaming vs materialized equivalence: the refactor's core guarantee.

The streaming trace pipeline must be *bit-identical* to the materialized
path — same miss counts, same counters, same branch stats, on any chunking.
These tests pin that down three ways:

- randomized traces through every sink, chunked at random boundaries,
  against the original whole-trace implementations;
- every registered kernel recipe at small N, end-to-end through
  ``measure`` vs ``measure_streaming``;
- Mattson-inclusion cross-check: the vectorized ``simulate_cache`` at
  full associativity must agree with ``stack_distances``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.compiled import CompiledProgram
from repro.experiments.runner import build_program
from repro.kernels.registry import ALL_KERNELS, get_kernel, variants_for
from repro.machine.branch import (
    StaticTakenPredictor,
    TwoBitPredictor,
    sink_for_predictor,
)
from repro.machine.cache import (
    CacheConfig,
    CacheSink,
    simulate_cache,
    simulate_cache_reference,
    stack_distances,
    stack_distances_reference,
)
from repro.machine.configs import octane2_scaled
from repro.machine.hierarchy import HierarchySink, simulate_hierarchy
from repro.machine.perfcounters import measure, measure_streaming
from repro.machine.registers import RegisterFilterSink, filter_loads
from repro.machine.sinks import MaterializeSink
from repro.machine.tlb import TLBConfig, TLBSink, simulate_tlb
from repro.machine.writeback import WritebackSink, simulate_writeback


def random_chunks(rng, array, *extra):
    """Split aligned arrays at identical random boundaries."""
    n = len(array)
    cuts = np.sort(rng.integers(0, n + 1, size=rng.integers(0, 6)))
    bounds = [0, *cuts.tolist(), n]
    for lo, hi in zip(bounds, bounds[1:]):
        yield (array[lo:hi], *(e[lo:hi] for e in extra))


class TestCacheSinkAgainstOracle:
    @pytest.mark.parametrize("assoc", [1, 2, 4])
    @pytest.mark.parametrize("nsets", [1, 4, 32, 100])
    def test_randomized_traces(self, assoc, nsets):
        rng = np.random.default_rng(nsets * 10 + assoc)
        cfg = CacheConfig("t", nsets * assoc * 32, 32, assoc)
        for _ in range(15):
            n = int(rng.integers(1, 600))
            addrs = rng.integers(0, 64 * nsets * 32, size=n, dtype=np.int64)
            ref = simulate_cache_reference(cfg, addrs)
            assert np.array_equal(simulate_cache(cfg, addrs), ref)
            sink = CacheSink(cfg, keep_mask=True)
            for (chunk,) in random_chunks(rng, addrs):
                if len(chunk):
                    sink.feed(chunk)
            res = sink.finish()
            assert res.misses == int(ref.sum())
            assert np.array_equal(res.miss_mask, ref)

    def test_forced_rounds_and_python_paths(self):
        # assoc > 2 dispatches by set concentration: many sets -> rounds,
        # few sets -> python walk. Exercise both against the oracle, with
        # state carried across chunks.
        rng = np.random.default_rng(3)
        cfg = CacheConfig("t", 16 * 4 * 32, 32, 4)
        spread = rng.integers(0, 16 * 64 * 32, size=1200, dtype=np.int64)
        narrow = (rng.integers(0, 8, size=1200, dtype=np.int64) * 16 * 32)
        for addrs in (spread, narrow, np.concatenate([spread, narrow])):
            ref = simulate_cache_reference(cfg, addrs)
            sink = CacheSink(cfg, keep_mask=True)
            half = len(addrs) // 2
            sink.feed(addrs[:half])
            sink.feed(addrs[half:])
            assert np.array_equal(sink.finish().miss_mask, ref)


class TestMattsonInclusion:
    def test_fully_associative_matches_stack_distances(self):
        # A fully-associative LRU cache of capacity C hits exactly the
        # accesses with stack distance 0 <= d < C.
        rng = np.random.default_rng(11)
        addrs = rng.integers(0, 1 << 12, size=800, dtype=np.int64)
        line_shift = 5
        d = stack_distances(addrs, line_shift)
        for capacity in (1, 2, 4, 16):
            cfg = CacheConfig("fa", capacity * 32, 32, capacity)
            miss = simulate_cache(cfg, addrs)
            expected = (d < 0) | (d >= capacity)
            assert np.array_equal(miss, expected), capacity

    def test_fenwick_matches_reference(self):
        rng = np.random.default_rng(12)
        for _ in range(20):
            n = int(rng.integers(1, 400))
            addrs = rng.integers(0, 1 << 13, size=n, dtype=np.int64)
            assert np.array_equal(
                stack_distances(addrs, 5), stack_distances_reference(addrs, 5)
            )


class TestSinkChunkingInvariance:
    def setup_method(self):
        self.rng = np.random.default_rng(21)
        n = 700
        self.addrs = self.rng.integers(0, 1 << 14, size=n, dtype=np.int64)
        self.writes = self.rng.integers(0, 2, size=n, dtype=np.int64)

    def test_hierarchy(self):
        l1 = CacheConfig("L1", 512, 32, 2)
        l2 = CacheConfig("L2", 4096, 64, 2)
        whole = simulate_hierarchy(l1, l2, self.addrs, keep_mask=True)
        sink = HierarchySink(l1, l2, keep_mask=True)
        for (chunk,) in random_chunks(self.rng, self.addrs):
            sink.feed(chunk)
        res = sink.finish()
        assert (res.l1_misses, res.l2_misses) == (whole.l1_misses, whole.l2_misses)
        assert np.array_equal(res.l1_miss_mask, whole.l1_miss_mask)

    def test_hierarchy_mask_opt_in(self):
        l1 = CacheConfig("L1", 512, 32, 2)
        l2 = CacheConfig("L2", 4096, 64, 2)
        assert simulate_hierarchy(l1, l2, self.addrs).l1_miss_mask is None
        assert (
            simulate_hierarchy(l1, l2, self.addrs, keep_mask=True).l1_miss_mask
            is not None
        )

    def test_tlb(self):
        cfg = TLBConfig(entries=8, page_bytes=4096)
        sink = TLBSink(cfg)
        for (chunk,) in random_chunks(self.rng, self.addrs):
            sink.feed(chunk)
        assert sink.finish() == simulate_tlb(cfg, self.addrs)

    def test_writeback(self):
        cfg = CacheConfig("L2", 4096, 64, 2)
        whole = simulate_writeback(cfg, self.addrs, self.writes)
        sink = WritebackSink(cfg, keep_mask=True)
        for chunk, w in random_chunks(self.rng, self.addrs, self.writes):
            sink.feed((chunk, w))
        res = sink.finish()
        assert res.miss_count == whole.miss_count
        assert res.writebacks == whole.writebacks
        assert res.dirty_at_end == whole.dirty_at_end
        assert np.array_equal(res.misses, whole.misses)

    def test_register_filter(self):
        whole = filter_loads(self.addrs, self.writes, capacity=8)
        sink = RegisterFilterSink(capacity=8)
        masks = [
            sink.feed((chunk, w))
            for chunk, w in random_chunks(self.rng, self.addrs, self.writes)
        ]
        assert np.array_equal(np.concatenate(masks), whole.to_memory)
        assert sink.finish().load_hits == whole.load_hits

    @pytest.mark.parametrize("predictor_cls", [TwoBitPredictor, StaticTakenPredictor])
    def test_branch_sinks(self, predictor_cls):
        sites = self.rng.integers(0, 5, size=400, dtype=np.int64)
        taken = self.rng.integers(0, 2, size=400, dtype=np.int64)
        codes = sites * 2 + taken
        whole = predictor_cls().simulate(sites, taken)
        sink = sink_for_predictor(predictor_cls())
        for (chunk,) in random_chunks(self.rng, codes):
            sink.feed(chunk)
        stats = sink.finish()
        assert (stats.resolved, stats.mispredicted) == (
            whole.resolved,
            whole.mispredicted,
        )

    def test_custom_predictor_falls_back_to_materializing(self):
        class Inverted:
            def simulate(self, sites, taken):
                from repro.machine.branch import BranchStats

                return BranchStats(len(sites), int((np.asarray(taken) == 1).sum()))

        codes = np.array([0, 1, 2, 3, 1], dtype=np.int64)
        sink = sink_for_predictor(Inverted())
        sink.feed(codes[:2])
        sink.feed(codes[2:])
        assert sink.finish().mispredicted == 3


def _measure_both(kernel, variant, n=8):
    tile = 4 if variant in ("tiled", "tiled_sunk") else None
    program, _, _ = build_program(kernel, variant, tile=tile)
    mod = get_kernel(kernel)
    params = {"N": n}
    if "M" in mod.PARAMS:
        params["M"] = 4
    inputs = mod.make_inputs(params, np.random.default_rng(0))
    cp = CompiledProgram(program, trace=True)
    machine = octane2_scaled()
    materialized = measure(cp.run(params, inputs), program, params, machine)
    # A deliberately odd chunk size so runs straddle chunk boundaries.
    _, streamed = measure_streaming(
        cp, params, machine, inputs, chunk_events=97
    )
    return materialized, streamed


@pytest.mark.parametrize(
    "kernel,variant",
    [
        (k, v)
        for k in ALL_KERNELS
        for v in variants_for(k)
        # QR's *unfixed* fused program is broken by design (the paper's
        # fusion-preventing dependence) and fails at runtime.
        if (k, v) != ("qr", "fused")
    ],
)
def test_every_recipe_streams_bit_identical(kernel, variant):
    materialized, streamed = _measure_both(kernel, variant)
    assert materialized.as_dict() == streamed.as_dict()


def test_streaming_executor_reproduces_trace():
    # The chunked executor must emit the exact same encoded event stream
    # as the materializing run.
    program, _, _ = build_program("cholesky", "seq")
    mod = get_kernel("cholesky")
    params = {"N": 10}
    inputs = mod.make_inputs(params, np.random.default_rng(5))
    cp = CompiledProgram(program, trace=True)
    run = cp.run(params, inputs)
    mem_sink, bra_sink = MaterializeSink(), MaterializeSink()
    streamed = cp.run_streaming(
        params, inputs, memory_sink=mem_sink, branch_sink=bra_sink, chunk_events=64
    )
    assert streamed.trace is None
    assert np.array_equal(mem_sink.finish(), run.trace.memory)
    assert np.array_equal(bra_sink.finish(), run.trace.branches)
    assert streamed.counters.as_dict() == run.counters.as_dict()
    for name in run.arrays:
        assert np.array_equal(streamed.arrays[name], run.arrays[name])
