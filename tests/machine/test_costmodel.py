"""Unit tests for the perfex-style cost model and configs."""

import pytest

from repro.exec.events import Counters
from repro.machine.configs import MachineConfig, octane2, octane2_scaled
from repro.machine.costmodel import CostModel


class TestCostModel:
    def test_paper_constants(self):
        m = CostModel()
        assert m.l1_miss_cycles == 9.92
        assert m.l2_miss_cycles == 162.55
        assert m.branch_mispredict_cycles == 5.0

    def test_graduated_instructions(self):
        c = Counters(loads=10, stores=5, flops=7, intops=20, branches=3, loop_iters=4)
        assert CostModel().graduated_instructions(c) == 49

    def test_memory_stall_split(self):
        m = CostModel()
        # 10 L1 misses of which 4 also miss L2
        stall = m.memory_stall_cycles(10, 4)
        assert stall == pytest.approx(6 * 9.92 + 4 * 162.55)

    def test_fig6_convention_totals(self):
        m = CostModel()
        assert m.l1_miss_cycle_total(100) == pytest.approx(992.0)
        assert m.l2_miss_cycle_total(10) == pytest.approx(1625.5)

    def test_total_cycles_composition(self):
        m = CostModel(instruction_cycles=1.0)
        c = Counters(loads=1, stores=1, flops=1, intops=1, branches=1, loop_iters=1)
        total = m.total_cycles(c, l1_misses=1, l2_misses=0, mispredicted=1)
        assert total == pytest.approx(6 + 9.92 + 5)

    def test_superscalar_default(self):
        assert CostModel().instruction_cycles == 0.25


class TestConfigs:
    def test_octane2_geometry(self):
        m = octane2()
        assert m.l1.size_bytes == 32 * 1024 and m.l1.line_bytes == 32
        assert m.l2.size_bytes == 2 * 1024 * 1024 and m.l2.line_bytes == 128
        assert m.l1.assoc == m.l2.assoc == 2

    def test_l2_fill_order_landmarks(self):
        assert octane2().l2_fill_order() == 512
        assert octane2_scaled().l2_fill_order() == 64

    def test_scaled_ratios(self):
        s = octane2_scaled()
        assert s.l2.size_bytes // s.l1.size_bytes == 16

    def test_default_machine_env(self, monkeypatch):
        from repro.machine.configs import default_machine

        monkeypatch.delenv("REPRO_FULL_MACHINE", raising=False)
        assert default_machine().name == "octane2-scaled"
        monkeypatch.setenv("REPRO_FULL_MACHINE", "1")
        assert default_machine().name == "octane2"

    def test_registers_default(self):
        assert octane2().registers == 32
