"""Content fingerprints: stability, sensitivity, and the runner's
fingerprint-keyed disk cache."""

import dataclasses

from repro.experiments import clear_caches, measure_variant
from repro.experiments.sweep import SweepConfig
from repro.kernels.recipes import build_variant, get_recipe
from repro.machine.configs import octane2_scaled
from repro.pipeline import (
    machine_fingerprint,
    measurement_fingerprint,
    program_fingerprint,
)


def test_recipe_fingerprint_is_stable():
    a = get_recipe("lu", "tiled").fingerprint()
    b = get_recipe("lu", "tiled").fingerprint()
    assert a == b
    assert get_recipe("lu", "tiled_sunk").fingerprint() != a


def test_program_fingerprint_tracks_tile():
    assert program_fingerprint(
        build_variant("cholesky", "tiled", tile=4)
    ) != program_fingerprint(build_variant("cholesky", "tiled", tile=8))


def test_machine_fingerprint_tracks_costs():
    machine = octane2_scaled()
    bumped = dataclasses.replace(
        machine,
        costs=dataclasses.replace(
            machine.costs, l2_miss_cycles=machine.costs.l2_miss_cycles + 1
        ),
    )
    assert machine_fingerprint(machine) != machine_fingerprint(bumped)
    # ... and the full measurement key follows
    recipe = get_recipe("cholesky", "seq")
    program = build_variant("cholesky", "seq")
    run = {"params": {"N": 12}, "tile": None, "seed": 0}
    assert measurement_fingerprint(
        recipe, program, machine, run
    ) != measurement_fingerprint(recipe, program, bumped, run)


def test_disk_cache_roundtrip_and_invalidation(tmp_path, monkeypatch):
    """A second identical run reads the fingerprint-keyed file; a cost
    model change auto-invalidates it (different filename, no stale read)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    config = SweepConfig(
        machine=octane2_scaled(), sizes=(12,), jacobi_m=2, tile_policy="pdat"
    )
    first = measure_variant("cholesky", "seq", 12, config)
    files = list(tmp_path.glob("cholesky-seq-N12-*.json"))
    assert len(files) == 1

    clear_caches()
    again = measure_variant("cholesky", "seq", 12, config)
    assert again.report == first.report

    clear_caches()
    machine = config.machine
    bumped = dataclasses.replace(
        machine,
        costs=dataclasses.replace(
            machine.costs, l2_miss_cycles=machine.costs.l2_miss_cycles * 2
        ),
    )
    changed = measure_variant(
        "cholesky", "seq", 12,
        dataclasses.replace(config, machine=bumped),
    )
    # new key on disk, and the numbers actually moved
    assert len(list(tmp_path.glob("cholesky-seq-N12-*.json"))) == 2
    assert changed.report.total_cycles != first.report.total_cycles


def test_measurement_carries_pipeline_report(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    clear_caches()
    config = SweepConfig(
        machine=octane2_scaled(), sizes=(12,), jacobi_m=2, tile_policy="pdat"
    )
    m = measure_variant("lu", "tiled", 12, config)
    assert m.pipeline is not None
    assert [r.name for r in m.pipeline.records] == [
        "Source", "Fuse", "FixDeps", "ExpandScalar", "Tile", "UndoSinking"
    ]
