"""The recipe registry: coverage, engine agreement, golden names."""

import pytest

from repro.errors import ExecutionError, ReproError
from repro.kernels import recipes
from repro.kernels.registry import ALL_KERNELS, get_kernel, variants_for
from repro.pipeline import (
    PassContext,
    PassManager,
    crosscheck_engines,
    program_fingerprint,
)

ALL_PAIRS = [
    (kernel, variant)
    for kernel in ALL_KERNELS
    for variant in variants_for(kernel)
]

SMALL_N = {"N": 9, "M": 3}


def _params(kernel):
    return {p: SMALL_N[p] for p in get_kernel(kernel).PARAMS}


def test_every_kernel_has_the_standard_grid():
    for kernel in ("lu", "qr", "cholesky", "jacobi"):
        assert variants_for(kernel) == (
            "seq", "fused", "fixed", "tiled", "tiled_sunk"
        )
    # the extension stencil has no fusion stage
    assert variants_for("gauss_seidel") == ("seq", "tiled", "tiled_sunk")


@pytest.mark.parametrize("kernel,variant", ALL_PAIRS)
def test_engines_agree_on_every_recipe(kernel, variant):
    """Tier-1 acceptance: for every registered (kernel x recipe) the
    compiled engine and the interpreter agree on outputs *and* event
    counts at small N.

    The one exception is QR's *unfixed* fused program: broken by design
    (the paper's fusion-preventing dependences), it divides by a
    not-yet-computed pivot and cannot execute at all.
    """
    program = recipes.build_variant(kernel, variant, tile=3)
    params = _params(kernel)
    inputs = get_kernel(kernel).make_inputs(params)
    try:
        crosscheck_engines(program, params, inputs)
    except ExecutionError:
        assert (kernel, variant) == ("qr", "fused")


@pytest.mark.parametrize("kernel,variant", ALL_PAIRS)
def test_verified_build_passes(kernel, variant):
    """PassManager(verify=True) accepts every registered recipe: every
    boundary is verified, except untrusted (semantics-broken) boundaries
    whose program cannot execute — those are recorded as skipped."""
    mgr = PassManager(verify=True)
    ctx = PassContext(kernel=get_kernel(kernel), tile=3)
    _, report = mgr.build(recipes.get_recipe(kernel, variant), ctx)
    for record in report.records:
        assert record.verified or "verify skipped" in record.detail
    if (kernel, variant) != ("qr", "fused"):
        assert report.records[-1].verified
    assert report.total_seconds > 0


GOLDEN_NAMES = {
    ("lu", "seq"): "lu_seq",
    ("lu", "fused"): "lu_fusable_fused",
    ("lu", "fixed"): "lu_fixed",
    ("lu", "tiled"): "lu_tiled",
    ("lu", "tiled_sunk"): "lu_tiled",
    ("qr", "fixed"): "qr_fixed",
    ("qr", "tiled"): "qr_tiled",
    ("cholesky", "fixed"): "cholesky_fixed",
    ("cholesky", "tiled"): "cholesky_tiled",
    ("jacobi", "fused"): "jacobi_seq_fused",
    ("jacobi", "fixed"): "jacobi_fixed",
    ("jacobi", "tiled"): "jacobi_tiled",
    ("gauss_seidel", "tiled"): "gauss_seidel_tiled",
}


@pytest.mark.parametrize("pair,name", sorted(GOLDEN_NAMES.items()))
def test_program_names_preserved(pair, name):
    """PerfReports key on program names; recipes must reproduce them."""
    assert recipes.build_variant(*pair).name == name


def test_builders_delegate_to_recipes():
    """The kernel modules' builder functions and the registry produce
    byte-identical programs (one code path)."""
    lu = get_kernel("lu")
    assert program_fingerprint(lu.tiled(5)) == program_fingerprint(
        recipes.build_variant("lu", "tiled", tile=5)
    )
    jacobi = get_kernel("jacobi")
    assert program_fingerprint(
        jacobi.tiled(4, time_tile=2)
    ) == program_fingerprint(
        recipes.build_variant("jacobi", "tiled", tile=4, time_tile=2)
    )


def test_unknown_kernel_and_variant():
    with pytest.raises(ReproError, match="unknown kernel"):
        recipes.get_recipe("spqr", "seq")
    with pytest.raises(ReproError, match="unknown variant"):
        recipes.get_recipe("lu", "bogus")


def test_fused_nest_helper():
    from repro.trans.model import FusedNest

    assert isinstance(recipes.build_fused_nest("lu"), FusedNest)
    with pytest.raises(ReproError):
        recipes.build_fused_nest("gauss_seidel")  # no fused variant
