"""The data-driven kernel table behind the registry."""

import pytest

from repro.kernels.registry import (
    ALL_KERNELS,
    EXTENSION_KERNELS,
    KERNELS,
    get_kernel,
)


def test_tuples_derive_from_one_table():
    assert KERNELS == ("lu", "qr", "cholesky", "jacobi")
    assert EXTENSION_KERNELS == ("gauss_seidel",)
    assert ALL_KERNELS == KERNELS + EXTENSION_KERNELS


def test_docstring_names_every_kernel():
    doc = get_kernel.__doc__
    for name in ALL_KERNELS:
        assert name in doc


def test_error_message_lists_every_kernel():
    with pytest.raises(KeyError) as err:
        get_kernel("spqr")
    for name in ALL_KERNELS:
        assert name in str(err.value)


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_every_entry_loads_and_matches(name):
    mod = get_kernel(name)
    assert mod.NAME == name
    for attr in ("sequential", "fusable", "make_inputs", "reference", "PARAMS"):
        assert hasattr(mod, attr)
