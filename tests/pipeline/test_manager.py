"""PassManager behaviour: evidence records, boundary verification,
the break/restore state machine, and the miscompile negative test."""

import pytest

from repro.errors import TransformError, ValidationError
from repro.kernels.recipes import get_recipe
from repro.kernels.registry import get_kernel
from repro.pipeline import (
    BREAK,
    PRESERVE,
    Pass,
    PassContext,
    PassManager,
    VariantRecipe,
    ir_stats,
)


class DropLastStatement(Pass):
    """Intentionally miscompiling pass: claims PRESERVE, changes behaviour."""

    semantics = PRESERVE

    def describe(self):
        return {"pass": self.name}

    def apply(self, value, ctx):
        return value.with_body(value.body[:-1])


def _sabotaged(kernel, variant):
    recipe = get_recipe(kernel, variant)
    return VariantRecipe(
        kernel, f"{variant}+sabotage", (*recipe.passes, DropLastStatement())
    )


def test_verify_catches_miscompiled_pass():
    """Acceptance: an intentionally-miscompiled pass is caught at its own
    boundary."""
    recipe = _sabotaged("cholesky", "seq")
    ctx = PassContext(kernel=get_kernel("cholesky"))
    with pytest.raises(ValidationError):
        PassManager(verify=True).build(recipe, ctx)
    # without verification the broken program builds silently
    program, _ = PassManager().build(recipe, ctx)
    assert program.name == "cholesky_seq"


def test_break_boundary_skips_equivalence_but_still_crosschecks():
    """The fused (semantics-broken) boundary must not be compared against
    the source program — fusion breaks semantics on purpose — but both
    engines must still agree on it."""
    recipe = get_recipe("jacobi", "fixed")
    ctx = PassContext(kernel=get_kernel("jacobi"))
    _, report = PassManager(verify=True).build(recipe, ctx)
    names = [r.name for r in report.records]
    assert names == ["Source", "Fuse", "FixDeps", "Scalarize"]
    assert all(r.verified for r in report.records)


def test_report_records_timing_and_sizes():
    recipe = get_recipe("lu", "tiled")
    ctx = PassContext(kernel=get_kernel("lu"), tile=3)
    program, report = PassManager().build(recipe, ctx)
    assert len(report.records) == len(recipe.passes)
    assert all(r.seconds >= 0 for r in report.records)
    assert report.records[-1].after == ir_stats(program)
    rows = report.as_rows()
    assert rows[0]["recipe"] == "lu/tiled"
    assert {"pass", "seconds", "stmts_after"} <= set(rows[0])
    rendered = report.render()
    assert "lu/tiled" in rendered and "ms total" in rendered


def test_snapshots_capture_ir():
    recipe = get_recipe("cholesky", "seq")
    ctx = PassContext(kernel=get_kernel("cholesky"))
    _, report = PassManager(snapshots=True).build(recipe, ctx)
    assert report.records[0].snapshot and "do k" in report.records[0].snapshot


def test_fixdeps_detail_reports_collapses():
    recipe = get_recipe("lu", "fixed")
    ctx = PassContext(kernel=get_kernel("lu"))
    _, report = PassManager().build(recipe, ctx)
    fixdeps = next(r for r in report.records if r.name == "FixDeps")
    assert "collapsed" in fixdeps.detail


def test_empty_recipe_rejected():
    with pytest.raises(TransformError, match="no passes"):
        PassManager().run(VariantRecipe("lu", "empty", ()))


def test_verify_needs_instance():
    class MakeNothing(Pass):
        semantics = BREAK

        def apply(self, value, ctx):
            return get_kernel("cholesky").sequential()

    recipe = VariantRecipe("x", "y", (MakeNothing(),))
    with pytest.raises(TransformError, match="verify_params"):
        PassManager(verify=True).run(recipe, PassContext())
