"""The capped LRU memo and the runner's clear_caches()."""

import pytest

from repro.experiments import runner
from repro.utils.caching import LRUCache


def test_lru_evicts_least_recently_used():
    cache = LRUCache(maxsize=2)
    cache["a"] = 1
    cache["b"] = 2
    assert cache["a"] == 1  # refreshes "a"
    cache["c"] = 3  # evicts "b"
    assert "b" not in cache
    assert set(cache) == {"a", "c"}
    assert cache.evictions == 1


def test_lru_get_or_compute_counts_hits():
    cache = LRUCache(maxsize=4)
    calls = []

    def compute():
        calls.append(1)
        return 42

    assert cache.get_or_compute("k", compute) == 42
    assert cache.get_or_compute("k", compute) == 42
    assert len(calls) == 1
    assert (cache.hits, cache.misses) == (1, 1)


def test_lru_rejects_bad_maxsize():
    with pytest.raises(ValueError):
        LRUCache(maxsize=0)
    unbounded = LRUCache(maxsize=None)
    for i in range(1000):
        unbounded[i] = i
    assert len(unbounded) == 1000


def test_runner_memos_are_capped_and_clearable(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    runner.clear_caches()
    assert all(
        cache.maxsize is not None
        for cache in (runner._memo, runner._built, runner._compiled)
    )
    runner.build_program("cholesky", "seq")
    assert len(runner._built) == 1
    runner.clear_caches()
    assert len(runner._built) == 0
