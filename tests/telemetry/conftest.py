"""Telemetry tests toggle the module-level facade; leave it pristine."""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()
