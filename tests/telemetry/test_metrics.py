"""Metric merge algebra: associative, commutative, lossless round-trips."""

from __future__ import annotations

import math

from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    _bucket,
    merge_snapshots,
)


def _snap(counters=(), gauges=(), observations=()):
    reg = MetricsRegistry()
    for name, n in counters:
        reg.counter_add(name, n)
    for name, v in gauges:
        reg.gauge_set(name, v)
    for name, v in observations:
        reg.observe(name, v)
    return reg.snapshot()


A = _snap(
    counters=[("hits", 3), ("misses", 1)],
    gauges=[("peak", 10.0)],
    observations=[("lat", 0.5), ("lat", 2.0)],
)
B = _snap(
    counters=[("hits", 4)],
    gauges=[("peak", 7.0), ("depth", 2.0)],
    observations=[("lat", 0.0), ("other", 1.5)],
)
C = _snap(
    counters=[("misses", 2), ("corrupt", 1)],
    observations=[("lat", 8.0)],
)


class TestMergeAlgebra:
    def test_associative(self):
        assert merge_snapshots(merge_snapshots(A, B), C) == merge_snapshots(
            A, merge_snapshots(B, C)
        )

    def test_commutative(self):
        assert merge_snapshots(A, B) == merge_snapshots(B, A)

    def test_merge_rules(self):
        m = merge_snapshots(A, B)
        assert m["counters"]["hits"] == 7  # counters add
        assert m["gauges"]["peak"] == 10.0  # gauges high-water mark
        lat = m["histograms"]["lat"]
        assert lat["count"] == 3
        assert lat["total"] == 2.5
        assert lat["min"] == 0.0 and lat["max"] == 2.0

    def test_identity(self):
        empty = MetricsRegistry().snapshot()
        assert merge_snapshots(A, empty) == A


class TestHistogram:
    def test_buckets_are_power_of_two(self):
        assert _bucket(1.0) == 0
        assert _bucket(1.9) == 0
        assert _bucket(2.0) == 1
        assert _bucket(0.5) == -1
        assert _bucket(0.0) == _bucket(0)  # dedicated zero bucket

    def test_round_trip(self):
        h = Histogram()
        for v in (0.0, 0.25, 1.0, 1.5, 100.0):
            h.observe(v)
        back = Histogram.from_dict(h.as_dict())
        assert back.count == h.count
        assert back.total == h.total
        assert back.min == h.min and back.max == h.max
        assert back.buckets == h.buckets

    def test_empty_round_trip(self):
        back = Histogram.from_dict(Histogram().as_dict())
        assert back.count == 0
        assert back.min == math.inf and back.max == -math.inf

    def test_merge_equals_pooled_observation(self):
        xs, ys = [0.1, 0.7, 3.0], [0.0, 0.7, 9.0]
        a, b, pooled = Histogram(), Histogram(), Histogram()
        for v in xs:
            a.observe(v)
            pooled.observe(v)
        for v in ys:
            b.observe(v)
            pooled.observe(v)
        a.merge(b)
        assert a.as_dict() == pooled.as_dict()


class TestRegistry:
    def test_counter_value_default(self):
        reg = MetricsRegistry()
        assert reg.counter_value("never") == 0
        reg.counter_add("seen")
        assert reg.counter_value("seen") == 1

    def test_snapshot_is_json_sorted(self):
        import json

        snap = _snap(counters=[("b", 1), ("a", 1)])
        assert list(snap["counters"]) == ["a", "b"]
        json.dumps(snap)  # must not raise
