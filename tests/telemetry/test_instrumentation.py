"""Layer instrumentation: pipeline, executor, machine, sweep — and the
acceptance contracts (bit-identical results, merged parallel traces)."""

from __future__ import annotations

from dataclasses import replace

from repro import telemetry
from repro.exec.compiled import CompiledProgram
from repro.experiments import runner
from repro.experiments.sweep import default_config
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program


def _config(sizes=(8,)):
    return replace(default_config(quick=True), sizes=tuple(sizes))


def _flat_program(body):
    return Program("t", ("N",), (ArrayDecl("A", (sym("N"),)),), (), tuple(body))


def _spans(name):
    return [s for s in telemetry.spans() if s.name == name]


class TestBitIdentical:
    def test_reports_identical_enabled_vs_disabled(self):
        """REPRO_TELEMETRY must be a pure observer: same PerfReport."""
        runner.clear_caches()
        baseline = runner.measure_variant("cholesky", "seq", 8, _config()).report
        runner.clear_caches()
        telemetry.enable()
        instrumented = runner.measure_variant("cholesky", "seq", 8, _config()).report
        assert instrumented == baseline

    def test_compiled_source_is_identical(self):
        """The executor's generated code must not depend on telemetry
        state — the fallback hooks are unconditional."""
        i = sym("i")
        p = _flat_program(
            [loop("i", 2, sym("N"), [assign(idx("A", i), idx("A", i - 1) + 1.0)])]
        )
        off = CompiledProgram(p, trace=True, exec_mode="block", min_block_trip=1)
        telemetry.enable()
        on = CompiledProgram(p, trace=True, exec_mode="block", min_block_trip=1)
        assert on.source == off.source


class TestExecutorCounters:
    def test_guard_rejection_counted(self):
        """A recurrence compiles a block path but every entry is routed to
        the scalar fallback by the runtime guard — and counted."""
        i = sym("i")
        p = _flat_program(
            [loop("i", 2, sym("N"), [assign(idx("A", i), idx("A", i - 1) + 1.0)])]
        )
        telemetry.enable()
        cp = CompiledProgram(p, trace=True, exec_mode="block", min_block_trip=1)
        cp.run({"N": 20})
        assert cp.fallbacks.guard_rejected == 1
        assert telemetry.counter_value("exec.fallback.guard_rejected") == 1
        [run_span] = _spans("exec.run")
        assert run_span.attrs["guard_rejected"] == 1

    def test_below_min_trip_counted(self):
        i = sym("i")
        p = _flat_program(
            [loop("i", 1, sym("N"), [assign(idx("A", i), 1.0)])]
        )
        telemetry.enable()
        cp = CompiledProgram(p, trace=True, exec_mode="block", min_block_trip=100)
        cp.run({"N": 10})
        assert cp.fallbacks.below_min_trip == 1
        assert telemetry.counter_value("exec.fallback.below_min_trip") == 1

    def test_static_rejection_counted_at_compile(self):
        i = sym("i")
        p = _flat_program([loop("i", 1, 3, [assign(idx("A", i * i), 1.0)])])
        telemetry.enable()
        cp = CompiledProgram(p, trace=True, exec_mode="block", min_block_trip=1)
        assert cp.static_fallbacks == {"non_affine_subscript": 1}
        assert (
            telemetry.counter_value("exec.fallback.static.non_affine_subscript") == 1
        )
        [loop_span] = _spans("exec.loop")
        assert loop_span.attrs["tier"] == "scalar"
        assert loop_span.attrs["reason"] == "non_affine_subscript"

    def test_per_run_deltas_not_cumulative(self):
        """Two runs of the same engine: each exec.run span carries its own
        delta, and the counter totals them."""
        i = sym("i")
        p = _flat_program(
            [loop("i", 2, sym("N"), [assign(idx("A", i), idx("A", i - 1) + 1.0)])]
        )
        telemetry.enable()
        cp = CompiledProgram(p, trace=True, exec_mode="block", min_block_trip=1)
        cp.run({"N": 20})
        cp.run({"N": 20})
        assert telemetry.counter_value("exec.fallback.guard_rejected") == 2
        deltas = [s.attrs["guard_rejected"] for s in _spans("exec.run")]
        assert deltas == [1, 1]


class TestPipelineAndMachineSpans:
    def test_pass_spans_carry_ir_stats(self):
        telemetry.enable()
        runner.clear_caches()
        runner.build_program("cholesky", "tiled", tile=4)
        [recipe_span] = _spans("pipeline.recipe")
        pass_spans = _spans("pipeline.pass")
        assert len(pass_spans) >= 2
        for s in pass_spans:
            assert s.parent_id == recipe_span.span_id
            assert s.attrs["stmts_after"] > 0
            assert "pass" in s.attrs

    def test_streaming_sink_spans_and_counters(self):
        telemetry.enable()
        runner.clear_caches()
        runner.measure_variant("lu", "seq", 8, _config())
        [point] = _spans("sweep.point")
        assert point.attrs["source"] == "computed"
        [ms] = _spans("machine.measure_streaming")
        assert ms.parent_id == point.span_id
        for sink in ("memory", "branch"):
            [s] = _spans(f"machine.sink.{sink}")
            assert s.parent_id == ms.span_id
            assert s.attrs["chunks"] >= 1
            assert (
                telemetry.counter_value(f"machine.sink.{sink}.events")
                == s.attrs["events"]
            )


class TestSweepCounters:
    def test_memo_hit_skips_point_span(self):
        telemetry.enable()
        runner.clear_caches()
        runner.measure_variant("lu", "seq", 8, _config())
        runner.measure_variant("lu", "seq", 8, _config())
        assert len(_spans("sweep.point")) == 1
        assert telemetry.counter_value("sweep.memo.hit") == 1
        assert telemetry.counter_value("sweep.cache.miss") == 1

    def test_corrupt_cache_entry_counted_and_logged(
        self, tmp_path, monkeypatch, caplog
    ):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "bad.json").write_text('{"total_cycles": 1')
        telemetry.enable()
        with caplog.at_level("WARNING", logger="repro.sweep"):
            assert runner._load_cached("bad") is None
        assert telemetry.counter_value("sweep.cache.corrupt") == 1
        assert "discarding unreadable entry" in caplog.text

    def test_disk_hit_tagged_on_span(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = _config()
        runner.clear_caches()
        runner.measure_variant("lu", "seq", 8, config)  # populates disk
        runner.clear_caches()
        telemetry.enable()
        runner.measure_variant("lu", "seq", 8, config)
        [point] = _spans("sweep.point")
        assert point.attrs["source"] == "disk"
        assert telemetry.counter_value("sweep.cache.hit") == 1


class TestParallelSweepMerge:
    POINTS = [
        ("cholesky", "seq", 8),
        ("cholesky", "tiled", 8),
        ("lu", "seq", 8),
    ]

    def test_merged_trace_has_one_span_per_point(self):
        """Acceptance: with REPRO_JOBS>1 the parent holds a single merged
        trace whose sweep.point span count equals the measured points."""
        telemetry.enable()
        runner.clear_caches()
        results = runner.measure_points(self.POINTS, _config(), jobs=2)
        assert len(results) == len(self.POINTS)
        points = _spans("sweep.point")
        assert len(points) == len(self.POINTS)
        assert {(s.attrs["kernel"], s.attrs["variant"]) for s in points} == {
            (k, v) for k, v, _ in self.POINTS
        }
        # Workers ran out-of-process; their spans keep the origin pid.
        import os

        assert all(s.pid != os.getpid() for s in points)
        # Metric snapshots merged additively across the pool.
        assert telemetry.counter_value("sweep.cache.miss") == len(self.POINTS)
        # Parent-side assembly answered from the seeded memo.
        assert telemetry.counter_value("sweep.memo.hit") == len(self.POINTS)

    def test_parallel_results_unchanged_by_telemetry(self):
        runner.clear_caches()
        plain = runner.measure_points(self.POINTS, _config(), jobs=2)
        runner.clear_caches()
        telemetry.enable()
        traced = runner.measure_points(self.POINTS, _config(), jobs=2)
        assert [m.report for m in traced] == [m.report for m in plain]
