"""telemetry_report: metric diffing and regression flagging."""

from __future__ import annotations

import json

from repro.experiments.telemetry_report import (
    DiffRow,
    diff_metrics,
    load_metrics,
    main,
    regressions,
    render,
)


def _metrics(span_totals=(), counters=()):
    return {
        "counters": dict(counters),
        "gauges": {},
        "histograms": {
            name: {"count": 1, "total": total, "min": total, "max": total, "buckets": {}}
            for name, total in span_totals
        },
    }


BASE = _metrics(
    span_totals=[("span.exec.run", 1.0), ("span.pipeline.pass", 0.5)],
    counters=[
        ("sweep.cache.hit", 8),
        ("sweep.cache.miss", 2),
        ("exec.fallback.guard_rejected", 1),
        ("sweep.memo.hit", 4),
    ],
)


class TestDiff:
    def test_no_change_is_clean(self):
        rows = diff_metrics(BASE, BASE)
        assert regressions(rows) == []
        assert "No regressions flagged." in render(rows, "a", "b")

    def test_time_regression_flagged(self):
        new = _metrics(
            span_totals=[("span.exec.run", 1.5), ("span.pipeline.pass", 0.5)],
            counters=[("sweep.cache.hit", 8), ("sweep.cache.miss", 2)],
        )
        flagged = regressions(diff_metrics(BASE, new))
        assert [r.name for r in flagged] == ["span.exec.run"]
        assert "1.50x" in flagged[0].note

    def test_tiny_absolute_deltas_are_noise(self):
        base = _metrics(span_totals=[("span.exec.run", 1e-4)])
        new = _metrics(span_totals=[("span.exec.run", 5e-4)])  # 5x but sub-ms
        assert regressions(diff_metrics(base, new)) == []

    def test_hit_rate_drop_flagged(self):
        new = _metrics(
            span_totals=[("span.exec.run", 1.0), ("span.pipeline.pass", 0.5)],
            counters=[("sweep.cache.hit", 2), ("sweep.cache.miss", 8)],
        )
        names = [r.name for r in regressions(diff_metrics(BASE, new))]
        assert "sweep.cache hit rate" in names

    def test_fallback_increase_flagged(self):
        new = _metrics(
            span_totals=[("span.exec.run", 1.0), ("span.pipeline.pass", 0.5)],
            counters=[
                ("sweep.cache.hit", 8),
                ("sweep.cache.miss", 2),
                ("exec.fallback.guard_rejected", 3),
            ],
        )
        [row] = regressions(diff_metrics(BASE, new))
        assert row.name == "exec.fallback.guard_rejected"
        assert row.section == "fallback"

    def test_corrupt_entries_flagged_on_increase(self):
        new = _metrics(
            span_totals=[("span.exec.run", 1.0), ("span.pipeline.pass", 0.5)],
            counters=[
                ("sweep.cache.hit", 8),
                ("sweep.cache.miss", 2),
                ("exec.fallback.guard_rejected", 1),
                ("sweep.cache.corrupt", 1),
            ],
        )
        names = [r.name for r in regressions(diff_metrics(BASE, new))]
        assert names == ["sweep.cache.corrupt"]

    def test_other_counters_informational(self):
        rows = diff_metrics(BASE, BASE)
        memo = [r for r in rows if r.name == "sweep.memo.hit"]
        assert memo and memo[0].section == "counter" and not memo[0].flagged


class TestMain:
    def test_end_to_end_from_directories(self, tmp_path):
        for name, metrics in (("base", BASE), ("new", BASE)):
            d = tmp_path / name
            d.mkdir()
            (d / "metrics.json").write_text(json.dumps(metrics))
        out = main(str(tmp_path / "base"), str(tmp_path / "new"))
        assert "Telemetry diff" in out
        assert "No regressions flagged." in out
        assert load_metrics(tmp_path / "base") == BASE

    def test_render_includes_flag_column(self):
        rows = [DiffRow("time", "span.x", 1.0, 2.0, True, "2.00x")]
        out = render(rows, "a", "b")
        assert "REGRESSION" in out
        assert "1 regression(s) flagged: span.x" in out
