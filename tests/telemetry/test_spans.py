"""Span mechanics: nesting, balance under exceptions, thread/process tags."""

from __future__ import annotations

import threading

import pytest

from repro import telemetry
from repro.telemetry.spans import DisabledSpan, SpanCollector


def _by_name(name):
    return [s for s in telemetry.spans() if s.name == name]


class TestNesting:
    def test_parent_links(self):
        telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
        [outer] = _by_name("outer")
        [inner] = _by_name("inner")
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.pid == outer.pid

    def test_siblings_share_parent(self):
        telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("a"):
                pass
            with telemetry.span("b"):
                pass
        [outer] = _by_name("outer")
        [a], [b] = _by_name("a"), _by_name("b")
        assert a.parent_id == b.parent_id == outer.span_id
        assert a.span_id != b.span_id

    def test_record_span_parents_to_open_span(self):
        telemetry.enable()
        with telemetry.span("outer"):
            telemetry.record_span("pre.timed", 1.0, 0.5, chunks=3)
        [outer] = _by_name("outer")
        [pre] = _by_name("pre.timed")
        assert pre.parent_id == outer.span_id
        assert pre.duration == 0.5
        assert pre.attrs == {"chunks": 3}


class TestExceptionBalance:
    def test_stack_balances_and_error_is_recorded(self):
        collector = SpanCollector()
        with pytest.raises(ValueError, match="boom"):
            with collector.span("outer"):
                with collector.span("inner"):
                    raise ValueError("boom")
        assert collector.open_depth() == 0
        inner, outer = collector.finished()
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.error == "ValueError: boom"
        assert outer.error == "ValueError: boom"

    def test_leaked_inner_span_does_not_wedge_the_stack(self):
        collector = SpanCollector()
        outer = collector.span("outer")
        outer.__enter__()
        collector.span("leaked").__enter__()  # never exited
        outer.__exit__(None, None, None)
        assert collector.open_depth() == 0
        assert [s.name for s in collector.finished()] == ["outer"]

    def test_facade_exception_still_propagates(self):
        telemetry.enable()
        with pytest.raises(RuntimeError):
            with telemetry.span("explodes"):
                raise RuntimeError("no")
        assert _by_name("explodes")[0].error == "RuntimeError: no"


class TestDisabled:
    def test_disabled_span_still_times(self):
        with telemetry.span("never.recorded") as sp:
            sum(range(1000))
        assert isinstance(sp, DisabledSpan)
        assert sp.duration > 0
        sp.set(ignored=True)  # must be a no-op, not an error
        assert telemetry.spans() == []

    def test_counters_disabled_are_free(self):
        telemetry.counter("nope")
        telemetry.gauge("nope.g", 3)
        telemetry.observe("nope.h", 1.0)
        snap = telemetry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestAttrs:
    def test_set_after_exit_lands_on_recorded_span(self):
        telemetry.enable()
        with telemetry.span("pass", pass_name="Fuse") as sp:
            pass
        sp.set(stmts_after=7)
        [span] = telemetry.spans()
        assert span.attrs == {"pass_name": "Fuse", "stmts_after": 7}

    def test_span_feeds_duration_histogram(self):
        telemetry.enable()
        with telemetry.span("x.y"):
            pass
        hist = telemetry.snapshot()["histograms"]["span.x.y"]
        assert hist["count"] == 1
        assert hist["total"] >= 0


class TestThreads:
    def test_threads_get_independent_stacks(self):
        telemetry.enable()
        done = threading.Event()

        def work():
            with telemetry.span("worker"):
                done.wait(timeout=5)

        with telemetry.span("main"):
            t = threading.Thread(target=work)
            t.start()
            done.set()
            t.join()
        [main], [worker] = _by_name("main"), _by_name("worker")
        # The worker's span must not be parented into the main thread's
        # open span — stacks are per-thread.
        assert worker.parent_id is None
        assert worker.tid != main.tid
