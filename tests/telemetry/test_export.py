"""Exporters: JSONL round-trip, Chrome trace shape, text summaries."""

from __future__ import annotations

import json

from repro import telemetry
from repro.telemetry.export import (
    chrome_trace,
    read_jsonl,
    render_summary,
    render_tree,
    write_jsonl,
)
from repro.telemetry.spans import Span


def _spans():
    return [
        Span("root", 1.0, 2.0, span_id=1, parent_id=None, pid=10, tid=1),
        Span(
            "child",
            1.5,
            0.5,
            span_id=2,
            parent_id=1,
            pid=10,
            tid=1,
            attrs={"kernel": "lu", "n": 8},
            error="ValueError: boom",
        ),
    ]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        spans = _spans()
        path = write_jsonl(spans, tmp_path / "trace.jsonl")
        assert read_jsonl(path) == spans

    def test_round_trip_via_facade(self, tmp_path):
        telemetry.enable()
        with telemetry.span("outer", recipe="tiled"):
            with telemetry.span("inner"):
                pass
        written = telemetry.write_run(tmp_path)
        back = read_jsonl(written["trace.jsonl"])
        assert back == telemetry.spans()


class TestChromeTrace:
    def test_event_shape(self):
        events = chrome_trace(_spans())
        root, child = events
        assert root["ph"] == "X"
        assert root["ts"] == 1.0e6 and root["dur"] == 2.0e6  # microseconds
        assert child["args"] == {"kernel": "lu", "n": 8, "error": "ValueError: boom"}
        assert {e["pid"] for e in events} == {10}

    def test_file_is_loadable_json(self, tmp_path):
        telemetry.enable()
        with telemetry.span("a"):
            pass
        written = telemetry.write_run(tmp_path)
        data = json.loads(written["trace_chrome.json"].read_text())
        assert [e["name"] for e in data["traceEvents"]] == ["a"]


class TestTextRenderers:
    def test_tree_aggregates_by_path(self):
        spans = _spans() + [
            Span("child", 3.0, 0.25, span_id=3, parent_id=1, pid=10, tid=1)
        ]
        tree = render_tree(spans)
        assert "root" in tree
        assert "x2" in tree  # both child spans fold into one path line

    def test_empty_tree(self):
        assert render_tree([]) == "(no spans recorded)"

    def test_summary_sections(self):
        metrics = {
            "counters": {
                "exec.fallback.guard_rejected": 2,
                "sweep.cache.hit": 3,
                "sweep.cache.miss": 1,
                "sweep.cache.corrupt": 1,
                "machine.sink.memory.chunks": 7,
            },
            "gauges": {"peak": 5.0},
            "histograms": {},
        }
        text = render_summary(_spans(), metrics)
        assert "== block-tier fallbacks ==" in text
        assert "exec.fallback.guard_rejected" in text
        assert "disk-cache hit rate: 75.0%" in text
        assert "WARNING: 1 corrupt cache entries discarded" in text
        assert "machine.sink.memory.chunks" in text
        assert "== gauges ==" in text

    def test_write_run_artifacts(self, tmp_path):
        telemetry.enable()
        with telemetry.span("z"):
            telemetry.counter("sweep.cache.miss")
        written = telemetry.write_run(tmp_path)
        assert sorted(written) == [
            "metrics.json",
            "summary.txt",
            "trace.jsonl",
            "trace_chrome.json",
        ]
        for path in written.values():
            assert path.exists()
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["counters"]["sweep.cache.miss"] == 1
        assert "span.z" in metrics["histograms"]
