"""Golden tests: the generated Figure-3/4 programs, pinned as text.

These protect the *shape* of the transformed code (guards, sweep loops,
copy placement) against silent regressions; semantic equivalence is tested
elsewhere.
"""

from repro.ir import pretty
from repro.kernels import cholesky, jacobi, lu


JACOBI_FIXED = """\
program jacobi_fixed
  ! parameters: N, M
  real*8 A(N, N)
  real*8 H_A(N, N)
  real*8 l_s
  do c = 1, 1
    do c_2 = 2, N - 1
      H_A(c,c_2) = A(c,c_2)
    end do
  end do
  do c_3 = 2, N - 1
    do c_4 = 1, 1
      H_A(c_3,c_4) = A(c_3,c_4)
    end do
  end do
  do t = 0, M
    do i = 2, N - 1
      do j = 2, N - 1
        l_s = (H_A(j,i - 1) + H_A(j - 1,i) + A(j + 1,i) + A(j,i + 1))*0.25
        H_A(j,i) = A(j,i)
        A(j,i) = l_s
      end do
    end do
  end do
end program"""


CHOLESKY_FIXED = """\
program cholesky_fixed
  ! parameters: N
  real*8 A(N, N)
  do k = 1, N - 1
    do j = k + 1, N
      do i = j, N
        if (j .EQ. k + 1 .AND. i .EQ. k + 1) then
          A(k,k) = sqrt(A(k,k))
        end if
        if (j .EQ. k + 1) then
          A(i,k) = A(i,k)/A(k,k)
        end if
        A(i,j) = A(i,j) - A(i,k)*A(j,k)
      end do
    end do
  end do
  A(N,N) = sqrt(A(N,N))
end program"""


def test_jacobi_fixed_golden():
    assert pretty(jacobi.fixed()) == JACOBI_FIXED


def test_cholesky_fixed_golden():
    assert pretty(cholesky.fixed()) == CHOLESKY_FIXED


def test_lu_fixed_landmarks():
    text = pretty(lu.fixed())
    # Figure 4a landmarks, independent of exact variable naming:
    landmarks = [
        "temp = 0.0",                 # search initialisation at the origin
        "m = k",
        "d = A(",                     # pivot magnitude read in the P loop
        "if (abs(d) .GT. temp) then",
        "if (m .NE. k) then",         # the guarded swap
        "A(i,k) = A(i,k)/A(k,k)",     # the scale
        "A(i,j) = A(i,j) - A(i,k)*A(k,j)",  # the update
    ]
    for piece in landmarks:
        assert piece in text, piece
    # exactly one sweep (P) loop from the collapse
    assert text.count("do is") == 1


def test_fixed_programs_stable_across_calls():
    assert pretty(jacobi.fixed()) == pretty(jacobi.fixed())
    assert pretty(lu.fixed()) == pretty(lu.fixed())
