"""Per-kernel structural and numerical detail tests."""

import numpy as np
import pytest

from repro.exec import run_compiled, run_interpreted
from repro.ir import pretty
from repro.kernels import cholesky, jacobi, lu, qr
from repro.kernels.registry import KERNELS, get_kernel


class TestRegistry:
    def test_names(self):
        assert KERNELS == ("lu", "qr", "cholesky", "jacobi")

    def test_lookup(self):
        assert get_kernel("lu").NAME == "lu"
        with pytest.raises(KeyError):
            get_kernel("gemm")

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_uniform_surface(self, kernel):
        mod = get_kernel(kernel)
        for attr in ("sequential", "fusable", "fused_nest", "fixed", "tiled",
                     "make_inputs", "reference", "PARAMS", "DEFAULT_PARAMS"):
            assert hasattr(mod, attr), f"{kernel} missing {attr}"


class TestLU:
    def test_pivoting_actually_triggers(self):
        params = {"N": 16}
        inputs = lu.make_inputs(params)
        a = np.array(inputs["A"])
        swaps = 0
        for k in range(16):
            m = k + int(np.argmax(np.abs(a[k:, k])))
            if m != k:
                swaps += 1
            tmp = a[k, k:].copy()
            a[k, k:] = a[m, k:]
            a[m, k:] = tmp
            if k + 1 < 16:
                a[k + 1 :, k] /= a[k, k]
                a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
        assert swaps > 0, "inputs must exercise the swap path"

    def test_factorisation_reconstructs(self):
        # Without off-diagonal pivots the result is a plain LU of A.
        n = 10
        rng = np.random.default_rng(5)
        a0 = rng.uniform(-1, 1, (n, n)) + np.eye(n) * (n + 3)  # strongly dominant
        out = run_compiled(lu.sequential(), {"N": n}, {"A": a0})
        res = out.arrays["A"]
        L = np.tril(res, -1) + np.eye(n)
        U = np.triu(res)
        assert np.allclose(L @ U, a0)

    def test_fixed_matches_figure4a_structure(self):
        text = pretty(lu.fixed())
        assert "temp = 0.0" in text
        assert "do is" in text  # the P sweep loop
        assert "abs(d) .GT. temp" in text

    def test_tiled_expands_pivot_scalar(self):
        tiled = lu.tiled(4)
        assert any(a.name == "m_x" for a in tiled.arrays)

    def test_epilogue_handles_last_step(self):
        # N = 1: only the peeled epilogue runs.
        out = run_compiled(lu.fusable(), {"N": 1}, {"A": np.array([[3.0]])})
        assert out.arrays["A"][0, 0] == 3.0


class TestQR:
    def test_x_products_match_reference(self):
        params = {"N": 8}
        inputs = qr.make_inputs(params)
        out = run_compiled(qr.sequential(), params, inputs)
        ref = qr.reference(params, inputs)
        assert np.allclose(out.arrays["X"], ref["X"], rtol=1e-9)

    def test_values_stay_bounded_at_experiment_sizes(self):
        params = {"N": 48}
        inputs = qr.make_inputs(params)
        out = run_compiled(qr.sequential(), params, inputs)
        assert np.isfinite(out.arrays["A"]).all()
        assert np.abs(out.arrays["A"]).max() < 1e3

    def test_distribution_of_x_nest_is_equivalent(self):
        params = {"N": 9}
        inputs = qr.make_inputs(params)
        a = run_compiled(qr.sequential(), params, inputs)
        b = run_compiled(qr.fusable(), params, inputs)
        assert np.allclose(a.arrays["A"], b.arrays["A"], rtol=1e-12)
        assert np.allclose(a.arrays["X"], b.arrays["X"], rtol=1e-12)


class TestCholesky:
    def test_spd_inputs(self):
        a = cholesky.make_inputs({"N": 12})["A"]
        assert np.allclose(a, a.T)
        assert np.linalg.eigvalsh(a).min() > 0

    def test_upper_triangle_untouched(self):
        params = {"N": 9}
        inputs = cholesky.make_inputs(params)
        out = run_compiled(cholesky.sequential(), params, inputs)
        assert np.allclose(np.triu(out.arrays["A"], 1), np.triu(inputs["A"], 1))

    def test_tiled_guard_structure(self):
        text = pretty(cholesky.tiled(4))
        assert "do kt = 1, N - 1, 4" in text
        # point loop clamped by tile and by the triangular bound
        assert "min(" in text


class TestJacobi:
    def test_boundary_preserved(self):
        params = {"N": 10, "M": 4}
        inputs = jacobi.make_inputs(params)
        out = run_compiled(jacobi.fixed(), params, inputs)
        a0, a1 = inputs["A"], out.arrays["A"]
        assert np.allclose(a0[0, :], a1[0, :]) and np.allclose(a0[-1, :], a1[-1, :])
        assert np.allclose(a0[:, 0], a1[:, 0]) and np.allclose(a0[:, -1], a1[:, -1])

    def test_m_zero_single_step(self):
        params = {"N": 8, "M": 0}
        inputs = jacobi.make_inputs(params)
        out = run_compiled(jacobi.tiled(3), params, inputs)
        assert np.allclose(out.arrays["A"], jacobi.reference(params, inputs)["A"])

    def test_interpreted_agrees_on_tiled(self):
        params = {"N": 8, "M": 2}
        inputs = jacobi.make_inputs(params)
        t = jacobi.tiled(3)
        a = run_compiled(t, params, inputs)
        b = run_interpreted(t, params, inputs)
        assert np.allclose(a.arrays["A"], b.arrays["A"])

    def test_smoothing_converges_toward_interior_mean(self):
        params = {"N": 16, "M": 200}
        inputs = {"A": np.ones((16, 16))}
        out = run_compiled(jacobi.sequential(), params, inputs)
        assert np.allclose(out.arrays["A"], 1.0)
