"""Boundary sizes: every kernel variant at the smallest meaningful N.

The transformations assume parameters of at least ASSUMED_PARAM_LO = 4;
these tests pin correct behaviour exactly at that floor (and just above),
where peeled iterations, boundary copies and partial tiles all degenerate.
"""

import numpy as np
import pytest

from repro.exec import run_compiled
from repro.kernels.registry import KERNELS, get_kernel


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("n", [4, 5])
def test_variants_at_minimum_size(kernel, n):
    mod = get_kernel(kernel)
    params = {"N": n}
    if "M" in mod.PARAMS:
        params["M"] = 1
    inputs = mod.make_inputs(params)
    ref = mod.reference(params, inputs)
    for build in (mod.sequential, mod.fusable, mod.fixed, lambda: mod.tiled(3)):
        program = build()
        out = run_compiled(program, params, inputs)
        for name in program.outputs:
            if name in ref:
                assert np.allclose(
                    out.arrays[name], ref[name], rtol=1e-8, atol=1e-10
                ), (kernel, program.name, n)


def test_jacobi_n4_boundary_only():
    # N = 4: interior is 2x2; boundary pre-copies cover strips of length 2.
    mod = get_kernel("jacobi")
    params = {"N": 4, "M": 2}
    inputs = mod.make_inputs(params)
    out = run_compiled(mod.fixed(), params, inputs)
    assert np.allclose(out.arrays["A"], mod.reference(params, inputs)["A"])


def test_gauss_seidel_minimum():
    mod = get_kernel("gauss_seidel")
    params = {"N": 4, "M": 1}
    inputs = mod.make_inputs(params)
    out = run_compiled(mod.tiled(2), params, inputs)
    assert np.allclose(out.arrays["A"], mod.reference(params, inputs)["A"])
