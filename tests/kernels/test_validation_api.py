"""Tests for the cross-variant validation API."""

import pytest

from repro.kernels.validation import ValidationMatrix, validate_kernel


@pytest.mark.parametrize("kernel", ["cholesky", "jacobi"])
def test_validation_matrix(kernel):
    matrix = validate_kernel(kernel, sizes=(7, 10), tiles=(3,))
    assert matrix.all_fixed_variants_valid()
    assert matrix.failures() == []


def test_jacobi_fusion_requires_fixing():
    matrix = validate_kernel("jacobi", sizes=(8,), tiles=(3,))
    assert matrix.fusion_requires_fixing


def test_cholesky_fusion_already_legal():
    matrix = validate_kernel("cholesky", sizes=(8,), tiles=(3,))
    assert not matrix.fusion_requires_fixing


def test_checks_shape():
    matrix = validate_kernel("cholesky", sizes=(6, 9), tiles=(3, 5))
    # 4 base variants + 2 tiled, per size
    assert len(matrix.checks) == 2 * 6
    assert isinstance(matrix, ValidationMatrix)
    variants = {c.variant for c in matrix.checks}
    assert variants == {"sequential", "fusable", "fused", "fixed", "tiled"}
