"""Tests for the Gauss–Seidel extension kernel."""

import numpy as np
import pytest

from repro.exec import run_compiled
from repro.kernels import gauss_seidel as gs
from repro.kernels.registry import EXTENSION_KERNELS, get_kernel


class TestSemantics:
    @pytest.mark.parametrize("n,m", [(8, 2), (12, 5), (17, 3)])
    def test_sequential_matches_reference(self, n, m):
        params = {"N": n, "M": m}
        inputs = gs.make_inputs(params)
        out = run_compiled(gs.sequential(), params, inputs)
        assert np.allclose(out.arrays["A"], gs.reference(params, inputs)["A"])

    @pytest.mark.parametrize("tile", [3, 5, 8])
    def test_tiled_matches_reference(self, tile):
        params = {"N": 14, "M": 4}
        inputs = gs.make_inputs(params)
        out = run_compiled(gs.tiled(tile), params, inputs)
        assert np.allclose(out.arrays["A"], gs.reference(params, inputs)["A"])

    def test_in_place_update_differs_from_jacobi(self):
        from repro.kernels import jacobi

        params = {"N": 10, "M": 1}
        inputs = gs.make_inputs(params)
        a_gs = run_compiled(gs.sequential(), params, inputs).arrays["A"]
        a_ja = run_compiled(jacobi.sequential(), params, inputs).arrays["A"]
        assert not np.allclose(a_gs, a_ja)


class TestLegality:
    def test_raw_nest_not_permutable(self):
        from repro.trans.legality import fully_permutable_under

        ident = [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
        assert not fully_permutable_under(gs.sequential().body[0], ident)

    def test_unit_skew_proven_permutable(self):
        from repro.trans.legality import fully_permutable_under
        from repro.trans.skew import matmul, permutation_matrix, skew_matrix

        U = matmul(permutation_matrix(gs.ORDER), skew_matrix(3, gs.SKEWS))
        assert fully_permutable_under(gs.sequential().body[0], U)


class TestRegistry:
    def test_reachable_by_name(self):
        assert get_kernel("gauss_seidel") is gs
        assert "gauss_seidel" in EXTENSION_KERNELS

    def test_tiling_pays_off(self):
        from repro.exec.compiled import CompiledProgram
        from repro.machine import measure, octane2_scaled

        # N=88: the field (61 KB) exceeds the scaled 32 KB L2.
        params = {"N": 88, "M": 8}
        inputs = gs.make_inputs(params)
        machine = octane2_scaled()
        reports = {}
        for label, prog in (("seq", gs.sequential()), ("tiled", gs.tiled(11))):
            cp = CompiledProgram(prog, trace=True)
            reports[label] = measure(cp.run(params, inputs), prog, params, machine)
        assert reports["tiled"].l2_misses < reports["seq"].l2_misses / 4
        assert reports["tiled"].total_cycles < reports["seq"].total_cycles
