"""Unit tests for reference extraction from fused groups."""

import pytest

from repro.deps.access import ValueRange, extract_references
from repro.errors import DependenceError
from repro.kernels import jacobi, lu


class TestJacobiExtraction:
    def test_reference_inventory(self):
        nest = jacobi.fused_nest()
        g1, g2 = nest.groups
        refs1 = extract_references(nest, g1)
        # L(j,i) write, four A reads
        writes = [r for r in refs1 if r.is_write]
        reads = [r for r in refs1 if not r.is_write]
        assert [w.name for w in writes] == ["L"]
        assert sorted(r.name for r in reads) == ["A"] * 4
        refs2 = extract_references(nest, g2)
        assert [r.name for r in refs2 if r.is_write] == ["A"]
        assert [r.name for r in refs2 if not r.is_write] == ["L"]

    def test_subscripts_in_fused_coordinates(self):
        nest = jacobi.fused_nest()
        refs = extract_references(nest, nest.groups[0])
        write = next(r for r in refs if r.is_write)
        assert {str(s) for s in write.subscripts} == {"j", "i"}

    def test_domains_include_context(self):
        nest = jacobi.fused_nest()
        refs = extract_references(nest, nest.groups[0])
        dom = refs[0].domain
        assert dom.variables[:1] == ("t",)
        assert dom.contains({"t": 0, "i": 2, "j": 2, "N": 5, "M": 3})
        assert not dom.contains({"t": 0, "i": 1, "j": 2, "N": 5, "M": 3})

    def test_alpha_numbering(self):
        nest = jacobi.fused_nest()
        refs = extract_references(nest, nest.groups[0])
        assert all(r.alpha == 1 for r in refs)

    def test_exactness(self):
        nest = jacobi.fused_nest()
        refs = extract_references(nest, nest.groups[0])
        assert all(r.exact for r in refs)


class TestLUExtraction:
    def test_fuzzy_pivot_subscript(self):
        nest = lu.fused_nest()
        swap_cols = nest.groups[4]  # trailing-column swaps
        refs = extract_references(nest, swap_cols, lu.VALUE_RANGES)
        fuzzy = [r for r in refs if r.fuzzy]
        assert fuzzy, "A(m, j) references must introduce fuzzy dims"
        assert all(not r.exact for r in fuzzy)

    def test_fuzzy_requires_value_range(self):
        nest = lu.fused_nest()
        swap_cols = nest.groups[4]
        with pytest.raises(DependenceError):
            extract_references(nest, swap_cols, {})

    def test_opaque_guard_marks_inexact(self):
        nest = lu.fused_nest()
        search = nest.groups[2]
        refs = extract_references(nest, search, lu.VALUE_RANGES)
        m_writes = [r for r in refs if r.name == "m" and r.is_write]
        assert m_writes and all(not r.exact for r in m_writes)

    def test_scalar_rank_zero(self):
        nest = lu.fused_nest()
        refs = extract_references(nest, nest.groups[0], lu.VALUE_RANGES)
        assert all(r.subscripts == () for r in refs if r.name == "temp")
