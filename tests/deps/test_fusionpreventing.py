"""The fusion-preventing dependence sets, kernel by kernel.

These tests pin the paper's Section 3.2 findings:

- LU:       WR_m(search, swaps) != {} (plus temp WW/WR); nothing else;
- QR:       WR_norm(2,3) != {} (plus the scale->X and X->update flow
            violations the paper's listings elide);
- Cholesky: legal as fused (no violations at all);
- Jacobi:   RW_A(1,2) != {} and nothing else.

Each polyhedral answer is cross-checked against the brute-force trace
oracle at small concrete sizes.
"""

import pytest

from repro.deps.bruteforce import trace_violations
from repro.deps.fusionpreventing import summarize, violated_dependences
from repro.kernels import cholesky, jacobi, lu, qr


def names_of(violations):
    return {(v.kind, v.name, v.src.group, v.dst.group) for v in violations}


class TestJacobi:
    def test_only_anti_on_A(self):
        nest = jacobi.fused_nest()
        vios = violated_dependences(nest)
        assert names_of(vios) == {("anti", "A", 1, 2)}

    def test_witness_is_valid(self):
        nest = jacobi.fused_nest()
        vios = violated_dependences(nest)
        for v in vios:
            assert v.witness is not None
            assert v.poly.contains(v.witness)

    def test_matches_bruteforce(self):
        nest = jacobi.fused_nest()
        sym = {
            (v.kind, v.name, v.src.group, v.dst.group)
            for v in violated_dependences(nest)
        }
        brute = trace_violations(nest, {"N": 7, "M": 2})
        assert sym == brute


class TestCholesky:
    def test_fused_is_legal(self):
        nest = cholesky.fused_nest()
        assert violated_dependences(nest) == []

    def test_bruteforce_agrees(self):
        nest = cholesky.fused_nest()
        assert trace_violations(nest, {"N": 7}) == set()


class TestQR:
    @pytest.fixture(scope="class")
    def vios(self):
        return violated_dependences(qr.fused_nest())

    def test_norm_violation_present(self, vios):
        # The paper's WR_norm(2,3): group 2 writes norm, group 3 reads it.
        assert ("flow", "norm", 2, 3) in names_of(vios)

    def test_scale_and_x_violations_present(self, vios):
        kinds = names_of(vios)
        assert any(k[1] == "A" and k[0] == "flow" and k[2] == 6 for k in kinds), (
            "scale -> X flow violation (elided in the paper's garbled "
            "listing) must be detected"
        )
        assert any(k[1] == "X" and k[0] == "flow" and k[2] == 8 for k in kinds)

    def test_matches_bruteforce(self, vios):
        brute = trace_violations(qr.fused_nest(), {"N": 6})
        assert names_of(vios) == brute


class TestLU:
    @pytest.fixture(scope="class")
    def vios(self):
        return violated_dependences(
            lu.fused_nest(), value_ranges=lu.VALUE_RANGES
        )

    def test_pivot_scalar_violations(self, vios):
        kinds = names_of(vios)
        assert ("flow", "m", 3, 4) in kinds or ("flow", "m", 3, 5) in kinds
        assert any(k[1] == "temp" for k in kinds)

    def test_raw_nest_has_pivot_read_anti_dep(self, vios):
        # In the *unfixed* fused nest the column-k swap at (k+1, k) precedes
        # the pivot search's reads at (k+1, i > k): a real anti violation.
        assert ("anti", "A", 3, 4) in names_of(vios)

    def test_anti_violations_vanish_after_tiling(self):
        # ElimRW runs on P' = ElimWW_WR(P): once the search collapses to the
        # origin, no anti-dependence remains — hence LU needs no copies.
        from repro.trans.elim_ww_wr import eliminate_ww_wr

        fixed = eliminate_ww_wr(lu.fused_nest(), value_ranges=lu.VALUE_RANGES)
        remaining = violated_dependences(
            fixed.nest, ("anti",), value_ranges=lu.VALUE_RANGES
        )
        assert remaining == []

    def test_bruteforce_is_subset(self, vios):
        # The oracle expands fuzzy refs the same way, so sets coincide.
        brute = trace_violations(
            lu.fused_nest(), {"N": 6}, value_ranges=lu.VALUE_RANGES
        )
        assert brute <= names_of(vios)


class TestFilters:
    def test_src_group_filter(self):
        nest = qr.fused_nest()
        vios = violated_dependences(nest, src_group=2)
        assert {v.src.group for v in vios} == {2}

    def test_kind_filter(self):
        nest = jacobi.fused_nest()
        assert violated_dependences(nest, ("flow", "output")) == []

    def test_array_filter(self):
        nest = jacobi.fused_nest()
        assert violated_dependences(nest, arrays=["L"]) == []

    def test_summarize(self):
        nest = jacobi.fused_nest()
        counts = summarize(violated_dependences(nest))
        assert any(key.startswith("RW_A(1,2)") for key in counts)
