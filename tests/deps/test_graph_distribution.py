"""Unit tests for statement dependence graphs and loop distribution."""

import numpy as np
import pytest

from repro.deps.graph import dependence_graph
from repro.errors import TransformError
from repro.exec import run_compiled
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program, ScalarDecl
from repro.trans.distribution import (
    distribute_fully,
    distribute_loop,
    distribution_partition,
)

N, i, j, k = sym("N"), sym("i"), sym("j"), sym("k")


class TestDependenceGraph:
    def test_independent_statements(self):
        l = loop("i", 1, N, [assign(idx("A", i), 1.0), assign(idx("B", i), 2.0)])
        g = dependence_graph(l)
        assert g.number_of_edges() == 0

    def test_same_iteration_flow(self):
        l = loop(
            "i", 1, N, [assign(idx("A", i), 1.0), assign(idx("B", i), idx("A", i))]
        )
        g = dependence_graph(l)
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_backward_carried_dependence(self):
        # S2 writes A(i); S1 reads A(i-1): S2@i-1 -> S1@i (flow, carried).
        l = loop(
            "i",
            2,
            N,
            [assign(idx("B", i), idx("A", i - 1)), assign(idx("A", i), 3.0)],
        )
        g = dependence_graph(l)
        assert g.has_edge(1, 0)

    def test_cycle_detected(self):
        # mutual recurrence: A(i) uses B(i-1), B(i) uses A(i).
        l = loop(
            "i",
            2,
            N,
            [
                assign(idx("A", i), idx("B", i - 1)),
                assign(idx("B", i), idx("A", i)),
            ],
        )
        g = dependence_graph(l)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_inner_loops_handled(self):
        inner = loop("k", 1, N, [assign(idx("C", i, k), idx("A", k) + 1.0)])
        l = loop("i", 1, N, [assign(idx("A", i), 1.0), inner])
        g = dependence_graph(l)
        # A written by S1 at i, read by S2 (inner k loop) at every i' with
        # k = i: both directions exist across iterations.
        assert g.has_edge(0, 1)

    def test_scalar_dependences(self):
        l = loop(
            "i", 1, N, [assign("s", sym("s") + 1.0), assign(idx("A", i), sym("s"))]
        )
        g = dependence_graph(l, scalars=frozenset({"s"}))
        assert g.has_edge(0, 1) and g.has_edge(1, 0)  # s carried both ways


class TestDistribution:
    def make_program(self, body_loop, arrays=("A", "B"), scalars=()):
        return Program(
            "p",
            ("N",),
            tuple(ArrayDecl(a, (N,)) for a in arrays),
            tuple(ScalarDecl(s) for s in scalars),
            (body_loop,),
        )

    def test_independent_split(self):
        l = loop("i", 1, N, [assign(idx("A", i), 1.0), assign(idx("B", i), 2.0)])
        out = distribute_loop(l)
        assert len(out) == 2

    def test_split_preserves_semantics(self):
        l = loop(
            "i",
            2,
            N,
            [assign(idx("B", i), idx("A", i - 1)), assign(idx("A", i), i * 1.0)],
        )
        p = self.make_program(l)
        parts = distribute_loop(l)
        q = p.with_body(tuple(parts)).with_name("q")
        rng = np.random.default_rng(3)
        a0 = rng.random(8)
        x = run_compiled(p, {"N": 8}, {"A": a0})
        y = run_compiled(q, {"N": 8}, {"A": a0})
        assert np.allclose(x.arrays["A"], y.arrays["A"])
        assert np.allclose(x.arrays["B"], y.arrays["B"])

    def test_backward_dep_orders_loops(self):
        # B(i) = A(i-1) then A(i) = ... : the A-producing loop must come
        # first after distribution (the dependence edge points 1 -> 0).
        l = loop(
            "i",
            2,
            N,
            [assign(idx("B", i), idx("A", i - 1)), assign(idx("A", i), i * 1.0)],
        )
        parts = distribute_loop(l)
        assert len(parts) == 2
        # first emitted loop writes A
        first_writes = {
            s.target.name for s in parts[0].body
        }
        assert first_writes == {"A"}

    def test_cycle_keeps_statements_together(self):
        l = loop(
            "i",
            2,
            N,
            [
                assign(idx("A", i), idx("B", i - 1)),
                assign(idx("B", i), idx("A", i)),
            ],
        )
        out = distribute_loop(l)
        assert len(out) == 1

    def test_distribute_fully_raises_on_cycle(self):
        l = loop(
            "i",
            2,
            N,
            [
                assign(idx("A", i), idx("B", i - 1)),
                assign(idx("B", i), idx("A", i)),
            ],
        )
        with pytest.raises(TransformError):
            distribute_fully(l)

    def test_partition_stable_order(self):
        l = loop(
            "i",
            1,
            N,
            [assign(idx("A", i), 1.0), assign(idx("B", i), 2.0)],
        )
        assert distribution_partition(l) == [[0], [1]]

    def test_qr_x_nest_distributes(self):
        from repro.kernels import qr

        program = qr.fusable()
        # init and accumulation became separate j loops (9 items total).
        outer = program.body[0]
        assert len(outer.body) == 9
