"""Unit tests for dependence distance bounds (d_i)."""

from repro.deps.distances import dependence_distances
from repro.deps.fusionpreventing import violated_dependences
from repro.kernels import lu, qr


class TestQRDistances:
    def test_norm_violation_carried_by_k(self):
        nest = qr.fused_nest()
        vios = violated_dependences(nest, ("flow", "output"), src_group=2)
        report = dependence_distances(nest, vios)
        assert report.collapse_dims() == ("k",)

    def test_distance_value_parametric(self):
        nest = qr.fused_nest()
        vios = violated_dependences(nest, ("flow", "output"), src_group=2)
        report = dependence_distances(nest, vios)
        d_k = dict(zip(report.fused_vars, report.distances))["k"]
        # max over (i, k): k - i with k <= N and i >= 1  =>  N - 1
        assert d_k.evaluate_int({"N": 9}) == 8

    def test_scale_violation_carried_by_j(self):
        nest = qr.fused_nest()
        vios = violated_dependences(nest, ("flow", "output"), src_group=6)
        report = dependence_distances(nest, vios)
        assert report.collapse_dims() == ("j",)


class TestLUDistances:
    def test_search_violations_carried_by_i(self):
        nest = lu.fused_nest()
        vios = violated_dependences(
            nest, ("flow", "output"), src_group=3, value_ranges=lu.VALUE_RANGES
        )
        report = dependence_distances(nest, vios)
        assert report.collapse_dims() == ("i",)

    def test_empty_violations_mean_no_collapse(self):
        nest = lu.fused_nest()
        report = dependence_distances(nest, [])
        assert report.collapse_dims() == ()
        assert all(d.evaluate_int({"N": 5}) == 0 for d in report.distances)
