"""Unit tests for integer-point enumeration."""

import pytest

from repro.errors import UnboundedError
from repro.poly.constraint import eq0, ge, le
from repro.poly.enumerate import count_points, enumerate_points, max_objective_enumerate
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

i, j, N = LinExpr.var("i"), LinExpr.var("j"), LinExpr.var("N")


def triangle():
    return Polyhedron(("i", "j"), [ge(i, 1), le(i, N), ge(j, i), le(j, N)])


class TestEnumerate:
    def test_triangle_count(self):
        assert count_points(triangle(), {"N": 4}) == 10

    def test_lexicographic_order(self):
        pts = list(enumerate_points(triangle(), {"N": 3}))
        tuples = [(p["i"], p["j"]) for p in pts]
        assert tuples == sorted(tuples)

    def test_empty_range(self):
        assert count_points(triangle(), {"N": 0}) == 0

    def test_limit(self):
        pts = list(enumerate_points(triangle(), {"N": 5}, limit=3))
        assert len(pts) == 3

    def test_missing_param_raises(self):
        with pytest.raises(UnboundedError):
            list(enumerate_points(triangle()))

    def test_unbounded_raises(self):
        p = Polyhedron(("i",), [ge(i, 1)])
        with pytest.raises(UnboundedError):
            list(enumerate_points(p, {}))

    def test_zero_dims(self):
        p = Polyhedron((), [ge(N, 2)])
        assert list(enumerate_points(p, {"N": 3})) == [{}]
        assert list(enumerate_points(p, {"N": 1})) == []

    def test_equality_pins_value(self):
        p = Polyhedron(("i", "j"), [ge(i, 1), le(i, 3), eq0(j - i)])
        pts = [(p_["i"], p_["j"]) for p_ in enumerate_points(p, {})]
        assert pts == [(1, 1), (2, 2), (3, 3)]


class TestMaxObjective:
    def test_max_over_triangle(self):
        assert max_objective_enumerate(triangle(), j - i, {"N": 6}) == 5

    def test_empty_gives_none(self):
        assert max_objective_enumerate(triangle(), j, {"N": 0}) is None
