"""Unit tests for LinExpr arithmetic and canonicalisation."""

from fractions import Fraction

import pytest

from repro.poly.linexpr import LinExpr


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        e = LinExpr({"x": 0, "y": 2})
        assert e.variables() == {"y"}

    def test_const_factory(self):
        assert LinExpr.const(5).constant == 5
        assert LinExpr.const(5).is_constant()

    def test_var_factory(self):
        e = LinExpr.var("i", 3)
        assert e.coeff("i") == 3
        assert e.coeff("j") == 0

    def test_rejects_non_string_names(self):
        with pytest.raises(TypeError):
            LinExpr({1: 2})

    def test_rejects_float_coefficients(self):
        with pytest.raises(TypeError):
            LinExpr({"x": 0.5})

    def test_fraction_coefficients_ok(self):
        e = LinExpr({"x": Fraction(1, 2)})
        assert e.coeff("x") == Fraction(1, 2)
        assert not e.is_integral()


class TestArithmetic:
    def test_add(self):
        e = LinExpr.var("i") + LinExpr.var("j") + 3
        assert e.coeff("i") == 1 and e.coeff("j") == 1 and e.constant == 3

    def test_add_cancels(self):
        e = LinExpr.var("i") - LinExpr.var("i")
        assert e.is_constant() and e.constant == 0

    def test_neg(self):
        e = -(LinExpr.var("i") + 1)
        assert e.coeff("i") == -1 and e.constant == -1

    def test_rsub(self):
        e = 5 - LinExpr.var("i")
        assert e.coeff("i") == -1 and e.constant == 5

    def test_scalar_multiply(self):
        e = (LinExpr.var("i") + 2) * 3
        assert e.coeff("i") == 3 and e.constant == 6

    def test_divide(self):
        e = (LinExpr.var("i") * 4) / 2
        assert e.coeff("i") == 2

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            LinExpr.var("i") / 0


class TestSubstitution:
    def test_substitute_with_expr(self):
        e = LinExpr.var("i") + LinExpr.var("j")
        out = e.substitute({"i": LinExpr.var("k") + 1})
        assert out.coeff("k") == 1 and out.coeff("j") == 1 and out.constant == 1

    def test_substitute_with_constant(self):
        e = LinExpr.var("i") * 2
        assert e.substitute({"i": 3}).constant == 6

    def test_rename_merges(self):
        e = LinExpr({"i": 1, "j": 2})
        out = e.rename({"j": "i"})
        assert out.coeff("i") == 3

    def test_evaluate(self):
        e = LinExpr({"i": 2, "j": -1}, 4)
        assert e.evaluate({"i": 3, "j": 5}) == 5

    def test_evaluate_unbound_raises(self):
        with pytest.raises(KeyError):
            LinExpr.var("i").evaluate({})


class TestIdentity:
    def test_equal_expressions_hash_equal(self):
        a = LinExpr.var("i") + 1
        b = 1 + LinExpr.var("i")
        assert a == b and hash(a) == hash(b)

    def test_str_roundtrip_readable(self):
        e = LinExpr({"i": 1, "j": -2}, 3)
        text = str(e)
        assert "i" in text and "2*j" in text and "3" in text
