"""Unit tests for constraint normalisation and the comparison helpers."""

import pytest

from repro.poly.constraint import Constraint, Kind, eq0, equals, ge, ge0, le, lt
from repro.poly.linexpr import LinExpr

i = LinExpr.var("i")
j = LinExpr.var("j")
N = LinExpr.var("N")


class TestNormalisation:
    def test_gcd_division(self):
        c = ge0(i * 2 - 4)
        assert c.expr == i - 2

    def test_integer_tightening_floors_constant(self):
        # 2i - 3 >= 0  over integers means i >= 2, i.e. i - 2 >= 0.
        c = ge0(i * 2 - 3)
        assert c.expr == i - 2

    def test_fractions_scaled_to_integers(self):
        from fractions import Fraction

        c = ge0(i * Fraction(1, 2) - Fraction(3, 2))
        assert c.expr == i - 3

    def test_equality_sign_canonical(self):
        a = eq0(i - j)
        b = eq0(j - i)
        assert a == b

    def test_equality_without_integer_solution_kept(self):
        c = eq0(i * 2 - 1)
        assert c.expr == i * 2 - 1


class TestTrivial:
    def test_trivially_true(self):
        assert ge0(LinExpr.const(0)).is_trivial_true()
        assert eq0(LinExpr.const(0)).is_trivial_true()

    def test_trivially_false(self):
        assert ge0(LinExpr.const(-1)).is_trivial_false()
        assert eq0(LinExpr.const(2)).is_trivial_false()

    def test_non_constant_neither(self):
        c = ge0(i)
        assert not c.is_trivial_true() and not c.is_trivial_false()


class TestHelpers:
    def test_le(self):
        assert le(i, N).satisfied({"i": 3, "N": 3})
        assert not le(i, N).satisfied({"i": 4, "N": 3})

    def test_lt_strict_integer(self):
        assert not lt(i, N).satisfied({"i": 3, "N": 3})
        assert lt(i, N).satisfied({"i": 2, "N": 3})

    def test_ge_with_scalar(self):
        assert ge(i, 2).satisfied({"i": 2})

    def test_equals(self):
        assert equals(i + 1, j).satisfied({"i": 2, "j": 3})

    def test_substitute(self):
        c = ge(i, j).substitute({"j": LinExpr.const(1)})
        assert c.satisfied({"i": 1})

    def test_rename(self):
        c = ge(i, j).rename({"i": "x"})
        assert "x" in c.variables() and "i" not in c.variables()

    def test_kind_exposed(self):
        assert ge0(i).kind is Kind.GE
        assert eq0(i).kind is Kind.EQ

    def test_requires_linexpr(self):
        with pytest.raises(TypeError):
            Constraint("i >= 0", Kind.GE)
