"""Unit tests for integer feasibility."""

from repro.poly.constraint import eq0, ge, ge0, le
from repro.poly.integer import (
    check_feasibility,
    find_integer_point,
    integer_feasible,
    rationally_empty,
)
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

i, j, N = LinExpr.var("i"), LinExpr.var("j"), LinExpr.var("N")


class TestRationallyEmpty:
    def test_contradiction(self):
        p = Polyhedron(("i",), [ge(i, 2), le(i, 1)])
        assert rationally_empty(p)

    def test_parametric_contradiction(self):
        # i in [N+1, N] is empty for every N.
        p = Polyhedron(("i",), [ge(i, N + 1), le(i, N)])
        assert rationally_empty(p)

    def test_nonempty(self):
        p = Polyhedron(("i",), [ge(i, 1), le(i, N)])
        assert not rationally_empty(p)


class TestWitnessSearch:
    def test_fixed_params(self):
        p = Polyhedron(("i", "j"), [ge(i, 1), le(i, N), ge(j, i + 1), le(j, N)])
        pt = find_integer_point(p, {"N": 3})
        assert pt is not None and pt["j"] > pt["i"]

    def test_fixed_params_infeasible(self):
        p = Polyhedron(("i", "j"), [ge(i, 1), le(i, N), ge(j, i + 1), le(j, N)])
        assert find_integer_point(p, {"N": 1}) is None

    def test_probed_params(self):
        p = Polyhedron(("i",), [ge(i, 2), le(i, N - 1)])
        pt = find_integer_point(p)
        assert pt is not None and 2 <= pt["i"] <= pt["N"] - 1

    def test_param_lo_respected(self):
        # needs N >= 6 to have a point; probe window from 1 still finds it
        p = Polyhedron(("i",), [ge(i, 6), le(i, N)])
        assert integer_feasible(p)

    def test_decisive_empty(self):
        p = Polyhedron(("i",), [ge(i, N + 1), le(i, N)])
        res = check_feasibility(p)
        assert not res.feasible and res.decisive

    def test_witness_satisfies(self):
        p = Polyhedron(("i", "j"), [eq0(i - j), ge(i, 1), le(i, N)])
        res = check_feasibility(p)
        assert res.feasible and res.witness is not None
        assert p.contains(res.witness)


class TestIntegerOnlyCases:
    def test_even_odd_gap(self):
        # 2i == 2j + 1 has no integer solution although rationally feasible.
        p = Polyhedron(
            ("i", "j"),
            [eq0(i * 2 - j * 2 - 1), ge(i, 0), le(i, 10), ge(j, 0), le(j, 10)],
        )
        assert not integer_feasible(p, {})

    def test_scaled_equality_feasible(self):
        p = Polyhedron(("i",), [eq0(i * 3 - 6)])
        assert integer_feasible(p, {})
