"""Property-based tests: symbolic polyhedral results vs brute force.

Random small conjunctive systems are generated and every solver answer is
checked against enumeration — the strongest guard we have on the
FM/feasibility/optimisation stack that the dependence analysis trusts.
"""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.poly.constraint import ge, ge0, le
from repro.poly.enumerate import (
    count_points,
    enumerate_points,
    max_objective_enumerate,
)
from repro.poly.fm import project_onto
from repro.poly.integer import integer_feasible, rationally_empty
from repro.poly.lexmin import lexmin_enumerate
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

VARS = ("x", "y", "z")


@st.composite
def small_polyhedron(draw):
    """A random conjunctive system over (x, y, z), box-bounded to [-4, 4]."""
    constraints = []
    for v in VARS:
        lo = draw(st.integers(-4, 2))
        hi = draw(st.integers(lo, 4))
        constraints.append(ge(LinExpr.var(v), lo))
        constraints.append(le(LinExpr.var(v), hi))
    n_extra = draw(st.integers(0, 3))
    for _ in range(n_extra):
        coefs = {v: draw(st.integers(-2, 2)) for v in VARS}
        const = draw(st.integers(-4, 4))
        constraints.append(ge0(LinExpr(coefs, const)))
    return Polyhedron(VARS, constraints)


@st.composite
def small_objective(draw):
    coefs = {v: draw(st.integers(-2, 2)) for v in VARS}
    return LinExpr(coefs, draw(st.integers(-2, 2)))


@given(small_polyhedron())
def test_rational_emptiness_is_sound(poly):
    # rationally_empty == True must imply zero integer points.
    if rationally_empty(poly):
        assert count_points(poly, {}) == 0


@given(small_polyhedron())
def test_integer_feasibility_matches_enumeration(poly):
    has_points = count_points(poly, {}) > 0
    assert integer_feasible(poly, {}) == has_points


@given(small_polyhedron())
def test_projection_is_superset_and_rationally_tight(poly):
    proj = project_onto(poly, ["x", "y"])
    full = {(p["x"], p["y"]) for p in enumerate_points(poly, {})}
    shadow = {(p["x"], p["y"]) for p in enumerate_points(proj, {})}
    # FM gives the rational shadow: every true point survives projection.
    assert full <= shadow


@given(small_polyhedron())
def test_lexmin_enumerate_is_minimal(poly):
    first = lexmin_enumerate(poly, {})
    pts = [tuple(p[v] for v in VARS) for p in enumerate_points(poly, {})]
    if first is None:
        assert not pts
    else:
        assert tuple(first[v] for v in VARS) == min(pts)


@given(small_polyhedron(), small_objective())
def test_parametric_max_bounds_brute_force(poly, objective):
    from repro.errors import UnboundedError
    from repro.poly.optimize import parametric_max

    brute = max_objective_enumerate(poly, objective, {})
    try:
        sym = parametric_max(poly, objective)
    except UnboundedError:
        return
    if brute is None:
        # Rational relaxation may be non-empty; nothing to compare.
        return
    assert sym is not None
    # The rational maximum bounds the integer maximum from above.
    value = sym.evaluate({})
    assert value >= brute
    # And is exact when integral.
    if value == math.floor(value):
        # For unit-coefficient-dominated random systems this is the common
        # case; allow slack only when the rational optimum is fractional.
        assert value >= brute


@given(small_polyhedron())
def test_contains_agrees_with_enumeration_membership(poly):
    pts = {tuple(p[v] for v in VARS) for p in enumerate_points(poly, {})}
    for x in range(-4, 5, 2):
        for y in range(-4, 5, 2):
            for z in range(-4, 5, 2):
                assert ((x, y, z) in pts) == poly.contains({"x": x, "y": y, "z": z})
