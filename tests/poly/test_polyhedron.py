"""Unit tests for the Polyhedron container."""

import pytest

from repro.errors import PolyhedronError
from repro.poly.constraint import eq0, ge, ge0, le
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

i, j, N = LinExpr.var("i"), LinExpr.var("j"), LinExpr.var("N")


def triangle() -> Polyhedron:
    return Polyhedron(("i", "j"), [ge(i, 1), le(i, N), ge(j, i), le(j, N)])


class TestBasics:
    def test_duplicate_dims_rejected(self):
        with pytest.raises(PolyhedronError):
            Polyhedron(("i", "i"))

    def test_trivially_true_constraints_dropped(self):
        p = Polyhedron(("i",), [ge0(LinExpr.const(3)), ge(i, 0)])
        assert len(p.constraints) == 1

    def test_duplicate_constraints_deduped(self):
        p = Polyhedron(("i",), [ge(i, 0), ge(i, 0)])
        assert len(p.constraints) == 1

    def test_parameters(self):
        assert triangle().parameters() == {"N"}

    def test_contains(self):
        p = triangle()
        assert p.contains({"i": 1, "j": 2, "N": 3})
        assert not p.contains({"i": 2, "j": 1, "N": 3})

    def test_trivially_empty(self):
        p = Polyhedron(("i",), [ge0(LinExpr.const(-1))])
        assert p.is_trivially_empty()


class TestRebuilding:
    def test_with_constraints(self):
        p = triangle().with_constraints([ge(j, 2)])
        assert not p.contains({"i": 1, "j": 1, "N": 3})

    def test_intersect_checks_dims(self):
        with pytest.raises(PolyhedronError):
            triangle().intersect(Polyhedron(("i",)))

    def test_intersect(self):
        q = Polyhedron(("i", "j"), [eq0(i - j)])
        p = triangle().intersect(q)
        assert p.contains({"i": 2, "j": 2, "N": 3})
        assert not p.contains({"i": 1, "j": 2, "N": 3})

    def test_substitute_removes_dim(self):
        p = triangle().substitute({"j": i})
        assert p.variables == ("i",)
        assert p.contains({"i": 2, "N": 3})

    def test_rename(self):
        p = triangle().rename({"i": "x"})
        assert p.variables == ("x", "j")

    def test_equality_and_hash(self):
        assert triangle() == triangle()
        assert hash(triangle()) == hash(triangle())


class TestBounds:
    def test_bounds_on(self):
        lowers, uppers = triangle().bounds_on("j")
        assert i in lowers and N in uppers

    def test_equality_contributes_both_sides(self):
        p = Polyhedron(("i",), [eq0(i - N)])
        lowers, uppers = p.bounds_on("i")
        assert lowers == [N] and uppers == [N]

    def test_str_contains_constraints(self):
        assert ">= 0" in str(triangle())
