"""Edge cases of the Fourier–Motzkin layer and the loop generator."""

import pytest

from repro.errors import PolyhedronError, TransformError
from repro.poly.constraint import eq0, ge, le
from repro.poly.fm import MAX_CONSTRAINTS, _prune, eliminate
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

i, j, N = LinExpr.var("i"), LinExpr.var("j"), LinExpr.var("N")


class TestPrune:
    def test_tighter_ge_wins(self):
        kept = _prune([ge(i, 3), ge(i, 5)])
        assert kept == [ge(i, 5)]

    def test_contradictory_equalities_kept(self):
        kept = _prune([eq0(i - 1), eq0(i - 2)])
        assert len(kept) == 2

    def test_trivially_true_dropped(self):
        kept = _prune([ge(LinExpr.const(1), 0), ge(i, 0)])
        assert kept == [ge(i, 0)]


class TestEliminateEdges:
    def test_no_bounds_on_one_side(self):
        # only lower bounds: eliminating drops all information about i
        p = Polyhedron(("i", "j"), [ge(i, j), ge(j, 0)])
        out = eliminate(p, "i")
        assert out.variables == ("j",)
        assert out.contains({"j": 5})

    def test_blowup_guard(self):
        # many lowers x many uppers exceeding the cap must raise, not hang.
        lowers = [ge(i, LinExpr.var(f"a{k}")) for k in range(80)]
        uppers = [le(i, LinExpr.var(f"b{k}")) for k in range(80)]
        p = Polyhedron(("i",), lowers + uppers)
        with pytest.raises(PolyhedronError):
            eliminate(p, "i")
        assert 80 * 80 > MAX_CONSTRAINTS

    def test_equality_with_nonunit_coefficient_substitutes(self):
        p = Polyhedron(("i", "j"), [eq0(i * 2 - j), ge(j, 0), le(j, 8)])
        out = eliminate(p, "i")
        # rational substitution: j/2 in [0, 8] -> j in [0, 8]
        assert out.contains({"j": 8})


class TestLoopgenEdges:
    def test_unbounded_dimension_rejected(self):
        from repro.ir.builder import assign
        from repro.trans.loopgen import emit_loops

        p = Polyhedron(("i",), [ge(i, 1)])
        with pytest.raises(TransformError):
            emit_loops(p, ["i"], (assign("x", 1),))

    def test_order_must_cover_dims(self):
        from repro.ir.builder import assign
        from repro.trans.loopgen import emit_loops

        p = Polyhedron(("i", "j"), [ge(i, 1), le(i, N), ge(j, 1), le(j, N)])
        with pytest.raises(TransformError):
            emit_loops(p, ["i"], (assign("x", 1),))

    def test_step_emitted(self):
        from repro.ir.builder import assign
        from repro.trans.loopgen import emit_loops

        p = Polyhedron(("i",), [ge(i, 1), le(i, N)])
        out = emit_loops(p, ["i"], (assign("x", 1),), steps={"i": 4})
        assert "do i = 1, N, 4" in str(out)
