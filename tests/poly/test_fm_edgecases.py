"""Edge cases of the Fourier–Motzkin layer and the loop generator."""

import pytest

from repro import telemetry
from repro.errors import CaseSplitError, PolyhedronError, TransformError
from repro.poly import memo
from repro.poly.constraint import eq0, ge, le
from repro.poly.fm import MAX_CONSTRAINTS, _prune, eliminate
from repro.poly.lexmin import lexmin_with_fallback, parametric_lexmin
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

i, j, N = LinExpr.var("i"), LinExpr.var("j"), LinExpr.var("N")


class TestPrune:
    def test_tighter_ge_wins(self):
        kept = _prune([ge(i, 3), ge(i, 5)])
        assert kept == [ge(i, 5)]

    def test_contradictory_equalities_kept(self):
        kept = _prune([eq0(i - 1), eq0(i - 2)])
        assert len(kept) == 2

    def test_trivially_true_dropped(self):
        kept = _prune([ge(LinExpr.const(1), 0), ge(i, 0)])
        assert kept == [ge(i, 0)]


class TestEliminateEdges:
    def test_no_bounds_on_one_side(self):
        # only lower bounds: eliminating drops all information about i
        p = Polyhedron(("i", "j"), [ge(i, j), ge(j, 0)])
        out = eliminate(p, "i")
        assert out.variables == ("j",)
        assert out.contains({"j": 5})

    def test_blowup_guard(self):
        # many lowers x many uppers exceeding the cap must raise, not hang.
        lowers = [ge(i, LinExpr.var(f"a{k}")) for k in range(80)]
        uppers = [le(i, LinExpr.var(f"b{k}")) for k in range(80)]
        p = Polyhedron(("i",), lowers + uppers)
        with pytest.raises(PolyhedronError):
            eliminate(p, "i")
        assert 80 * 80 > MAX_CONSTRAINTS

    def test_equality_with_nonunit_coefficient_substitutes(self):
        p = Polyhedron(("i", "j"), [eq0(i * 2 - j), ge(j, 0), le(j, 8)])
        out = eliminate(p, "i")
        # rational substitution: j/2 in [0, 8] -> j in [0, 8]
        assert out.contains({"j": 8})

    def test_blowup_error_carries_context(self):
        lowers = [ge(i, LinExpr.var(f"a{k}")) for k in range(80)]
        uppers = [le(i, LinExpr.var(f"b{k}")) for k in range(80)]
        p = Polyhedron(("i",), lowers + uppers)
        with pytest.raises(PolyhedronError) as exc:
            eliminate(p, "i")
        msg = str(exc.value)
        assert "'i'" in msg  # the variable being eliminated
        assert str(MAX_CONSTRAINTS) in msg  # the cap that was exceeded
        assert "80 lower x 80 upper" in msg  # the bound counts
        assert "['i']" in msg  # the originating polyhedron dims

    def test_blowup_counted_in_telemetry(self):
        telemetry.enable()
        try:
            telemetry.reset()
            memo.clear_memos()
            lowers = [ge(i, LinExpr.var(f"a{k}")) for k in range(80)]
            uppers = [le(i, LinExpr.var(f"b{k}")) for k in range(80)]
            p = Polyhedron(("i",), lowers + uppers)
            with pytest.raises(PolyhedronError):
                eliminate(p, "i")
            assert telemetry.counter_value("poly.fm.blowup") == 1
        finally:
            telemetry.disable()
            telemetry.reset()


class TestRequireExact:
    def test_nonunit_equality_raises(self):
        p = Polyhedron(("i", "j"), [eq0(i * 2 - j), ge(j, 0), le(j, 8)])
        with pytest.raises(CaseSplitError, match="not unit"):
            eliminate(p, "i", require_exact=True)

    def test_nonunit_bound_pair_raises(self):
        # 2i >= j and 3i <= N: both coefficients non-unit.
        p = Polyhedron(("i", "j"), [ge(i * 2, j), le(i * 3, N), ge(j, 0)])
        with pytest.raises(CaseSplitError, match="bound pair"):
            eliminate(p, "i", require_exact=True)

    def test_one_unit_side_is_accepted(self):
        # i >= j (unit) with 2i <= N (non-unit): one unit side suffices.
        p = Polyhedron(("i", "j"), [ge(i, j), le(i * 2, N), ge(j, 0)])
        out = eliminate(p, "i", require_exact=True)
        assert "j" in out.variables

    def test_exact_matches_inexact_on_unit_system(self):
        p = Polyhedron(
            ("i", "j"), [ge(i, 0), le(i, N), ge(j, i), le(j, N)]
        )
        exact = eliminate(p, "i", require_exact=True)
        loose = eliminate(p, "i")
        assert exact == loose


class TestLexminFallback:
    def test_empty_polyhedron_returns_none(self):
        p = Polyhedron(("i",), [ge(i, 1), le(i, 0)])
        assert parametric_lexmin(p) is None
        assert lexmin_with_fallback(p, param_env={"N": 5}) is None

    def test_equality_only_system(self):
        p = Polyhedron(("i", "j"), [eq0(i - 3), eq0(j - i - 1)])
        out = parametric_lexmin(p)
        assert out == [LinExpr.const(3), LinExpr.const(4)]

    def test_parametric_equality_system(self):
        p = Polyhedron(("i",), [eq0(i - N)])
        out = parametric_lexmin(p)
        assert out == [N]

    def test_nonunit_raises_case_split_without_env(self):
        # 2i == N has no single affine integer lexmin over all N.
        p = Polyhedron(("i",), [eq0(i * 2 - N), ge(i, 0)])
        with pytest.raises(CaseSplitError):
            lexmin_with_fallback(p)

    def test_nonunit_falls_back_to_enumeration_with_env(self):
        p = Polyhedron(("i",), [eq0(i * 2 - N), ge(i, 0)])
        out = lexmin_with_fallback(p, param_env={"N": 8})
        assert out == [LinExpr.const(4)]

    def test_fallback_empty_under_env_returns_none(self):
        # 2i == N is infeasible for odd N: enumeration finds nothing.
        p = Polyhedron(("i",), [eq0(i * 2 - N), ge(i, 0), le(i, N)])
        assert lexmin_with_fallback(p, param_env={"N": 7}) is None

    def test_fallback_results_cached_consistently(self):
        # Same query twice: the memoised error and the memoised enumeration
        # must reproduce the first answers exactly.
        p = Polyhedron(("i",), [eq0(i * 2 - N), ge(i, 0)])
        first = lexmin_with_fallback(p, param_env={"N": 8})
        second = lexmin_with_fallback(p, param_env={"N": 8})
        assert first == second == [LinExpr.const(4)]


class TestLoopgenEdges:
    def test_unbounded_dimension_rejected(self):
        from repro.ir.builder import assign
        from repro.trans.loopgen import emit_loops

        p = Polyhedron(("i",), [ge(i, 1)])
        with pytest.raises(TransformError):
            emit_loops(p, ["i"], (assign("x", 1),))

    def test_order_must_cover_dims(self):
        from repro.ir.builder import assign
        from repro.trans.loopgen import emit_loops

        p = Polyhedron(("i", "j"), [ge(i, 1), le(i, N), ge(j, 1), le(j, N)])
        with pytest.raises(TransformError):
            emit_loops(p, ["i"], (assign("x", 1),))

    def test_step_emitted(self):
        from repro.ir.builder import assign
        from repro.trans.loopgen import emit_loops

        p = Polyhedron(("i",), [ge(i, 1), le(i, N)])
        out = emit_loops(p, ["i"], (assign("x", 1),), steps={"i": 4})
        assert "do i = 1, N, 4" in str(out)
