"""Unit tests for parametric optimisation."""

import pytest

from repro.errors import UnboundedError
from repro.poly.constraint import ge, le
from repro.poly.linexpr import LinExpr
from repro.poly.optimize import (
    affine_ge,
    parametric_max,
    parametric_min,
    unique_extreme_bound,
)
from repro.poly.polyhedron import Polyhedron

i, j, N, M = (LinExpr.var(v) for v in ("i", "j", "N", "M"))


def triangle():
    return Polyhedron(("i", "j"), [ge(i, 1), le(i, N), ge(j, i), le(j, N)])


class TestParametricMax:
    def test_distance_objective(self):
        m = parametric_max(triangle(), j - i)
        assert m.evaluate_int({"N": 7}) == 6

    def test_sum_objective(self):
        m = parametric_max(triangle(), i + j)
        assert m.evaluate_int({"N": 5}) == 10

    def test_min_objective(self):
        m = parametric_min(triangle(), i + j)
        assert m.evaluate_int({"N": 5}) == 2

    def test_empty_returns_none(self):
        p = triangle().with_constraints([ge(i, N + 1)])
        assert parametric_max(p, j) is None

    def test_unbounded_raises(self):
        p = Polyhedron(("i",), [ge(i, 0)])
        with pytest.raises(UnboundedError):
            parametric_max(p, i)

    def test_two_params(self):
        p = Polyhedron(("i",), [ge(i, M), le(i, N)])
        m = parametric_max(p, i)
        assert m.evaluate_int({"N": 9, "M": 2}) == 9


class TestAffineGe:
    def test_constant(self):
        assert affine_ge(LinExpr.const(3), LinExpr.const(2))
        assert not affine_ge(LinExpr.const(1), LinExpr.const(2))

    def test_without_domain_unprovable(self):
        assert not affine_ge(N, LinExpr.const(3))

    def test_with_domain(self):
        dom = Polyhedron(("N",), [ge(N, 4)])
        assert affine_ge(N, LinExpr.const(3), dom)
        assert affine_ge(N - 1, LinExpr.const(3), dom)
        assert not affine_ge(N, N + 1, dom)

    def test_identity(self):
        assert affine_ge(N, N)


class TestUniqueExtremeBound:
    def test_picks_dominating_lower(self):
        dom = Polyhedron(("N",), [ge(N, 4)])
        best = unique_extreme_bound([LinExpr.const(1), N - 1], lower=True, param_domain=dom)
        assert best == N - 1

    def test_picks_dominating_upper(self):
        dom = Polyhedron(("N",), [ge(N, 4)])
        best = unique_extreme_bound([N, N + 3], lower=False, param_domain=dom)
        assert best == N

    def test_incomparable_returns_none(self):
        assert unique_extreme_bound([N, M], lower=True) is None
