"""Unit tests for Fourier–Motzkin elimination and projection."""

import pytest

from repro.errors import CaseSplitError, PolyhedronError
from repro.poly.constraint import eq0, ge, ge0, le
from repro.poly.enumerate import enumerate_points
from repro.poly.fm import eliminate, project_onto
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

i, j, k, N = (LinExpr.var(v) for v in "ijkN")


def box(n=5):
    return Polyhedron(
        ("i", "j"), [ge(i, 1), le(i, n), ge(j, 1), le(j, n)]
    )


class TestEliminate:
    def test_eliminate_unknown_var(self):
        with pytest.raises(PolyhedronError):
            eliminate(box(), "z")

    def test_box_projection(self):
        p = eliminate(box(4), "j")
        assert p.variables == ("i",)
        assert p.contains({"i": 1}) and p.contains({"i": 4})
        assert not p.contains({"i": 5})

    def test_equality_substitution(self):
        p = Polyhedron(("i", "j"), [eq0(j - i - 1), ge(i, 1), le(j, 4)])
        out = eliminate(p, "j")
        # j = i + 1 <= 4  =>  i <= 3
        assert out.contains({"i": 3}) and not out.contains({"i": 4})

    def test_pairwise_combination(self):
        # i <= j and j <= 4  =>  i <= 4
        p = Polyhedron(("i", "j"), [ge0(j - i), ge0(LinExpr.const(4) - j)])
        out = eliminate(p, "j")
        assert out.contains({"i": 4}) and not out.contains({"i": 5})

    def test_require_exact_rejects_non_unit(self):
        p = Polyhedron(("i", "j"), [ge0(j * 2 - i), ge0(i - j * 2)])
        with pytest.raises(CaseSplitError):
            eliminate(p, "j", require_exact=True)

    def test_empty_detection_after_elimination(self):
        p = Polyhedron(("i", "j"), [ge(j, i + 1), le(j, i)])
        out = eliminate(p, "j")
        assert out.is_trivially_empty()


class TestProjectOnto:
    def test_projection_matches_enumeration(self):
        tri = Polyhedron(
            ("i", "j", "k"),
            [ge(i, 1), le(i, 4), ge(j, i), le(j, 4), ge(k, j), le(k, 4)],
        )
        proj = project_onto(tri, ["i", "j"])
        expected = {(p["i"], p["j"]) for p in enumerate_points(tri, {})}
        got = {(p["i"], p["j"]) for p in enumerate_points(proj, {})}
        assert got == expected

    def test_unknown_target_rejected(self):
        with pytest.raises(PolyhedronError):
            project_onto(box(), ["z"])

    def test_order_of_keep_respected(self):
        p = project_onto(box(), ["j", "i"])
        assert p.variables == ("j", "i")

    def test_parametric_projection(self):
        tri = Polyhedron(("i", "j"), [ge(i, 1), le(i, N), ge(j, i), le(j, N)])
        proj = project_onto(tri, ["j"])
        # j ranges 1..N (given N >= 1)
        assert proj.contains({"j": 1, "N": 1})
        assert not proj.contains({"j": 2, "N": 1})
