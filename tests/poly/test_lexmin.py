"""Unit tests for parametric lexicographic minima."""

import pytest

from repro.errors import UnboundedError
from repro.poly.constraint import eq0, ge, le
from repro.poly.lexmin import lexmin_enumerate, lexmin_with_fallback, parametric_lexmin
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

i, j, k, N = (LinExpr.var(v) for v in "ijkN")


class TestEnumerateLexmin:
    def test_triangle(self):
        p = Polyhedron(("i", "j"), [ge(i, 2), le(i, N), ge(j, i), le(j, N)])
        assert lexmin_enumerate(p, {"N": 5}) == {"i": 2, "j": 2}

    def test_empty(self):
        p = Polyhedron(("i",), [ge(i, 2), le(i, 1)])
        assert lexmin_enumerate(p, {}) is None


class TestParametricLexmin:
    def test_rectangle(self):
        p = Polyhedron(("i", "j"), [ge(i, 3), le(i, N), ge(j, 1), le(j, N)])
        out = parametric_lexmin(p)
        assert out == [LinExpr.const(3), LinExpr.const(1)]

    def test_dependent_dimension(self):
        p = Polyhedron(("i", "j"), [ge(i, 2), le(i, N), ge(j, i + 1), le(j, N)])
        out = parametric_lexmin(p)
        assert out == [LinExpr.const(2), LinExpr.const(3)]

    def test_parametric_result(self):
        p = Polyhedron(("i",), [ge(i, N - 1), le(i, N + 5)])
        out = parametric_lexmin(p)
        assert out == [N - 1]

    def test_equality(self):
        p = Polyhedron(("i", "j"), [eq0(j - i), ge(i, 1), le(i, N)])
        out = parametric_lexmin(p)
        assert out == [LinExpr.const(1), LinExpr.const(1)]

    def test_empty_returns_none(self):
        p = Polyhedron(("i",), [ge(i, N + 1), le(i, N)])
        assert parametric_lexmin(p) is None

    def test_unbounded_below_raises(self):
        p = Polyhedron(("i",), [le(i, N)])
        with pytest.raises(UnboundedError):
            parametric_lexmin(p)

    def test_matches_enumeration(self):
        p = Polyhedron(
            ("i", "j", "k"),
            [ge(i, 1), le(i, N), ge(j, i), le(j, N), ge(k, j + 2), le(k, N)],
        )
        sym = parametric_lexmin(p)
        for n in (4, 7, 11):
            concrete = lexmin_enumerate(p, {"N": n})
            assert concrete == {
                v: int(e.evaluate({"N": n})) for v, e in zip(p.variables, sym)
            }


class TestFallback:
    def test_fallback_used_with_concrete_params(self):
        # Two incomparable lower bounds force enumeration.
        p = Polyhedron(
            ("i",),
            [ge(i, N), ge(i, LinExpr.var("M")), le(i, N + LinExpr.var("M"))],
        )
        out = lexmin_with_fallback(p, param_env={"N": 3, "M": 7})
        assert out == [LinExpr.const(7)]
