"""Unit tests for redundancy elimination."""

from repro.poly.constraint import eq0, ge, le
from repro.poly.enumerate import enumerate_points
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron
from repro.poly.simplify import is_implied, remove_redundant, simplify_under

i, j, N = LinExpr.var("i"), LinExpr.var("j"), LinExpr.var("N")


class TestIsImplied:
    def test_weaker_bound_implied(self):
        p = Polyhedron(("i",), [ge(i, 5)])
        assert is_implied(p, ge(i, 3))
        assert not is_implied(p, ge(i, 7))

    def test_combination_implied(self):
        p = Polyhedron(("i", "j"), [ge(i, 1), ge(j, i)])
        assert is_implied(p, ge(j, 1))

    def test_equality_implication(self):
        p = Polyhedron(("i",), [ge(i, 3), le(i, 3)])
        assert is_implied(p, eq0(i - 3))


class TestRemoveRedundant:
    def test_drops_weaker_duplicate(self):
        p = Polyhedron(("i",), [ge(i, 5), ge(i, 3), le(i, N)])
        out = remove_redundant(p)
        assert len(out.constraints) == 2
        assert ge(i, 5) in out.constraints

    def test_keeps_equalities(self):
        p = Polyhedron(("i", "j"), [eq0(i - j), ge(i, 0), ge(j, 0)])
        out = remove_redundant(p)
        assert eq0(i - j) in out.constraints

    def test_set_preserved(self):
        p = Polyhedron(
            ("i", "j"),
            [ge(i, 1), le(i, 6), ge(j, i), le(j, 6), ge(j, 0), le(i, 10)],
        )
        out = remove_redundant(p)
        before = list(enumerate_points(p, {}))
        after = list(enumerate_points(out, {}))
        assert before == after
        assert len(out.constraints) < len(p.constraints)

    def test_triangle_transitive_bound_dropped(self):
        # i <= N is implied transitively by i <= j and j <= N.
        p = Polyhedron(("i", "j"), [ge(i, 1), le(i, N), ge(j, i), le(j, N)])
        out = remove_redundant(p)
        assert le(i, N) not in out.constraints
        assert len(out.constraints) == 3

    def test_box_untouched(self):
        p = Polyhedron(("i", "j"), [ge(i, 1), le(i, N), ge(j, 1), le(j, N)])
        assert remove_redundant(p) == p


class TestSimplifyUnder:
    def test_context_removes_guard(self):
        space = Polyhedron(("i",), [ge(i, 2), le(i, N)])
        domain = Polyhedron(("i",), [ge(i, 2), le(i, N - 1)])
        out = simplify_under(domain, space)
        assert out.constraints == (le(i, N - 1),)
