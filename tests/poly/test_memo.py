"""The analysis-layer memo: in-process + disk caching, interning, stats."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.errors import CaseSplitError
from repro.poly import memo
from repro.poly.constraint import Constraint, Kind, eq0, ge, ge0, le
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

i, j, N = LinExpr.var("i"), LinExpr.var("j"), LinExpr.var("N")


@pytest.fixture(autouse=True)
def _fresh_memo(monkeypatch):
    """Every test starts caching-enabled with empty analysis memos.

    Forcing the knob makes this module self-contained: it also passes
    under the CI job that exports ``REPRO_POLY_CACHE=off`` globally.
    Tests that exercise off-mode set the variable themselves.
    """
    monkeypatch.setenv("REPRO_POLY_CACHE", "on")
    memo.clear_memos()
    yield
    memo.clear_memos()


def _box(lo: int = 0, hi: int = 9) -> Polyhedron:
    return Polyhedron(("i",), [ge(i, lo), le(i, hi)])


class TestMemoize:
    def test_second_call_hits(self):
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert memo.memoize("t", ("k",), compute) == 42
        assert memo.memoize("t", ("k",), compute) == 42
        assert len(calls) == 1
        assert memo.stats()["ops"]["t"] == {"hit": 1, "miss": 1, "disk_hit": 0}

    def test_distinct_keys_distinct_entries(self):
        assert memo.memoize("t", ("a",), lambda: 1) == 1
        assert memo.memoize("t", ("b",), lambda: 2) == 2
        assert memo.stats()["memo_entries"] == 2

    def test_cacheable_error_reraised_on_hit(self):
        calls = []

        def compute():
            calls.append(1)
            raise CaseSplitError("needs a split")

        for _ in range(2):
            with pytest.raises(CaseSplitError, match="needs a split"):
                memo.memoize("t", ("k",), compute)
        assert len(calls) == 1

    def test_uncacheable_error_propagates_uncached(self):
        calls = []

        def compute():
            calls.append(1)
            raise ValueError("boom")

        for _ in range(2):
            with pytest.raises(ValueError):
                memo.memoize("t", ("k",), compute)
        assert len(calls) == 2

    def test_disabled_mode_computes_every_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLY_CACHE", "off")
        memo.clear_memos()
        calls = []
        for _ in range(2):
            memo.memoize("t", ("k",), lambda: calls.append(1))
        assert len(calls) == 2
        assert not memo.caching_enabled()

    def test_clear_memos_drops_entries_and_stats(self):
        memo.memoize("t", ("k",), lambda: 1)
        memo.clear_memos()
        s = memo.stats()
        assert s["memo_entries"] == 0 and s["ops"] == {}


class TestDiskLayer:
    @pytest.fixture(autouse=True)
    def _disk(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        memo.clear_memos()
        self.path = tmp_path / f"polymemo-v{memo.DISK_FORMAT_VERSION}.jsonl"

    def test_round_trip_after_clear(self):
        p = _box()
        calls = []

        def compute():
            calls.append(1)
            return p

        out1 = memo.memoize_json(
            "t", ("k",), compute, encode=memo.enc_poly, decode=memo.dec_poly
        )
        memo.clear_memos()  # drops the in-process layer only
        out2 = memo.memoize_json(
            "t", ("k",), compute, encode=memo.enc_poly, decode=memo.dec_poly
        )
        assert len(calls) == 1
        assert out1 == out2 and out2.constraints == out1.constraints
        assert memo.stats()["ops"]["t"]["disk_hit"] == 1

    def test_error_round_trips_through_disk(self):
        def compute():
            raise CaseSplitError("disk-cached failure")

        with pytest.raises(CaseSplitError):
            memo.memoize_json("t", ("k",), compute, encode=str, decode=str)
        memo.clear_memos()
        with pytest.raises(CaseSplitError, match="disk-cached failure"):
            memo.memoize_json(
                "t", ("k",), lambda: pytest.fail("must not recompute"),
                encode=str, decode=str,
            )

    def test_corrupt_lines_skipped(self):
        memo.memoize_json("t", ("a",), lambda: 1, encode=int, decode=int)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write('{"k": "torn-entr\n')
        memo.clear_memos()
        assert (
            memo.memoize_json("t", ("a",), lambda: 2, encode=int, decode=int)
            == 1
        )

    def test_no_cache_env_disables_disk(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        memo.clear_memos()
        memo.memoize_json("t", ("k",), lambda: 1, encode=int, decode=int)
        assert not self.path.exists()


class TestCodecs:
    def test_linexpr_round_trip(self):
        e = i * 3 - j / 2 + 7
        assert memo.dec_linexpr(json.loads(json.dumps(memo.enc_linexpr(e)))) == e

    def test_constraint_round_trip(self):
        for c in (ge0(i - 1), eq0(i * 2 - N)):
            assert memo.dec_constraint(memo.enc_constraint(c)) == c

    def test_poly_round_trip_preserves_order(self):
        p = Polyhedron(("i", "j"), [ge(i, 0), le(i, N), ge(j, i)])
        q = memo.dec_poly(json.loads(json.dumps(memo.enc_poly(p))))
        assert q.variables == p.variables
        assert q.constraints == p.constraints

    def test_env_key_forms(self):
        assert memo.env_key(None) == "-"
        assert memo.env_key(4) == "4"
        assert memo.env_key({"N": 8, "M": 2}) == "M=2,N=8"


class TestInterning:
    def test_equal_constraints_pointer_equal(self):
        assert ge(i, 3) is ge(i, 3)

    def test_equal_polyhedra_pointer_equal(self):
        assert _box() is _box()

    def test_interning_off_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLY_CACHE", "off")
        memo.clear_memos()
        a, b = _box(), _box()
        assert a is not b and a == b

    def test_pickle_round_trip(self):
        p = _box()
        q = pickle.loads(pickle.dumps(p))
        assert q == p and q.constraints == p.constraints
        c = pickle.loads(pickle.dumps(ge(i, 3)))
        assert c == ge(i, 3) and isinstance(c, Constraint)
        assert c.kind is Kind.GE

    def test_fingerprint_is_order_sensitive_and_stable(self):
        a = Polyhedron(("i",), [ge(i, 0), le(i, N)])
        b = Polyhedron(("i",), [le(i, N), ge(i, 0)])
        assert a == b  # set semantics
        assert a.fingerprint() != b.fingerprint()  # structural identity
        assert a.fingerprint() == a.fingerprint()
        # Not derived from PYTHONHASHSEED-dependent hash(): a fixed value.
        assert len(a.fingerprint()) == 32
