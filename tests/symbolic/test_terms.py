"""Unit tests for the symbolic Min/Max expression layer."""

from fractions import Fraction

import pytest

from repro.poly.linexpr import LinExpr
from repro.symbolic.terms import (
    SymAffine,
    SymMax,
    SymMin,
    sym_affine,
    sym_const,
    sym_max,
    sym_min,
    sym_var,
)

N = LinExpr.var("N")


class TestAffine:
    def test_evaluate(self):
        assert sym_affine(N - 1).evaluate({"N": 5}) == 4

    def test_evaluate_int_rejects_fractions(self):
        e = sym_affine(N / 2)
        with pytest.raises(ValueError):
            e.evaluate_int({"N": 5})

    def test_parameters(self):
        assert sym_affine(N + LinExpr.var("M")).parameters() == {"N", "M"}

    def test_substitute(self):
        out = sym_affine(N - 1).substitute({"N": LinExpr.const(3)})
        assert out.evaluate({}) == 2


class TestMinMax:
    def test_min_evaluates(self):
        e = sym_min([N, N - 2, sym_const(10)])
        assert e.evaluate({"N": 5}) == 3
        assert e.evaluate({"N": 20}) == 10

    def test_max_evaluates(self):
        e = sym_max([N, sym_const(7)])
        assert e.evaluate({"N": 3}) == 7

    def test_single_argument_passthrough(self):
        assert sym_min([N]) == sym_affine(N)

    def test_constants_folded(self):
        e = sym_min([sym_const(3), sym_const(8), N])
        assert isinstance(e, SymMin)
        consts = [a for a in e.args if isinstance(a, SymAffine) and a.expr.is_constant()]
        assert len(consts) == 1 and consts[0].expr.constant == 3

    def test_same_terms_folded(self):
        e = sym_min([N - 1, N - 3])
        assert e == sym_affine(N - 3)
        e = sym_max([N - 1, N - 3])
        assert e == sym_affine(N - 1)

    def test_nested_flattening(self):
        e = sym_min([sym_min([N, sym_const(2)]), N - 1])
        assert isinstance(e, SymMin)
        assert all(not isinstance(a, SymMin) for a in e.args)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sym_min([])

    def test_equality_order_insensitive(self):
        assert sym_min([N, sym_const(1)]) == sym_min([sym_const(1), N])

    def test_min_max_distinct(self):
        assert sym_min([N, sym_const(1)]) != sym_max([N, sym_const(1)])

    def test_substitute_recurses(self):
        e = sym_min([N, LinExpr.var("M")])
        out = e.substitute({"N": LinExpr.const(5)})
        assert out.evaluate({"M": 9}) == 5

    def test_int_coercion(self):
        e = sym_max([3, N])
        assert e.evaluate({"N": 1}) == 3

    def test_str(self):
        assert "min" in str(sym_min([N, sym_const(0)]))

    def test_var_helper(self):
        assert sym_var("N").evaluate({"N": Fraction(7)}) == 7
