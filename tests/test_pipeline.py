"""End-to-end tests of the optimisation driver."""

import numpy as np
import pytest

from repro.ir import val
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program, ScalarDecl
from repro.pipeline import optimize_program

N = sym("N")


def shift_scale() -> Program:
    """The fix_your_own_kernel example program (flow + anti violations)."""
    i = sym("i")
    nest1 = loop(
        "i",
        3,
        N - 2,
        [
            assign("s", sym("s") + idx("A", i)),
            assign(idx("B", i), idx("A", i - 1)),
        ],
    )
    nest2 = loop("i", 3, N - 2, [assign(idx("A", i), idx("B", i) * 0.5 + sym("s"))])
    return Program(
        "shift_scale",
        ("N",),
        (ArrayDecl("A", (N,)), ArrayDecl("B", (N,))),
        (ScalarDecl("s"),),
        (nest1, nest2),
        outputs=("A", "B"),
    )


def inputs_for(params):
    rng = np.random.default_rng(11)
    return {"A": rng.uniform(-1, 1, params["N"]), "B": np.zeros(params["N"])}


class TestOptimizeProgram:
    def test_full_run_with_validation(self):
        result = optimize_program(
            shift_scale(),
            [("i", val(3), N - 2)],
            validate_inputs=inputs_for,
            validate_sizes=({"N": 10}, {"N": 17}),
        )
        assert result.fixdeps.ww_wr.collapsed_groups() == {1: ("i",)}
        assert any("validated" in n for n in result.notes)
        assert result.best is not None

    def test_without_validation_tiling_gated_by_proof(self):
        result = optimize_program(shift_scale(), [("i", val(3), N - 2)])
        # the collapsed sweep makes the nest non-trivially-dependent; the
        # conservative proof declines, so tiling is skipped with a note.
        if result.tiled is None:
            assert any("tiling skipped" in n for n in result.notes)
        else:
            assert any("proven" in n for n in result.notes)

    def test_jacobi_through_driver(self):
        from repro.kernels import jacobi

        result = optimize_program(
            jacobi.fusable(),
            [("i", val(2), N - 1), ("j", val(2), N - 1)],
            context_depth=1,
            validate_inputs=lambda p: jacobi.make_inputs(p),
            validate_sizes=({"N": 9, "M": 3},),
        )
        assert any("H_A" in n for n in result.notes)
        assert any("scalarised" in n for n in result.notes)
        # sanity: the driver's best program reproduces the reference
        from repro.exec import run_compiled

        params = {"N": 11, "M": 4}
        inputs = jacobi.make_inputs(params)
        out = run_compiled(result.best, params, inputs)
        assert np.allclose(out.arrays["A"], jacobi.reference(params, inputs)["A"])

    def test_legal_fusion_notes_no_changes(self):
        i = sym("i")
        n1 = loop("i", 1, N, [assign(idx("A", i), 1.0)])
        n2 = loop("i", 1, N, [assign(idx("B", i), idx("A", i))])
        p = Program(
            "legal", ("N",), (ArrayDecl("A", (N,)), ArrayDecl("B", (N,))), (), (n1, n2)
        )
        result = optimize_program(
            p,
            [("i", val(1), N)],
            validate_inputs=lambda params: {"A": np.zeros(params["N"])},
            validate_sizes=({"N": 8},),
        )
        assert any("changed nothing" in n for n in result.notes)
        assert result.tiled is not None  # 1-D "tiling" = strip-mining, legal

    def test_audit_trail_nonempty(self):
        result = optimize_program(shift_scale(), [("i", val(3), N - 2)])
        assert len(result.notes) >= 2
