"""Unit tests for index-set splitting (first-iteration peeling)."""

import numpy as np
import pytest

from repro.exec import run_compiled
from repro.ir.builder import assign, ceq, cge, idx, if_, loop, sym
from repro.ir.program import ArrayDecl, Program
from repro.ir.stmt import If, Loop
from repro.trans.splitting import split_first_iteration, split_point_guards

N, i, k = sym("N"), sym("i"), sym("k")


def guarded_loop() -> Loop:
    return loop(
        "i",
        k,
        N,
        [
            if_(ceq(i, k), assign(idx("A", i), 1.0)),
            if_(cge(i, k + 1), assign(idx("A", i), idx("A", i - 1) + 1.0)),
        ],
    )


class TestSplitFirstIteration:
    def test_splits_point_and_range_guards(self):
        out = split_first_iteration(guarded_loop())
        assert out is not None and len(out) == 2
        peel, rest = out
        assert isinstance(peel, If)  # guarded by k <= N
        assert isinstance(rest, Loop)
        # no guards left in either piece
        assert not any(isinstance(s, If) for s in peel.then)
        assert not any(isinstance(s, If) for s in rest.body)

    def test_no_simplification_returns_none(self):
        plain = loop("i", 1, N, [assign(idx("A", i), 0.0)])
        assert split_first_iteration(plain) is None

    def test_nonaffine_guard_left_alone(self):
        from repro.ir.builder import cgt, fabs

        l = loop(
            "i", 1, N,
            [if_(cgt(fabs(sym("s")), 1.0), assign(idx("A", i), 0.0))],
        )
        assert split_first_iteration(l) is None

    def test_outer_facts_enable_split(self):
        # guard i == k+1 in a loop from j, provable only given j == k+1
        from repro.poly.constraint import equals
        from repro.poly.linexpr import LinExpr

        l = loop(
            "i", sym("j"), N,
            [if_(ceq(i, k + 1), assign(idx("A", i), 1.0)),
             assign(idx("A", i), idx("A", i) + 1.0)],
        )
        facts = [equals(LinExpr.var("j"), LinExpr.var("k") + 1)]
        out = split_first_iteration(l, facts)
        assert out is not None

    def test_empty_range_protected(self, rng):
        body = guarded_loop()
        p = Program(
            "s", ("N",), (ArrayDecl("A", (N,)),), (),
            (loop("k", 1, N, [body]),),
        )
        q = split_point_guards(p)
        for n in (1, 2, 6):
            a0 = rng.random(n)
            x = run_compiled(p, {"N": n}, {"A": a0}).arrays["A"]
            y = run_compiled(q, {"N": n}, {"A": a0}).arrays["A"]
            assert np.allclose(x, y), n


class TestSplitPointGuards:
    def test_cholesky_hot_loops_guard_free(self):
        from repro.ir import pretty
        from repro.kernels import cholesky

        text = pretty(cholesky.tiled(4))
        # The innermost i loops carry no conditionals at all.
        import re

        for m in re.finditer(r"do i = [^\n]*\n(.*?)end do", text, re.S):
            body = m.group(1)
            assert "if (" not in body

    def test_branch_counts_drop_dramatically(self):
        from repro.exec.compiled import run_compiled as rc
        from repro.kernels import cholesky

        n = 32
        p = {"N": n}
        inputs = cholesky.make_inputs(p)
        sunk = rc(cholesky.tiled(8, undo_sinking=False), p, inputs).counters
        clean = rc(cholesky.tiled(8), p, inputs).counters
        assert clean.branches < sunk.branches / 5

    def test_all_kernels_correct_after_split(self):
        from repro.kernels.registry import KERNELS, get_kernel

        for kernel in KERNELS:
            mod = get_kernel(kernel)
            params = {"N": 12}
            if "M" in mod.PARAMS:
                params["M"] = 3
            inputs = mod.make_inputs(params)
            out = run_compiled(mod.tiled(5), params, inputs)
            ref = mod.reference(params, inputs)
            assert np.allclose(
                out.arrays["A"], ref["A"], rtol=1e-8
            ), kernel
