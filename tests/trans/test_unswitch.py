"""Unit tests for loop unswitching and guard-fact propagation."""

import numpy as np
import pytest

from repro.exec import run_compiled
from repro.ir.builder import and_, assign, ceq, cge, cne, idx, if_, loop, sym
from repro.ir.program import ArrayDecl, Program, ScalarDecl
from repro.ir.stmt import If, Loop
from repro.trans.cleanup import propagate_guard_facts
from repro.trans.unswitch import unswitch_invariant_guards

N, i, j, k = sym("N"), sym("i"), sym("j"), sym("k")


def guarded_program() -> Program:
    inner = loop(
        "i",
        1,
        N,
        [
            if_(ceq(j, 1), assign(idx("A", i), 1.0)),
            assign(idx("B", i), idx("B", i) + 1.0),
        ],
    )
    body = loop("j", 1, N, [inner])
    return Program(
        "g", ("N",), (ArrayDecl("A", (N,)), ArrayDecl("B", (N,))), (), (body,)
    )


class TestUnswitch:
    def test_guard_hoisted(self):
        p = unswitch_invariant_guards(guarded_program())
        outer = p.body[0]
        assert isinstance(outer, Loop)
        hoisted = outer.body[0]
        assert isinstance(hoisted, If)
        assert isinstance(hoisted.then[0], Loop)
        assert isinstance(hoisted.orelse[0], Loop)

    def test_semantics_preserved(self, rng):
        p = guarded_program()
        q = unswitch_invariant_guards(p)
        b0 = rng.random(9)
        x = run_compiled(p, {"N": 9}, {"B": b0})
        y = run_compiled(q, {"N": 9}, {"B": b0})
        assert np.allclose(x.arrays["A"], y.arrays["A"])
        assert np.allclose(x.arrays["B"], y.arrays["B"])

    def test_branch_count_drops(self):
        p = guarded_program()
        q = unswitch_invariant_guards(p)
        n = 24
        cp = run_compiled(p, {"N": n}).counters
        cq = run_compiled(q, {"N": n}).counters
        assert cq.branches < cp.branches
        assert cq.branches == n  # one guard evaluation per j iteration

    def test_variant_guard_not_hoisted(self):
        body = loop(
            "i", 1, N, [if_(ceq(i, 1), assign(idx("A", sym("i")), 1.0))]
        )
        p = Program("v", ("N",), (ArrayDecl("A", (N,)),), (), (body,))
        q = unswitch_invariant_guards(p)
        assert isinstance(q.body[0], Loop)
        assert isinstance(q.body[0].body[0], If)

    def test_guard_on_written_scalar_not_hoisted(self):
        body = loop(
            "i",
            1,
            N,
            [if_(cne(sym("s"), sym("k")), assign("s", 1.0))],
        )
        p = Program(
            "w", ("N",), (ArrayDecl("A", (N,)),),
            (ScalarDecl("s"), ScalarDecl("k")), (body,),
        )
        q = unswitch_invariant_guards(p)
        assert isinstance(q.body[0], Loop)


class TestPropagateGuardFacts:
    def test_conjunct_dropped_in_then(self):
        inner = if_(and_(ceq(j, k + 1), ceq(i, k)), assign("s", 1.0))
        p = Program(
            "f",
            ("N",),
            (),
            (ScalarDecl("s"),),
            (loop("k", 1, N, [loop("j", 1, N, [
                if_(ceq(j, k + 1), [loop("i", 1, N, [inner])])
            ])]),),
        )
        q = propagate_guard_facts(p)
        text = str(q)
        # the nested conjunct j == k+1 disappears inside the hoisted branch
        assert text.count("j .EQ. k + 1") == 1

    def test_dead_branch_removed(self):
        dead = if_(ceq(j, 1), assign("s", 1.0))
        p = Program(
            "d",
            ("N",),
            (),
            (ScalarDecl("s"),),
            (loop("j", 2, N, [
                if_(ceq(j, 1), [assign("s", 9.0)], [dead, assign("s", 2.0)])
            ]),),
        )
        q = propagate_guard_facts(p)
        # inside the else of (j == 1), the inner (j == 1) guard is dead
        text = str(q)
        assert "s = 1.0" not in text

    def test_loop_rebinding_kills_fact(self, rng):
        # fact (i == 1) must not survive into a new loop over i
        body = if_(
            ceq(i, 1),
            [loop("i", 1, N, [if_(ceq(i, 1), assign(idx("A", i), 5.0))])],
        )
        p = Program(
            "r", ("N",), (ArrayDecl("A", (N,)),), (),
            (loop("i", 1, N, [body]),),
        )
        q = propagate_guard_facts(p)
        x = run_compiled(p, {"N": 6})
        y = run_compiled(q, {"N": 6})
        assert np.allclose(x.arrays["A"], y.arrays["A"])

    def test_semantics_on_tiled_kernels(self):
        from repro.kernels import cholesky

        p = {"N": 11}
        inputs = cholesky.make_inputs(p)
        out = run_compiled(cholesky.tiled(3), p, inputs)
        assert np.allclose(out.arrays["A"], cholesky.reference(p, inputs)["A"])

    def test_unswitched_cholesky_hot_path_guard_free(self):
        from repro.ir import pretty
        from repro.kernels import cholesky

        text = pretty(cholesky.tiled(4))
        # the else branch (j > k+1, the bulk of iterations) has a bare update
        assert "else" in text
        tail = text[text.index("else"):]
        first_loop = tail[tail.index("do i"):]
        body_line = first_loop.splitlines()[1].strip()
        assert body_line.startswith("A(")
