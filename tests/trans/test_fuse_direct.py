"""Tests for classic (dependence-preserving) fusion."""

import numpy as np
import pytest

from repro.exec import run_compiled
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program
from repro.ir.stmt import Loop
from repro.trans.fuse_direct import fuse_all_legal, try_fuse_adjacent

N, i = sym("N"), sym("i")


def program_with(*nests, arrays=("A", "B", "C")):
    return Program(
        "p", ("N",), tuple(ArrayDecl(a, (N,)) for a in arrays), (), tuple(nests)
    )


def fill(a, value=1.0):
    return loop("i", 1, N, [assign(idx(a, i), value)])


def pointwise(dst, src, shift=0):
    index = i + shift if shift >= 0 else i - (-shift)
    return loop(
        "i", 1 + abs(shift), N - abs(shift), [assign(idx(dst, i), idx(src, index))]
    )


class TestTryFuse:
    def test_legal_pair_fused(self):
        p = program_with(fill("A"), loop("i", 1, N, [assign(idx("B", i), idx("A", i))]))
        fused = try_fuse_adjacent(p)
        assert fused is not None
        assert len(fused.body) == 1
        out = run_compiled(fused, {"N": 6})
        assert np.allclose(out.arrays["B"], 1.0)

    def test_fusion_preventing_pair_refused(self):
        # nest2 reads A(i+1): fusing reverses the flow dependence.
        n1 = loop("i", 1, N - 1, [assign(idx("A", i), 2.0)])
        n2 = loop("i", 1, N - 1, [assign(idx("B", i), idx("A", i + 1))])
        p = program_with(n1, n2)
        assert try_fuse_adjacent(p) is None

    def test_anti_preventing_pair_refused(self):
        # nest1 reads A(i-1), which nest2 overwrites at the earlier fused
        # iteration i-1: the anti-dependence is reversed.
        n1 = loop("i", 2, N, [assign(idx("B", i), idx("A", i - 1))])
        n2 = loop("i", 2, N, [assign(idx("A", i), 0.0)])
        p = program_with(n1, n2)
        assert try_fuse_adjacent(p) is None

    def test_forward_anti_read_is_legal(self):
        # reading A(i+1) while a later nest writes A(i) keeps its order
        # under fusion (write of element e at iter e follows the read of e
        # at iter e-1) — and the analysis knows it.
        n1 = loop("i", 1, N - 1, [assign(idx("B", i), idx("A", i + 1))])
        n2 = loop("i", 1, N - 1, [assign(idx("A", i), 0.0)])
        p = program_with(n1, n2)
        fused = try_fuse_adjacent(p)
        assert fused is not None
        rng = np.random.default_rng(0)
        a0 = rng.random(8)
        x = run_compiled(p, {"N": 8}, {"A": a0})
        y = run_compiled(fused, {"N": 8}, {"A": a0})
        assert np.allclose(x.arrays["B"], y.arrays["B"])
        assert np.allclose(x.arrays["A"], y.arrays["A"])

    def test_shape_mismatch_refused(self):
        p = program_with(fill("A"), loop("i", 2, N, [assign(idx("B", i), 0.0)]))
        assert try_fuse_adjacent(p) is None

    def test_different_loop_names_fused(self):
        n1 = fill("A")
        n2 = loop("j", 1, N, [assign(idx("B", sym("j")), idx("A", sym("j")))])
        p = program_with(n1, n2)
        fused = try_fuse_adjacent(p)
        assert fused is not None
        out = run_compiled(fused, {"N": 5})
        assert np.allclose(out.arrays["B"], 1.0)

    def test_bad_index(self):
        from repro.errors import TransformError

        with pytest.raises(TransformError):
            try_fuse_adjacent(program_with(fill("A")), 0)


class TestFuseAllLegal:
    def test_chain_collapses(self):
        p = program_with(
            fill("A"),
            loop("i", 1, N, [assign(idx("B", i), idx("A", i) + 1.0)]),
            loop("i", 1, N, [assign(idx("C", i), idx("B", i) * 2.0)]),
        )
        fused = fuse_all_legal(p)
        assert len(fused.body) == 1
        out = run_compiled(fused, {"N": 4})
        assert np.allclose(out.arrays["C"], 4.0)

    def test_illegal_link_splits_chain(self):
        p = program_with(
            fill("A"),
            loop("i", 1, N - 1, [assign(idx("B", i), idx("A", i + 1))]),
        )
        fused = fuse_all_legal(p)
        assert len(fused.body) == 2  # nothing fused

    def test_jacobi_sweeps_refused(self):
        # the paper's motivating case: plain fusion cannot merge Jacobi's
        # sweeps; FixDeps can.
        from repro.kernels import jacobi

        seq = jacobi.sequential()
        t_loop = seq.body[0]
        inner = seq.with_body(tuple(t_loop.body))
        assert try_fuse_adjacent(inner) is None

    def test_semantics_preserved_under_greedy_fusion(self, rng):
        p = program_with(
            loop("i", 1, N, [assign(idx("A", i), idx("A", i) * 0.5)]),
            loop("i", 1, N, [assign(idx("B", i), idx("A", i) + 1.0)]),
            loop("i", 1, N, [assign(idx("C", i), idx("B", i) - idx("A", i))]),
        )
        fused = fuse_all_legal(p)
        a0 = rng.random(7)
        x = run_compiled(p, {"N": 7}, {"A": a0})
        y = run_compiled(fused, {"N": 7}, {"A": a0})
        for name in ("A", "B", "C"):
            assert np.allclose(x.arrays[name], y.arrays[name])
