"""Legality proofs for the Section-4 reorderings.

These tests upgrade the tiled kernels from "validated by execution" to
"proven legal" wherever the dependences are affine:

- Cholesky: the (kt, j, k, i) tiling needs the (k, j) band permutable;
- QR: the (it, jt, i, j, k) tiling needs the (i, j) band permutable;
- Jacobi: raw time tiling is illegal; after the paper's skew it is proven
  fully permutable;
- LU: the pivot machinery is non-affine — the conservative analysis must
  *refuse* to prove it (execution validation covers LU).
"""

import pytest

from repro.deps.selfdeps import self_dependences
from repro.kernels import cholesky, jacobi, lu, qr
from repro.trans.legality import (
    fully_permutable,
    fully_permutable_under,
    permutation_legal,
    permutation_legal_exact,
    plausible_vectors,
)
from repro.trans.skew import matmul, permutation_matrix, skew_matrix

IDENT3 = [[1, 0, 0], [0, 1, 0], [0, 0, 1]]


@pytest.fixture(scope="module")
def jacobi_nest():
    return jacobi.fixed().body[-1]


@pytest.fixture(scope="module")
def cholesky_nest():
    return cholesky.fixed().body[0]


class TestSelfDependences:
    def test_cholesky_dep_inventory(self, cholesky_nest):
        deps = self_dependences(cholesky_nest)
        assert deps, "Cholesky carries dependences"
        kinds = {d.kind for d in deps}
        assert kinds == {"flow", "anti", "output"}

    def test_directions_are_lex_nonnegative(self, cholesky_nest):
        for dep in self_dependences(cholesky_nest):
            for vec in plausible_vectors(dep):
                # every plausible vector is lex >= 0 by construction
                lead = next((c for c in vec if c != 0), 0)
                assert lead >= 0

    def test_jacobi_time_carried_dependence(self, jacobi_nest):
        deps = self_dependences(jacobi_nest)
        # some dependence is carried by t with a negative space component —
        # the reason raw time tiling is illegal.
        assert any(
            "<" in d.directions[0] and ">" in d.directions[1] | d.directions[2]
            for d in deps
        )


class TestCholesky:
    def test_interchange_j_k_proven(self, cholesky_nest):
        assert permutation_legal_exact(cholesky_nest, (1, 0, 2))
        assert permutation_legal(cholesky_nest, (1, 0, 2))

    def test_fully_permutable(self, cholesky_nest):
        assert fully_permutable(cholesky_nest)
        assert fully_permutable_under(cholesky_nest, IDENT3)


class TestQR:
    def test_tiling_band_i_j_permutable(self):
        nest = qr.fixed().body[0]
        assert fully_permutable(nest, band=[0, 1])

    def test_k_not_interchangeable_to_front(self):
        nest = qr.fixed().body[0]
        # moving k outermost reverses the X flow dependences
        assert not permutation_legal_exact(nest, (2, 0, 1))


class TestJacobi:
    def test_raw_not_permutable(self, jacobi_nest):
        assert not fully_permutable_under(jacobi_nest, IDENT3)

    def test_paper_skew_proven_permutable(self, jacobi_nest):
        U = matmul(
            permutation_matrix((1, 2, 0)),
            skew_matrix(3, {1: {0: 1}, 2: {0: 1}}),
        )
        assert fully_permutable_under(jacobi_nest, U)

    def test_skew_without_permute_also_permutable(self, jacobi_nest):
        U = skew_matrix(3, {1: {0: 1}, 2: {0: 1}})
        assert fully_permutable_under(jacobi_nest, U)


class TestLU:
    def test_conservative_analysis_declines(self):
        nest = lu.fixed().body[0]
        # With the fuzzy pivot row, the analysis must not *prove* the
        # k-tiling band permutable — LU stays execution-validated.
        assert not fully_permutable(
            nest, band=[0, 1], value_ranges=lu.VALUE_RANGES,
            scalars=frozenset({"temp", "m", "d"}),
        )
