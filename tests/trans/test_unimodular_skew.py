"""Unit tests for unimodular transforms, skewing and permutation."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.exec import run_compiled
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program
from repro.trans.skew import matmul, permutation_matrix, skew_matrix
from repro.trans.unimodular import _invert_unimodular, unimodular_transform

N, i, j = sym("N"), sym("i"), sym("j")


def writes_order() -> Program:
    # B(i,j) = i * 100 + j records visit coordinates; order-insensitive
    # (each element written once), so any unimodular remap is legal.
    body = loop(
        "i", 1, N, [loop("j", 1, N, [assign(idx("B", i, j), i * 100 + j)])]
    )
    return Program("w", ("N",), (ArrayDecl("B", (N, N)),), (), (body,))


class TestInverse:
    def test_identity(self):
        assert _invert_unimodular([[1, 0], [0, 1]]) == [[1, 0], [0, 1]]

    def test_skew_inverse(self):
        inv = _invert_unimodular([[1, 0], [1, 1]])
        assert inv == [[1, 0], [-1, 1]]

    def test_non_unimodular_rejected(self):
        with pytest.raises(TransformError):
            _invert_unimodular([[2, 0], [0, 1]])

    def test_singular_rejected(self):
        with pytest.raises(TransformError):
            _invert_unimodular([[1, 1], [1, 1]])


class TestTransform:
    @pytest.mark.parametrize(
        "U",
        [
            [[1, 0], [0, 1]],
            [[0, 1], [1, 0]],          # interchange
            [[1, 0], [1, 1]],          # skew
            [[1, 1], [0, 1]],          # skew other way
        ],
    )
    def test_semantics_preserved(self, U):
        p = writes_order()
        q = unimodular_transform(p, U, new_names=("u", "v"))
        for n in (3, 6, 9):
            a = run_compiled(p, {"N": n}).arrays["B"]
            b = run_compiled(q, {"N": n}).arrays["B"]
            assert np.allclose(a, b)

    def test_wrong_shape_rejected(self):
        with pytest.raises(TransformError):
            unimodular_transform(writes_order(), [[1]])


class TestSkewHelpers:
    def test_skew_matrix(self):
        U = skew_matrix(3, {1: {0: 1}, 2: {0: 1}})
        assert U == [[1, 0, 0], [1, 1, 0], [1, 0, 1]]

    def test_diagonal_skew_rejected(self):
        with pytest.raises(TransformError):
            skew_matrix(2, {0: {0: 1}})

    def test_permutation_matrix(self):
        P = permutation_matrix((1, 2, 0))
        assert P == [[0, 1, 0], [0, 0, 1], [1, 0, 0]]

    def test_bad_permutation(self):
        with pytest.raises(TransformError):
            permutation_matrix((0, 0, 1))

    def test_matmul(self):
        assert matmul([[1, 1], [0, 1]], [[1, 0], [1, 1]]) == [[2, 1], [1, 1]]

    def test_composite_jacobi_matrix_unimodular(self):
        U = matmul(
            permutation_matrix((1, 2, 0)),
            skew_matrix(3, {1: {0: 1}, 2: {0: 1}}),
        )
        _invert_unimodular(U)  # must not raise
