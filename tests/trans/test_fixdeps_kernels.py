"""FixDeps end-to-end per kernel: the executable Theorems 1 and 2.

For every kernel and several problem sizes, the fixed (Figure-4) program
must have the same input/output behaviour as the sequential (Figure-1)
program — and so must the fusable pre-form and the final tiled variant.
"""

import numpy as np
import pytest

from repro.exec import run_compiled
from repro.kernels.registry import KERNELS, get_kernel

SIZES = (6, 9, 13)
TILES = (3, 5)
RTOL = 1e-8
ATOL = 1e-10


def _params(mod, n):
    p = {"N": n}
    if "M" in mod.PARAMS:
        p["M"] = 4
    return p


def _check(mod, program, n):
    params = _params(mod, n)
    inputs = mod.make_inputs(params)
    ref = mod.reference(params, inputs)
    out = run_compiled(program, params, inputs)
    for name in program.outputs:
        if name in ref:
            assert np.allclose(
                out.arrays[name], ref[name], rtol=RTOL, atol=ATOL
            ), f"{program.name} diverges on {name} at N={n}"


@pytest.mark.parametrize("kernel", KERNELS)
class TestVariantsEquivalent:
    def test_sequential_matches_reference(self, kernel):
        mod = get_kernel(kernel)
        for n in SIZES:
            _check(mod, mod.sequential(), n)

    def test_fusable_matches_reference(self, kernel):
        mod = get_kernel(kernel)
        for n in SIZES:
            _check(mod, mod.fusable(), n)

    def test_fixed_matches_reference(self, kernel):
        mod = get_kernel(kernel)
        fixed = mod.fixed()
        for n in SIZES:
            _check(mod, fixed, n)

    def test_tiled_matches_reference(self, kernel):
        mod = get_kernel(kernel)
        for tile in TILES:
            tiled = mod.tiled(tile)
            for n in SIZES:
                _check(mod, tiled, n)


class TestPaperFindings:
    def test_lu_fix_is_the_p_loop(self):
        lu = get_kernel("lu")
        report = lu.fixdeps_report()
        assert report.ww_wr.collapsed_groups() == {3: ("i",)}
        assert report.rw.insertions == ()

    def test_qr_fix_includes_norm_collapse(self):
        qr = get_kernel("qr")
        report = qr.fixdeps_report()
        assert 2 in report.ww_wr.collapsed_groups()
        assert report.rw.insertions == ()

    def test_cholesky_needs_nothing(self):
        ch = get_kernel("cholesky")
        report = ch.fixdeps_report()
        assert report.ww_wr.collapsed_groups() == {}
        assert report.rw.insertions == ()

    def test_jacobi_fixed_by_copying_only(self):
        ja = get_kernel("jacobi")
        report = ja.fixdeps_report()
        assert report.ww_wr.collapsed_groups() == {}
        assert [i.array for i in report.rw.insertions] == ["A"]

    def test_no_extra_space_for_factorisations(self):
        # Sec. 3.2: "No extra memory space is introduced for these kernels."
        for kernel in ("lu", "qr", "cholesky"):
            mod = get_kernel(kernel)
            seq_arrays = {a.name for a in mod.sequential().arrays}
            fixed_arrays = {a.name for a in mod.fixed().arrays}
            assert fixed_arrays == seq_arrays

    def test_jacobi_fixed_matches_figure4d_shape(self):
        from repro.ir import pretty

        text = pretty(get_kernel("jacobi").fixed())
        assert "H_A(j,i) = A(j,i)" in text  # per-iteration copy
        assert text.count("do c") >= 2  # boundary pre-copy loops
        assert "merge(" not in text  # guards simplified away
