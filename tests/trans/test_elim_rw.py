"""Unit tests for ElimRW (the copying half of FixDeps)."""

import numpy as np
import pytest

from repro.exec import run_compiled
from repro.ir import pretty
from repro.kernels import jacobi
from repro.trans.elim_rw import eliminate_rw
from repro.trans.elim_ww_wr import eliminate_ww_wr


@pytest.fixture(scope="module")
def jacobi_prepared():
    return eliminate_ww_wr(jacobi.fused_nest()).nest


class TestJacobiCopies:
    def test_copy_array_introduced(self, jacobi_prepared):
        out = eliminate_rw(jacobi_prepared)
        (ins,) = out.insertions
        assert ins.array == "A" and ins.copy_array == "H_A"
        assert out.nest.base.has_array("H_A")

    def test_precopy_simplification_applies(self, jacobi_prepared):
        out = eliminate_rw(jacobi_prepared)
        (ins,) = out.insertions
        # both backward-neighbour reads are pre-copied (boundary strips)
        assert ins.precopied_reads == 2 and ins.redirected_reads == 0
        assert out.nest.preamble  # boundary copy loops exist

    def test_exact_mode_uses_guarded_select(self, jacobi_prepared):
        out = eliminate_rw(jacobi_prepared, simplify=False)
        (ins,) = out.insertions
        assert ins.redirected_reads == 2
        text = pretty(out.nest.to_program())
        assert "merge(" in text

    def test_widen_vs_exact_copies(self, jacobi_prepared):
        widened = eliminate_rw(jacobi_prepared, widen_copies=True)
        exact = eliminate_rw(jacobi_prepared, widen_copies=False)
        w_text = pretty(widened.nest.to_program())
        e_text = pretty(exact.nest.to_program())
        # widened copy is unguarded (Fig. 4d); exact copies carry guards
        assert "H_A(j,i) = A(j,i)" in w_text
        assert e_text.count("if (") > w_text.count("if (")

    @pytest.mark.parametrize("simplify", [True, False])
    @pytest.mark.parametrize("widen", [True, False])
    def test_all_modes_semantically_correct(self, jacobi_prepared, simplify, widen):
        out = eliminate_rw(jacobi_prepared, simplify=simplify, widen_copies=widen)
        program = out.nest.to_program("jacobi_rw")
        params = {"N": 9, "M": 3}
        inputs = jacobi.make_inputs(params)
        result = run_compiled(program, params, inputs)
        ref = jacobi.reference(params, inputs)
        assert np.allclose(result.arrays["A"], ref["A"])

    def test_copy_placed_in_second_group(self, jacobi_prepared):
        out = eliminate_rw(jacobi_prepared)
        g2 = next(g for g in out.nest.groups if g.index == 2)
        assert g2.prologue, "copies must precede the writeback group"

    def test_no_violations_no_changes(self):
        from repro.kernels import cholesky

        nest = eliminate_ww_wr(cholesky.fused_nest()).nest
        out = eliminate_rw(nest)
        assert out.insertions == ()
        assert out.nest is nest
