"""Unit tests for embeddings and fused-nest construction."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.exec import run_compiled
from repro.ir import pretty
from repro.ir.builder import assign, idx, loop, sym, val
from repro.ir.program import ArrayDecl, Program
from repro.trans.fusion import NestEmbedding, fuse_siblings
from repro.kernels import cholesky, jacobi

N, i, j, k = sym("N"), sym("i"), sym("j"), sym("k")


def two_nests() -> Program:
    a_fill = loop("i", 1, N, [assign(idx("A", i), 1.0)])
    b_fill = loop("i", 1, N, [assign(idx("B", i), idx("A", i) * 2.0)])
    return Program(
        "p", ("N",), (ArrayDecl("A", (N,)), ArrayDecl("B", (N,))), (), (a_fill, b_fill)
    )


class TestFuseSiblings:
    def test_basic_fusion_runs_and_is_correct(self):
        ident = NestEmbedding(var_map={"i": "i"})
        nest = fuse_siblings(two_nests(), [("i", val(1), N)], [ident, ident])
        fused = nest.to_program()
        out = run_compiled(fused, {"N": 5})
        # legal here: element-wise producer/consumer at same iteration
        assert np.allclose(out.arrays["B"], 2.0)

    def test_group_count_and_indices(self):
        ident = NestEmbedding(var_map={"i": "i"})
        nest = fuse_siblings(two_nests(), [("i", val(1), N)], [ident, ident])
        assert [g.index for g in nest.groups] == [1, 2]

    def test_embedding_count_mismatch(self):
        with pytest.raises(TransformError):
            fuse_siblings(two_nests(), [("i", val(1), N)], [NestEmbedding({"i": "i"})])

    def test_unmapped_loop_var_rejected(self):
        with pytest.raises(TransformError):
            fuse_siblings(
                two_nests(), [("i", val(1), N)], [NestEmbedding(), NestEmbedding()]
            )

    def test_placement_outside_space_rejected(self):
        # place a depth-0 statement at i = N + 1, outside [1, N]
        p = Program(
            "p",
            ("N",),
            (ArrayDecl("A", (N,)),),
            (),
            (assign(idx("A", val(1)), 1.0), loop("i", 1, N, [assign(idx("A", i), 2.0)])),
        )
        with pytest.raises(TransformError):
            fuse_siblings(
                p,
                [("i", val(1), N)],
                [NestEmbedding(placement={"i": N + 1}), NestEmbedding(var_map={"i": "i"})],
            )

    def test_non_injective_var_map_rejected(self):
        p = Program(
            "p",
            ("N",),
            (ArrayDecl("C", (N, N)),),
            (),
            (
                loop("i", 1, N, [loop("j", 1, N, [assign(idx("C", i, j), 1.0)])]),
            ),
        )
        with pytest.raises(TransformError):
            fuse_siblings(
                p,
                [("x", val(1), N), ("y", val(1), N)],
                [NestEmbedding(var_map={"i": "x", "j": "x"})],
            )


class TestKernelFusions:
    def test_jacobi_matches_figure3d_shape(self):
        text = pretty(jacobi.fused_nest().to_program())
        # one t loop, one i loop, one j loop, both statements in one body
        assert text.count("do ") == 3

    def test_cholesky_matches_figure3c_guards(self):
        text = pretty(cholesky.fused_nest().to_program())
        assert "j .EQ. k + 1 .AND. i .EQ. k + 1" in text or (
            "i .EQ. k + 1" in text and "j .EQ. k + 1" in text
        )

    def test_fused_jacobi_is_wrong_without_fixing(self):
        params = {"N": 8, "M": 2}
        inputs = jacobi.make_inputs(params)
        fused = jacobi.fused_nest().to_program()
        out = run_compiled(fused, params, inputs)
        ref = jacobi.reference(params, inputs)
        assert not np.allclose(out.arrays["A"], ref["A"])

    def test_epilogue_preserved(self):
        prog = cholesky.fused_nest().to_program()
        assert "A(N,N) = sqrt(A(N,N))" in pretty(prog)
