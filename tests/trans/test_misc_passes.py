"""Unit tests for sinking, peeling, scalar expansion and cleanups."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.exec import run_compiled
from repro.ir.builder import assign, ceq, cne, idx, if_, loop, sym, val
from repro.ir.program import ArrayDecl, Program, ScalarDecl
from repro.ir.stmt import If, Loop
from repro.trans.cleanup import scalarize_arrays, simplify_trivial_guards
from repro.trans.expand import expand_scalar
from repro.trans.peel import peel_last, substitute_var
from repro.trans.sinking import sink_guards

N, i, j, k, m = sym("N"), sym("i"), sym("j"), sym("k"), sym("m")


class TestSinking:
    def test_invariant_guard_sunk(self):
        s = if_(cne(m, k), loop("j", 1, N, [assign(idx("A", j), 0.0)]))
        out = sink_guards(s)
        assert isinstance(out, Loop)
        assert isinstance(out.body[0], If)

    def test_guard_on_loop_var_not_sunk(self):
        s = if_(ceq(j, 1), loop("j", 1, N, [assign(idx("A", j), 0.0)]))
        out = sink_guards(s)
        assert isinstance(out, If)

    def test_guard_on_written_scalar_not_sunk(self):
        s = if_(cne(m, k), loop("j", 1, N, [assign("m", j)]))
        out = sink_guards(s)
        assert isinstance(out, If)

    def test_recursive_sinking(self):
        inner = loop("i", 1, N, [assign(idx("A", i), 1.0)])
        s = if_(cne(m, k), loop("j", 1, N, [if_(ceq(k, 1), inner)]))
        out = sink_guards(s)
        # both guards end up inside the innermost loop
        assert isinstance(out, Loop)
        assert isinstance(out.body[0], Loop)
        assert isinstance(out.body[0].body[0], If)


class TestPeel:
    def test_substitute_var(self):
        s = assign(idx("A", i), i + 1)
        out = substitute_var(s, "i", N)
        assert str(out) == "A(N) = N + 1"

    def test_peel_last_semantics(self):
        body = loop("i", 1, N, [assign(idx("A", i), 3.0)])
        shortened, peeled = peel_last(body)
        p1 = Program("a", ("N",), (ArrayDecl("A", (N,)),), (), (body,))
        p2 = Program("b", ("N",), (ArrayDecl("A", (N,)),), (), (shortened,) + peeled)
        for n in (1, 4, 9):
            x = run_compiled(p1, {"N": n}).arrays["A"]
            y = run_compiled(p2, {"N": n}).arrays["A"]
            assert np.allclose(x, y)

    def test_nonunit_step_rejected(self):
        with pytest.raises(TransformError):
            peel_last(loop("i", 1, N, [assign("x", 1)], step=2))


class TestExpandScalar:
    def test_lu_style_expansion(self):
        body = loop(
            "k",
            1,
            N,
            [assign("s", k), assign(idx("A", k), sym("s") * 2)],
        )
        p = Program("p", ("N",), (ArrayDecl("A", (N,)),), (ScalarDecl("s"),), (body,))
        q = expand_scalar(p, "s", "k", N)
        assert any(a.name == "s_x" for a in q.arrays)
        for n in (3, 6):
            a = run_compiled(p, {"N": n}).arrays["A"]
            b = run_compiled(q, {"N": n}).arrays["A"]
            assert np.allclose(a, b)

    def test_occurrences_outside_loop_untouched(self):
        body = (
            assign("s", 5.0),
            loop("k", 1, N, [assign(idx("A", k), sym("s"))]),
        )
        p = Program("p", ("N",), (ArrayDecl("A", (N,)),), (ScalarDecl("s"),), body)
        q = expand_scalar(p, "s", "k", N)
        # the write before the loop still targets the scalar
        assert str(q.body[0]) == "s = 5.0"

    def test_missing_scalar_rejected(self):
        p = Program("p", ("N",), (ArrayDecl("A", (N,)),), (), ())
        with pytest.raises(TransformError):
            expand_scalar(p, "zz", "k", N)


class TestCleanup:
    def test_scalarize_temporary(self):
        body = loop(
            "i",
            1,
            N,
            [
                assign(idx("L", i), idx("A", i) * 2.0),
                assign(idx("A", i), idx("L", i)),
            ],
        )
        p = Program(
            "p",
            ("N",),
            (ArrayDecl("A", (N,)), ArrayDecl("L", (N,))),
            (),
            (body,),
            outputs=("A",),
        )
        q = scalarize_arrays(p, ["L"])
        assert not q.has_array("L") and q.has_scalar("l_s")
        for n in (4, 7):
            a = run_compiled(p, {"N": n}).arrays["A"]
            b = run_compiled(q, {"N": n}).arrays["A"]
            assert np.allclose(a, b)

    def test_scalarize_rejects_cross_iteration_use(self):
        body = loop(
            "i",
            2,
            N,
            [
                assign(idx("A", i), idx("L", i - 1)),
                assign(idx("L", i), idx("A", i)),
            ],
        )
        p = Program(
            "p",
            ("N",),
            (ArrayDecl("A", (N,)), ArrayDecl("L", (N,))),
            (),
            (body,),
            outputs=("A",),
        )
        with pytest.raises(TransformError):
            scalarize_arrays(p, ["L"])

    def test_outputs_never_scalarised(self):
        body = loop("i", 1, N, [assign(idx("A", i), 0.0)])
        p = Program("p", ("N",), (ArrayDecl("A", (N,)),), (), (body,), outputs=("A",))
        assert scalarize_arrays(p, None) is p or scalarize_arrays(p, None).has_array("A")

    def test_simplify_trivial_guards(self):
        s = if_(ceq(val(0), val(0)), assign("x", 1))
        p = Program("p", (), (), (ScalarDecl("x"),), (s,))
        out = simplify_trivial_guards(p)
        assert not isinstance(out.body[0], If)
