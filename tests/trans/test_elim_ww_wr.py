"""Unit tests for ElimWW_WR (the tiling half of FixDeps)."""

import numpy as np

from repro.deps.fusionpreventing import violated_dependences
from repro.exec import run_compiled
from repro.kernels import cholesky, jacobi, lu, qr
from repro.trans.elim_ww_wr import eliminate_ww_wr


class TestPerKernel:
    def test_cholesky_untouched(self):
        out = eliminate_ww_wr(cholesky.fused_nest())
        assert out.collapsed_groups() == {}

    def test_jacobi_untouched(self):
        out = eliminate_ww_wr(jacobi.fused_nest())
        assert out.collapsed_groups() == {}

    def test_lu_collapses_search_i(self):
        out = eliminate_ww_wr(lu.fused_nest(), value_ranges=lu.VALUE_RANGES)
        assert out.collapsed_groups() == {3: ("i",)}

    def test_qr_collapses_three_groups(self):
        out = eliminate_ww_wr(qr.fused_nest())
        assert out.collapsed_groups() == {2: ("k",), 6: ("j",), 8: ("k",)}

    def test_theorem1_no_remaining_flow_output(self):
        # Mechanical Theorem 1: after the pass, zero flow/output violations.
        for nest, vr in [
            (lu.fused_nest(), lu.VALUE_RANGES),
            (qr.fused_nest(), None),
        ]:
            fixed = eliminate_ww_wr(nest, value_ranges=vr)
            assert (
                violated_dependences(
                    fixed.nest, ("flow", "output"), value_ranges=vr
                )
                == []
            )


class TestGeneratedCode:
    def test_lu_p_loop_emitted(self):
        out = eliminate_ww_wr(lu.fused_nest(), value_ranges=lu.VALUE_RANGES)
        text = str(out.nest.to_program())
        # the collapsed pivot search becomes a sweep loop at the origin
        assert "do is" in text
        assert "i .EQ. k" in text

    def test_qr_collapsed_code_correct(self):
        out = eliminate_ww_wr(qr.fused_nest())
        program = out.nest.to_program("qr_elim")
        params = {"N": 9}
        inputs = qr.make_inputs(params)
        result = run_compiled(program, params, inputs)
        ref = qr.reference(params, inputs)
        assert np.allclose(result.arrays["A"], ref["A"], rtol=1e-9)

    def test_rounds_audit(self):
        out = eliminate_ww_wr(qr.fused_nest())
        touched = [r for r in out.rounds if r.collapsed_dims]
        assert all(r.violations for r in touched)
        assert all(r.distances is not None for r in touched)
