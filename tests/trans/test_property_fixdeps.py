"""Property test: FixDeps on random producer/consumer nest pairs.

Two 1-D nests over shared arrays with random shifted accesses generate
every dependence flavour (flow, anti, output; forward and backward
shifts). For each random program the test checks:

1. the *fixed* fused program matches the unfused original on random
   inputs (Theorem 2, executably);
2. whenever the polyhedral analysis reports **no** violations, the naive
   fusion itself is already correct (no false negatives on these shapes).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.deps.fusionpreventing import violated_dependences
from repro.exec import run_compiled
from repro.ir import val
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program
from repro.trans.fixdeps import fix_dependences
from repro.trans.fusion import NestEmbedding, fuse_siblings

N = sym("N")
MAX_SHIFT = 2


def _ref(array: str, shift: int):
    i = sym("i")
    return idx(array, i + shift if shift >= 0 else i - (-shift))


@st.composite
def nest_pair(draw):
    """(program, description) with nest1: B(i) = f(A, B?) and
    nest2: A(i) = g(A?, B)."""
    s1 = draw(st.integers(-MAX_SHIFT, MAX_SHIFT))  # nest1 reads A(i+s1)
    s2 = draw(st.integers(-MAX_SHIFT, MAX_SHIFT))  # nest2 reads B(i+s2)
    s3 = draw(st.integers(-MAX_SHIFT, MAX_SHIFT))  # nest2 also reads A(i+s3)
    use_extra_a = draw(st.booleans())
    c1 = draw(st.floats(0.5, 2.0))
    c2 = draw(st.floats(0.5, 2.0))

    lo = val(1 + MAX_SHIFT)
    hi = N - MAX_SHIFT
    nest1 = loop("i", lo, hi, [assign(_ref("B", 0), _ref("A", s1) * c1 + 1.0)])
    value2 = _ref("B", s2) * c2
    if use_extra_a:
        value2 = value2 + _ref("A", s3)
    nest2 = loop("i", lo, hi, [assign(_ref("A", 0), value2)])
    program = Program(
        "pair",
        ("N",),
        (ArrayDecl("A", (N,)), ArrayDecl("B", (N,))),
        (),
        (nest1, nest2),
        outputs=("A", "B"),
    )
    return program, (s1, s2, s3, use_extra_a)


@given(nest_pair(), st.integers(8, 16), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_fixdeps_preserves_semantics(pair, n, seed):
    program, _meta = pair
    ident = NestEmbedding(var_map={"i": "i"})
    nest = fuse_siblings(
        program,
        [("i", val(1 + MAX_SHIFT), N - MAX_SHIFT)],
        [ident, ident],
    )
    report = fix_dependences(nest)
    fixed = report.program("pair_fixed")

    rng = np.random.default_rng(seed)
    inputs = {"A": rng.uniform(-1, 1, n), "B": rng.uniform(-1, 1, n)}
    want = run_compiled(program, {"N": n}, inputs)
    got = run_compiled(fixed, {"N": n}, inputs)
    assert np.allclose(got.arrays["A"], want.arrays["A"]), _meta
    assert np.allclose(got.arrays["B"], want.arrays["B"]), _meta


@given(nest_pair(), st.integers(8, 16), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_no_violations_means_fusion_already_legal(pair, n, seed):
    program, _meta = pair
    ident = NestEmbedding(var_map={"i": "i"})
    nest = fuse_siblings(
        program,
        [("i", val(1 + MAX_SHIFT), N - MAX_SHIFT)],
        [ident, ident],
    )
    if violated_dependences(nest):
        return  # covered by the other property
    fused = nest.to_program()
    rng = np.random.default_rng(seed)
    inputs = {"A": rng.uniform(-1, 1, n), "B": rng.uniform(-1, 1, n)}
    want = run_compiled(program, {"N": n}, inputs)
    got = run_compiled(fused, {"N": n}, inputs)
    assert np.allclose(got.arrays["A"], want.arrays["A"]), _meta
    assert np.allclose(got.arrays["B"], want.arrays["B"]), _meta
