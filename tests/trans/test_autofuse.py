"""Auto-derived embeddings must reproduce the hand-written Figure-3 ones
(up to program equivalence)."""

import numpy as np
import pytest

from repro.exec import run_compiled
from repro.ir import val
from repro.kernels import cholesky, jacobi, lu, qr
from repro.trans.autofuse import auto_fuse, derive_embedding
from repro.trans.fixdeps import fix_dependences


def _check_equivalent(mod, nest, value_ranges=None, n=9, extra=None):
    report = fix_dependences(nest, value_ranges=value_ranges)
    program = report.program("auto_fixed")
    params = {"N": n}
    if "M" in mod.PARAMS:
        params["M"] = 3
    inputs = mod.make_inputs(params)
    out = run_compiled(program, params, inputs)
    ref = mod.reference(params, inputs)
    for name in program.outputs:
        if name in ref:
            assert np.allclose(out.arrays[name], ref[name], rtol=1e-8, atol=1e-10)
    return report


class TestDeriveEmbedding:
    def test_depth_zero_placed_at_origin(self):
        from repro.ir.builder import assign, sym

        emb = derive_embedding(
            assign("x", 1), [("j", sym("k") + 1, sym("N")), ("i", sym("k"), sym("N"))]
        )
        assert emb.var_map == {}
        assert set(emb.placement) == {"j", "i"}

    def test_positional_tail_alignment(self):
        from repro.ir.builder import assign, idx, loop, sym

        item = loop("p", 1, sym("N"), [assign(idx("A", sym("p")), 0.0)])
        emb = derive_embedding(
            item, [("j", val(1), sym("N")), ("i", val(1), sym("N"))]
        )
        assert emb.var_map == {"p": "i"}
        assert set(emb.placement) == {"j"}

    def test_too_deep_rejected(self):
        from repro.errors import TransformError
        from repro.ir.builder import assign, idx, loop, sym

        item = loop(
            "a", 1, sym("N"), [loop("b", 1, sym("N"), [assign(idx("A", sym("a"), sym("b")), 0.0)])]
        )
        with pytest.raises(TransformError):
            derive_embedding(item, [("i", val(1), sym("N"))])


class TestAutoFuseKernels:
    def test_jacobi(self):
        from repro.kernels.jacobi import _N

        nest = auto_fuse(
            jacobi.fusable(),
            [("i", val(2), _N - 1), ("j", val(2), _N - 1)],
            context_depth=1,
        )
        report = _check_equivalent(jacobi, nest)
        assert [i.array for i in report.rw.insertions] == ["A"]

    def test_cholesky(self):
        from repro.kernels.cholesky import _N, _j, _k

        nest = auto_fuse(
            cholesky.fusable(),
            [("j", _k + 1, _N), ("i", _j, _N)],
            context_depth=1,
            epilogue_from=1,
        )
        report = _check_equivalent(cholesky, nest)
        assert report.ww_wr.collapsed_groups() == {}

    def test_qr(self):
        from repro.kernels.qr import _N, _i

        nest = auto_fuse(
            qr.fusable(),
            [("j", _i, _N), ("k", _i, _N)],
            context_depth=1,
        )
        report = _check_equivalent(qr, nest)
        assert 2 in report.ww_wr.collapsed_groups()

    def test_lu(self):
        from repro.kernels.lu import _N, _k

        nest = auto_fuse(
            lu.fusable(),
            [("j", _k + 1, _N), ("i", _k, _N)],
            context_depth=1,
            epilogue_from=1,
        )
        report = _check_equivalent(lu, nest, value_ranges=lu.VALUE_RANGES)
        assert 3 in report.ww_wr.collapsed_groups()
