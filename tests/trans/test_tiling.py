"""Unit tests for the rectangular tiling code generator."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.exec import run_compiled
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program
from repro.trans.tiling import tile_perfect_nest, tile_program

N, i, j = sym("N"), sym("i"), sym("j")


def sweep() -> Program:
    body = loop(
        "i", 1, N, [loop("j", 1, N, [assign(idx("A", i, j), idx("A", i, j) + 1.0)])]
    )
    return Program("sweep", ("N",), (ArrayDecl("A", (N, N)),), (), (body,))


def triangle() -> Program:
    body = loop(
        "i", 1, N, [loop("j", i, N, [assign(idx("A", i, j), idx("A", i, j) + 1.0)])]
    )
    return Program("tri", ("N",), (ArrayDecl("A", (N, N)),), (), (body,))


def run_equal(p, q, n):
    a = run_compiled(p, {"N": n}).arrays["A"]
    b = run_compiled(q, {"N": n}).arrays["A"]
    assert np.allclose(a, b)


class TestTileProgram:
    @pytest.mark.parametrize("tile", [1, 2, 3, 7, 16])
    def test_rectangular_coverage(self, tile):
        tiled = tile_program(sweep(), {"i": tile, "j": tile})
        for n in (1, 5, 8, 13):
            run_equal(sweep(), tiled, n)

    @pytest.mark.parametrize("tile", [2, 3, 5])
    def test_triangular_coverage(self, tile):
        tiled = tile_program(triangle(), {"i": tile, "j": tile})
        for n in (4, 7, 11):
            run_equal(triangle(), tiled, n)

    def test_partial_tiling(self):
        tiled = tile_program(sweep(), {"j": 4})
        run_equal(sweep(), tiled, 10)

    def test_custom_order(self):
        tiled = tile_program(sweep(), {"i": 3, "j": 3}, order=["jt", "it", "j", "i"])
        run_equal(sweep(), tiled, 9)

    def test_tile_loop_steps(self):
        tiled = tile_program(sweep(), {"i": 4})
        text = str(tiled)
        assert "do it = 1, N, 4" in text

    def test_unknown_var_rejected(self):
        with pytest.raises(TransformError):
            tile_program(sweep(), {"z": 4})

    def test_bad_tile_size_rejected(self):
        with pytest.raises(TransformError):
            tile_program(sweep(), {"i": 0})

    def test_bad_order_rejected(self):
        with pytest.raises(TransformError):
            tile_program(sweep(), {"i": 4}, order=["it", "i"])

    def test_name_collision_avoided(self):
        p = Program(
            "p",
            ("N",),
            (ArrayDecl("A", (N, N)), ArrayDecl("it", (N,))),
            (),
            sweep().body,
        )
        nest, names = tile_perfect_nest(
            p.body[0], {"i": 2}, reserved=frozenset(p.all_names())
        )
        assert names["i"] != "it"

    def test_non_loop_rejected(self):
        with pytest.raises(TransformError):
            tile_perfect_nest(assign("x", 1), {"i": 2})
