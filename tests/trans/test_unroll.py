"""Unit tests for unrolling and unroll-and-jam."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.exec import run_compiled
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program
from repro.trans.unroll import unroll_and_jam_program, unroll_program

N, i, j = sym("N"), sym("i"), sym("j")


def vec_program() -> Program:
    body = loop("i", 1, N, [assign(idx("A", i), idx("A", i) * 2.0 + 1.0)])
    return Program("v", ("N",), (ArrayDecl("A", (N,)),), (), (body,))


def mat_program() -> Program:
    body = loop(
        "i",
        1,
        N,
        [loop("j", 1, N, [assign(idx("B", i, j), idx("B", i, j) + i * 1.0)])],
    )
    return Program("m", ("N",), (ArrayDecl("B", (N, N)),), (), (body,))


class TestUnroll:
    @pytest.mark.parametrize("factor", [2, 3, 4, 7])
    @pytest.mark.parametrize("n", [1, 2, 5, 8, 13])
    def test_semantics_all_remainders(self, factor, n, rng):
        p = vec_program()
        q = unroll_program(p, "i", factor)
        a0 = rng.random(n)
        x = run_compiled(p, {"N": n}, {"A": a0}).arrays["A"]
        y = run_compiled(q, {"N": n}, {"A": a0}).arrays["A"]
        assert np.allclose(x, y)

    def test_loop_overhead_reduced(self):
        p = vec_program()
        q = unroll_program(p, "i", 4)
        n = 32
        cp = run_compiled(p, {"N": n}).counters
        cq = run_compiled(q, {"N": n}).counters
        assert cq.loop_iters < cp.loop_iters
        assert cq.loads == cp.loads  # same work

    def test_missing_loop(self):
        with pytest.raises(TransformError):
            unroll_program(vec_program(), "z", 2)

    def test_bad_factor(self):
        with pytest.raises(TransformError):
            unroll_program(vec_program(), "i", 0)

    def test_inner_loop_unrollable(self, rng):
        p = mat_program()
        q = unroll_program(p, "j", 3)
        n = 7
        b0 = rng.random((n, n))
        x = run_compiled(p, {"N": n}, {"B": b0}).arrays["B"]
        y = run_compiled(q, {"N": n}, {"B": b0}).arrays["B"]
        assert np.allclose(x, y)


class TestUnrollAndJam:
    @pytest.mark.parametrize("factor", [2, 3, 5])
    @pytest.mark.parametrize("n", [2, 6, 9, 11])
    def test_semantics(self, factor, n, rng):
        p = mat_program()
        q = unroll_and_jam_program(p, "i", factor)
        b0 = rng.random((n, n))
        x = run_compiled(p, {"N": n}, {"B": b0}).arrays["B"]
        y = run_compiled(q, {"N": n}, {"B": b0}).arrays["B"]
        assert np.allclose(x, y)

    def test_inner_trip_overhead_drops(self):
        p = mat_program()
        q = unroll_and_jam_program(p, "i", 4)
        n = 16
        cp = run_compiled(p, {"N": n}).counters
        cq = run_compiled(q, {"N": n}).counters
        assert cq.loop_iters < cp.loop_iters

    def test_triangular_rejected(self):
        body = loop(
            "i", 1, N, [loop("j", i, N, [assign(idx("B", i, j), 1.0)])]
        )
        p = Program("t", ("N",), (ArrayDecl("B", (N, N)),), (), (body,))
        with pytest.raises(TransformError):
            unroll_and_jam_program(p, "i", 2)

    def test_imperfect_rejected(self):
        body = loop("i", 1, N, [assign(idx("A", i), 0.0)])
        p = Program("t", ("N",), (ArrayDecl("A", (N,)),), (), (body,))
        with pytest.raises(TransformError):
            unroll_and_jam_program(p, "i", 2)

    def test_locality_benefit(self):
        # jamming i makes each j iteration touch B(i..i+3, j) — adjacent
        # elements in column-major layout — instead of revisiting the row
        # across separate outer iterations: L1 misses (and cycles) drop even
        # though the boundary guards add instructions.
        p = mat_program()
        q = unroll_and_jam_program(p, "i", 4)
        params = {"N": 48}
        rep_p = _measure(p, params)
        rep_q = _measure(q, params)
        assert rep_q.l1_misses < rep_p.l1_misses
        assert rep_q.total_cycles < rep_p.total_cycles


def _measure(program, params):
    from repro.exec.compiled import CompiledProgram
    from repro.machine import measure, octane2_scaled

    cp = CompiledProgram(program, trace=True)
    return measure(cp.run(params), program, params, octane2_scaled())
