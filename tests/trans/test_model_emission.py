"""Edge-case tests for fused-nest code emission (trans.model)."""

import numpy as np
import pytest

from repro.exec import run_compiled
from repro.ir import pretty, val
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program
from repro.trans.fusion import NestEmbedding, fuse_siblings
from repro.trans.model import assumed_param_domain, primed

N, i, j, k = sym("N"), sym("j"), sym("j"), sym("k")


def two_phase() -> Program:
    """Reduce-into-S then broadcast-S program (forces a collapse)."""
    n1 = loop("i", 1, sym("N"), [assign(idx("S", val(1)), idx("S", val(1)) + idx("A", sym("i")))])
    n2 = loop("i", 1, sym("N"), [assign(idx("B", sym("i")), idx("S", val(1)))])
    return Program(
        "tp",
        ("N",),
        (ArrayDecl("A", (sym("N"),)), ArrayDecl("B", (sym("N"),)), ArrayDecl("S", (val(4),))),
        (),
        (n1, n2),
        outputs=("B",),
    )


class TestCollapsedEmission:
    def test_reduction_collapse_and_sweep(self):
        from repro.trans.fixdeps import fix_dependences

        ident = NestEmbedding(var_map={"i": "i"})
        nest = fuse_siblings(two_phase(), [("i", val(1), sym("N"))], [ident, ident])
        report = fix_dependences(nest)
        assert report.ww_wr.collapsed_groups() == {1: ("i",)}
        program = report.program("tp_fixed")
        text = pretty(program)
        assert "do is" in text  # the sweep loop
        out = run_compiled(program, {"N": 6}, {"A": np.arange(1.0, 7.0)})
        assert np.allclose(out.arrays["B"], 21.0)

    def test_origin_guard_at_lower_bound(self):
        from repro.trans.elim_ww_wr import eliminate_ww_wr

        ident = NestEmbedding(var_map={"i": "i"})
        nest = fuse_siblings(two_phase(), [("i", val(1), sym("N"))], [ident, ident])
        fixed = eliminate_ww_wr(nest)
        text = pretty(fixed.nest.to_program())
        assert "if (i .EQ. 1)" in text


class TestHelpers:
    def test_primed_naming(self):
        assert primed("i") == "i__p"

    def test_assumed_param_domain(self):
        dom = assumed_param_domain(("N", "M"))
        assert dom.contains({"N": 4, "M": 10})
        assert not dom.contains({"N": 3, "M": 10})

    def test_guard_free_group_emitted_bare(self):
        # Two identical-domain nests: second group needs no guard at all.
        a = loop("i", 1, sym("N"), [assign(idx("A", sym("i")), 1.0)])
        b = loop("i", 1, sym("N"), [assign(idx("B", sym("i")), 2.0)])
        p = Program(
            "gg", ("N",), (ArrayDecl("A", (sym("N"),)), ArrayDecl("B", (sym("N"),))), (), (a, b)
        )
        ident = NestEmbedding(var_map={"i": "i"})
        nest = fuse_siblings(p, [("i", val(1), sym("N"))], [ident, ident])
        text = pretty(nest.to_program())
        assert "if (" not in text

    def test_placement_guard_emitted(self):
        # depth-0 statement placed at the boundary gets an equality guard.
        s = assign(idx("A", val(1)), 5.0)
        b = loop("i", 1, sym("N"), [assign(idx("A", sym("i")), idx("A", sym("i")) + 1.0)])
        p = Program("pg", ("N",), (ArrayDecl("A", (sym("N"),)),), (), (s, b))
        nest = fuse_siblings(
            p,
            [("i", val(1), sym("N"))],
            [NestEmbedding(placement={"i": val(1)}), NestEmbedding(var_map={"i": "i"})],
        )
        text = pretty(nest.to_program())
        assert "i .EQ. 1" in text
