"""Unit tests for IR <-> LinExpr/constraint bridging."""

import pytest

from repro.errors import NotAffineError
from repro.ir.affine import (
    cond_to_constraints,
    constraint_to_cond,
    constraints_to_cond,
    expr_to_linexpr,
    is_affine,
    is_affine_condition,
    linexpr_to_expr,
)
from repro.ir.builder import and_, ceq, cge, cgt, cle, clt, cne, idx, or_, sym, val
from repro.ir.builder import fabs
from repro.poly.constraint import Kind, ge
from repro.poly.linexpr import LinExpr

i, j, N = sym("i"), sym("j"), sym("N")


class TestExprToLinExpr:
    def test_linear_combination(self):
        lin = expr_to_linexpr(i * 2 + j - 3)
        assert lin.coeff("i") == 2 and lin.coeff("j") == 1 and lin.constant == -3

    def test_constant_times_var_both_orders(self):
        assert expr_to_linexpr(2 * i) == expr_to_linexpr(i * 2)

    def test_division_by_constant(self):
        lin = expr_to_linexpr((i * 4) / 2)
        assert lin.coeff("i") == 2

    def test_negation(self):
        assert expr_to_linexpr(-i).coeff("i") == -1

    def test_product_of_vars_rejected(self):
        with pytest.raises(NotAffineError):
            expr_to_linexpr(i * j)

    def test_float_rejected(self):
        with pytest.raises(NotAffineError):
            expr_to_linexpr(i + val(0.5))

    def test_array_ref_rejected(self):
        with pytest.raises(NotAffineError):
            expr_to_linexpr(idx("A", i))

    def test_intrinsic_rejected(self):
        assert not is_affine(fabs(i))


class TestLinExprToExpr:
    def test_roundtrip(self):
        for lin in (LinExpr({"i": 1, "j": -2}, 3), LinExpr({}, 0), LinExpr({"i": -1}, -4)):
            assert expr_to_linexpr(linexpr_to_expr(lin)) == lin

    def test_fractional_rejected(self):
        with pytest.raises(NotAffineError):
            linexpr_to_expr(LinExpr({"i": 1}) / 2)


class TestConditions:
    def test_comparisons(self):
        for builder, sat in [
            (cle(i, N), {"i": 3, "N": 3}),
            (clt(i, N), {"i": 2, "N": 3}),
            (cge(i, N), {"i": 3, "N": 3}),
            (cgt(i, N), {"i": 4, "N": 3}),
            (ceq(i, N), {"i": 3, "N": 3}),
        ]:
            cs = cond_to_constraints(builder)
            assert all(c.satisfied(sat) for c in cs)

    def test_conjunction_concatenates(self):
        cs = cond_to_constraints(and_(cge(i, 1), cle(i, N)))
        assert len(cs) == 2

    def test_ne_rejected(self):
        with pytest.raises(NotAffineError):
            cond_to_constraints(cne(i, N))

    def test_or_rejected(self):
        assert not is_affine_condition(or_(ceq(i, 1), ceq(i, 2)))

    def test_nonaffine_operand_rejected(self):
        assert not is_affine_condition(cgt(fabs(i), val(0)))


class TestConstraintToCond:
    def test_readable_rearrangement(self):
        cond = constraint_to_cond(ge(LinExpr.var("i"), LinExpr.var("k") + 1))
        assert str(cond) == "i .GE. k + 1"

    def test_equality(self):
        from repro.poly.constraint import equals

        cond = constraint_to_cond(equals(LinExpr.var("i"), LinExpr.var("k")))
        assert ".EQ." in str(cond)

    def test_roundtrip_semantics(self):
        c = ge(LinExpr.var("i") * 2, LinExpr.var("N") - 3)
        cond = constraint_to_cond(c)
        back = cond_to_constraints(cond)
        for env in ({"i": 1, "N": 5}, {"i": 0, "N": 5}, {"i": 3, "N": 4}):
            assert all(b.satisfied(env) for b in back) == c.satisfied(env)

    def test_constraints_to_cond_empty(self):
        assert constraints_to_cond([]) is None
