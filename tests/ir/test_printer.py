"""Unit tests for the FORTRAN-flavoured pretty printer."""

from repro.ir.builder import (
    and_,
    assign,
    ceq,
    cgt,
    fabs,
    idx,
    if_,
    loop,
    not_,
    or_,
    sqrt,
    sym,
    val,
)
from repro.ir.expr import Select
from repro.ir.printer import expr_str, pretty_stmt

i, j, k, N = sym("i"), sym("j"), sym("k"), sym("N")


class TestExprPrinting:
    def test_precedence_no_spurious_parens(self):
        assert expr_str(i + j * k) == "i + j*k"

    def test_parens_where_needed(self):
        assert expr_str((i + j) * k) == "(i + j)*k"

    def test_right_associativity_of_minus(self):
        assert expr_str(i - (j - k)) == "i - (j - k)"
        assert expr_str((i - j) - k) == "i - j - k"

    def test_division_denominator(self):
        assert expr_str(i / (j * k)) == "i/(j*k)"

    def test_array_ref(self):
        assert expr_str(idx("A", i, j - 1)) == "A(i,j - 1)"

    def test_fortran_comparisons(self):
        assert expr_str(ceq(i, k + 1)) == "i .EQ. k + 1"
        assert expr_str(cgt(fabs(sym("d")), sym("t"))) == "abs(d) .GT. t"

    def test_logicals(self):
        text = expr_str(and_(ceq(i, 1), or_(ceq(j, 2), ceq(j, 3))))
        assert ".AND." in text and ".OR." in text and "(" in text

    def test_not(self):
        assert expr_str(not_(ceq(i, 1))) == ".NOT. i .EQ. 1"

    def test_sqrt(self):
        assert expr_str(sqrt(i)) == "sqrt(i)"

    def test_select_as_merge(self):
        e = Select(ceq(i, 1), idx("H", i), idx("A", i))
        assert expr_str(e) == "merge(H(i), A(i), i .EQ. 1)"

    def test_negative_literal(self):
        assert expr_str(val(-2) * i) == "(-2)*i"


class TestStmtPrinting:
    def test_loop_block(self):
        text = pretty_stmt(loop("i", 1, N, [assign("x", 0.0)]))
        assert text.splitlines() == ["do i = 1, N", "  x = 0.0", "end do"]

    def test_loop_with_step(self):
        text = pretty_stmt(loop("i", 1, N, [assign("x", 0.0)], step=4))
        assert text.startswith("do i = 1, N, 4")

    def test_if_else(self):
        text = pretty_stmt(if_(ceq(i, 1), assign("x", 1), assign("x", 2)))
        lines = text.splitlines()
        assert lines[0] == "if (i .EQ. 1) then"
        assert "else" in lines
        assert lines[-1] == "end if"
