"""Unit tests for Program declarations and validation."""

import pytest

from repro.errors import IRError
from repro.ir.builder import assign, idx, loop, sym
from repro.ir.program import ArrayDecl, Program, ScalarDecl

N = sym("N")


def simple() -> Program:
    body = loop("i", 1, N, [assign(idx("A", sym("i")), 0.0)])
    return Program("p", ("N",), (ArrayDecl("A", (N,)),), (), (body,))


class TestDecls:
    def test_array_needs_extent(self):
        with pytest.raises(IRError):
            ArrayDecl("A", ())

    def test_array_dtype_checked(self):
        with pytest.raises(IRError):
            ArrayDecl("A", (N,), "f16")

    def test_scalar_dtype_checked(self):
        with pytest.raises(IRError):
            ScalarDecl("x", "bad")

    def test_rank(self):
        assert ArrayDecl("A", (N, N)).rank == 2


class TestValidation:
    def test_valid_program(self):
        assert simple().name == "p"

    def test_duplicate_names_rejected(self):
        with pytest.raises(IRError):
            Program("p", ("A",), (ArrayDecl("A", (N,)),), (), ())

    def test_undeclared_array_rejected(self):
        body = loop("i", 1, N, [assign(idx("B", sym("i")), 0.0)])
        with pytest.raises(IRError):
            Program("p", ("N",), (ArrayDecl("A", (N,)),), (), (body,))

    def test_rank_mismatch_rejected(self):
        body = loop("i", 1, N, [assign(idx("A", sym("i"), sym("i")), 0.0)])
        with pytest.raises(IRError):
            Program("p", ("N",), (ArrayDecl("A", (N,)),), (), (body,))

    def test_undeclared_scalar_rejected(self):
        body = loop("i", 1, N, [assign(idx("A", sym("i")), sym("z"))])
        with pytest.raises(IRError):
            Program("p", ("N",), (ArrayDecl("A", (N,)),), (), (body,))

    def test_unknown_output_rejected(self):
        with pytest.raises(IRError):
            Program("p", ("N",), (ArrayDecl("A", (N,)),), (), (), outputs=("B",))

    def test_outputs_default_to_arrays(self):
        assert simple().outputs == ("A",)


class TestAccessors:
    def test_array_lookup(self):
        assert simple().array("A").rank == 1
        with pytest.raises(KeyError):
            simple().array("B")

    def test_has_array_scalar(self):
        p = simple()
        assert p.has_array("A") and not p.has_array("x")
        assert not p.has_scalar("A")

    def test_loop_variables(self):
        assert simple().loop_variables() == {"i"}

    def test_all_names(self):
        assert {"N", "A", "i"} <= simple().all_names()

    def test_with_body_keeps_decls(self):
        p = simple().with_body(())
        assert p.arrays == simple().arrays and p.body == ()

    def test_adding_arrays(self):
        p = simple().adding_arrays([ArrayDecl("H", (N,))])
        assert p.has_array("H")
        # outputs unchanged
        assert p.outputs == ("A",)

    def test_with_name(self):
        assert simple().with_name("q").name == "q"
