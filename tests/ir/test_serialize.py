"""Round-trip tests for JSON serialisation."""

import pytest

from repro.errors import IRError
from repro.ir.serialize import dumps, loads, program_from_dict, program_to_dict
from repro.kernels.registry import KERNELS, get_kernel


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("variant", ["sequential", "fixed", "tiled"])
def test_kernel_variants_roundtrip(kernel, variant):
    mod = get_kernel(kernel)
    program = getattr(mod, variant)() if variant != "tiled" else mod.tiled(5)
    assert loads(dumps(program)) == program


def test_select_survives():
    from repro.kernels import jacobi
    from repro.trans.elim_rw import eliminate_rw
    from repro.trans.elim_ww_wr import eliminate_ww_wr

    prepared = eliminate_ww_wr(jacobi.fused_nest()).nest
    with_selects = eliminate_rw(prepared, simplify=False).nest.to_program()
    assert loads(dumps(with_selects)) == with_selects


def test_int_float_consts_distinguished():
    from repro.ir.builder import assign, idx, loop, sym
    from repro.ir.program import ArrayDecl, Program

    N = sym("N")
    p = Program(
        "c",
        ("N",),
        (ArrayDecl("A", (N,)),),
        (),
        (loop("i", 1, N, [assign(idx("A", sym("i")), 2.0)]),),
    )
    q = loads(dumps(p))
    assert q == p
    const = q.body[0].body[0].value
    assert isinstance(const.value, float)


def test_pretty_json_readable():
    from repro.kernels import cholesky

    text = dumps(cholesky.sequential(), indent=2)
    assert '"kind": "loop"' in text


def test_bad_kind_rejected():
    with pytest.raises(IRError):
        program_from_dict(
            {
                "name": "x",
                "params": [],
                "arrays": [],
                "scalars": [],
                "outputs": [],
                "body": [{"kind": "goto"}],
            }
        )


def test_validation_runs_on_load():
    from repro.kernels import cholesky

    d = program_to_dict(cholesky.sequential())
    d["arrays"] = []  # drop declarations: body references become invalid
    with pytest.raises(IRError):
        program_from_dict(d)
