"""Unit tests for structural IR analyses."""

import pytest

from repro.errors import IRError
from repro.ir.analysis import (
    as_perfect_nest,
    assignments_in_order,
    flatten_guards,
    is_perfect_loop_nest,
    iteration_domain,
    loop_bound_constraints,
    loops_on_path,
    written_names,
)
from repro.ir.builder import and_, assign, ceq, cgt, fabs, idx, if_, loop, sym, val
from repro.poly.enumerate import count_points

i, j, k, N = sym("i"), sym("j"), sym("k"), sym("N")


def update_nest():
    body = assign(idx("A", i, j), idx("A", i, j) - idx("A", i, k) * idx("A", k, j))
    return loop("j", k + 1, N, [loop("i", k + 1, N, [body])])


class TestPerfectNest:
    def test_depth_and_vars(self):
        nest = as_perfect_nest(update_nest())
        assert nest.depth == 2 and nest.loop_vars == ("j", "i")

    def test_depth_zero_for_assign(self):
        nest = as_perfect_nest(assign("x", 1))
        assert nest.depth == 0 and len(nest.body) == 1

    def test_is_perfect(self):
        assert is_perfect_loop_nest(update_nest())

    def test_imperfect_detected(self):
        imperfect = loop("j", 1, N, [assign("x", 0), loop("i", 1, N, [assign("x", 1)])])
        assert not is_perfect_loop_nest(imperfect)

    def test_nested_loop_in_body_detected(self):
        nest = loop("j", 1, N, [if_(ceq(j, 1), loop("i", 1, N, [assign("x", 1)]))])
        assert not is_perfect_loop_nest(nest)

    def test_non_unit_step_stops_descent(self):
        tiled = loop("jt", 1, N, [assign("x", 0)], step=4)
        assert as_perfect_nest(tiled).depth == 0


class TestIterationDomain:
    def test_triangle_domain(self):
        dom = iteration_domain(as_perfect_nest(update_nest()).loops)
        assert count_points(dom, {"k": 1, "N": 4}) == 9

    def test_min_max_bounds_decompose(self):
        from repro.ir.builder import fmax, fmin

        l = loop("i", fmax(val(1), k), fmin(N, k + 3), [assign("x", 0)])
        cs = loop_bound_constraints(l)
        assert len(cs) == 4

    def test_nonunit_step_rejected(self):
        l = loop("i", 1, N, [assign("x", 0)], step=2)
        with pytest.raises(IRError):
            loop_bound_constraints(l)


class TestGuards:
    def test_flatten_affine_guard(self):
        s = if_(and_(ceq(i, k), cgt(j, k)), assign("x", 1))
        out = flatten_guards([s])
        assert len(out) == 1 and len(out[0].affine) == 2 and not out[0].opaque

    def test_flatten_opaque_guard(self):
        s = if_(cgt(fabs(sym("d")), sym("t")), assign("x", 1))
        out = flatten_guards([s])
        assert out[0].opaque

    def test_else_branch_is_opaque(self):
        s = if_(ceq(i, k), assign("x", 1), assign("x", 2))
        out = flatten_guards([s])
        assert len(out) == 2
        assert not out[0].opaque and out[1].opaque


class TestMisc:
    def test_assignments_in_order(self):
        body = [assign("x", 1), if_(ceq(i, 1), assign("y", 2)), assign("z", 3)]
        names = [a.target.name for a in assignments_in_order(body)]
        assert names == ["x", "y", "z"]

    def test_written_names(self):
        body = [assign("x", 1), assign(idx("A", i), 0.0)]
        assert written_names(body) == {"x", "A"}

    def test_loops_on_path(self):
        target = assign("x", 1)
        nest = loop("j", 1, N, [loop("i", 1, N, [target])])
        path = loops_on_path([nest], target)
        assert [l.var for l in path] == ["j", "i"]

    def test_loops_on_path_missing(self):
        assert loops_on_path([update_nest()], assign("q", 1)) is None
