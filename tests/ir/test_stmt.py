"""Unit tests for statement nodes."""

import pytest

from repro.ir.builder import assign, ceq, idx, if_, loop, sym, val
from repro.ir.expr import Const, VarRef
from repro.ir.stmt import Assign, If, Loop, map_stmt_exprs, stmt_expressions, walk_stmts


class TestConstruction:
    def test_assign_target_type(self):
        with pytest.raises(TypeError):
            Assign(Const(1), Const(2))

    def test_if_requires_nonempty(self):
        with pytest.raises(TypeError):
            If(ceq(sym("i"), 1), (), ())

    def test_loop_requires_body(self):
        with pytest.raises(TypeError):
            Loop("i", Const(1), Const(2), ())

    def test_loop_var_name(self):
        with pytest.raises(TypeError):
            Loop("", Const(1), Const(2), (assign("x", 0),))

    def test_unit_step_detection(self):
        l1 = loop("i", 1, 5, [assign("x", 0)])
        l2 = loop("i", 1, 5, [assign("x", 0)], step=2)
        assert l1.has_unit_step and not l2.has_unit_step

    def test_immutability(self):
        s = assign("x", 1)
        with pytest.raises(AttributeError):
            s.value = Const(2)


class TestTraversal:
    def test_walk_stmts(self):
        nest = loop("i", 1, 3, [if_(ceq(sym("i"), 2), assign("x", 1))])
        kinds = [type(s).__name__ for s in walk_stmts([nest])]
        assert kinds == ["Loop", "If", "Assign"]

    def test_walk_visits_else(self):
        s = if_(ceq(sym("i"), 1), assign("x", 1), assign("x", 2))
        assert sum(1 for t in walk_stmts([s]) if isinstance(t, Assign)) == 2

    def test_stmt_expressions_assign(self):
        s = assign(idx("A", sym("i")), val(2))
        exprs = list(stmt_expressions(s))
        assert len(exprs) == 2

    def test_stmt_expressions_loop(self):
        l = loop("i", 1, sym("N"), [assign("x", 0)])
        assert len(list(stmt_expressions(l))) == 3

    def test_map_stmt_exprs_renames_everywhere(self):
        nest = loop(
            "i", sym("a"), sym("a") + 2, [assign(idx("A", sym("a")), sym("a"))]
        )

        def rn(expr):
            from repro.ir.expr import map_expr

            def fn(node):
                if isinstance(node, VarRef) and node.name == "a":
                    return VarRef("b")
                return node

            return map_expr(expr, fn)

        out = map_stmt_exprs(nest, rn)
        text = str(out)
        assert "a" not in text.replace("end", "").replace("A(", "(")

    def test_map_stmt_cannot_change_target_kind(self):
        s = assign("x", 1)

        def bad(expr):
            return Const(0)

        with pytest.raises(TypeError):
            map_stmt_exprs(s, bad)

    def test_structural_equality(self):
        a = loop("i", 1, 3, [assign("x", 1)])
        b = loop("i", 1, 3, [assign("x", 1)])
        assert a == b and hash(a) == hash(b)
