"""Unit tests for expression nodes."""

import pytest

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cmp,
    Const,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Select,
    UnOp,
    VarRef,
    array_names,
    as_expr,
    free_names,
    map_expr,
    walk_expr,
)


class TestConstruction:
    def test_const_rejects_bool(self):
        with pytest.raises(TypeError):
            Const(True)

    def test_varref_rejects_empty(self):
        with pytest.raises(TypeError):
            VarRef("")

    def test_arrayref_needs_indices(self):
        with pytest.raises(TypeError):
            ArrayRef("A", [])

    def test_binop_validates_op(self):
        with pytest.raises(ValueError):
            BinOp("%", Const(1), Const(2))

    def test_call_validates_intrinsic(self):
        with pytest.raises(ValueError):
            Call("sin", [Const(1)])

    def test_cmp_validates_op(self):
        with pytest.raises(ValueError):
            Cmp("=", Const(1), Const(2))

    def test_coercion_of_numbers(self):
        e = VarRef("i") + 1
        assert isinstance(e.rhs, Const)

    def test_as_expr_rejects_strings(self):
        with pytest.raises(TypeError):
            as_expr("i")

    def test_immutability(self):
        e = VarRef("i")
        with pytest.raises(AttributeError):
            e.name = "j"


class TestOperators:
    def test_arith_sugar(self):
        i, j = VarRef("i"), VarRef("j")
        e = (i + j) * 2 - 1
        assert isinstance(e, BinOp) and e.op == "-"

    def test_radd_rmul(self):
        e = 2 * VarRef("i")
        assert isinstance(e.lhs, Const)

    def test_division(self):
        e = VarRef("i") / 2
        assert e.op == "/"

    def test_negation(self):
        assert isinstance(-VarRef("i"), UnOp)


class TestStructuralEquality:
    def test_equal_trees(self):
        a = VarRef("i") + VarRef("j")
        b = VarRef("i") + VarRef("j")
        assert a == b and hash(a) == hash(b)

    def test_order_matters(self):
        assert VarRef("i") + VarRef("j") != VarRef("j") + VarRef("i")

    def test_select_equality(self):
        c = Cmp("<", VarRef("i"), Const(3))
        assert Select(c, Const(1), Const(2)) == Select(c, Const(1), Const(2))

    def test_int_float_consts_distinct(self):
        assert Const(1) != Const(1.0)


class TestTraversal:
    def test_walk_counts_nodes(self):
        e = ArrayRef("A", [VarRef("i") + 1])
        kinds = [type(n).__name__ for n in walk_expr(e)]
        assert kinds == ["ArrayRef", "BinOp", "VarRef", "Const"]

    def test_free_names_excludes_arrays(self):
        e = ArrayRef("A", [VarRef("i")]) + VarRef("x")
        assert free_names(e) == {"i", "x"}
        assert array_names(e) == {"A"}

    def test_map_expr_renames(self):
        e = ArrayRef("A", [VarRef("i")])

        def rn(node):
            if isinstance(node, VarRef) and node.name == "i":
                return VarRef("k")
            return node

        out = map_expr(e, rn)
        assert out == ArrayRef("A", [VarRef("k")])

    def test_map_expr_covers_logicals(self):
        e = LogicalOr([LogicalNot(Cmp("<", VarRef("i"), Const(2))),
                       LogicalAnd([Cmp("==", VarRef("j"), Const(1))])])
        assert map_expr(e, lambda n: n) == e

    def test_logical_and_flattens(self):
        inner = LogicalAnd([Cmp("<", VarRef("i"), Const(1))])
        outer = LogicalAnd([inner, Cmp(">", VarRef("j"), Const(2))])
        assert len(outer.args) == 2
