"""Unit tests for the utility helpers."""

import time

import pytest

from repro.utils.naming import NameGenerator, fresh_name
from repro.utils.tables import render_table
from repro.utils.timing import StageTimes, Timer
from repro.utils.validation import check_nonnegative_int, check_positive_int, check_type


class TestNaming:
    def test_fresh_avoids_reserved(self):
        g = NameGenerator(["x"])
        assert g.fresh("x") == "x_2"

    def test_fresh_unique_sequence(self):
        g = NameGenerator()
        assert [g.fresh("t"), g.fresh("t"), g.fresh("t")] == ["t", "t_2", "t_3"]

    def test_keywords_avoided(self):
        g = NameGenerator()
        assert g.fresh("is") != "is"
        assert g.fresh("for") != "for"

    def test_reserve(self):
        g = NameGenerator()
        g.reserve("a")
        assert "a" in g
        assert g.fresh("a") == "a_2"

    def test_one_shot_helper(self):
        assert fresh_name("i", {"i", "i_2"}) == "i_3"


class TestTables:
    def test_alignment_and_headers(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[-1].endswith("22")

    def test_floats_formatted(self):
        text = render_table(["x"], [[1.23456]], float_fmt=".2f")
        assert "1.23" in text

    def test_bools_rendered(self):
        text = render_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_title(self):
        assert render_table(["a"], [[1]], title="T").startswith("T")

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestTiming:
    def test_timer_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        with t:
            pass
        assert t.elapsed > 0

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_stage_times(self):
        st = StageTimes()
        with st.stage("a"):
            pass
        assert "a" in st.summary()


class TestValidation:
    def test_check_type(self):
        assert check_type(3, int, "x") == 3
        with pytest.raises(TypeError):
            check_type("3", int, "x")

    def test_check_type_union(self):
        assert check_type(3.5, (int, float), "x") == 3.5

    def test_positive_int(self):
        assert check_positive_int(2, "n") == 2
        with pytest.raises(ValueError):
            check_positive_int(0, "n")
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    def test_nonnegative_int(self):
        assert check_nonnegative_int(0, "n") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "n")
