"""Unit tests for the mini-Fortran parser."""

import pytest

from repro.errors import IRError, ParseError
from repro.frontend import parse_program
from repro.ir.expr import BinOp, Call, Cmp, Const, LogicalAnd, LogicalOr
from repro.ir.stmt import Assign, If, Loop


def parse_body(body: str, decls: str = "param N\n  real A(N)\n  real x") -> tuple:
    src = f"program t\n  {decls}\n  output A\nbegin\n{body}\nend\n"
    return parse_program(src).body


class TestStructure:
    def test_program_name_and_decls(self):
        p = parse_program(
            """
            program demo
              param N, M
              real A(N, M), B(N)
              integer m
              real t
              output A, B
            begin
              t = 0.0
            end
            """
        )
        assert p.name == "demo"
        assert p.params == ("N", "M")
        assert p.array("A").rank == 2
        assert p.scalar("m").dtype == "i8"
        assert p.outputs == ("A", "B")

    def test_do_loop_with_step(self):
        (stmt,) = parse_body("do i = 1, N, 2\n A(i) = 0.0\n end do")
        assert isinstance(stmt, Loop) and stmt.step == Const(2)

    def test_nested_loops(self):
        (stmt,) = parse_body(
            "do i = 1, N\n do j = i, N\n x = 1.0\n end do\n end do",
        )
        assert isinstance(stmt.body[0], Loop)

    def test_if_else(self):
        (stmt,) = parse_body(
            "if (x .GT. 0.0) then\n x = 1.0\n else\n x = 2.0\n end if"
        )
        assert isinstance(stmt, If) and stmt.orelse

    def test_condition_conjunction(self):
        (stmt,) = parse_body("if (x > 0.0 .AND. x < 1.0) then\n x = 0.5\n end if")
        assert isinstance(stmt.cond, LogicalAnd)

    def test_condition_disjunction_parens(self):
        (stmt,) = parse_body(
            "if ((x > 1.0 .OR. x < 0.0) .AND. x != 0.5) then\n x = 0.0\n end if"
        )
        assert isinstance(stmt.cond, LogicalAnd)
        assert isinstance(stmt.cond.args[0], LogicalOr)


class TestExpressions:
    def test_precedence(self):
        (stmt,) = parse_body("x = 1.0 + 2.0 * 3.0")
        assert isinstance(stmt.value, BinOp) and stmt.value.op == "+"

    def test_parenthesised_group(self):
        (stmt,) = parse_body("x = (1.0 + 2.0) * 3.0")
        assert stmt.value.op == "*"

    def test_unary_minus(self):
        (stmt,) = parse_body("x = -x + 1.0")
        assert stmt.value.op == "+"

    def test_intrinsics(self):
        (stmt,) = parse_body("x = sqrt(abs(x))")
        assert isinstance(stmt.value, Call) and stmt.value.func == "sqrt"

    def test_min_max_multi_arg(self):
        (stmt,) = parse_body("x = min(x, 1.0, 2.0)")
        assert len(stmt.value.args) == 3

    def test_array_subscript_expressions(self):
        (stmt,) = parse_body("A(i*2 - 1) = 0.0", decls="param N\n real A(N)\n integer i")
        assert isinstance(stmt, Assign)


class TestErrors:
    def test_missing_then(self):
        with pytest.raises(ParseError):
            parse_body("if (x > 0.0)\n x = 1.0\n end if")

    def test_missing_end_do(self):
        with pytest.raises(ParseError):
            parse_program(
                "program p\n param N\n real A(N)\nbegin\n do i = 1, N\n A(i) = 0.0\nend\n"
            )

    def test_garbage_declaration(self):
        with pytest.raises(ParseError):
            parse_program("program p\n banana N\nbegin\nend\n")

    def test_semantic_undeclared_array(self):
        with pytest.raises(IRError):
            parse_program(
                "program p\n param N\n real A(N)\nbegin\n do i = 1, N\n B(i) = 0.0\n end do\nend\n"
            )

    def test_plain_expression_not_condition(self):
        with pytest.raises(ParseError):
            parse_body("if (x) then\n x = 1.0\n end if")


class TestRoundtrip:
    def test_kernels_reparse_from_pretty_like_source(self):
        # A Cholesky-like text written by hand in paper notation.
        src = """
        program chol
          param N
          real A(N, N)
          output A
        begin
          do k = 1, N
            A(k,k) = sqrt(A(k,k))
            do i = k + 1, N
              A(i,k) = A(i,k) / A(k,k)
            end do
            do j = k + 1, N
              do i = j, N
                A(i,j) = A(i,j) - A(i,k) * A(j,k)
              end do
            end do
          end do
        end
        """
        p = parse_program(src)
        from repro.kernels import cholesky

        import numpy as np
        from repro.exec import run_compiled

        params = {"N": 8}
        inputs = cholesky.make_inputs(params)
        mine = run_compiled(p, params, inputs)
        ref = cholesky.reference(params, inputs)
        assert np.allclose(mine.arrays["A"], ref["A"])
