"""Emitter round-trip: parse(to_source(p)) is structurally identical to p."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IRError
from repro.frontend import parse_program
from repro.frontend.emit import to_source
from repro.ir.builder import assign, cge, cle, idx, if_, loop, or_, sym, val
from repro.ir.expr import BinOp, Select
from repro.ir.program import ArrayDecl, Program, ScalarDecl

N = sym("N")


def roundtrip(program: Program) -> None:
    text = to_source(program)
    back = parse_program(text)
    assert back.name == program.name
    assert back.params == program.params
    assert back.arrays == program.arrays
    assert back.scalars == program.scalars
    assert back.outputs == program.outputs
    assert back.body == program.body


class TestRoundtripKernels:
    @pytest.mark.parametrize("kernel", ["lu", "qr", "cholesky", "jacobi"])
    def test_sequential_kernels(self, kernel):
        from repro.kernels.registry import get_kernel

        roundtrip(get_kernel(kernel).sequential())

    @pytest.mark.parametrize("kernel", ["qr", "cholesky", "jacobi"])
    def test_fixed_kernels(self, kernel):
        from repro.kernels.registry import get_kernel

        roundtrip(get_kernel(kernel).fixed())

    @pytest.mark.parametrize("kernel", ["cholesky", "jacobi"])
    def test_tiled_kernels(self, kernel):
        from repro.kernels.registry import get_kernel

        roundtrip(get_kernel(kernel).tiled(5))


class TestRoundtripConstructs:
    def test_negative_constants(self):
        p = Program(
            "neg", ("N",), (ArrayDecl("A", (N,)),), (),
            (assign(idx("A", val(1)), val(-2.5)),),
        )
        text = to_source(p)
        back = parse_program(text)
        import numpy as np

        from repro.exec import run_compiled

        a = run_compiled(p, {"N": 2}).arrays["A"]
        b = run_compiled(back, {"N": 2}).arrays["A"]
        assert np.allclose(a, b)

    def test_disjunctive_guard(self):
        body = loop(
            "i",
            1,
            N,
            [if_(or_(cle(sym("i"), val(2)), cge(sym("i"), N)), assign("s", 1.0))],
        )
        p = Program("dis", ("N",), (ArrayDecl("A", (N,)),), (ScalarDecl("s"),), (body,))
        roundtrip(p)

    def test_stepped_loop(self):
        body = loop("i", 1, N, [assign(idx("A", sym("i")), 0.0)], step=3)
        p = Program("st", ("N",), (ArrayDecl("A", (N,)),), (), (body,))
        roundtrip(p)

    def test_select_rejected(self):
        body = assign(
            idx("A", val(1)),
            Select(cge(val(1), val(0)), val(1.0), val(2.0)),
        )
        p = Program("sel", ("N",), (ArrayDecl("A", (N,)),), (), (body,))
        with pytest.raises(IRError):
            to_source(p)


@st.composite
def rand_program(draw):
    n_stmts = draw(st.integers(1, 4))
    stmts = []
    for idx_ in range(n_stmts):
        c = draw(st.integers(0, 2))
        i = sym("i")
        if c == 0:
            stmts.append(assign(idx("A", i), i * draw(st.integers(1, 5)) + 1.5))
        elif c == 1:
            stmts.append(
                if_(cge(i, val(draw(st.integers(1, 4)))), assign("s", 2.0),
                    assign("s", 3.0))
            )
        else:
            stmts.append(assign("s", sym("s") + 1.0))
    body = loop("i", 1, N, stmts)
    return Program(
        "rand", ("N",), (ArrayDecl("A", (N,)),), (ScalarDecl("s"),), (body,)
    )


@given(rand_program())
def test_random_programs_roundtrip(program):
    roundtrip(program)
