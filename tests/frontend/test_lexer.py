"""Unit tests for the mini-Fortran lexer."""

import pytest

from repro.errors import ParseError
from repro.frontend.lexer import tokenize


def kinds_texts(src):
    return [(t.kind, t.text) for t in tokenize(src)]


class TestTokens:
    def test_keywords_case_insensitive(self):
        toks = kinds_texts("DO If THEN")
        assert toks[0] == ("kw", "do")
        assert toks[1] == ("kw", "if")
        assert toks[2] == ("kw", "then")

    def test_names_preserve_case(self):
        toks = kinds_texts("Alpha")
        assert toks[0] == ("name", "Alpha")

    def test_numbers(self):
        toks = kinds_texts("42 3.5 1e3 2.0E-2")
        assert [t[0] for t in toks[:4]] == ["int", "float", "float", "float"]

    def test_dot_operators_mapped(self):
        toks = kinds_texts("a .GT. b .and. c .NE. d")
        ops = [t for t in toks if t[0] == "op"]
        assert ops == [("op", ">"), ("op", "&&"), ("op", "!=")]

    def test_c_style_operators(self):
        toks = kinds_texts("a >= b == c")
        ops = [t[1] for t in toks if t[0] == "op"]
        assert ops == [">=", "=="]

    def test_comments_ignored(self):
        toks = kinds_texts("a ! this is a comment\nb")
        names = [t[1] for t in toks if t[0] == "name"]
        assert names == ["a", "b"]

    def test_newlines_collapsed(self):
        toks = kinds_texts("a\n\n\nb")
        newlines = [t for t in toks if t[0] == "newline"]
        # one between a and b, one trailing
        assert len(newlines) == 2

    def test_leading_blank_lines_skipped(self):
        toks = kinds_texts("\n\na")
        assert toks[0] == ("name", "a")

    def test_bad_character(self):
        with pytest.raises(ParseError) as exc:
            list(tokenize("a @ b"))
        assert exc.value.line == 1

    def test_eof_token(self):
        assert kinds_texts("")[-1] == ("eof", "")

    def test_positions(self):
        toks = list(tokenize("ab cd\n ef"))
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (1, 4)
        assert (toks[3].line, toks[3].col) == (2, 2)
