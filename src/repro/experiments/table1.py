"""Table 1: which methods handle which kernels.

The paper compares five approaches on the four kernels:

| Method                        | LU | QR | Cholesky | Jacobi |
|-------------------------------|----|----|----------|--------|
| Matrix factorisations [2]     | y  | y  | y        | x      |
| Stencil computations [12]     | x  | x  | x        | y      |
| Data shackling [8]            | y  | y  | y        | x      |
| Iteration-space transforms [1]| x  | x  | y        | y      |
| This work                     | y  | y  | y        | y      |

The prior-work rows are reproduced as *structural predicates* over the
kernel IR, encoding each method's published applicability conditions
(factorisation-shaped triangular nests, stencil-shaped uniform offsets,
absence of data-dependent control / cross-nest scalar reductions). The
"this work" row is **computed**: it is true iff our FixDeps pipeline
actually produces a validated fused program for the kernel.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.ir.analysis import as_perfect_nest
from repro.ir.affine import is_affine_condition
from repro.ir.expr import ArrayRef, BinOp, Const, VarRef, walk_expr
from repro.ir.program import Program
from repro.ir.stmt import Assign, If, Loop, stmt_expressions, walk_stmts
from repro.kernels.registry import KERNELS, get_kernel
from repro.utils.tables import render_table

#: The paper's Table 1, for comparison (True = handled).
PAPER_TABLE1 = {
    "matrix-factorisations": {"lu": True, "qr": True, "cholesky": True, "jacobi": False},
    "stencil-computations": {"lu": False, "qr": False, "cholesky": False, "jacobi": True},
    "data-shackling": {"lu": True, "qr": True, "cholesky": True, "jacobi": False},
    "iteration-space-transforms": {"lu": False, "qr": False, "cholesky": True, "jacobi": True},
    "this-work": {"lu": True, "qr": True, "cholesky": True, "jacobi": True},
}


# -- structural predicates ---------------------------------------------------


def _loop_vars(program: Program) -> frozenset[str]:
    return program.loop_variables()


def is_stencil(program: Program) -> bool:
    """Uniform-offset array accesses (var +/- const in every subscript) with
    at least one non-zero offset — the shape [12]'s techniques target."""
    lvars = _loop_vars(program)
    saw_offset = False
    for stmt in walk_stmts(program.body):
        if not isinstance(stmt, Assign):
            continue
        for top in stmt_expressions(stmt):
            for node in walk_expr(top):
                if not isinstance(node, ArrayRef):
                    continue
                for sub in node.indices:
                    kind = _uniform_kind(sub, lvars)
                    if kind is None:
                        return False
                    if kind == "offset":
                        saw_offset = True
    return saw_offset


def _uniform_kind(sub, lvars) -> str | None:
    """'plain' for a bare loop var, 'offset' for var +/- const, else None."""
    if isinstance(sub, VarRef) and sub.name in lvars:
        return "plain"
    if isinstance(sub, BinOp) and sub.op in "+-":
        if (
            isinstance(sub.lhs, VarRef)
            and sub.lhs.name in lvars
            and isinstance(sub.rhs, Const)
        ):
            return "offset"
    return None


def is_triangular_factorisation(program: Program) -> bool:
    """Inner loop bounds reference an outer loop variable and the kernel
    updates its array in place — the matrix-factorisation shape [2]."""
    for stmt in walk_stmts(program.body):
        if not isinstance(stmt, Loop):
            continue
        nest = as_perfect_nest(stmt)
        for depth, loop in enumerate(nest.loops[1:], start=1):
            outer_vars = {l.var for l in nest.loops[:depth]}
            names = set()
            for bound in (loop.lower, loop.upper):
                for node in walk_expr(bound):
                    if isinstance(node, VarRef):
                        names.add(node.name)
            if names & outer_vars:
                return True
    # Imperfect nests: any loop whose bound references an enclosing loop var.
    stack: list[str] = []

    def rec(stmts) -> bool:
        for s in stmts:
            if isinstance(s, Loop):
                for bound in (s.lower, s.upper):
                    for node in walk_expr(bound):
                        if isinstance(node, VarRef) and node.name in stack:
                            return True
                stack.append(s.var)
                if rec(s.body):
                    return True
                stack.pop()
            elif isinstance(s, If):
                if rec(s.then) or rec(s.orelse):
                    return True
        return False

    return rec(program.body)


def has_data_dependent_control(program: Program) -> bool:
    """Any guard condition outside the affine fragment (LU's pivot test)."""
    return any(
        isinstance(s, If) and not is_affine_condition(s.cond)
        for s in walk_stmts(program.body)
    )


def has_cross_nest_scalar_reduction(program: Program) -> bool:
    """A scalar accumulated in one loop and consumed outside it (QR's
    ``norm``) — the pattern that defeats pure iteration-space embeddings."""
    scalar_names = {s.name for s in program.scalars}
    if not scalar_names:
        return False
    for stmt in walk_stmts(program.body):
        if isinstance(stmt, Loop):
            reduced = set()
            for inner in walk_stmts(stmt.body):
                if (
                    isinstance(inner, Assign)
                    and isinstance(inner.target, VarRef)
                    and inner.target.name in scalar_names
                ):
                    # self-referencing update => reduction
                    if any(
                        isinstance(n, VarRef) and n.name == inner.target.name
                        for n in walk_expr(inner.value)
                    ):
                        reduced.add(inner.target.name)
            if reduced:
                return True
    return False


# -- method applicability ----------------------------------------------------


def _this_work_handles(kernel: str) -> bool:
    """Computed: does the FixDeps pipeline produce a fixed program?"""
    try:
        get_kernel(kernel).fixed()
        return True
    except ReproError:
        return False


def applicability(kernel: str) -> dict[str, bool]:
    """One column of Table 1."""
    seq = get_kernel(kernel).sequential()
    stencil = is_stencil(seq)
    return {
        "matrix-factorisations": is_triangular_factorisation(seq) and not stencil,
        "stencil-computations": stencil,
        "data-shackling": not stencil,
        "iteration-space-transforms": not has_data_dependent_control(seq)
        and not has_cross_nest_scalar_reduction(seq),
        "this-work": _this_work_handles(kernel),
    }


def generate() -> dict[str, dict[str, bool]]:
    """method -> kernel -> handled."""
    table: dict[str, dict[str, bool]] = {m: {} for m in PAPER_TABLE1}
    for kernel in KERNELS:
        col = applicability(kernel)
        for method, ok in col.items():
            table[method][kernel] = ok
    return table


def render(table: dict[str, dict[str, bool]] | None = None) -> str:
    """Text rendering with agreement check against the paper."""
    table = table or generate()
    rows = []
    mismatches = []
    for method, cols in table.items():
        rows.append([method, *(cols[k] for k in KERNELS)])
        for k in KERNELS:
            if cols[k] != PAPER_TABLE1[method][k]:
                mismatches.append(f"{method}/{k}")
    text = render_table(
        ["method", *KERNELS],
        rows,
        title="Table 1 — capability comparison (yes = handles the kernel)",
    )
    verdict = (
        "matches the paper's Table 1"
        if not mismatches
        else f"MISMATCHES vs paper: {', '.join(mismatches)}"
    )
    return f"{text}\n\n{verdict}"


def main(config=None) -> str:
    """Generate and render (config ignored; structural analysis only)."""
    return render()
