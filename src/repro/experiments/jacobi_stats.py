"""Section 4's in-text Jacobi statistics.

The paper singles Jacobi out: "By fusing the two loop nests in the
sequential code, we have also reduced the number of array loads in the
tiled code by an average of 40.9%", for a net 3.4 % fewer instructions.
The mechanism is fusion: the ``L`` round-trip disappears (scalarised) and
the adjacent reads become register-reusable. We therefore measure the
*fused/fixed* program against the sequential one — our register-reuse
model recovers the same direction (fewer loads *and* fewer instructions
after fusion) at a smaller magnitude, since MIPSpro's scalar replacement
of overlapping stencil reads is stronger than a pure LRU register window
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import measure_variant
from repro.experiments.sweep import SweepConfig, default_config
from repro.utils.tables import render_table

PAPER_LOAD_REDUCTION = 0.409
PAPER_INSTR_REDUCTION = 0.034


@dataclass(frozen=True)
class JacobiStatsRow:
    """One sweep point."""

    n: int
    seq_loads: int
    tiled_loads: int
    load_reduction: float
    seq_instructions: int
    tiled_instructions: int
    instr_change: float


def generate(config: SweepConfig | None = None) -> list[JacobiStatsRow]:
    """Loads and instruction counts, seq vs tiled Jacobi."""
    config = config or default_config()
    rows = []
    for n in config.sizes:
        seq = measure_variant("jacobi", "seq", n, config).report
        tiled = measure_variant("jacobi", "fixed", n, config).report
        rows.append(
            JacobiStatsRow(
                n=n,
                seq_loads=seq.accesses,
                tiled_loads=tiled.accesses,
                load_reduction=1.0 - tiled.accesses / seq.accesses,
                seq_instructions=seq.graduated_instructions,
                tiled_instructions=tiled.graduated_instructions,
                instr_change=1.0 - tiled.graduated_instructions / seq.graduated_instructions,
            )
        )
    return rows


def render(rows: list[JacobiStatsRow]) -> str:
    """Table plus averages vs the paper's figures."""
    table = render_table(
        ["N", "seq mem ops", "tiled mem ops", "reduction",
         "seq instr", "tiled instr", "instr reduction"],
        [
            [r.n, r.seq_loads, r.tiled_loads, r.load_reduction,
             r.seq_instructions, r.tiled_instructions, r.instr_change]
            for r in rows
        ],
        title="Jacobi in-text statistics (Sec. 4)",
    )
    avg_load = sum(r.load_reduction for r in rows) / len(rows)
    avg_instr = sum(r.instr_change for r in rows) / len(rows)
    return (
        f"{table}\n\n"
        f"average memory-op reduction: {avg_load:.1%} (paper: array loads "
        f"{PAPER_LOAD_REDUCTION:.1%})\n"
        f"average instruction reduction: {avg_instr:.1%} (paper: "
        f"{PAPER_INSTR_REDUCTION:.1%})"
    )


def main(config: SweepConfig | None = None) -> str:
    """Generate and render."""
    return render(generate(config))
