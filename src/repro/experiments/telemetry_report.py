"""Diff two telemetry runs' metrics to flag performance regressions.

``python -m repro.experiments telemetry_report --diff BASE NEW`` loads
the ``metrics.json`` written by two ``--telemetry`` runs and renders:

- **time per layer** — total seconds per span-name histogram
  (``span.pipeline.pass``, ``span.exec.run``,
  ``span.machine.measure_streaming``, ``span.sweep.point``, ...), with
  the ratio flagged when the new run is slower than the baseline by more
  than :data:`TIME_REGRESSION_RATIO` (and by more than measurement
  noise, :data:`MIN_REGRESSION_SECONDS`);
- **cache behaviour** — disk-cache hit rate, flagged when it drops by
  more than :data:`HIT_RATE_DROP`; corrupt-entry count, flagged on any
  increase;
- **fallback counts** — every ``exec.fallback.*`` counter, flagged on
  any increase (a new guard rejection or static rejection means the
  block tier silently stopped covering a loop).

The function layer (:func:`diff_metrics`) is pure — it takes two
snapshot dicts and returns structured rows — so tests and other tooling
can drive it without touching the filesystem.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.utils.tables import render_table

#: New/base total-seconds ratio above which a layer's time is flagged.
TIME_REGRESSION_RATIO = 1.10
#: Absolute floor below which time deltas are considered noise.
MIN_REGRESSION_SECONDS = 1e-3
#: Hit-rate percentage-point drop (0..1) that flags the cache section.
HIT_RATE_DROP = 0.05


@dataclass(frozen=True)
class DiffRow:
    """One compared metric."""

    section: str  # "time" | "cache" | "fallback" | "counter"
    name: str
    base: float
    new: float
    flagged: bool
    note: str = ""


def load_metrics(directory: str | Path) -> dict[str, Any]:
    """Read a telemetry run's ``metrics.json``."""
    path = Path(directory) / "metrics.json"
    return json.loads(path.read_text())


def _hist_totals(metrics: dict[str, Any]) -> dict[str, float]:
    return {
        name: float(h.get("total", 0.0))
        for name, h in metrics.get("histograms", {}).items()
        if name.startswith("span.")
    }


def _hit_rate(counters: dict[str, float]) -> float | None:
    hits = counters.get("sweep.cache.hit", 0)
    misses = counters.get("sweep.cache.miss", 0)
    return hits / (hits + misses) if hits + misses else None


def diff_metrics(base: dict[str, Any], new: dict[str, Any]) -> list[DiffRow]:
    """Structured comparison of two metrics snapshots."""
    rows: list[DiffRow] = []

    # -- time per layer (span-duration histogram totals) ------------------
    base_t, new_t = _hist_totals(base), _hist_totals(new)
    for name in sorted(set(base_t) | set(new_t)):
        b, n = base_t.get(name, 0.0), new_t.get(name, 0.0)
        flagged = (
            b > 0
            and n - b > MIN_REGRESSION_SECONDS
            and n / b > TIME_REGRESSION_RATIO
        )
        note = f"{n / b:.2f}x" if b > 0 else ("new" if n > 0 else "")
        rows.append(DiffRow("time", name, b, n, flagged, note))

    base_c = base.get("counters", {})
    new_c = new.get("counters", {})

    # -- cache behaviour ---------------------------------------------------
    base_rate, new_rate = _hit_rate(base_c), _hit_rate(new_c)
    if base_rate is not None or new_rate is not None:
        b, n = base_rate or 0.0, new_rate or 0.0
        rows.append(
            DiffRow(
                "cache",
                "sweep.cache hit rate",
                b,
                n,
                base_rate is not None and b - n > HIT_RATE_DROP,
                f"{b:.1%} -> {n:.1%}",
            )
        )
    b_corrupt = base_c.get("sweep.cache.corrupt", 0)
    n_corrupt = new_c.get("sweep.cache.corrupt", 0)
    if b_corrupt or n_corrupt:
        rows.append(
            DiffRow(
                "cache",
                "sweep.cache.corrupt",
                b_corrupt,
                n_corrupt,
                n_corrupt > b_corrupt,
                "corrupt entries discarded",
            )
        )

    # -- fallback counts ---------------------------------------------------
    names = sorted(
        k
        for k in set(base_c) | set(new_c)
        if k.startswith("exec.fallback.")
    )
    for name in names:
        b, n = base_c.get(name, 0), new_c.get(name, 0)
        rows.append(DiffRow("fallback", name, b, n, n > b))

    # -- remaining counters (informational, never flagged) ----------------
    other = sorted(
        k
        for k in set(base_c) | set(new_c)
        if not k.startswith("exec.fallback.")
        and not k.startswith("sweep.cache.")
    )
    for name in other:
        rows.append(
            DiffRow("counter", name, base_c.get(name, 0), new_c.get(name, 0), False)
        )
    return rows


def regressions(rows: list[DiffRow]) -> list[DiffRow]:
    return [r for r in rows if r.flagged]


def render(rows: list[DiffRow], base_label: str, new_label: str) -> str:
    """Aligned diff tables plus a verdict line."""
    sections = (
        ("time", "Time per layer (span seconds)"),
        ("cache", "Sweep cache"),
        ("fallback", "Block-tier fallbacks"),
        ("counter", "Other counters"),
    )
    parts: list[str] = [f"Telemetry diff — base: {base_label}  new: {new_label}"]
    for key, title in sections:
        section_rows = [r for r in rows if r.section == key]
        if not section_rows:
            continue
        parts.append(
            render_table(
                ["metric", "base", "new", "flag", "note"],
                [
                    [
                        r.name,
                        round(r.base, 6),
                        round(r.new, 6),
                        "REGRESSION" if r.flagged else "-",
                        r.note,
                    ]
                    for r in section_rows
                ],
                title=title,
                float_fmt=",.6g",
            )
        )
    flagged = regressions(rows)
    if flagged:
        parts.append(
            f"{len(flagged)} regression(s) flagged: "
            + ", ".join(r.name for r in flagged)
        )
    else:
        parts.append("No regressions flagged.")
    return "\n\n".join(parts)


def main(baseline_dir: str, current_dir: str) -> str:
    rows = diff_metrics(load_metrics(baseline_dir), load_metrics(current_dir))
    return render(rows, baseline_dir, current_dir)
