"""One genuine paper point on the *unscaled* Octane2 geometry.

Everything else in the harness runs on the scaled machine; this experiment
anchors the scaling argument by measuring Cholesky at N = 238 — the
paper's first sweep size — with the real 32 KB L1 / 2 MB L2 and the PDAT
tile (45). The paper's Figure 5 shows Cholesky at ~1.1x there (its minimum,
1.11, is attained at the small end of the sweep); the matrix still fits L2,
so the entire win is the L1 behaviour.

Expensive (tens of seconds of pure-Python trace simulation); cached like
every other measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import measure_variant
from repro.experiments.sweep import SweepConfig
from repro.machine.configs import octane2

PAPER_N = 238
#: Paper Figure 5: Cholesky's speedups start at 1.11 at the sweep's small end.
PAPER_SMALL_END_SPEEDUP = 1.11


@dataclass(frozen=True)
class PaperPoint:
    """Measured vs paper at the anchor point."""

    n: int
    tile: int
    speedup: float
    seq_l1: int
    tiled_l1: int
    seq_l2: int
    tiled_l2: int
    seq_instructions: int
    tiled_instructions: int


def measure(kernel: str = "cholesky", n: int = PAPER_N) -> PaperPoint:
    """Measure one kernel at a paper size on the true machine."""
    config = SweepConfig(
        machine=octane2(), sizes=(n,), jacobi_m=500, tile_policy="pdat"
    )
    seq = measure_variant(kernel, "seq", n, config)
    tiled = measure_variant(kernel, "tiled", n, config)
    return PaperPoint(
        n=n,
        tile=tiled.tile or 0,
        speedup=seq.report.total_cycles / tiled.report.total_cycles,
        seq_l1=seq.report.l1_misses,
        tiled_l1=tiled.report.l1_misses,
        seq_l2=seq.report.l2_misses,
        tiled_l2=tiled.report.l2_misses,
        seq_instructions=seq.report.graduated_instructions,
        tiled_instructions=tiled.report.graduated_instructions,
    )


def main(config=None) -> str:
    """Render the anchor-point comparison."""
    point = measure()
    return "\n".join(
        [
            "Paper anchor point — Cholesky, true Octane2 geometry",
            f"  N = {point.n}, PDAT tile = {point.tile}",
            f"  measured speedup: {point.speedup:.2f} "
            f"(paper small-end: {PAPER_SMALL_END_SPEEDUP:.2f})",
            f"  L1 misses: {point.seq_l1:,} -> {point.tiled_l1:,}",
            f"  L2 misses: {point.seq_l2:,} -> {point.tiled_l2:,} "
            "(matrix fits L2 at this size)",
            f"  instructions: {point.seq_instructions:,} -> "
            f"{point.tiled_instructions:,}",
        ]
    )
