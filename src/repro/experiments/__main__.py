"""Command-line entry point: ``python -m repro.experiments <target>``.

Targets: figure5, figure6, figure7, figure8, table1, jacobi, ablations,
telemetry_report, all. Flags: ``--quick`` (4-point sweep), ``--full``
(7-point scaled sweep), ``--telemetry DIR`` (write span/metric run
artefacts; ``REPRO_TELEMETRY`` does the same), ``--diff BASE NEW``
(directories for ``telemetry_report``).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import telemetry
from repro.experiments import figure5, figure678, jacobi_stats, table1
from repro.experiments.sweep import default_config


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument(
        "target",
        choices=[
            "figure5", "figure6", "figure7", "figure8", "table1", "jacobi",
            "ablations", "paperpoint", "crossover", "pipeline",
            "telemetry_report", "all",
        ],
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", help="4-point sweep")
    mode.add_argument("--full", action="store_true", help="full scaled sweep")
    parser.add_argument(
        "--output", metavar="DIR", help="also write markdown + CSV artefacts"
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        help="record spans/metrics and write trace.jsonl, metrics.json, "
        "summary.txt, trace_chrome.json to DIR (REPRO_TELEMETRY=DIR "
        "is equivalent)",
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("BASELINE", "CURRENT"),
        help="two --telemetry run directories to compare "
        "(required by the telemetry_report target)",
    )
    args = parser.parse_args(argv)

    telemetry_dir = args.telemetry or os.environ.get("REPRO_TELEMETRY")
    if telemetry_dir:
        telemetry.enable()

    quick = True if args.quick else (False if args.full else None)
    config = default_config(quick=quick)

    if args.target == "telemetry_report":
        if not args.diff:
            parser.error("telemetry_report needs --diff BASELINE CURRENT")
        from repro.experiments import telemetry_report

        print(telemetry_report.main(args.diff[0], args.diff[1]))
        return 0

    if args.output:
        from repro.experiments.report import write_all

        written = write_all(args.output, config)
        for name, path in written.items():
            print(f"wrote {name}: {path}")

    def fig678(which: str) -> str:
        rows = figure678.generate(config)
        renderer = getattr(figure678, f"render_{which}")
        return renderer(rows)

    outputs: list[str] = []
    if args.target in ("figure5", "all"):
        outputs.append(figure5.main(config))
    if args.target == "figure6":
        outputs.append(fig678("figure6"))
    if args.target == "figure7":
        outputs.append(fig678("figure7"))
    if args.target == "figure8":
        outputs.append(fig678("figure8"))
    if args.target == "all":
        outputs.append(figure678.main(config))
    if args.target in ("table1", "all"):
        outputs.append(table1.main(config))
    if args.target in ("jacobi", "all"):
        outputs.append(jacobi_stats.main(config))
    if args.target in ("ablations", "all"):
        from repro.experiments import ablations

        outputs.append(ablations.main(config))
    if args.target == "paperpoint":
        from repro.experiments import paperpoint

        outputs.append(paperpoint.main(config))
    if args.target == "crossover":
        from repro.experiments import crossover

        outputs.append(crossover.main(config))
    if args.target == "pipeline":
        from repro.experiments import pipeline_report

        outputs.append(pipeline_report.main(config))
    print("\n\n".join(outputs))
    if telemetry_dir:
        for name, path in sorted(telemetry.write_run(telemetry_dir).items()):
            print(f"telemetry {name}: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
