"""Per-pass pipeline evidence for every registered (kernel, variant).

Not a paper figure — build provenance: for each registered
:class:`~repro.pipeline.recipe.VariantRecipe` this experiment runs the
:class:`~repro.pipeline.manager.PassManager` and renders the per-pass wall
time, IR-size trajectory, and FixDeps audit notes. Useful both as a sanity
check (which pass dominates build time, where statements appear or
collapse) and as documentation of exactly how each measured program was
derived.
"""

from __future__ import annotations

from repro.experiments.runner import build_program
from repro.experiments.sweep import SweepConfig
from repro.kernels.registry import ALL_KERNELS, variants_for
from repro.pipeline.manager import PipelineReport


def generate(config: SweepConfig | None = None) -> list[PipelineReport]:
    """One :class:`PipelineReport` per registered (kernel, variant)."""
    reports: list[PipelineReport] = []
    for kernel in ALL_KERNELS:
        for variant in variants_for(kernel):
            _, report, _ = build_program(kernel, variant)
            reports.append(report)
    return reports


def rows(reports: list[PipelineReport]) -> list[dict]:
    """Flat per-pass rows across all reports (CSV-friendly)."""
    return [row for report in reports for row in report.as_rows()]


def render(reports: list[PipelineReport]) -> str:
    """All per-pass tables, one per recipe."""
    return "\n\n".join(report.render() for report in reports)


def main(config: SweepConfig | None = None) -> str:
    return render(generate(config))
