"""Writing experiment results to disk (markdown + CSV).

``python -m repro.experiments all --output results/`` drops one markdown
report plus machine-readable CSV series per experiment, so plots and
paper-comparison tables can be rebuilt without re-running the sweeps.
"""

from __future__ import annotations

import csv
import io
from dataclasses import asdict
from pathlib import Path

from repro.experiments import (
    figure5,
    figure678,
    jacobi_stats,
    pipeline_report,
    table1,
)
from repro.experiments.sweep import SweepConfig, default_config


def _write_csv(path: Path, rows: list[dict]) -> None:
    if not rows:
        path.write_text("")
        return
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    path.write_text(buf.getvalue())


def write_all(
    output_dir: str | Path, config: SweepConfig | None = None
) -> dict[str, Path]:
    """Run every experiment and write its artefacts under *output_dir*.

    Returns a mapping of experiment name to the markdown file written.
    """
    config = config or default_config()
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}

    # Figure 5
    f5_rows = figure5.generate(config)
    _write_csv(out / "figure5.csv", [asdict(r) for r in f5_rows])
    md = out / "figure5.md"
    md.write_text(figure5.render(f5_rows) + "\n")
    written["figure5"] = md

    # Figures 6-8
    chol_rows = figure678.generate(config)
    _write_csv(out / "figure678.csv", [asdict(r) for r in chol_rows])
    md = out / "figure678.md"
    md.write_text(
        "\n\n".join(
            [
                figure678.render_figure6(chol_rows),
                figure678.render_figure7(chol_rows),
                figure678.render_figure8(chol_rows),
            ]
        )
        + "\n"
    )
    written["figure678"] = md

    # Table 1
    md = out / "table1.md"
    md.write_text(table1.render() + "\n")
    table = table1.generate()
    _write_csv(
        out / "table1.csv",
        [{"method": m, **cols} for m, cols in table.items()],
    )
    written["table1"] = md

    # Jacobi stats
    js_rows = jacobi_stats.generate(config)
    _write_csv(out / "jacobi_stats.csv", [asdict(r) for r in js_rows])
    md = out / "jacobi_stats.md"
    md.write_text(jacobi_stats.render(js_rows) + "\n")
    written["jacobi_stats"] = md

    # Per-pass pipeline evidence (build provenance for every variant).
    pl_reports = pipeline_report.generate(config)
    _write_csv(out / "pipeline.csv", pipeline_report.rows(pl_reports))
    md = out / "pipeline.md"
    md.write_text(pipeline_report.render(pl_reports) + "\n")
    written["pipeline"] = md

    # Configuration provenance.
    (out / "config.md").write_text(
        "\n".join(
            [
                "# sweep configuration",
                f"- machine: {config.machine.name}",
                f"- L1: {config.machine.l1.size_bytes} B, "
                f"{config.machine.l1.line_bytes} B lines, "
                f"{config.machine.l1.assoc}-way",
                f"- L2: {config.machine.l2.size_bytes} B, "
                f"{config.machine.l2.line_bytes} B lines, "
                f"{config.machine.l2.assoc}-way",
                f"- registers: {config.machine.registers}",
                f"- instruction cycles: {config.machine.costs.instruction_cycles}",
                f"- sizes: {list(config.sizes)}",
                f"- jacobi M: {config.jacobi_m}",
                f"- tile policy: {config.tile_policy}",
                f"- seed: {config.seed}",
                "",
            ]
        )
    )
    return written
