"""Model-guided transformation choice (the paper's stated future work).

Section 6: "Another [future work] is to develop a cost model for guiding
our and other transformations for locality enhancement in whole programs."
The trace-driven machine model *is* a cost model; this module uses it as a
guide:

- :func:`choose_tile` picks a tile size by measuring candidate tiles at a
  cheap *probe* size and predicting the ranking carries to the target size.
  The probe must lie in the same cache regime as the target: below the L2
  transition the ranking inverts (small tiles minimise loop overhead when
  everything fits anyway), so the default probe is ~1.4x the L2-fill order
  — past the transition yet far cheaper than the target;
- :func:`choose_variant` decides *whether tiling pays at all* at a given
  size (the crossover question) from the same probes.

The benchmark suite checks the guide against exhaustive measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import measure_variant
from repro.experiments.sweep import SweepConfig
from repro.tilesize.pdat import pdat_tile

#: Default candidate tile edges (PDAT is injected as well).
DEFAULT_CANDIDATES = (4, 8, 16, 24)


@dataclass(frozen=True)
class TileChoice:
    """Outcome of a guided tile search."""

    kernel: str
    target_n: int
    probe_n: int
    chosen_tile: int
    #: tile -> probe-size cycles
    probe_cycles: dict[int, float]

    def ranking(self) -> list[int]:
        """Candidate tiles, best probe first."""
        return sorted(self.probe_cycles, key=self.probe_cycles.__getitem__)


def _cycles(kernel: str, variant: str, n: int, config: SweepConfig, tile=None) -> float:
    return measure_variant(kernel, variant, n, config, tile=tile).report.total_cycles


def choose_tile(
    kernel: str,
    target_n: int,
    config: SweepConfig,
    *,
    candidates: tuple[int, ...] = DEFAULT_CANDIDATES,
    probe_n: int | None = None,
) -> TileChoice:
    """Pick the tile with the fewest simulated cycles at the probe size."""
    pdat = pdat_tile(config.machine.l1)
    tiles = tuple(dict.fromkeys((*candidates, pdat)))
    # Past the L2 transition (same regime as any interesting target), but
    # never larger than the target itself.
    regime = int(config.machine.l2_fill_order() * 1.4)
    probe = probe_n or max(min(target_n, regime), 16)
    probe_cycles = {
        tile: _cycles(kernel, "tiled", probe, config, tile=tile) for tile in tiles
    }
    best = min(probe_cycles, key=probe_cycles.__getitem__)
    return TileChoice(
        kernel=kernel,
        target_n=target_n,
        probe_n=probe,
        chosen_tile=best,
        probe_cycles=probe_cycles,
    )


def choose_variant(
    kernel: str, n: int, config: SweepConfig, *, tile: int | None = None
) -> str:
    """'tiled' when the model predicts a win at size *n*, else 'seq'."""
    tile = tile if tile is not None else config.tile_for(n)
    seq = _cycles(kernel, "seq", n, config)
    tiled = _cycles(kernel, "tiled", n, config, tile=tile)
    return "tiled" if tiled < seq else "seq"


def guided_speedup(
    kernel: str, target_n: int, config: SweepConfig
) -> tuple[float, float]:
    """(guided speedup, best-exhaustive speedup) at the target size."""
    choice = choose_tile(kernel, target_n, config)
    seq = _cycles(kernel, "seq", target_n, config)
    guided = seq / _cycles(kernel, "tiled", target_n, config, tile=choice.chosen_tile)
    best = max(
        seq / _cycles(kernel, "tiled", target_n, config, tile=t)
        for t in choice.probe_cycles
    )
    return guided, best
