"""Experiment harness regenerating every table and figure of the paper.

- :mod:`repro.experiments.runner` — run one kernel variant under the
  machine model and collect its perfex-style report;
- :mod:`repro.experiments.sweep` — problem-size sweeps and scaling rules
  (paper sizes vs. scaled-machine sizes);
- :mod:`repro.experiments.figure5` … ``figure678`` — the paper's figures;
- :mod:`repro.experiments.table1` — the capability-comparison table;
- :mod:`repro.experiments.jacobi_stats` — the in-text Jacobi load /
  instruction reductions;
- :mod:`repro.experiments.paperpoint` — one measurement on the *true*
  Octane2 geometry at a paper problem size (the scaling anchor);
- :mod:`repro.experiments.crossover` — locating the break-even sizes;
- :mod:`repro.experiments.costguide` — the Sec.-6 future work: using the
  machine model to guide tile-size and tile-or-not decisions;
- :mod:`repro.experiments.ablations` — design-choice studies beyond the
  paper (tile-size policy, skewing, copy widening, associativity,
  guard-cleanup contribution);
- :mod:`repro.experiments.pipeline_report` — per-pass build evidence
  (wall time, IR sizes) for every registered variant recipe;
- :mod:`repro.experiments.report` — markdown + CSV artefact writer.

Run from the command line::

    python -m repro.experiments figure5
    python -m repro.experiments all --quick
"""

from repro.experiments.runner import (
    VariantMeasurement,
    build_program,
    clear_caches,
    measure_points,
    measure_variant,
    run_pair,
)
from repro.experiments.sweep import SweepConfig, default_config, resolve_jobs

__all__ = [
    "VariantMeasurement",
    "build_program",
    "clear_caches",
    "measure_points",
    "measure_variant",
    "run_pair",
    "SweepConfig",
    "default_config",
    "resolve_jobs",
]
