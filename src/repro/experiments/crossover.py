"""Locating the break-even size: where does tiling start to win?

The task of a reproduction is the *shape*: who wins, by how much, and
**where the crossover falls**. The paper's curves cross 1.0 near its
smallest sizes (LU dips to 0.98); on the scaled machine the cleaned-up
tiled codes win everywhere, so we locate the more informative crossover of
the *sunk* (guard-carrying) tiled codes instead — the point where the
locality gain outgrows the code-sinking overhead, i.e. the paper's
trade-off becoming profitable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import measure_variant
from repro.experiments.sweep import SweepConfig, default_config
from repro.kernels.registry import KERNELS
from repro.utils.tables import render_table


@dataclass(frozen=True)
class Crossover:
    """Break-even information for one kernel."""

    kernel: str
    #: smallest probed N with sunk-tiled speedup >= 1 (None: never crossed)
    break_even_n: int | None
    #: speedups at the probe sizes
    probes: tuple[tuple[int, float], ...]


def find_crossover(
    kernel: str,
    config: SweepConfig,
    *,
    lo: int = 16,
    hi: int = 120,
    step: int = 8,
) -> Crossover:
    """Scan N in [lo, hi] for the sunk-tiled break-even point."""
    probes: list[tuple[int, float]] = []
    break_even: int | None = None
    for n in range(lo, hi + 1, step):
        seq = measure_variant(kernel, "seq", n, config).report
        tiled = measure_variant(kernel, "tiled_sunk", n, config).report
        speedup = seq.total_cycles / tiled.total_cycles
        probes.append((n, speedup))
        if break_even is None and speedup >= 1.0:
            break_even = n
    return Crossover(kernel=kernel, break_even_n=break_even, probes=tuple(probes))


def generate(config: SweepConfig | None = None) -> list[Crossover]:
    """Crossovers for all four kernels."""
    config = config or default_config()
    return [find_crossover(k, config) for k in KERNELS]


def render(results: list[Crossover]) -> str:
    """Text table with the break-even sizes in L2-fill units."""
    rows = []
    for r in results:
        fill = 64  # scaled L2-fill order
        rows.append(
            [
                r.kernel,
                r.break_even_n if r.break_even_n is not None else "none",
                (round(r.break_even_n / fill, 2) if r.break_even_n else "-"),
                " ".join(f"{n}:{s:.2f}" for n, s in r.probes),
            ]
        )
    return render_table(
        ["kernel", "break-even N", "x L2-fill", "probes (N:speedup)"],
        rows,
        title="Crossover — sunk-tiled codes break even against sequential",
    )


def main(config: SweepConfig | None = None) -> str:
    """Generate and render."""
    return render(generate(config))
