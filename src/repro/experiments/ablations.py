"""Ablation studies beyond the paper's figures.

Each study varies one design choice DESIGN.md calls out:

- ``tile_policy``   — PDAT vs LRW vs fixed square tiles (the paper says
  LRW and PDAT "almost always coincide"; verify);
- ``skew``          — Jacobi tiled with vs without the skew + time-
  innermost permutation (how much of the win is the time tiling);
- ``copy_widen``    — ElimRW with exact violating-write guards vs widened
  whole-domain copies (guard complexity vs copy volume);
- ``associativity`` — cache associativity sweep (1/2/4-way) at fixed
  capacity, seq vs tiled Cholesky.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.exec.compiled import CompiledProgram
from repro.experiments.runner import measure_variant
from repro.experiments.sweep import SweepConfig, default_config
from repro.kernels import jacobi
from repro.kernels.registry import get_kernel
from repro.machine.cache import CacheConfig
from repro.machine.configs import MachineConfig
from repro.machine.perfcounters import measure
from repro.utils.tables import render_table


def tile_policy_study(config: SweepConfig | None = None, kernel: str = "cholesky") -> str:
    """Speedup under PDAT, LRW and two fixed tile sizes."""
    config = config or default_config()
    policies = ("pdat", "lrw", "fixed:4", "fixed:16")
    rows = []
    for n in config.sizes:
        row: list = [n]
        seq = measure_variant(kernel, "seq", n, config).report
        for policy in policies:
            cfg = replace(config, tile_policy=policy)
            tiled = measure_variant(kernel, "tiled", n, cfg, tile=cfg.tile_for(n)).report
            row.append(seq.total_cycles / tiled.total_cycles)
        rows.append(row)
    return render_table(
        ["N", *policies],
        rows,
        title=f"Ablation — tile-size policy ({kernel} speedup over seq)",
    )


def skew_study(config: SweepConfig | None = None) -> str:
    """Jacobi: full skewed+time-tiled vs space-only tiling of the fixed code."""
    config = config or default_config()
    rows = []
    for n in config.sizes:
        seq = measure_variant("jacobi", "seq", n, config).report
        tiled = measure_variant("jacobi", "tiled", n, config).report
        # Space-only tiling: tile (i, j) of the fixed program, no skewing.
        from repro.trans.tiling import tile_program

        tile = config.tile_for(n)
        fixed = jacobi.fixed()
        space_only = tile_program(
            fixed,
            {"i": tile, "j": tile},
            order=["t", "it", "jt", "i", "j"],
            nest_index=_time_nest_index(fixed),
            name="jacobi_space_tiled",
        )
        report = _measure_program(space_only, "jacobi", n, config)
        rows.append(
            [
                n,
                seq.total_cycles / tiled.total_cycles,
                seq.total_cycles / report.total_cycles,
            ]
        )
    return render_table(
        ["N", "skew+time-tiled speedup", "space-only speedup"],
        rows,
        title="Ablation — Jacobi skewing / time tiling",
    )


def copy_widen_study(config: SweepConfig | None = None) -> str:
    """ElimRW copy widening: guard complexity vs behaviour."""
    config = config or default_config()
    from repro.trans.elim_rw import eliminate_rw
    from repro.trans.elim_ww_wr import eliminate_ww_wr

    rows = []
    nest = jacobi.fused_nest()
    fixed_nest = eliminate_ww_wr(nest).nest
    for widen in (True, False):
        rw = eliminate_rw(fixed_nest, widen_copies=widen)
        program = rw.nest.to_program(f"jacobi_widen_{widen}")
        for n in config.sizes[:2]:
            report = _measure_program(program, "jacobi", n, config)
            rows.append(
                [
                    "widened" if widen else "exact",
                    n,
                    report.graduated_instructions,
                    report.branches_resolved,
                    report.total_cycles,
                ]
            )
    return render_table(
        ["copies", "N", "instructions", "branches", "cycles"],
        rows,
        title="Ablation — ElimRW copy widening (fixed, untiled Jacobi)",
        float_fmt=",.0f",
    )


def associativity_study(config: SweepConfig | None = None) -> str:
    """Cholesky misses under 1/2/4-way caches of the same capacity."""
    config = config or default_config()
    rows = []
    for assoc in (1, 2, 4):
        machine = MachineConfig(
            name=f"{config.machine.name}-a{assoc}",
            l1=_with_assoc(config.machine.l1, assoc),
            l2=_with_assoc(config.machine.l2, assoc),
            costs=config.machine.costs,
        )
        cfg = replace(config, machine=machine)
        for n in config.sizes[:2]:
            seq = measure_variant("cholesky", "seq", n, cfg).report
            tiled = measure_variant("cholesky", "tiled", n, cfg).report
            rows.append(
                [assoc, n, seq.l1_misses, tiled.l1_misses, seq.l2_misses,
                 tiled.l2_misses, seq.total_cycles / tiled.total_cycles]
            )
    return render_table(
        ["assoc", "N", "seq L1", "tiled L1", "seq L2", "tiled L2", "speedup"],
        rows,
        title="Ablation — cache associativity (Cholesky)",
    )


def _with_assoc(cache: CacheConfig, assoc: int) -> CacheConfig:
    return CacheConfig(cache.name, cache.size_bytes, cache.line_bytes, assoc)


def undo_sinking_study(config: SweepConfig | None = None) -> str:
    """How much of the speedup the guard cleanup contributes, per kernel.

    Compares the fully cleaned tiled codes (unswitch + fact propagation +
    index-set splitting — the paper's "code sinking undone") against the
    sunk-guard tiled codes at the largest sweep size.
    """
    config = config or default_config()
    n = config.sizes[-1]
    rows = []
    for kernel in ("lu", "qr", "cholesky", "jacobi"):
        seq = measure_variant(kernel, "seq", n, config).report
        clean = measure_variant(kernel, "tiled", n, config).report
        sunk = measure_variant(kernel, "tiled_sunk", n, config).report
        rows.append(
            [
                kernel,
                seq.total_cycles / sunk.total_cycles,
                seq.total_cycles / clean.total_cycles,
                sunk.graduated_instructions / clean.graduated_instructions,
            ]
        )
    return render_table(
        ["kernel", "sunk speedup", "clean speedup", "instr ratio sunk/clean"],
        rows,
        title=f"Ablation — undoing code sinking (N = {n})",
    )


def _time_nest_index(program) -> int:
    from repro.ir.stmt import Loop

    for pos, stmt in enumerate(program.body):
        if isinstance(stmt, Loop) and stmt.var == "t":
            return pos
    raise ValueError("no time loop")


def _measure_program(program, kernel: str, n: int, config: SweepConfig):
    mod = get_kernel(kernel)
    params = {"N": n}
    if "M" in mod.PARAMS:
        params["M"] = config.jacobi_m
    rng = np.random.default_rng(config.seed)
    inputs = mod.make_inputs(params, rng)
    cp = CompiledProgram(program, trace=True)
    run = cp.run(params, inputs)
    return measure(run, program, params, config.machine)


def main(config: SweepConfig | None = None) -> str:
    """All ablations."""
    config = config or default_config(quick=True)
    return "\n\n".join(
        [
            tile_policy_study(config),
            skew_study(config),
            copy_widen_study(config),
            associativity_study(config),
            undo_sinking_study(config),
        ]
    )
