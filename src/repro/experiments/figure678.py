"""Figures 6–8: the Cholesky deep-dive (miss cycles, branch cycles,
graduated instructions), sequential vs tiled across problem sizes.

The tiled variant measured here keeps the code-sinking guards in place
(``tiled_sunk``): the paper's Figures 7-8 clearly show per-point guard
overhead in their tiled codes, so reproducing those shapes requires the
same code shape. (Figure 5 uses the fully cleaned-up tiled codes; our
unswitching pass removes most of the overhead the paper still paid —
see EXPERIMENTS.md.)

The paper's qualitative findings these series must reproduce:

- Fig. 6: tiling cuts the L2 miss cycles dramatically; L1 miss cycles
  change much less (for Cholesky/LU the method is "far more effective in
  reducing L2 misses");
- Fig. 7: branch resolution/misprediction cycles *increase* in the tiled
  code (code sinking adds conditionals) but stay small relative to the
  saved miss cycles;
- Fig. 8: graduated instructions increase at all sizes, yet each extra
  instruction is a 1-cycle integer op while an avoided L2 miss saves
  ~152.6 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import measure_points, measure_variant
from repro.experiments.sweep import SweepConfig, default_config
from repro.utils.tables import render_table

KERNEL = "cholesky"


@dataclass(frozen=True)
class CholRow:
    """One sweep point with both variants' perfex counters."""

    n: int
    seq_l1_cycles: float
    seq_l2_cycles: float
    tiled_l1_cycles: float
    tiled_l2_cycles: float
    seq_branch_resolved: int
    seq_branch_cycles: float
    tiled_branch_resolved: int
    tiled_branch_cycles: float
    seq_instructions: int
    tiled_instructions: int


def generate(config: SweepConfig | None = None, kernel: str = KERNEL) -> list[CholRow]:
    """Measure the Cholesky (by default) seq/tiled sweep."""
    config = config or default_config()
    measure_points(
        [
            (kernel, variant, n)
            for n in config.sizes
            for variant in ("seq", "tiled_sunk")
        ],
        config,
    )
    rows = []
    for n in config.sizes:
        seq = measure_variant(kernel, "seq", n, config).report
        tiled = measure_variant(kernel, "tiled_sunk", n, config).report
        rows.append(
            CholRow(
                n=n,
                seq_l1_cycles=seq.l1_miss_cycles,
                seq_l2_cycles=seq.l2_miss_cycles,
                tiled_l1_cycles=tiled.l1_miss_cycles,
                tiled_l2_cycles=tiled.l2_miss_cycles,
                seq_branch_resolved=seq.branches_resolved,
                seq_branch_cycles=seq.branch_resolve_cycles
                + seq.branch_mispredict_cycles,
                tiled_branch_resolved=tiled.branches_resolved,
                tiled_branch_cycles=tiled.branch_resolve_cycles
                + tiled.branch_mispredict_cycles,
                seq_instructions=seq.graduated_instructions,
                tiled_instructions=tiled.graduated_instructions,
            )
        )
    return rows


def render_figure6(rows: list[CholRow]) -> str:
    """L1/L2 miss cycles, seq vs tiled."""
    return render_table(
        ["N", "seq L1 cyc", "tiled L1 cyc", "seq L2 cyc", "tiled L2 cyc",
         "L2 reduction"],
        [
            [
                r.n,
                r.seq_l1_cycles,
                r.tiled_l1_cycles,
                r.seq_l2_cycles,
                r.tiled_l2_cycles,
                (r.seq_l2_cycles / r.tiled_l2_cycles if r.tiled_l2_cycles else float("inf")),
            ]
            for r in rows
        ],
        title="Figure 6 — CHOL typical miss cycles (L1 @9.92, L2 @162.55)",
        float_fmt=",.0f",
    )


def render_figure7(rows: list[CholRow]) -> str:
    """Branch resolution + misprediction cycles, seq vs tiled."""
    return render_table(
        ["N", "seq resolved", "seq branch cyc", "tiled resolved", "tiled branch cyc"],
        [
            [
                r.n,
                r.seq_branch_resolved,
                r.seq_branch_cycles,
                r.tiled_branch_resolved,
                r.tiled_branch_cycles,
            ]
            for r in rows
        ],
        title="Figure 7 — CHOL branch resolution/misprediction cycles",
        float_fmt=",.0f",
    )


def render_figure8(rows: list[CholRow]) -> str:
    """Graduated instruction counts, seq vs tiled."""
    return render_table(
        ["N", "seq instructions", "tiled instructions", "increase"],
        [
            [
                r.n,
                r.seq_instructions,
                r.tiled_instructions,
                r.tiled_instructions / r.seq_instructions,
            ]
            for r in rows
        ],
        title="Figure 8 — CHOL graduated instructions",
        float_fmt=",.2f",
    )


def main(config: SweepConfig | None = None) -> str:
    """All three figures."""
    rows = generate(config)
    return "\n\n".join(
        [render_figure6(rows), render_figure7(rows), render_figure8(rows)]
    )
