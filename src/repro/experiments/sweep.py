"""Sweep configuration: problem sizes, machine, tile policy.

The paper sweeps N = 200..2500 at multiples of 238 (about 10 points
bracketing the size where one array fills the 2 MB L2: 512x512 doubles)
with Jacobi's M fixed at 500. The scaled machine's L2 holds 64x64 doubles,
so the default scaled sweep brackets 64 the same way. Quick mode (the
default for the pytest benchmarks) uses a 4-point subset; set
``REPRO_FULL_SWEEP=1`` for the full curve and ``REPRO_FULL_MACHINE=1`` to
run the real Octane2 geometry (very slow in pure Python).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.machine.configs import MachineConfig, default_machine
from repro.tilesize.lrw import lrw_tile
from repro.tilesize.pdat import pdat_tile

#: Paper problem sizes (multiples of 238 within [200, 2500]).
PAPER_SIZES = tuple(238 * i for i in range(1, 11))
#: Scaled sweep: same ratio band around the L2-filling order (64). Like the
#: paper's multiples of 238, the sizes avoid power-of-two leading
#: dimensions, whose column stride aliases the 2-way sets pathologically
#: (use REPRO_SIZES=128,... to study exactly that effect).
SCALED_SIZES = (24, 56, 88, 120, 152, 184)
#: Quick subset used by default in the benchmark suite.
QUICK_SIZES = (24, 56, 88, 120)

#: Jacobi time steps: paper 500; scaled runs use 12 (the miss behaviour is
#: periodic in t once the working set is established).
PAPER_JACOBI_M = 500
SCALED_JACOBI_M = 12


def resolve_jobs(override: int | None = None) -> int:
    """Worker-process count for sweep fan-out (``>= 1``).

    *override*, else ``REPRO_JOBS``, else 1 — serial by default, so figure
    output is produced by exactly the code path it always was. Parallel
    runs are byte-identical anyway (workers only warm the caches; the
    figures assemble from the same measurements), so ``REPRO_JOBS=4`` is
    purely a wall-clock knob.
    """
    if override is None:
        override = int(os.environ.get("REPRO_JOBS", "1"))
    return max(1, int(override))


@dataclass(frozen=True)
class SweepConfig:
    """Everything a figure generator needs."""

    machine: MachineConfig
    sizes: tuple[int, ...]
    jacobi_m: int
    tile_policy: str = "pdat"  # "pdat" | "lrw" | "fixed:<edge>"
    seed: int = 20050615

    def tile_for(self, n: int) -> int:
        """Tile edge for problem size *n* under the configured policy."""
        if self.tile_policy == "pdat":
            return pdat_tile(self.machine.l1)
        if self.tile_policy == "lrw":
            return lrw_tile(self.machine.l1, n)
        if self.tile_policy.startswith("fixed:"):
            return int(self.tile_policy.split(":", 1)[1])
        raise ValueError(f"unknown tile policy {self.tile_policy!r}")


def default_config(*, quick: bool | None = None) -> SweepConfig:
    """Environment-aware default configuration."""
    machine = default_machine()
    full = os.environ.get("REPRO_FULL_SWEEP", "") == "1"
    if quick is None:
        quick = not full
    sizes = SCALED_SIZES if not quick else QUICK_SIZES
    if machine.name == "octane2":
        sizes = PAPER_SIZES[:3] if quick else PAPER_SIZES
        jacobi_m = PAPER_JACOBI_M
    else:
        jacobi_m = SCALED_JACOBI_M
    env_sizes = os.environ.get("REPRO_SIZES")
    if env_sizes:
        sizes = tuple(int(s) for s in env_sizes.split(",") if s.strip())
    return SweepConfig(machine=machine, sizes=tuple(sizes), jacobi_m=jacobi_m)
