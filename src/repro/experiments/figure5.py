"""Figure 5: performance improvements (tiled-over-sequential speedups).

The paper plots, per kernel, the speedup of the tiled code over the
sequential code across problem sizes. Reported ranges (SGI Octane2):
LU 0.98–2.80, QR 0.57–2.28, Cholesky 1.11–4.27, Jacobi 2.16–7.51, with
Jacobi consistently the largest and every kernel improving at large N.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import measure_points, run_pair
from repro.experiments.sweep import SweepConfig, default_config
from repro.kernels.registry import KERNELS
from repro.utils.tables import render_table

#: Paper-reported speedup ranges per kernel (min, max across sizes).
PAPER_SPEEDUP_RANGES = {
    "lu": (0.98, 2.80),
    "qr": (0.57, 2.28),
    "cholesky": (1.11, 4.27),
    "jacobi": (2.16, 7.51),
}


@dataclass(frozen=True)
class Figure5Row:
    """One sweep point."""

    kernel: str
    n: int
    tile: int
    seq_cycles: float
    tiled_cycles: float
    speedup: float


def generate(config: SweepConfig | None = None) -> list[Figure5Row]:
    """Measure every (kernel, size) pair.

    The full grid is prefetched through :func:`measure_points` first
    (parallel when ``REPRO_JOBS`` > 1); the assembly loop below then hits
    the memo, so serial and parallel runs emit identical rows.
    """
    config = config or default_config()
    measure_points(
        [
            (kernel, variant, n)
            for kernel in KERNELS
            for n in config.sizes
            for variant in ("seq", "tiled")
        ],
        config,
    )
    rows: list[Figure5Row] = []
    for kernel in KERNELS:
        for n in config.sizes:
            seq, tiled, speedup = run_pair(kernel, n, config)
            rows.append(
                Figure5Row(
                    kernel=kernel,
                    n=n,
                    tile=tiled.tile or 0,
                    seq_cycles=seq.report.total_cycles,
                    tiled_cycles=tiled.report.total_cycles,
                    speedup=speedup,
                )
            )
    return rows


def render(rows: list[Figure5Row]) -> str:
    """The figure as a text table plus per-kernel range summary."""
    table = render_table(
        ["kernel", "N", "tile", "seq cycles", "tiled cycles", "speedup"],
        [
            [
                r.kernel,
                r.n,
                r.tile,
                f"{r.seq_cycles:,.0f}",
                f"{r.tiled_cycles:,.0f}",
                f"{r.speedup:.2f}",
            ]
            for r in rows
        ],
        title="Figure 5 — speedups of tiled over sequential",
    )
    lines = [table, "", "speedup ranges (measured vs paper):"]
    for kernel in KERNELS:
        ours = [r.speedup for r in rows if r.kernel == kernel]
        lo, hi = min(ours), max(ours)
        plo, phi = PAPER_SPEEDUP_RANGES[kernel]
        lines.append(
            f"  {kernel:9s} measured {lo:.2f}..{hi:.2f}   paper {plo:.2f}..{phi:.2f}"
        )
    return "\n".join(lines)


def main(config: SweepConfig | None = None) -> str:
    """Generate and render."""
    return render(generate(config))
