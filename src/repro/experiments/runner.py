"""Running kernel variants under the machine model.

``measure_variant`` is the single code path every figure uses: build the
variant program, compile it with tracing, run it on deterministic inputs,
replay the traces through the simulated Octane2, and return the
:class:`~repro.machine.perfcounters.PerfReport`.

Measurements are memoised in-process and, optionally, on disk
(``REPRO_CACHE_DIR``; set ``REPRO_NO_CACHE=1`` to disable) — a sweep point
costs seconds, and the benchmark suite re-runs them often.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.exec.compiled import CompiledProgram
from repro.kernels.registry import get_kernel
from repro.machine.perfcounters import PerfReport, measure
from repro.experiments.sweep import SweepConfig

_VARIANTS = ("seq", "fused", "fixed", "tiled", "tiled_sunk")


@dataclass(frozen=True)
class VariantMeasurement:
    """One measured (kernel, variant, size) point."""

    kernel: str
    variant: str
    n: int
    tile: int | None
    report: PerfReport


_memo: dict[tuple, VariantMeasurement] = {}
_compiled: dict[tuple, CompiledProgram] = {}


def _cache_dir() -> Path | None:
    if os.environ.get("REPRO_NO_CACHE", "") == "1":
        return None
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def _cache_key(kernel: str, variant: str, n: int, tile: int | None, config: SweepConfig) -> str:
    costs = config.machine.costs
    cost_tag = (f"v4-ic{costs.instruction_cycles}-l1{costs.l1_miss_cycles}"
                f"-l2{costs.l2_miss_cycles}-r{config.machine.registers}")
    return (
        f"{kernel}-{variant}-N{n}-T{tile}-{config.machine.name}"
        f"-M{config.jacobi_m}-s{config.seed}-{cost_tag}"
    )


def _load_cached(key: str) -> PerfReport | None:
    d = _cache_dir()
    if d is None:
        return None
    path = d / f"{key}.json"
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
        return PerfReport(**data)
    except (json.JSONDecodeError, TypeError):
        return None


def _store_cached(key: str, report: PerfReport) -> None:
    d = _cache_dir()
    if d is None:
        return
    d.mkdir(parents=True, exist_ok=True)
    (d / f"{key}.json").write_text(json.dumps(report.as_dict()))


def _build_program(kernel: str, variant: str, tile: int | None):
    mod = get_kernel(kernel)
    if variant == "seq":
        return mod.sequential()
    if variant == "fused":
        return mod.fused_nest().to_program()
    if variant == "fixed":
        return mod.fixed()
    if variant == "tiled":
        return mod.tiled(tile if tile is not None else 8)
    if variant == "tiled_sunk":
        # guards left as code sinking produced them (paper Figs. 7-8 shape)
        return mod.tiled(tile if tile is not None else 8, undo_sinking=False)
    raise ReproError(f"unknown variant {variant!r}; choose from {_VARIANTS}")


def _params_for(kernel: str, n: int, config: SweepConfig) -> dict[str, int]:
    params = {"N": n}
    if "M" in get_kernel(kernel).PARAMS:
        params["M"] = config.jacobi_m
    return params


def measure_variant(
    kernel: str,
    variant: str,
    n: int,
    config: SweepConfig,
    *,
    tile: int | None = None,
) -> VariantMeasurement:
    """Measure one (kernel, variant, N) point (memoised)."""
    if variant in ("tiled", "tiled_sunk") and tile is None:
        tile = config.tile_for(n)
    key = _cache_key(kernel, variant, n, tile, config)
    memo_key = (key,)
    if memo_key in _memo:
        return _memo[memo_key]

    cached = _load_cached(key)
    if cached is not None:
        result = VariantMeasurement(kernel, variant, n, tile, cached)
        _memo[memo_key] = result
        return result

    mod = get_kernel(kernel)
    params = _params_for(kernel, n, config)
    rng = np.random.default_rng(config.seed)
    inputs = mod.make_inputs(params, rng)

    compile_key = (kernel, variant, tile)
    cp = _compiled.get(compile_key)
    if cp is None:
        cp = CompiledProgram(_build_program(kernel, variant, tile), trace=True)
        _compiled[compile_key] = cp
    run = cp.run(params, inputs)
    report = measure(run, cp.program, params, config.machine)
    _store_cached(key, report)
    result = VariantMeasurement(kernel, variant, n, tile, report)
    _memo[memo_key] = result
    return result


def run_pair(
    kernel: str, n: int, config: SweepConfig
) -> tuple[VariantMeasurement, VariantMeasurement, float]:
    """(seq, tiled, speedup) for one kernel and size."""
    seq = measure_variant(kernel, "seq", n, config)
    tiled = measure_variant(kernel, "tiled", n, config)
    speedup = seq.report.total_cycles / tiled.report.total_cycles
    return seq, tiled, speedup
