"""Running kernel variants under the machine model.

``measure_variant`` is the single code path every figure uses: resolve the
variant through the **recipe registry** (:mod:`repro.kernels.recipes`),
build its program with the :class:`~repro.pipeline.manager.PassManager`
(keeping the per-pass timing report), compile with tracing, run on
deterministic inputs, replay the traces through the simulated Octane2, and
return the :class:`~repro.machine.perfcounters.PerfReport`.

Measurements are memoised in-process (capped LRU; :func:`clear_caches`
resets) and, optionally, on disk (``REPRO_CACHE_DIR``; set
``REPRO_NO_CACHE=1`` to disable). Disk-cache keys embed a **content
fingerprint** of the recipe, the emitted program, and the machine config
(:func:`repro.pipeline.recipe.measurement_fingerprint`) — any change to a
pass parameter, the emitted code, or the cost model changes the filename,
so stale entries are simply never read again. No hand-bumped version tag
to forget.

Sweep grids fan out across processes with :func:`measure_points`
(``REPRO_JOBS``, default 1). Every worker starts with *empty* in-process
memos (:func:`clear_caches` runs as the pool initializer) but shares the
fingerprint-keyed disk cache, whose writes are atomic
(temp file + ``os.replace``) so a concurrent reader can never observe a
truncated report. The figure generators then assemble their output
through the unchanged serial path, which finds every point already
memoised — parallel runs are byte-identical to serial ones.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.exec.compiled import (
    CompiledProgram,
    resolve_exec_mode,
    resolve_min_block_trip,
)
from repro.experiments.sweep import SweepConfig, resolve_jobs
from repro.ir.program import Program
from repro.kernels.registry import get_kernel, get_recipe
from repro.machine.perfcounters import PerfReport, measure, measure_streaming
from repro.pipeline.manager import PassManager, PipelineReport
from repro.pipeline.passes import PassContext
from repro.pipeline.recipe import VariantRecipe, measurement_fingerprint
from repro.utils.caching import LRUCache


@dataclass(frozen=True)
class VariantMeasurement:
    """One measured (kernel, variant, size) point."""

    kernel: str
    variant: str
    n: int
    tile: int | None
    report: PerfReport
    #: Per-pass build evidence (None when the measurement came from cache
    #: without a fresh in-process build this call — never the case today,
    #: since the fingerprint requires building the program).
    pipeline: PipelineReport | None = None


_log = logging.getLogger("repro.sweep")

_memo: LRUCache = LRUCache(maxsize=4096)
_built: LRUCache = LRUCache(maxsize=256)
_compiled: LRUCache = LRUCache(maxsize=256)


def clear_caches() -> None:
    """Drop every in-process memo (measurements, built programs,
    compiled engines). Disk cache is untouched.

    Also the :func:`measure_points` pool initializer: forked workers
    inherit the parent's memos, and a sweep worker must re-measure (or
    disk-load) rather than answer from inherited state, so each worker
    starts cold in-process and warm on disk.
    """
    from repro.poly import memo as poly_memo

    _memo.clear()
    _built.clear()
    _compiled.clear()
    poly_memo.clear_memos()


def _cache_dir() -> Path | None:
    if os.environ.get("REPRO_NO_CACHE", "") == "1":
        return None
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def _load_cached(key: str) -> PerfReport | None:
    d = _cache_dir()
    if d is None:
        return None
    path = d / f"{key}.json"
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
        return PerfReport(**data)
    except (OSError, json.JSONDecodeError, TypeError) as exc:
        # Unreadable or malformed entries mean "not cached": recompute
        # and overwrite rather than fail the sweep — but never silently.
        # A corrupt entry is tolerated once here and detectable forever:
        # counted, logged, and surfaced in the telemetry summary.
        telemetry.counter("sweep.cache.corrupt")
        _log.warning(
            "sweep cache: discarding unreadable entry %s (%s: %s)",
            path, type(exc).__name__, exc,
        )
        return None


def _store_cached(key: str, report: PerfReport) -> None:
    d = _cache_dir()
    if d is None:
        return
    d.mkdir(parents=True, exist_ok=True)
    # Write-then-rename so concurrent sweep workers never expose a
    # truncated JSON file to a reader; os.replace is atomic within the
    # cache directory.
    tmp = d / f".{key}.{os.getpid()}.tmp"
    try:
        tmp.write_text(json.dumps(report.as_dict()))
        os.replace(tmp, d / f"{key}.json")
    except OSError:
        tmp.unlink(missing_ok=True)


def build_program(
    kernel: str, variant: str, *, tile: int | None = None,
    time_tile: int | None = None,
) -> tuple[Program, PipelineReport, VariantRecipe]:
    """Build one variant through its registered recipe (memoised).

    Raises :class:`~repro.errors.ReproError` for unknown kernels/variants,
    listing the registered choices.
    """
    recipe = get_recipe(kernel, variant)

    def compute():
        ctx = PassContext(
            kernel=get_kernel(kernel), tile=tile, time_tile=time_tile
        )
        return PassManager().build(recipe, ctx)

    program, pipeline = _built.get_or_compute(
        (kernel, variant, tile, time_tile), compute
    )
    return program, pipeline, recipe


def _params_for(kernel: str, n: int, config: SweepConfig) -> dict[str, int]:
    params = {"N": n}
    if "M" in get_kernel(kernel).PARAMS:
        params["M"] = config.jacobi_m
    return params


def _trace_mode(override: str | None) -> str:
    mode = override or os.environ.get("REPRO_TRACE_MODE", "stream")
    if mode not in ("stream", "materialize"):
        raise ValueError(
            f"trace_mode must be 'stream' or 'materialize', got {mode!r}"
        )
    return mode


def _tile_for(variant: str, n: int, config: SweepConfig, tile: int | None) -> int | None:
    if variant in ("tiled", "tiled_sunk") and tile is None:
        return config.tile_for(n)
    return tile


def _point_key(
    kernel: str,
    variant: str,
    n: int,
    config: SweepConfig,
    tile: int | None,
    program: Program,
    recipe: VariantRecipe,
) -> str:
    """Memo/disk key of one measurement: human-readable prefix plus the
    content fingerprint (shared by the parent and every sweep worker)."""
    params = _params_for(kernel, n, config)
    return (
        f"{kernel}-{variant}-N{n}-"
        + measurement_fingerprint(
            recipe,
            program,
            config.machine,
            {"params": params, "tile": tile, "seed": config.seed},
        )
    )


def measure_variant(
    kernel: str,
    variant: str,
    n: int,
    config: SweepConfig,
    *,
    tile: int | None = None,
    trace_mode: str | None = None,
) -> VariantMeasurement:
    """Measure one (kernel, variant, N) point (memoised).

    ``trace_mode`` selects how the trace reaches the machine model:
    ``"stream"`` (default) drives the fused sink pipeline in bounded
    memory; ``"materialize"`` builds the full trace first (debugging
    path). Results are bit-identical, so the cache key is unaffected;
    the ``REPRO_TRACE_MODE`` env var overrides the default. The same
    holds for the executor tier (``REPRO_EXEC_MODE``): block and scalar
    produce bit-identical reports by contract.
    """
    tile = _tile_for(variant, n, config, tile)
    program, pipeline, recipe = build_program(kernel, variant, tile=tile)
    params = _params_for(kernel, n, config)
    key = _point_key(kernel, variant, n, config, tile, program, recipe)
    if key in _memo:
        telemetry.counter("sweep.memo.hit")
        return _memo[key]

    # One span per *measured* grid point: memo hits above never reach
    # here, so a sweep's `sweep.point` span count equals the number of
    # points that actually went to disk or to the machine model.
    with telemetry.span(
        "sweep.point", kernel=kernel, variant=variant, n=n
    ) as sp:
        cached = _load_cached(key)
        if cached is not None:
            telemetry.counter("sweep.cache.hit")
            sp.set(source="disk")
            result = VariantMeasurement(kernel, variant, n, tile, cached, pipeline)
            _memo[key] = result
            return result
        telemetry.counter("sweep.cache.miss")

        mod = get_kernel(kernel)
        rng = np.random.default_rng(config.seed)
        inputs = mod.make_inputs(params, rng)

        def compile_program():
            return CompiledProgram(program, trace=True)

        # The engine memo must key on the effective tier configuration:
        # flipping REPRO_EXEC_MODE / REPRO_BLOCK_MIN_TRIP mid-process must
        # not resurrect an engine compiled for the other tier.
        cp = _compiled.get_or_compute(
            (kernel, variant, tile, resolve_exec_mode(), resolve_min_block_trip()),
            compile_program,
        )
        if _trace_mode(trace_mode) == "stream":
            _, report = measure_streaming(cp, params, config.machine, inputs)
        else:
            run = cp.run(params, inputs)
            report = measure(run, cp.program, params, config.machine)
        _store_cached(key, report)
        sp.set(source="computed")
        result = VariantMeasurement(kernel, variant, n, tile, report, pipeline)
        _memo[key] = result
        return result


def _measure_point_worker(
    point: tuple[str, str, int],
    config: SweepConfig,
    with_telemetry: bool = False,
) -> tuple[tuple[str, str, int], dict[str, float], dict | None]:
    """Sweep-pool body: measure one point, return its report as a dict
    plus (when the parent is recording) the worker's serialized telemetry.

    Runs in a worker whose in-process memos were cleared by the pool
    initializer; the measurement also lands in the shared disk cache (if
    enabled) via the atomic writer. Telemetry is reset *per point* so a
    forking pool never re-exports inherited parent spans — the parent
    absorbs exactly one point's evidence per returned state.
    """
    if with_telemetry:
        telemetry.reset()
        telemetry.enable()
    kernel, variant, n = point
    report = measure_variant(kernel, variant, n, config).report.as_dict()
    state = telemetry.export_state() if with_telemetry else None
    return point, report, state


def measure_points(
    points: list[tuple[str, str, int]],
    config: SweepConfig,
    *,
    jobs: int | None = None,
) -> list[VariantMeasurement]:
    """Measure a grid of (kernel, variant, N) points, optionally in
    parallel, and return them in input order.

    ``jobs`` (default: ``REPRO_JOBS``, i.e. 1) sets the worker-process
    count. With 1 the points run serially through
    :func:`measure_variant` — exactly the historical code path. With
    more, the *unmemoised* points fan out across a
    ``ProcessPoolExecutor`` whose workers start with cleared in-process
    memos (see :func:`clear_caches`) but share the disk cache; the
    parent then seeds its own memo from the workers' reports, so
    subsequent serial figure assembly reuses them byte-identically even
    with ``REPRO_NO_CACHE=1``.
    """
    points = [tuple(p) for p in points]
    jobs = resolve_jobs(jobs)
    todo = []
    for kernel, variant, n in dict.fromkeys(points):
        tile = _tile_for(variant, n, config, None)
        program, _, recipe = build_program(kernel, variant, tile=tile)
        key = _point_key(kernel, variant, n, config, tile, program, recipe)
        if key not in _memo:
            todo.append((kernel, variant, n))
    if jobs > 1 and len(todo) > 1:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        with_telemetry = telemetry.enabled()
        reports: dict[tuple[str, str, int], dict[str, float]] = {}
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(todo)), initializer=clear_caches
        ) as pool:
            futures = [
                pool.submit(_measure_point_worker, p, config, with_telemetry)
                for p in todo
            ]
            for fut in as_completed(futures):
                point, data, state = fut.result()
                reports[point] = data
                # Fold each worker's spans/metrics into the parent so a
                # parallel sweep yields one coherent trace.
                telemetry.absorb(state)
        for kernel, variant, n in todo:
            tile = _tile_for(variant, n, config, None)
            program, pipeline, recipe = build_program(kernel, variant, tile=tile)
            key = _point_key(kernel, variant, n, config, tile, program, recipe)
            if key not in _memo:
                report = PerfReport(**reports[(kernel, variant, n)])
                _memo[key] = VariantMeasurement(
                    kernel, variant, n, tile, report, pipeline
                )
    return [measure_variant(k, v, n, config) for k, v, n in points]


def run_pair(
    kernel: str, n: int, config: SweepConfig
) -> tuple[VariantMeasurement, VariantMeasurement, float]:
    """(seq, tiled, speedup) for one kernel and size."""
    seq = measure_variant(kernel, "seq", n, config)
    tiled = measure_variant(kernel, "tiled", n, config)
    speedup = seq.report.total_cycles / tiled.report.total_cycles
    return seq, tiled, speedup
