"""Running kernel variants under the machine model.

``measure_variant`` is the single code path every figure uses: resolve the
variant through the **recipe registry** (:mod:`repro.kernels.recipes`),
build its program with the :class:`~repro.pipeline.manager.PassManager`
(keeping the per-pass timing report), compile with tracing, run on
deterministic inputs, replay the traces through the simulated Octane2, and
return the :class:`~repro.machine.perfcounters.PerfReport`.

Measurements are memoised in-process (capped LRU; ``clear_caches()``
resets) and, optionally, on disk (``REPRO_CACHE_DIR``; set
``REPRO_NO_CACHE=1`` to disable). Disk-cache keys embed a **content
fingerprint** of the recipe, the emitted program, and the machine config
(:func:`repro.pipeline.recipe.measurement_fingerprint`) — any change to a
pass parameter, the emitted code, or the cost model changes the filename,
so stale entries are simply never read again. No hand-bumped version tag
to forget.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exec.compiled import CompiledProgram
from repro.experiments.sweep import SweepConfig
from repro.ir.program import Program
from repro.kernels.registry import get_kernel, get_recipe
from repro.machine.perfcounters import PerfReport, measure, measure_streaming
from repro.pipeline.manager import PassManager, PipelineReport
from repro.pipeline.passes import PassContext
from repro.pipeline.recipe import VariantRecipe, measurement_fingerprint
from repro.utils.caching import LRUCache


@dataclass(frozen=True)
class VariantMeasurement:
    """One measured (kernel, variant, size) point."""

    kernel: str
    variant: str
    n: int
    tile: int | None
    report: PerfReport
    #: Per-pass build evidence (None when the measurement came from cache
    #: without a fresh in-process build this call — never the case today,
    #: since the fingerprint requires building the program).
    pipeline: PipelineReport | None = None


_memo: LRUCache = LRUCache(maxsize=4096)
_built: LRUCache = LRUCache(maxsize=256)
_compiled: LRUCache = LRUCache(maxsize=256)


def clear_caches() -> None:
    """Drop every in-process memo (measurements, built programs,
    compiled engines). Disk cache is untouched."""
    _memo.clear()
    _built.clear()
    _compiled.clear()


def _cache_dir() -> Path | None:
    if os.environ.get("REPRO_NO_CACHE", "") == "1":
        return None
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def _load_cached(key: str) -> PerfReport | None:
    d = _cache_dir()
    if d is None:
        return None
    path = d / f"{key}.json"
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
        return PerfReport(**data)
    except (json.JSONDecodeError, TypeError):
        return None


def _store_cached(key: str, report: PerfReport) -> None:
    d = _cache_dir()
    if d is None:
        return
    d.mkdir(parents=True, exist_ok=True)
    (d / f"{key}.json").write_text(json.dumps(report.as_dict()))


def build_program(
    kernel: str, variant: str, *, tile: int | None = None,
    time_tile: int | None = None,
) -> tuple[Program, PipelineReport, VariantRecipe]:
    """Build one variant through its registered recipe (memoised).

    Raises :class:`~repro.errors.ReproError` for unknown kernels/variants,
    listing the registered choices.
    """
    recipe = get_recipe(kernel, variant)

    def compute():
        ctx = PassContext(
            kernel=get_kernel(kernel), tile=tile, time_tile=time_tile
        )
        return PassManager().build(recipe, ctx)

    program, pipeline = _built.get_or_compute(
        (kernel, variant, tile, time_tile), compute
    )
    return program, pipeline, recipe


def _params_for(kernel: str, n: int, config: SweepConfig) -> dict[str, int]:
    params = {"N": n}
    if "M" in get_kernel(kernel).PARAMS:
        params["M"] = config.jacobi_m
    return params


def _trace_mode(override: str | None) -> str:
    mode = override or os.environ.get("REPRO_TRACE_MODE", "stream")
    if mode not in ("stream", "materialize"):
        raise ValueError(
            f"trace_mode must be 'stream' or 'materialize', got {mode!r}"
        )
    return mode


def measure_variant(
    kernel: str,
    variant: str,
    n: int,
    config: SweepConfig,
    *,
    tile: int | None = None,
    trace_mode: str | None = None,
) -> VariantMeasurement:
    """Measure one (kernel, variant, N) point (memoised).

    ``trace_mode`` selects how the trace reaches the machine model:
    ``"stream"`` (default) drives the fused sink pipeline in bounded
    memory; ``"materialize"`` builds the full trace first (debugging
    path). Results are bit-identical, so the cache key is unaffected;
    the ``REPRO_TRACE_MODE`` env var overrides the default.
    """
    if variant in ("tiled", "tiled_sunk") and tile is None:
        tile = config.tile_for(n)
    program, pipeline, recipe = build_program(kernel, variant, tile=tile)
    params = _params_for(kernel, n, config)
    key = (
        f"{kernel}-{variant}-N{n}-"
        + measurement_fingerprint(
            recipe,
            program,
            config.machine,
            {"params": params, "tile": tile, "seed": config.seed},
        )
    )
    if key in _memo:
        return _memo[key]

    cached = _load_cached(key)
    if cached is not None:
        result = VariantMeasurement(kernel, variant, n, tile, cached, pipeline)
        _memo[key] = result
        return result

    mod = get_kernel(kernel)
    rng = np.random.default_rng(config.seed)
    inputs = mod.make_inputs(params, rng)

    def compile_program():
        return CompiledProgram(program, trace=True)

    cp = _compiled.get_or_compute((kernel, variant, tile), compile_program)
    if _trace_mode(trace_mode) == "stream":
        _, report = measure_streaming(cp, params, config.machine, inputs)
    else:
        run = cp.run(params, inputs)
        report = measure(run, cp.program, params, config.machine)
    _store_cached(key, report)
    result = VariantMeasurement(kernel, variant, n, tile, report, pipeline)
    _memo[key] = result
    return result


def run_pair(
    kernel: str, n: int, config: SweepConfig
) -> tuple[VariantMeasurement, VariantMeasurement, float]:
    """(seq, tiled, speedup) for one kernel and size."""
    seq = measure_variant(kernel, "seq", n, config)
    tiled = measure_variant(kernel, "tiled", n, config)
    speedup = seq.report.total_cycles / tiled.report.total_cycles
    return seq, tiled, speedup
