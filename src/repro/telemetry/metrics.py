"""Metrics registry: counters, gauges, duration histograms.

Snapshots are plain JSON-able dicts, and :func:`merge_snapshots` is
**associative and commutative**, so per-worker snapshots from a parallel
sweep can be folded into the parent in any order (asserted by the
telemetry test-suite):

- counters add;
- gauges keep the maximum (a deliberate choice: "high-water mark"
  semantics is the only order-free merge for set-style metrics);
- histograms add counts/totals per bucket and extremize min/max.

Histogram buckets are powers of two (the bucket of value ``v`` is
``frexp(v)``'s exponent), which is plenty for the "where did the time
go" questions this registry answers and keeps merges exact.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = ["Histogram", "MetricsRegistry", "merge_snapshots"]

#: Bucket index used for observations of exactly zero.
_ZERO_BUCKET = -1075  # below the smallest subnormal exponent


def _bucket(value: float) -> int:
    if value == 0:
        return _ZERO_BUCKET
    return math.frexp(abs(value))[1] - 1  # v in [2**b, 2**(b+1))


class Histogram:
    """Power-of-two bucketed distribution with exact count/total/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        b = _bucket(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            # JSON object keys must be strings.
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Histogram":
        h = cls()
        h.count = int(d["count"])
        h.total = float(d["total"])
        h.min = math.inf if d.get("min") is None else float(d["min"])
        h.max = -math.inf if d.get("max") is None else float(d["max"])
        h.buckets = {int(k): int(v) for k, v in d.get("buckets", {}).items()}
        return h

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for b, n in other.buckets.items():
            self.buckets[b] = self.buckets.get(b, 0) + n


class MetricsRegistry:
    """Thread-safe named counters/gauges/histograms with snapshot export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter_add(self, name: str, n: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram()
            h.observe(value)

    def counter_value(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """JSON-able state: ``{"counters", "gauges", "histograms"}``."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    k: h.as_dict() for k, h in sorted(self._histograms.items())
                },
            }

    def merge_snapshot(self, snap: dict[str, Any]) -> None:
        """Fold another registry's snapshot into this one (see module
        docstring for the per-kind merge rules)."""
        with self._lock:
            for k, v in snap.get("counters", {}).items():
                self._counters[k] = self._counters.get(k, 0) + v
            for k, v in snap.get("gauges", {}).items():
                self._gauges[k] = max(self._gauges.get(k, -math.inf), v)
            for k, d in snap.get("histograms", {}).items():
                h = self._histograms.get(k)
                if h is None:
                    h = self._histograms[k] = Histogram()
                h.merge(Histogram.from_dict(d))


def merge_snapshots(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Pure snapshot merge (associative, commutative)."""
    reg = MetricsRegistry()
    reg.merge_snapshot(a)
    reg.merge_snapshot(b)
    return reg.snapshot()
