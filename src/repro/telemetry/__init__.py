"""Unified telemetry: span tracing, metrics, exporters — off by default.

One module-level facade instruments every layer of the reproduction
(pipeline, executor, machine model, sweep) without any of them knowing
about exporters or each other::

    from repro import telemetry

    with telemetry.span("sweep.point", kernel="jacobi", n=120) as sp:
        ...
        sp.set(source="computed")
    telemetry.counter("sweep.cache.miss")

**Disabled is free(ish):** with telemetry off (the default),
:func:`span` returns a stack-allocated timer that records nothing, and
:func:`counter` / :func:`gauge` / :func:`observe` return immediately.
Instrumented code paths therefore stay bit-identical and within noise of
their un-instrumented cost (the overhead benchmark in
``benchmarks/bench_machine.py`` bounds the *enabled* cost at <3% of
producer throughput).

**Enabling:** set ``REPRO_TELEMETRY=<dir>`` (the CLI's ``--telemetry``
flag does the same) or call :func:`enable` programmatically (tests use
the in-memory collector this way). :func:`write_run` exports one run's
evidence as ``trace.jsonl`` + ``metrics.json`` + ``summary.txt`` +
``trace_chrome.json``.

**Cross-process merge:** sweep workers call :func:`export_state` and the
parent :func:`absorb`\\ s it, so a parallel sweep yields one coherent
trace (spans keep their origin pid; metric snapshots merge
associatively).

Every finished span also feeds a duration histogram named
``span.<span name>`` in the metrics registry, which is what the
``telemetry_report`` experiment target diffs for per-layer time.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any

from repro.telemetry.metrics import MetricsRegistry, merge_snapshots  # noqa: F401
from repro.telemetry.spans import (
    ActiveSpan,
    DisabledSpan,
    Span,
    SpanCollector,
)

__all__ = [
    "enabled",
    "enable",
    "disable",
    "reset",
    "span",
    "record_span",
    "counter",
    "gauge",
    "observe",
    "counter_value",
    "snapshot",
    "spans",
    "export_state",
    "absorb",
    "write_run",
    "telemetry_dir",
    "perf_counter",
    "Span",
    "SpanCollector",
    "MetricsRegistry",
    "merge_snapshots",
]

perf_counter = time.perf_counter  # the one clock every span uses

_registry = MetricsRegistry()


def _on_span_finish(name: str, duration: float) -> None:
    _registry.observe(f"span.{name}", duration)


_collector = SpanCollector(on_finish=_on_span_finish)

#: Enabled at import when ``REPRO_TELEMETRY`` names an output directory,
#: so plain library use (no CLI) is instrumentable from the environment.
_enabled = bool(os.environ.get("REPRO_TELEMETRY"))


def telemetry_dir() -> Path | None:
    """The ``REPRO_TELEMETRY`` output directory, if set."""
    d = os.environ.get("REPRO_TELEMETRY")
    return Path(d) if d else None


def enabled() -> bool:
    """Is telemetry recording? Hot paths gate their work on this."""
    return _enabled


def enable() -> None:
    """Start recording into the in-process collector/registry."""
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop all recorded spans and metrics (enabled state unchanged).

    Sweep workers call this before measuring so that, under a forking
    ``ProcessPoolExecutor``, inherited parent telemetry is not
    re-exported as the worker's own.
    """
    global _collector, _registry
    _registry = MetricsRegistry()
    _collector = SpanCollector(on_finish=_on_span_finish)


# -- spans ----------------------------------------------------------------


def span(name: str, **attrs: Any) -> ActiveSpan | DisabledSpan:
    """A timed region context manager (records only when enabled).

    The returned object always exposes ``duration`` (seconds) after exit
    and ``set(**attrs)``, so callers can use it as their stopwatch
    without branching on the telemetry state.
    """
    if not _enabled:
        return DisabledSpan()
    return _collector.span(name, attrs)


def record_span(name: str, start: float, duration: float, **attrs: Any) -> None:
    """Record a pre-timed span (for piecewise-accumulated work)."""
    if _enabled:
        _collector.record(name, start, duration, attrs)


def spans() -> list[Span]:
    """All finished spans recorded (or absorbed) by this process."""
    return _collector.finished()


# -- metrics --------------------------------------------------------------


def counter(name: str, n: float = 1) -> None:
    if _enabled:
        _registry.counter_add(name, n)


def gauge(name: str, value: float) -> None:
    if _enabled:
        _registry.gauge_set(name, value)


def observe(name: str, value: float) -> None:
    if _enabled:
        _registry.observe(name, value)


def counter_value(name: str) -> float:
    """Current counter value (0 when absent) — test/report convenience."""
    return _registry.counter_value(name)


def snapshot() -> dict[str, Any]:
    """JSON-able metrics snapshot."""
    return _registry.snapshot()


# -- cross-process merge --------------------------------------------------


def export_state() -> dict[str, Any]:
    """Everything this process recorded, as one JSON-able object."""
    return {
        "spans": [s.as_dict() for s in _collector.finished()],
        "metrics": _registry.snapshot(),
    }


def absorb(state: dict[str, Any] | None) -> None:
    """Merge a worker's :func:`export_state` into this process."""
    if not state:
        return
    _collector.absorb([Span.from_dict(d) for d in state.get("spans", [])])
    _registry.merge_snapshot(state.get("metrics", {}))


# -- run artifacts --------------------------------------------------------


def write_run(directory: str | Path) -> dict[str, Path]:
    """Export the run's telemetry into *directory*.

    Writes ``trace.jsonl`` (raw spans), ``metrics.json`` (snapshot),
    ``summary.txt`` (human-readable tree + counters) and
    ``trace_chrome.json`` (flamegraph; load in ``chrome://tracing`` or
    Perfetto). Returns ``{artifact name: path}``.
    """
    import json

    from repro.telemetry.export import (
        render_summary,
        write_chrome_trace,
        write_jsonl,
    )

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    all_spans = _collector.finished()
    metrics = _registry.snapshot()
    written = {
        "trace.jsonl": write_jsonl(all_spans, directory / "trace.jsonl"),
        "trace_chrome.json": write_chrome_trace(
            all_spans, directory / "trace_chrome.json"
        ),
    }
    (directory / "metrics.json").write_text(json.dumps(metrics, indent=1))
    written["metrics.json"] = directory / "metrics.json"
    (directory / "summary.txt").write_text(render_summary(all_spans, metrics))
    written["summary.txt"] = directory / "summary.txt"
    return written
