"""Span tracing: nested, monotonic-clocked, thread- and process-tagged.

A *span* is one timed region of work (`pipeline.pass`, `exec.run`,
`sweep.point`, ...). Spans nest: each thread keeps a stack of open spans,
and a span records its parent's id so exporters can rebuild the tree.
Timing uses ``time.perf_counter`` (monotonic); the per-process clock
origin is arbitrary, so cross-process ordering is by pid, not timestamp.

Two kinds of span object exist:

- :class:`ActiveSpan` — the enabled path. Recorded into a
  :class:`SpanCollector` at ``__exit__`` (which always runs, so the stack
  balances even when the body raises; the exception is noted in
  :attr:`Span.error` and re-raised).
- :class:`DisabledSpan` — the disabled path. Still measures
  ``duration`` (callers such as the
  :class:`~repro.pipeline.manager.PassManager` use span timing as their
  only stopwatch) but records nothing and allocates almost nothing.

Both expose ``duration`` and ``set(**attrs)`` so call sites never branch
on the telemetry state.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Span", "ActiveSpan", "DisabledSpan", "SpanCollector"]


@dataclass
class Span:
    """One finished span, ready for export."""

    name: str
    start: float  #: ``perf_counter`` seconds (per-process origin)
    duration: float
    span_id: int
    parent_id: int | None
    pid: int
    tid: int
    attrs: dict[str, Any] = field(default_factory=dict)
    error: str | None = None

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        d: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": self.attrs,
        }
        if self.error is not None:
            d["error"] = self.error
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Span":
        return cls(
            name=d["name"],
            start=d["start"],
            duration=d["duration"],
            span_id=d["span_id"],
            parent_id=d["parent_id"],
            pid=d["pid"],
            tid=d["tid"],
            attrs=dict(d.get("attrs", {})),
            error=d.get("error"),
        )


class DisabledSpan:
    """No-op span: times the region, records nothing."""

    __slots__ = ("start", "duration")

    def __init__(self) -> None:
        self.start = 0.0
        self.duration = 0.0

    def __enter__(self) -> "DisabledSpan":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        return False

    def set(self, **attrs: Any) -> None:
        """Discard attributes (telemetry is off)."""


class ActiveSpan:
    """An open span; closes (and records itself) at ``__exit__``."""

    __slots__ = ("_collector", "name", "attrs", "start", "duration", "span_id", "parent_id")

    def __init__(self, collector: "SpanCollector", name: str, attrs: dict[str, Any]):
        self._collector = collector
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.duration = 0.0
        self.span_id = -1
        self.parent_id: int | None = None

    def __enter__(self) -> "ActiveSpan":
        self._collector._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        error = None if exc_type is None else f"{exc_type.__name__}: {exc}"
        self._collector._pop(self, error)
        return False  # never swallow the exception

    def set(self, **attrs: Any) -> None:
        """Attach attributes; allowed before *or* after ``__exit__`` (the
        recorded span shares this dict), but before any export."""
        self.attrs.update(attrs)


class SpanCollector:
    """Accumulates finished spans; one per process.

    Thread-safe: each thread has its own open-span stack
    (``threading.local``) and finished spans are appended under a lock.
    ``on_finish(name, duration)`` is invoked for every finished span —
    the facade uses it to feed per-span-name duration histograms into the
    metrics registry.
    """

    def __init__(self, on_finish: Callable[[str, float], None] | None = None):
        self._finished: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0
        self._on_finish = on_finish

    # -- stack bookkeeping -----------------------------------------------
    def _stack(self) -> list[ActiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _issue_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def _push(self, span: ActiveSpan) -> None:
        stack = self._stack()
        span.span_id = self._issue_id()
        span.parent_id = stack[-1].span_id if stack else None
        stack.append(span)

    def _pop(self, span: ActiveSpan, error: str | None) -> None:
        stack = self._stack()
        # Pop down to (and including) *span* even if an inner span leaked
        # open — __exit__ must leave the stack balanced no matter what.
        while stack:
            top = stack.pop()
            if top is span:
                break
        self._record(
            Span(
                name=span.name,
                start=span.start,
                duration=span.duration,
                span_id=span.span_id,
                parent_id=span.parent_id,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=span.attrs,
                error=error,
            )
        )

    def _record(self, span: Span) -> None:
        with self._lock:
            self._finished.append(span)
        if self._on_finish is not None:
            self._on_finish(span.name, span.duration)

    # -- public API -------------------------------------------------------
    def span(self, name: str, attrs: dict[str, Any] | None = None) -> ActiveSpan:
        """An open span context manager, parented to the current top."""
        return ActiveSpan(self, name, dict(attrs or {}))

    def record(
        self, name: str, start: float, duration: float, attrs: dict[str, Any] | None = None
    ) -> Span:
        """Record a pre-timed ("complete") span, parented to the current
        top of this thread's stack — for work timed piecewise, like a
        sink's accumulated ``feed`` time."""
        stack = self._stack()
        span = Span(
            name=name,
            start=start,
            duration=duration,
            span_id=self._issue_id(),
            parent_id=stack[-1].span_id if stack else None,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=dict(attrs or {}),
        )
        self._record(span)
        return span

    def absorb(self, spans: list[Span]) -> None:
        """Merge spans serialized by another process (ids are unique per
        ``(pid, span_id)``; parent links stay within the source process)."""
        with self._lock:
            self._finished.extend(spans)

    def finished(self) -> list[Span]:
        """Snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def open_depth(self) -> int:
        """Open spans on the calling thread's stack (0 when balanced)."""
        return len(self._stack())
