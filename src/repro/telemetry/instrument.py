"""Generic instrumentation adapters over the trace-sink protocol.

:class:`InstrumentedSink` wraps any
:class:`~repro.machine.sinks.TraceSink`, accumulating per-``feed`` wall
time and chunk/event counts, and emits — at ``finish()`` — one
synthesized replay span (``machine.sink.<name>``) plus
``machine.sink.<name>.chunks`` / ``.events`` counters. It is only ever
constructed when telemetry is enabled, so the disabled path pays
nothing; the per-chunk cost when enabled is two integer adds and one
clock read per ~64k events.
"""

from __future__ import annotations

import time
from typing import Any

from repro import telemetry

__all__ = ["InstrumentedSink"]


def _chunk_events(chunk: Any) -> int:
    """Event count of one chunk; access chunks are (addresses, mask) pairs."""
    if isinstance(chunk, tuple):
        chunk = chunk[0]
    try:
        return len(chunk)
    except TypeError:
        return 1


class InstrumentedSink:
    """Counting/timing proxy for a trace sink (telemetry-enabled path)."""

    def __init__(self, inner: Any, name: str):
        self._inner = inner
        self._name = name
        self._chunks = 0
        self._events = 0
        self._seconds = 0.0
        self._first_start: float | None = None

    def feed(self, chunk: Any) -> Any:
        t0 = time.perf_counter()
        if self._first_start is None:
            self._first_start = t0
        out = self._inner.feed(chunk)
        self._seconds += time.perf_counter() - t0
        self._chunks += 1
        self._events += _chunk_events(chunk)
        return out

    def finish(self) -> Any:
        result = self._inner.finish()
        telemetry.record_span(
            f"machine.sink.{self._name}",
            start=self._first_start if self._first_start is not None else time.perf_counter(),
            duration=self._seconds,
            chunks=self._chunks,
            events=self._events,
        )
        telemetry.counter(f"machine.sink.{self._name}.chunks", self._chunks)
        telemetry.counter(f"machine.sink.{self._name}.events", self._events)
        return result
