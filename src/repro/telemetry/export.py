"""Exporters: JSONL spans, Chrome ``trace_event`` JSON, text renderers.

Four consumers of the same span/metric data:

- :func:`write_jsonl` / :func:`read_jsonl` — one span per line, lossless
  round-trip (the durable raw format; ``trace.jsonl``);
- :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome
  ``trace_event`` "complete" (``ph: "X"``) events, loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev for flamegraph viewing
  (``trace_chrome.json``);
- :func:`render_tree` — hierarchical aggregation of spans by name path
  (count, total/mean milliseconds), the "where did the time go" view;
- :func:`render_summary` — the tree plus counters (with the block-tier
  fallback and sweep-cache sections broken out) and histogram stats
  (``summary.txt``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.telemetry.metrics import Histogram
from repro.telemetry.spans import Span

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "render_tree",
    "render_summary",
]


def write_jsonl(spans: list[Span], path: str | Path) -> Path:
    """One JSON object per line; lossless against :func:`read_jsonl`."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as f:
        for span in spans:
            f.write(json.dumps(span.as_dict()) + "\n")
    return path


def read_jsonl(path: str | Path) -> list[Span]:
    """Inverse of :func:`write_jsonl`."""
    spans = []
    with Path(path).open() as f:
        for line in f:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def chrome_trace(spans: list[Span]) -> list[dict[str, Any]]:
    """Spans as Chrome ``trace_event`` complete events.

    Timestamps are each process's ``perf_counter`` microseconds — origins
    differ between processes, which trace viewers handle per-pid lane.
    """
    events = []
    for s in spans:
        args = dict(s.attrs)
        if s.error is not None:
            args["error"] = s.error
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": s.duration * 1e6,
                "pid": s.pid,
                "tid": s.tid,
                "args": args,
            }
        )
    return events


def write_chrome_trace(spans: list[Span], path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"traceEvents": chrome_trace(spans)}))
    return path


# -- text rendering -------------------------------------------------------


class _Node:
    __slots__ = ("count", "total", "children")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.children: dict[str, _Node] = {}


def _span_paths(spans: list[Span]) -> list[tuple[tuple[str, ...], Span]]:
    """Each span's name path from its root ancestor, via parent links."""
    by_id = {(s.pid, s.span_id): s for s in spans}
    out = []
    for s in spans:
        path = [s.name]
        cur = s
        while cur.parent_id is not None:
            parent = by_id.get((cur.pid, cur.parent_id))
            if parent is None:
                break  # parent not exported (e.g. still open): treat as root
            path.append(parent.name)
            cur = parent
        out.append((tuple(reversed(path)), s))
    return out


def render_tree(spans: list[Span]) -> str:
    """Aggregated span tree: one line per distinct name path."""
    root = _Node()
    for path, span in _span_paths(spans):
        node = root
        for name in path:
            node = node.children.setdefault(name, _Node())
        node.count += 1
        node.total += span.duration

    lines: list[str] = []

    def emit(node: _Node, name: str, depth: int) -> None:
        mean_ms = node.total * 1e3 / node.count if node.count else 0.0
        lines.append(
            f"{'  ' * depth}{name:<{max(40 - 2 * depth, 8)}} "
            f"x{node.count:<6} total {node.total * 1e3:10.2f} ms  "
            f"mean {mean_ms:8.3f} ms"
        )
        for child_name in sorted(node.children):
            emit(node.children[child_name], child_name, depth + 1)

    for name in sorted(root.children):
        emit(root.children[name], name, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


def _counter_section(title: str, items: list[tuple[str, float]]) -> list[str]:
    lines = [title]
    if not items:
        lines.append("  (none)")
        return lines
    width = max(len(k) for k, _ in items)
    for k, v in items:
        lines.append(f"  {k:<{width}}  {v:g}")
    return lines


def render_summary(spans: list[Span], metrics: dict[str, Any]) -> str:
    """Human-readable run summary: span tree, counters, histograms.

    Block-tier fallback reasons (``exec.fallback.*``) and sweep cache
    behaviour (``sweep.cache.*`` with the derived hit rate) get their own
    sections so regressions are visible at a glance.
    """
    counters = dict(metrics.get("counters", {}))
    fallback = sorted(
        (k, v) for k, v in counters.items() if k.startswith("exec.fallback.")
    )
    cache = sorted((k, v) for k, v in counters.items() if k.startswith("sweep."))
    poly = sorted((k, v) for k, v in counters.items() if k.startswith("poly."))
    other = sorted(
        (k, v)
        for k, v in counters.items()
        if not k.startswith(("exec.fallback.", "sweep.", "poly."))
    )

    lines: list[str] = ["== span tree =="]
    lines.append(render_tree(spans))
    lines.append("")
    lines.extend(_counter_section("== block-tier fallbacks ==", fallback))
    lines.append("")
    lines.extend(_counter_section("== sweep cache ==", cache))
    hits = counters.get("sweep.cache.hit", 0)
    misses = counters.get("sweep.cache.miss", 0)
    if hits + misses:
        lines.append(f"  disk-cache hit rate: {hits / (hits + misses):.1%}")
    corrupt = counters.get("sweep.cache.corrupt", 0)
    if corrupt:
        lines.append(f"  WARNING: {corrupt:g} corrupt cache entries discarded")
    lines.append("")
    lines.extend(_counter_section("== polyhedral analysis ==", poly))
    p_hits = counters.get("poly.memo.hit", 0) + counters.get("poly.memo.disk_hit", 0)
    p_misses = counters.get("poly.memo.miss", 0)
    if p_hits + p_misses:
        lines.append(f"  poly-memo hit rate: {p_hits / (p_hits + p_misses):.1%}")
    p_corrupt = counters.get("poly.disk.corrupt", 0)
    if p_corrupt:
        lines.append(f"  WARNING: {p_corrupt:g} corrupt poly-memo entries discarded")
    lines.append("")
    lines.extend(_counter_section("== other counters ==", other))

    gauges = sorted(metrics.get("gauges", {}).items())
    if gauges:
        lines.append("")
        lines.extend(_counter_section("== gauges ==", gauges))

    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("== histograms ==")
        width = max(len(k) for k in histograms)
        for name in sorted(histograms):
            h = Histogram.from_dict(histograms[name])
            lines.append(
                f"  {name:<{width}}  n={h.count:<8} total={h.total:.6g} "
                f"mean={h.mean:.6g} min={0 if h.count == 0 else h.min:.6g} "
                f"max={0 if h.count == 0 else h.max:.6g}"
            )
    return "\n".join(lines) + "\n"
