"""Process-wide memoisation for the exact polyhedral engine.

Every expensive polyhedral operation (Fourier–Motzkin elimination and
projection, rational emptiness, integer feasibility, parametric lexmin)
is a pure function of immutable inputs, so its result can be keyed by the
inputs' structural fingerprints and reused:

- **in process** through one capped LRU memo (`REPRO_POLY_MEMO_SIZE`,
  default 65536 entries), shared by all operations and cleared by
  :func:`clear_memos` (which `repro.experiments.clear_caches` calls, so
  sweep-pool workers start from a clean slate);
- **across processes** through a JSONL side file in the measurement disk
  cache directory (``REPRO_CACHE_DIR``, default ``.repro_cache``) for the
  operations whose results are cheap to serialise — feasibility verdicts,
  emptiness bits, lexmin solutions, projections, dependence-graph edges.
  Appends are single ``write()`` calls so concurrent sweep workers can
  share the file; unreadable lines are skipped (and counted), never
  trusted.

Negative results are cached too: a ``CaseSplitError`` raised by the
parametric solver is as expensive to rediscover as a solution, and
``lexmin_with_fallback`` branches on it, so cached errors re-raise with
the original message.

``REPRO_POLY_CACHE=off`` disables everything in this module (memo, disk,
hash-consing, and the FM unit-coefficient fast path) and is the
differential oracle: an ``off`` build must produce byte-identical
dependence graphs, FixDeps output and program hashes — asserted by
``tests/experiments/test_poly_cache_differential.py`` and a CI job.
``REPRO_NO_CACHE=1`` disables only the disk layer (same knob as the
measurement cache). Bump :data:`DISK_FORMAT_VERSION` when an analysis
algorithm changes its answers: fingerprints cover the *inputs* of an
operation, not its implementation.
"""

from __future__ import annotations

import hashlib
import json
import os
from fractions import Fraction
from pathlib import Path
from typing import Any, Callable

from repro import telemetry
from repro.errors import CaseSplitError, PolyhedronError, UnboundedError
from repro.utils.caching import LRUCache

#: Bump when FM / feasibility / lexmin semantics change, so persisted
#: answers from older code are never read again (new filename).
DISK_FORMAT_VERSION = 1

_DEFAULT_MEMO_SIZE = 65536

#: Deterministic analysis failures worth caching (re-raised on hit).
_CACHEABLE_ERRORS = (CaseSplitError, UnboundedError, PolyhedronError)
_ERROR_BY_NAME = {
    "CaseSplitError": CaseSplitError,
    "UnboundedError": UnboundedError,
    "PolyhedronError": PolyhedronError,
}


_enabled: bool | None = None


def caching_enabled() -> bool:
    """Is the analysis-layer cache on? (``REPRO_POLY_CACHE``, default on.)

    The answer is cached — this sits on every ``Constraint``/``Polyhedron``
    construction — and re-read from the environment by :func:`clear_memos`,
    so toggling ``REPRO_POLY_CACHE`` mid-process requires a
    ``clear_caches()``/``clear_memos()`` call (as the sweep pool
    initializer and the tests already do).
    """
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get("REPRO_POLY_CACHE", "on").lower() not in (
            "off", "0", "no", "false",
        )
    return _enabled


def _memo_size() -> int:
    raw = os.environ.get("REPRO_POLY_MEMO_SIZE", "")
    try:
        size = int(raw)
    except ValueError:
        size = 0
    return size if size > 0 else _DEFAULT_MEMO_SIZE


_memo: LRUCache = LRUCache(maxsize=_memo_size())

#: Extra caches (hash-consing intern tables, …) cleared with the memo.
_registered: list[LRUCache] = []

#: Per-operation hit/miss/disk-hit counts, always maintained (telemetry
#: counters mirror the aggregates only while telemetry is enabled).
_stats: dict[str, dict[str, int]] = {}


def register_cache(cache: LRUCache) -> LRUCache:
    """Register an auxiliary cache for :func:`clear_memos` to clear."""
    _registered.append(cache)
    return cache


def _count(op: str, outcome: str) -> None:
    per_op = _stats.setdefault(op, {"hit": 0, "miss": 0, "disk_hit": 0})
    per_op[outcome] += 1
    telemetry.counter(f"poly.memo.{outcome}")


class _Raise:
    """Memo entry wrapping a cached (deterministic) analysis error."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


def memoize(op: str, key: tuple, compute: Callable[[], Any]) -> Any:
    """In-process memoisation of ``compute()`` under ``(op, *key)``.

    Deterministic analysis errors (:data:`_CACHEABLE_ERRORS`) are cached
    and re-raised on later hits.
    """
    if not caching_enabled():
        return compute()
    full = (op, *key)
    try:
        value = _memo[full]
    except KeyError:
        pass
    else:
        _count(op, "hit")
        if type(value) is _Raise:
            raise value.exc
        return value
    _count(op, "miss")
    try:
        value = compute()
    except _CACHEABLE_ERRORS as exc:
        _memo[full] = _Raise(exc)
        raise
    _memo[full] = value
    return value


def memoize_json(
    op: str,
    key: tuple,
    compute: Callable[[], Any],
    *,
    encode: Callable[[Any], Any],
    decode: Callable[[Any], Any],
) -> Any:
    """Like :func:`memoize`, with a disk layer under the in-process memo.

    ``encode``/``decode`` round-trip the result through JSON; cached
    errors are encoded structurally and re-raised on disk hits as well.
    """
    if not caching_enabled():
        return compute()
    full = (op, *key)
    try:
        value = _memo[full]
    except KeyError:
        pass
    else:
        _count(op, "hit")
        if type(value) is _Raise:
            raise value.exc
        return value
    disk_key = op + "|" + "|".join(str(part) for part in key)
    store = _disk_entries()
    if store is not None and disk_key in store:
        _count(op, "disk_hit")
        telemetry.counter("poly.disk.hit")
        payload = store[disk_key]
        if isinstance(payload, dict) and "!exc" in payload:
            exc = _ERROR_BY_NAME.get(payload["!exc"], PolyhedronError)(
                payload.get("m", "")
            )
            _memo[full] = _Raise(exc)
            raise exc
        value = decode(payload)
        _memo[full] = value
        return value
    _count(op, "miss")
    try:
        value = compute()
    except _CACHEABLE_ERRORS as exc:
        _memo[full] = _Raise(exc)
        _disk_put(disk_key, {"!exc": type(exc).__name__, "m": str(exc)})
        raise
    _memo[full] = value
    _disk_put(disk_key, encode(value))
    return value


# -- disk layer ------------------------------------------------------------

_disk_path: Path | None = None
_disk_cache: dict[str, Any] | None = None


def _resolve_disk_path() -> Path | None:
    if os.environ.get("REPRO_NO_CACHE", "") == "1":
        return None
    base = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
    return base / f"polymemo-v{DISK_FORMAT_VERSION}.jsonl"


def _disk_entries() -> dict[str, Any] | None:
    """The persisted entry mapping (loaded once per resolved path)."""
    global _disk_path, _disk_cache
    path = _resolve_disk_path()
    if path is None:
        return None
    if _disk_cache is not None and path == _disk_path:
        return _disk_cache
    entries: dict[str, Any] = {}
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                try:
                    record = json.loads(line)
                    entries[record["k"]] = record["v"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    # Torn concurrent append or manual edit: skip, count.
                    telemetry.counter("poly.disk.corrupt")
    except OSError:
        pass
    _disk_path = path
    _disk_cache = entries
    return entries


def _disk_put(key: str, payload: Any) -> None:
    store = _disk_entries()
    if store is None or key in store:
        return
    store[key] = payload
    path = _disk_path
    assert path is not None
    line = json.dumps({"k": key, "v": payload}, separators=(",", ":")) + "\n"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # One write() call in append mode: concurrent sweep workers may
        # interleave whole lines but never tear one another's entries
        # apart in practice; the loader skips anything unparseable.
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(line)
    except OSError:
        pass


# -- lifecycle / stats -----------------------------------------------------


def clear_memos() -> None:
    """Drop every in-process analysis memo and intern table.

    The disk layer is untouched but will be re-read lazily, so a cleared
    process (or a freshly forked sweep worker) observes exactly the
    persisted state plus its own work.
    """
    global _memo, _disk_cache, _disk_path, _stats, _enabled
    _memo = LRUCache(maxsize=_memo_size())
    for cache in _registered:
        cache.clear()
    _disk_cache = None
    _disk_path = None
    _stats = {}
    _enabled = None


def stats() -> dict[str, Any]:
    """Hit/miss counters per operation plus memo occupancy (for benches,
    tests and the telemetry summary)."""
    totals = {"hit": 0, "miss": 0, "disk_hit": 0}
    for per_op in _stats.values():
        for k in totals:
            totals[k] += per_op[k]
    return {
        "enabled": caching_enabled(),
        "ops": {op: dict(v) for op, v in sorted(_stats.items())},
        "totals": totals,
        "memo_entries": len(_memo),
        "disk_entries": len(_disk_cache) if _disk_cache is not None else 0,
    }


def stable_key(data: Any) -> str:
    """Short stable digest of any JSON-serialisable value."""
    text = json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


# -- codecs ----------------------------------------------------------------


def _frac_pair(f: Fraction) -> list[int]:
    return [f.numerator, f.denominator]


def enc_linexpr(expr) -> dict[str, Any]:
    """JSON form of a LinExpr (exact rational coefficients)."""
    return {
        "t": {v: _frac_pair(c) for v, c in expr.terms_items()},
        "c": _frac_pair(expr.constant),
    }


def dec_linexpr(payload: dict[str, Any]):
    from repro.poly.linexpr import LinExpr

    terms = {v: Fraction(n, d) for v, (n, d) in payload["t"].items()}
    n, d = payload["c"]
    return LinExpr(terms, Fraction(n, d))


def enc_constraint(con) -> dict[str, Any]:
    return {"k": con.kind.value, "e": enc_linexpr(con.expr)}


def dec_constraint(payload: dict[str, Any]):
    from repro.poly.constraint import Constraint, Kind

    return Constraint(dec_linexpr(payload["e"]), Kind(payload["k"]))


def enc_poly(poly) -> dict[str, Any]:
    """JSON form of a Polyhedron, preserving constraint order."""
    return {
        "v": list(poly.variables),
        "c": [enc_constraint(c) for c in poly.constraints],
    }


def dec_poly(payload: dict[str, Any]):
    from repro.poly.polyhedron import Polyhedron

    return Polyhedron(
        tuple(payload["v"]), [dec_constraint(c) for c in payload["c"]]
    )


def env_key(env) -> str:
    """Canonical key fragment for a parameter binding / bound mapping."""
    if env is None:
        return "-"
    if isinstance(env, int):
        return str(env)
    return ",".join(f"{k}={env[k]}" for k in sorted(env))
