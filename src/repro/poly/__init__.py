"""Integer polyhedra over named variables with exact rational arithmetic.

This subpackage is a from-scratch replacement for the slice of isl / Omega /
PIP functionality the paper's algorithm needs:

- :mod:`repro.poly.linexpr` — affine expressions ``sum c_i * x_i + c0`` with
  :class:`fractions.Fraction` coefficients.
- :mod:`repro.poly.constraint` — ``e >= 0`` / ``e == 0`` constraints with
  integer normalisation and tightening.
- :mod:`repro.poly.polyhedron` — conjunctions of constraints over an ordered
  variable tuple.
- :mod:`repro.poly.fm` — exact Fourier–Motzkin elimination (rational), with
  unit-coefficient integer-exactness tracking.
- :mod:`repro.poly.integer` — integer feasibility via substitution of
  equalities + bounded branch-and-bound search.
- :mod:`repro.poly.optimize` — parametric max/min of an affine objective.
- :mod:`repro.poly.lexmin` — parametric lexicographic minimum (PIP-lite) and
  an exact enumeration fallback.
- :mod:`repro.poly.enumerate` — integer-point enumeration oracles used by
  tests and by non-parametric fallbacks.
"""

from repro.poly.constraint import Constraint, eq0, ge0
from repro.poly.enumerate import enumerate_points
from repro.poly.fm import eliminate, project_onto
from repro.poly.integer import find_integer_point, integer_feasible
from repro.poly.lexmin import lexmin_enumerate, parametric_lexmin
from repro.poly.linexpr import LinExpr
from repro.poly.optimize import parametric_max, parametric_min
from repro.poly.polyhedron import Polyhedron

__all__ = [
    "LinExpr",
    "Constraint",
    "ge0",
    "eq0",
    "Polyhedron",
    "eliminate",
    "project_onto",
    "integer_feasible",
    "find_integer_point",
    "parametric_max",
    "parametric_min",
    "parametric_lexmin",
    "lexmin_enumerate",
    "enumerate_points",
]
