"""Parametric optimisation of affine objectives over polyhedra.

Used for line 22 of the paper's ``ElimWW_WR``:

    d_i = max{ I_i - I'_i | (I, I') in D_i }        (max of empty set = 0)

The result is affine in the parameters except for an outer ``min`` (of upper
bounds) / ``max`` (of lower bounds), which is exactly what
:mod:`repro.symbolic` represents.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import PolyhedronError, UnboundedError
from repro.poly import memo
from repro.poly.constraint import equals
from repro.poly.fm import project_onto
from repro.poly.integer import rationally_empty
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron
from repro.symbolic.terms import SymExpr, sym_max, sym_min
from repro.utils.naming import fresh_name


def _objective_shadow(poly: Polyhedron, objective: LinExpr) -> tuple[Polyhedron, str]:
    """Project the polyhedron onto a fresh variable ``t == objective``."""
    used = set(poly.variables) | poly.parameters() | objective.variables()
    t = fresh_name("t", used)
    widened = poly.with_variables(tuple(poly.variables) + (t,))
    widened = widened.with_constraints([equals(LinExpr.var(t), objective)])
    return project_onto(widened, [t]), t


def parametric_max(poly: Polyhedron, objective: LinExpr) -> SymExpr | None:
    """Symbolic maximum of *objective* over *poly*, in the parameters.

    Returns ``None`` when the set is (rationally) empty. Raises
    :class:`UnboundedError` when no upper bound exists.

    The value returned is the *rational* maximum (min of FM upper bounds).
    For the unit-coefficient systems produced by loop nests this equals the
    integer maximum; tests cross-check against enumeration.
    """
    if not memo.caching_enabled():
        return _parametric_extreme(poly, objective, want_max=True)
    return memo.memoize(
        "pmax",
        (poly.fingerprint(), objective.fingerprint_text()),
        lambda: _parametric_extreme(poly, objective, want_max=True),
    )


def parametric_min(poly: Polyhedron, objective: LinExpr) -> SymExpr | None:
    """Symbolic minimum of *objective* over *poly* (see parametric_max)."""
    if not memo.caching_enabled():
        return _parametric_extreme(poly, objective, want_max=False)
    return memo.memoize(
        "pmin",
        (poly.fingerprint(), objective.fingerprint_text()),
        lambda: _parametric_extreme(poly, objective, want_max=False),
    )


def _parametric_extreme(
    poly: Polyhedron, objective: LinExpr, *, want_max: bool
) -> SymExpr | None:
    if rationally_empty(poly):
        return None
    shadow, t = _objective_shadow(poly, objective)
    lowers, uppers = shadow.bounds_on(t)
    if want_max:
        if not uppers:
            raise UnboundedError(f"objective {objective} unbounded above on {poly}")
        return sym_min(uppers)
    if not lowers:
        raise UnboundedError(f"objective {objective} unbounded below on {poly}")
    return sym_max(lowers)


def affine_ge(
    lhs: LinExpr,
    rhs: LinExpr,
    param_domain: Polyhedron | None = None,
) -> bool:
    """Soundly decide ``lhs >= rhs`` for all parameter values in a domain.

    Returns True only when proven: the set ``{ p in domain : lhs < rhs }``
    must be rationally empty. A False answer means "not proven", not
    "false".
    """
    diff = lhs - rhs
    if diff.is_constant():
        return diff.constant >= 0
    if memo.caching_enabled():
        domain_fp = param_domain.fingerprint() if param_domain is not None else "-"
        return memo.memoize(
            "age",
            (lhs.fingerprint_text(), rhs.fingerprint_text(), domain_fp),
            lambda: _affine_ge(lhs, rhs, param_domain, diff),
        )
    return _affine_ge(lhs, rhs, param_domain, diff)


def _affine_ge(
    lhs: LinExpr,
    rhs: LinExpr,
    param_domain: Polyhedron | None,
    diff: LinExpr,
) -> bool:
    params: Iterable[str] = sorted(diff.variables())
    if param_domain is None:
        param_domain = Polyhedron(tuple(params))
    extra = param_domain.with_variables(
        tuple(dict.fromkeys(tuple(param_domain.variables) + tuple(params)))
    )
    # lhs < rhs over the integers: lhs <= rhs - 1, i.e. rhs - lhs - 1 >= 0.
    from repro.poly.constraint import ge0  # local import to avoid cycle noise

    violating = extra.with_constraints([ge0(rhs - lhs - 1)])
    return rationally_empty(violating)


def unique_extreme_bound(
    bounds: list[LinExpr],
    *,
    lower: bool,
    param_domain: Polyhedron | None = None,
) -> LinExpr | None:
    """Pick the single dominating bound from *bounds* when one exists.

    For lower bounds the dominating bound is the pointwise greatest; for
    upper bounds the pointwise least. Returns ``None`` when domination can't
    be proven for any candidate.
    """
    if not bounds:
        raise PolyhedronError("no bounds given")
    for cand in bounds:
        ok = True
        for other in bounds:
            if other is cand:
                continue
            if lower and not affine_ge(cand, other, param_domain):
                ok = False
                break
            if not lower and not affine_ge(other, cand, param_domain):
                ok = False
                break
        if ok:
            return cand
    return None


def evaluate_objective(
    objective: LinExpr, point: Mapping[str, int], param_env: Mapping[str, int]
):
    """Evaluate an objective at a point under concrete parameters."""
    return objective.evaluate({**param_env, **point})
