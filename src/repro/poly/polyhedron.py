"""Conjunctive integer sets (polyhedra) over an ordered variable tuple.

A :class:`Polyhedron` represents ``{ x in Z^n | C(x, p) }`` where ``x`` is the
ordered tuple of *dimension* variables and ``p`` are symbolic *parameters* —
any names appearing in constraints that are not dimensions (problem sizes
``N``, ``M``, or outer loop variables when solving parametrically).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import hashlib

from repro.errors import PolyhedronError
from repro.poly import memo
from repro.poly.constraint import Constraint, Kind
from repro.poly.linexpr import Coef, LinExpr


def _make_intern_table():
    from repro.utils.caching import LRUCache

    return memo.register_cache(LRUCache(maxsize=16384))


_INTERN = _make_intern_table()


class Polyhedron:
    """Immutable conjunction of affine constraints over named dimensions.

    Construction is **hash-consed** (unless ``REPRO_POLY_CACHE=off``):
    building from the same dimension tuple and the same ordered constraint
    sequence returns the same object, skipping re-deduplication and
    sharing the cached hash and structural :meth:`fingerprint`. The intern
    key keeps constraint *order* — equal sets built in different orders
    stay distinct objects (and distinct fingerprints) so memoised analysis
    results can never reorder downstream output.
    """

    __slots__ = ("variables", "constraints", "_hash", "_fp")

    def __new__(cls, variables: Sequence[str], constraints: Iterable[Constraint] = ()):
        vars_tuple = tuple(variables)
        given = tuple(constraints)
        interning = memo.caching_enabled()
        if interning:
            key = (vars_tuple, given)
            cached = _INTERN.get(key)
            if cached is not None:
                return cached
        if len(set(vars_tuple)) != len(vars_tuple):
            raise PolyhedronError(f"duplicate dimension names in {vars_tuple}")
        # Deduplicate while preserving order; drop trivially-true constraints.
        seen: set[Constraint] = set()
        kept: list[Constraint] = []
        for c in given:
            if not isinstance(c, Constraint):
                raise TypeError(f"expected Constraint, got {type(c).__name__}")
            if c.is_trivial_true() or c in seen:
                continue
            seen.add(c)
            kept.append(c)
        self = super().__new__(cls)
        self.variables: tuple[str, ...] = vars_tuple
        self.constraints: tuple[Constraint, ...] = tuple(kept)
        self._hash = None
        self._fp = None
        if interning:
            _INTERN[key] = self
        return self

    def __init__(self, variables: Sequence[str], constraints: Iterable[Constraint] = ()):
        # All state is set in __new__ (which may return an interned
        # instance that must not be re-initialised).
        pass

    def __reduce__(self):
        return (Polyhedron, (self.variables, self.constraints))

    def fingerprint(self) -> str:
        """Stable structural digest (dimension order + ordered constraints).

        Process-independent (unlike ``hash()``), so it keys both the
        in-process analysis memo and the persisted disk entries.
        """
        if self._fp is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(",".join(self.variables).encode())
            for c in self.constraints:
                h.update(b"|")
                h.update(c.fingerprint_text().encode())
            self._fp = h.hexdigest()
        return self._fp

    # -- basic queries -----------------------------------------------------
    def parameters(self) -> frozenset[str]:
        """Names used in constraints that are not dimensions."""
        dims = set(self.variables)
        names: set[str] = set()
        for c in self.constraints:
            names.update(v for v in c.variables() if v not in dims)
        return frozenset(names)

    def is_trivially_empty(self) -> bool:
        """True iff some constraint is a constant contradiction."""
        return any(c.is_trivial_false() for c in self.constraints)

    def contains(self, env: Mapping[str, Coef]) -> bool:
        """True iff the full binding *env* satisfies every constraint."""
        return all(c.satisfied(env) for c in self.constraints)

    def equalities(self) -> tuple[Constraint, ...]:
        """The equality constraints."""
        return tuple(c for c in self.constraints if c.kind is Kind.EQ)

    def inequalities(self) -> tuple[Constraint, ...]:
        """The inequality constraints."""
        return tuple(c for c in self.constraints if c.kind is Kind.GE)

    # -- construction ---------------------------------------------------------
    def with_constraints(self, extra: Iterable[Constraint]) -> "Polyhedron":
        """A new polyhedron with *extra* constraints conjoined."""
        return Polyhedron(self.variables, list(self.constraints) + list(extra))

    def intersect(self, other: "Polyhedron") -> "Polyhedron":
        """Conjunction; the other polyhedron must use the same dimensions."""
        if other.variables != self.variables:
            raise PolyhedronError(
                f"dimension mismatch: {self.variables} vs {other.variables}"
            )
        return self.with_constraints(other.constraints)

    def with_variables(self, variables: Sequence[str]) -> "Polyhedron":
        """Same constraints, different dimension tuple (add/drop dims)."""
        return Polyhedron(variables, self.constraints)

    def substitute(self, bindings: Mapping[str, LinExpr | Coef]) -> "Polyhedron":
        """Substitute variables by affine expressions.

        Substituted dimensions are removed from the dimension tuple.
        """
        new_vars = tuple(v for v in self.variables if v not in bindings)
        return Polyhedron(new_vars, [c.substitute(bindings) for c in self.constraints])

    def rename(self, mapping: Mapping[str, str]) -> "Polyhedron":
        """Rename dimensions (and any matching parameter names)."""
        new_vars = tuple(mapping.get(v, v) for v in self.variables)
        return Polyhedron(new_vars, [c.rename(mapping) for c in self.constraints])

    # -- bounds ------------------------------------------------------------------
    def bounds_on(self, var: str) -> tuple[list[LinExpr], list[LinExpr]]:
        """Affine lower/upper bound expressions for *var* from constraints
        mentioning it.

        Returns ``(lowers, uppers)`` such that each ``lo <= var`` and
        ``var <= up``; bounds may reference other dimensions and parameters.
        Equalities contribute to both sides.
        """
        lowers: list[LinExpr] = []
        uppers: list[LinExpr] = []
        for c in self.constraints:
            a = c.expr.coeff(var)
            if a == 0:
                continue
            rest = c.expr - LinExpr.var(var, a)
            # a*var + rest >= 0  =>  var >= -rest/a (a>0) or var <= -rest/a (a<0)
            bound = (-rest) / a
            if c.kind is Kind.EQ:
                lowers.append(bound)
                uppers.append(bound)
            elif a > 0:
                lowers.append(bound)
            else:
                uppers.append(bound)
        return lowers, uppers

    # -- identity -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polyhedron):
            return NotImplemented
        return self.variables == other.variables and set(self.constraints) == set(
            other.constraints
        )

    def __hash__(self) -> int:
        return hash((self.variables, frozenset(self.constraints)))

    def __repr__(self) -> str:
        return f"Polyhedron(vars={list(self.variables)}, {len(self.constraints)} constraints)"

    def __str__(self) -> str:
        body = " and ".join(str(c) for c in self.constraints) or "true"
        return f"{{ ({', '.join(self.variables)}) : {body} }}"
