"""Affine constraints ``e >= 0`` and ``e == 0`` with integer normalisation.

All iteration spaces and dependence sets in this package are *integer* sets,
so inequality constraints with integer coefficients can be tightened: from
``g*a.x + c >= 0`` with ``g = gcd`` of the variable coefficients we derive
``a.x + floor(c/g) >= 0``, which cuts off rational-only slack and keeps
Fourier–Motzkin closer to the true integer projection.
"""

from __future__ import annotations

import math
from enum import Enum
from fractions import Fraction
from typing import Mapping

from repro.poly import memo
from repro.poly.linexpr import Coef, LinExpr


class Kind(Enum):
    """Constraint sense."""

    GE = ">="  # expr >= 0
    EQ = "=="  # expr == 0


class Constraint:
    """An immutable, normalised affine constraint.

    Normalisation rules (applied on construction):

    - multiply through so all coefficients are integers;
    - divide by the gcd of the variable coefficients;
    - for ``GE`` constraints, floor the constant (integer tightening);
    - for ``EQ`` constraints with no integer solution for the constant
      (e.g. ``2x + 1 == 0``), keep as-is — emptiness checks catch it;
    - canonicalise the sign of ``EQ`` constraints (first variable coefficient
      positive) so equal constraints compare equal.

    Constraints are **hash-consed** (unless ``REPRO_POLY_CACHE=off``):
    construction from the same raw ``(expr, kind)`` returns the same
    object, so repeated normalisation is skipped, equality usually
    short-circuits on identity, and cached hashes/fingerprints amortise
    across every polyhedron sharing the constraint.
    """

    __slots__ = ("expr", "kind", "_hash", "_fp")

    def __new__(cls, expr: LinExpr, kind: Kind):
        if not isinstance(expr, LinExpr):
            raise TypeError(
                f"Constraint expr must be LinExpr, got {type(expr).__name__}"
            )
        interning = memo.caching_enabled()
        if interning:
            key = (kind, expr.key())
            cached = _INTERN.get(key)
            if cached is not None:
                return cached
        self = super().__new__(cls)
        self.expr = _normalise(expr, kind)
        self.kind = kind
        self._hash = None
        self._fp = None
        if interning:
            _INTERN[key] = self
        return self

    def __init__(self, expr: LinExpr, kind: Kind):
        # All state is set in __new__ (which may return an interned
        # instance that must not be re-initialised).
        pass

    def __reduce__(self):
        return (Constraint, (self.expr, self.kind))

    def fingerprint_text(self) -> str:
        """Stable structural identity (process-independent, unlike hash)."""
        if self._fp is None:
            self._fp = f"{self.kind.value};{self.expr.fingerprint_text()}"
        return self._fp

    # -- queries -------------------------------------------------------------
    def variables(self) -> frozenset[str]:
        """Variables appearing in the constraint."""
        return self.expr.variables()

    def is_trivial_true(self) -> bool:
        """Constant constraint that always holds."""
        if not self.expr.is_constant():
            return False
        c = self.expr.constant
        return c >= 0 if self.kind is Kind.GE else c == 0

    def is_trivial_false(self) -> bool:
        """Constant constraint that never holds."""
        if not self.expr.is_constant():
            return False
        c = self.expr.constant
        return c < 0 if self.kind is Kind.GE else c != 0

    def satisfied(self, env: Mapping[str, Coef]) -> bool:
        """Evaluate the constraint at a full variable binding."""
        v = self.expr.evaluate(env)
        return v >= 0 if self.kind is Kind.GE else v == 0

    # -- rewriting -------------------------------------------------------------
    def substitute(self, bindings: Mapping[str, "LinExpr | Coef"]) -> "Constraint":
        """Substitute variables by affine expressions."""
        return Constraint(self.expr.substitute(bindings), self.kind)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        """Rename variables."""
        return Constraint(self.expr.rename(mapping), self.kind)

    # -- identity -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.kind is other.kind and self.expr == other.expr

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.kind, self.expr))
        return self._hash

    def __repr__(self) -> str:
        return f"Constraint({self})"

    def __str__(self) -> str:
        return f"{self.expr} {self.kind.value} 0"


def _make_intern_table():
    from repro.utils.caching import LRUCache

    return memo.register_cache(LRUCache(maxsize=65536))


_INTERN = _make_intern_table()


def _normalise(expr: LinExpr, kind: Kind) -> LinExpr:
    terms = expr.terms
    if not terms:
        return expr
    # Scale to integer coefficients.
    denoms = [c.denominator for c in terms.values()] + [expr.constant.denominator]
    lcm = math.lcm(*denoms)
    expr = expr * lcm
    coefs = [int(c) for c in expr.terms.values()]
    g = math.gcd(*coefs)
    if g > 1:
        if kind is Kind.GE:
            # a.x + c >= 0 with a = g*a'  =>  a'.x + floor(c/g) >= 0 (integers)
            new_terms = {v: c / g for v, c in expr.terms.items()}
            floored = Fraction(math.floor(expr.constant / g))
            expr = LinExpr(new_terms, floored)
        elif expr.constant % g == 0:
            expr = expr / g
    if kind is Kind.EQ:
        first = min(expr.terms)
        if expr.terms[first] < 0:
            expr = -expr
    return expr


def ge0(expr: LinExpr) -> Constraint:
    """Constraint ``expr >= 0``."""
    return Constraint(expr, Kind.GE)


def eq0(expr: LinExpr) -> Constraint:
    """Constraint ``expr == 0``."""
    return Constraint(expr, Kind.EQ)


def le(lhs: LinExpr | Coef, rhs: LinExpr | Coef) -> Constraint:
    """Constraint ``lhs <= rhs``."""
    return ge0(_as_expr(rhs) - _as_expr(lhs))


def ge(lhs: LinExpr | Coef, rhs: LinExpr | Coef) -> Constraint:
    """Constraint ``lhs >= rhs``."""
    return ge0(_as_expr(lhs) - _as_expr(rhs))


def lt(lhs: LinExpr | Coef, rhs: LinExpr | Coef) -> Constraint:
    """Strict ``lhs < rhs`` over the integers, i.e. ``lhs <= rhs - 1``."""
    return ge0(_as_expr(rhs) - _as_expr(lhs) - 1)


def equals(lhs: LinExpr | Coef, rhs: LinExpr | Coef) -> Constraint:
    """Constraint ``lhs == rhs``."""
    return eq0(_as_expr(lhs) - _as_expr(rhs))


def _as_expr(value: LinExpr | Coef) -> LinExpr:
    return value if isinstance(value, LinExpr) else LinExpr.const(value)
