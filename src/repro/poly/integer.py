"""Integer feasibility of parametric polyhedra.

Dependence-set emptiness is the central legality question of the paper: a
fusion is legal iff the fusion-preventing sets (Eq. 5–6) are empty. The sets
are parametric in the problem sizes, so "empty" means *empty for every
admissible parameter value*.

Strategy (sound and, for the affine programs handled here, complete):

1. **Rational emptiness** — eliminate all dimensions *and* parameters with
   Fourier–Motzkin; a constant contradiction proves integer emptiness for
   all parameter values. This direction needs no integrality reasoning.
2. **Witness search** — otherwise, bound each parameter to a probe window
   ``lo <= p <= lo + width`` and search for an integer point by enumeration.
   A witness proves non-emptiness. For the unit-coefficient systems produced
   by loop nests, rational feasibility implies an integer witness in a small
   window, so the two steps together are decisive; if neither fires we
   conservatively report *feasible* (a spurious dependence only costs
   performance, never correctness) and flag it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.poly import memo
from repro.poly.constraint import ge
from repro.poly.enumerate import enumerate_points
from repro.poly.fm import project_onto
from repro.poly.linexpr import Coef, LinExpr
from repro.poly.polyhedron import Polyhedron

#: Default inclusive lower bound assumed for every symbolic parameter
#: (problem sizes are at least a few iterations in all paper kernels).
DEFAULT_PARAM_LO = 1
#: Width of the probe window used in the witness search.
DEFAULT_PARAM_WIDTH = 11


@dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of an integer feasibility query."""

    feasible: bool
    #: A satisfying assignment (dims and probed parameters) when found.
    witness: dict[str, int] | None
    #: True when the answer was proven (rational emptiness or witness);
    #: False when the conservative default was used.
    decisive: bool


def rationally_empty(poly: Polyhedron) -> bool:
    """True iff the rational relaxation (parameters existential) is empty."""
    if poly.is_trivially_empty():
        return True
    if not memo.caching_enabled():
        return _rationally_empty(poly)
    return memo.memoize_json(
        "rempty",
        (poly.fingerprint(),),
        lambda: _rationally_empty(poly),
        encode=bool,
        decode=bool,
    )


def _rationally_empty(poly: Polyhedron) -> bool:
    # Promote parameters to dimensions, then eliminate everything.
    all_vars = tuple(poly.variables) + tuple(sorted(poly.parameters()))
    widened = poly.with_variables(all_vars)
    shadow = project_onto(widened, [])
    return shadow.is_trivially_empty()


def _probed(
    poly: Polyhedron,
    param_lo: Mapping[str, int] | int,
    width: int,
) -> tuple[Polyhedron, dict[str, int]]:
    """Turn parameters into dimensions bounded to probe windows."""
    params = sorted(poly.parameters())
    lo_of = (
        dict(param_lo)
        if isinstance(param_lo, Mapping)
        else {p: param_lo for p in params}
    )
    bounds = []
    for p in params:
        lo = lo_of.get(p, DEFAULT_PARAM_LO)
        bounds.append(ge(LinExpr.var(p), lo))
        bounds.append(ge(LinExpr.const(lo + width), LinExpr.var(p)))
    widened = poly.with_variables(tuple(poly.variables) + tuple(params))
    return widened.with_constraints(bounds), {p: lo_of.get(p, DEFAULT_PARAM_LO) for p in params}


def find_integer_point(
    poly: Polyhedron,
    param_env: Mapping[str, Coef] | None = None,
    *,
    param_lo: Mapping[str, int] | int = DEFAULT_PARAM_LO,
    param_width: int = DEFAULT_PARAM_WIDTH,
) -> dict[str, int] | None:
    """Search for one integer point.

    With *param_env* given, parameters are fixed and the search is exact.
    Otherwise parameters are probed over windows starting at *param_lo*.
    """
    if param_env is not None or not poly.parameters():
        for point in enumerate_points(poly, param_env, limit=1):
            return point
        return None
    probed, _ = _probed(poly, param_lo, param_width)
    for point in enumerate_points(probed, {}, limit=1):
        return point
    return None


def check_feasibility(
    poly: Polyhedron,
    param_env: Mapping[str, Coef] | None = None,
    *,
    param_lo: Mapping[str, int] | int = DEFAULT_PARAM_LO,
    param_width: int = DEFAULT_PARAM_WIDTH,
) -> FeasibilityResult:
    """Full-detail integer feasibility (see module docstring)."""
    if not memo.caching_enabled():
        return _check_feasibility(poly, param_env, param_lo, param_width)
    return memo.memoize_json(
        "feas",
        (
            poly.fingerprint(),
            memo.env_key(param_env),
            memo.env_key(param_lo),
            param_width,
        ),
        lambda: _check_feasibility(poly, param_env, param_lo, param_width),
        encode=lambda r: {"f": r.feasible, "w": r.witness, "d": r.decisive},
        decode=lambda p: FeasibilityResult(
            p["f"], dict(p["w"]) if p["w"] is not None else None, p["d"]
        ),
    )


def _check_feasibility(
    poly: Polyhedron,
    param_env: Mapping[str, Coef] | None,
    param_lo: Mapping[str, int] | int,
    param_width: int,
) -> FeasibilityResult:
    if param_env is not None:
        witness = find_integer_point(poly, param_env)
        return FeasibilityResult(witness is not None, witness, decisive=True)
    if rationally_empty(poly):
        return FeasibilityResult(False, None, decisive=True)
    witness = find_integer_point(poly, param_lo=param_lo, param_width=param_width)
    if witness is not None:
        return FeasibilityResult(True, witness, decisive=True)
    # Rationally feasible but no integer witness in the probe window:
    # conservative answer.
    return FeasibilityResult(True, None, decisive=False)


def integer_feasible(
    poly: Polyhedron,
    param_env: Mapping[str, Coef] | None = None,
    *,
    param_lo: Mapping[str, int] | int = DEFAULT_PARAM_LO,
    param_width: int = DEFAULT_PARAM_WIDTH,
) -> bool:
    """Boolean form of :func:`check_feasibility`."""
    return check_feasibility(
        poly, param_env, param_lo=param_lo, param_width=param_width
    ).feasible
