"""Affine (linear + constant) expressions over named variables.

``LinExpr`` is the canonical affine representation used throughout the
dependence analysis and code generation: loop bounds, array subscripts,
dependence-distance objectives and symbolic tile sizes are all ``LinExpr``
instances over loop variables and problem-size parameters (``N``, ``M``).

Coefficients are :class:`fractions.Fraction` so all arithmetic is exact;
Fourier–Motzkin elimination divides by coefficients and would be unsound in
floating point.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import Mapping, Union

Coef = Union[int, Fraction]


def _frac(value: Coef) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int) and not isinstance(value, bool):
        return Fraction(value)
    if isinstance(value, Rational):
        return Fraction(value)
    raise TypeError(f"coefficient must be rational, got {type(value).__name__}")


def _fadd(a: Fraction, b: Fraction) -> Fraction:
    """Fraction addition with an integer fast path.

    The common case throughout Fourier–Motzkin is denominator-1 values;
    adding those as plain ints skips ``Fraction.__add__``'s gcd work.
    """
    if a.denominator == 1 and b.denominator == 1:
        return Fraction(a.numerator + b.numerator)
    return a + b


class LinExpr:
    """An immutable affine expression ``sum(coef[v] * v) + const``.

    Zero coefficients are never stored, so two equal expressions always have
    identical term dictionaries; this makes ``__eq__``/``__hash__`` cheap and
    reliable. The canonical :meth:`key` (terms sorted by variable name) is
    computed once and backs structural fingerprints and memo keys.
    """

    __slots__ = ("_terms", "_const", "_hash", "_key")

    def __init__(self, terms: Mapping[str, Coef] | None = None, const: Coef = 0):
        items = {}
        if terms:
            for var, coef in terms.items():
                if not isinstance(var, str):
                    raise TypeError(f"variable name must be str, got {var!r}")
                f = _frac(coef)
                if f != 0:
                    items[var] = f
        self._terms: dict[str, Fraction] = items
        self._const: Fraction = _frac(const)
        self._hash: int | None = None
        self._key: tuple | None = None

    @classmethod
    def _raw(cls, terms: dict[str, Fraction], const: Fraction) -> "LinExpr":
        """Internal fast constructor: *terms* must already be a fresh dict
        of nonzero ``Fraction`` values and *const* a ``Fraction``."""
        self = object.__new__(cls)
        self._terms = terms
        self._const = const
        self._hash = None
        self._key = None
        return self

    # -- constructors -----------------------------------------------------
    @staticmethod
    def const(value: Coef) -> "LinExpr":
        """The constant expression *value*."""
        return LinExpr({}, value)

    @staticmethod
    def var(name: str, coef: Coef = 1) -> "LinExpr":
        """The expression ``coef * name``."""
        return LinExpr({name: coef}, 0)

    # -- inspection --------------------------------------------------------
    @property
    def terms(self) -> dict[str, Fraction]:
        """Variable -> coefficient mapping (zero coefficients omitted)."""
        return dict(self._terms)

    @property
    def constant(self) -> Fraction:
        """The constant term."""
        return self._const

    def terms_items(self):
        """Live ``(var, coef)`` items view — read-only by convention; the
        hot analysis paths use it to avoid the defensive copy of
        :attr:`terms`."""
        return self._terms.items()

    def key(self) -> tuple:
        """Canonical hashable identity: ``(const, ((var, coef), ...))``
        with terms sorted by variable name (computed once)."""
        if self._key is None:
            self._key = (self._const, tuple(sorted(self._terms.items())))
        return self._key

    def fingerprint_text(self) -> str:
        """Deterministic text form backing structural fingerprints (unlike
        ``hash()``, stable across processes)."""
        const, terms = self.key()
        return f"{const}:" + ",".join(f"{v}*{c}" for v, c in terms)

    def coeff(self, var: str) -> Fraction:
        """Coefficient of *var* (0 if absent)."""
        return self._terms.get(var, Fraction(0))

    def variables(self) -> frozenset[str]:
        """The set of variables with non-zero coefficient."""
        return frozenset(self._terms)

    def is_constant(self) -> bool:
        """True iff no variable appears."""
        return not self._terms

    def is_integral(self) -> bool:
        """True iff all coefficients and the constant are integers."""
        return self._const.denominator == 1 and all(
            c.denominator == 1 for c in self._terms.values()
        )

    def depends_on(self, names: frozenset[str] | set[str]) -> bool:
        """True iff any variable of this expression is in *names*."""
        return any(v in names for v in self._terms)

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "LinExpr | Coef") -> "LinExpr":
        other = _coerce(other)
        terms = dict(self._terms)
        for var, coef in other._terms.items():
            prev = terms.get(var)
            if prev is None:
                terms[var] = coef
            else:
                merged = _fadd(prev, coef)
                if merged == 0:
                    del terms[var]
                else:
                    terms[var] = merged
        return LinExpr._raw(terms, _fadd(self._const, other._const))

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr._raw(
            {v: -c for v, c in self._terms.items()}, -self._const
        )

    def __sub__(self, other: "LinExpr | Coef") -> "LinExpr":
        return self + (-_coerce(other))

    def __rsub__(self, other: "LinExpr | Coef") -> "LinExpr":
        return _coerce(other) + (-self)

    def __mul__(self, scalar: Coef) -> "LinExpr":
        f = _frac(scalar)
        if f == 0:
            return LinExpr._raw({}, Fraction(0))
        # Fraction products of nonzero factors are nonzero, so the no-zero
        # invariant survives without re-filtering.
        return LinExpr._raw(
            {v: c * f for v, c in self._terms.items()}, self._const * f
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Coef) -> "LinExpr":
        f = _frac(scalar)
        if f == 0:
            raise ZeroDivisionError("division of LinExpr by zero")
        return self * (Fraction(1) / f)

    # -- substitution / evaluation ------------------------------------------
    def substitute(self, bindings: Mapping[str, "LinExpr | Coef"]) -> "LinExpr":
        """Replace each bound variable by an affine expression."""
        terms: dict[str, Fraction] = {}
        const = self._const
        for var, coef in self._terms.items():
            bound = bindings.get(var)
            if bound is None and var not in bindings:
                prev = terms.get(var)
                merged = coef if prev is None else _fadd(prev, coef)
                if merged == 0:
                    terms.pop(var, None)
                else:
                    terms[var] = merged
                continue
            replacement = _coerce(bound)
            const = _fadd(const, replacement._const * coef)
            for v, c in replacement._terms.items():
                prev = terms.get(v)
                merged = c * coef if prev is None else _fadd(prev, c * coef)
                if merged == 0:
                    terms.pop(v, None)
                else:
                    terms[v] = merged
        return LinExpr._raw(terms, const)

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename variables; unmapped variables keep their names."""
        terms: dict[str, Fraction] = {}
        for var, coef in self._terms.items():
            new = mapping.get(var, var)
            prev = terms.get(new)
            merged = coef if prev is None else _fadd(prev, coef)
            if merged == 0:
                terms.pop(new, None)
            else:
                terms[new] = merged
        return LinExpr._raw(terms, self._const)

    def evaluate(self, env: Mapping[str, Coef]) -> Fraction:
        """Evaluate with every variable bound in *env*."""
        total = self._const
        for var, coef in self._terms.items():
            if var not in env:
                raise KeyError(f"unbound variable {var!r} in LinExpr.evaluate")
            total += coef * _frac(env[var])
        return total

    # -- comparisons / hashing -----------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self._const == other._const and self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._const, frozenset(self._terms.items())))
        return self._hash

    def __repr__(self) -> str:
        return f"LinExpr({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for var in sorted(self._terms):
            coef = self._terms[var]
            if coef == 1:
                parts.append(f"+ {var}")
            elif coef == -1:
                parts.append(f"- {var}")
            elif coef < 0:
                parts.append(f"- {-coef}*{var}")
            else:
                parts.append(f"+ {coef}*{var}")
        if self._const != 0 or not parts:
            sign = "-" if self._const < 0 else "+"
            parts.append(f"{sign} {abs(self._const)}")
        text = " ".join(parts)
        if text.startswith("+ "):
            text = text[2:]
        elif text.startswith("- "):
            text = "-" + text[2:]
        return text


def _coerce(value: "LinExpr | Coef") -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    return LinExpr.const(value)
