"""Integer-point enumeration over polyhedra with concrete parameters.

Enumeration is the ground-truth oracle for the symbolic solvers: tests check
Fourier–Motzkin projections, feasibility answers, parametric maxima and
lexmins against brute force on small instances. It is also the runtime
fallback whenever a parametric solve would need a case split.

Points are yielded in lexicographic order of the polyhedron's dimension
tuple, which makes ``next(iter(...))`` the lexicographic minimum.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterator, Mapping

from repro.errors import UnboundedError
from repro.poly.fm import project_onto
from repro.poly.linexpr import Coef
from repro.poly.polyhedron import Polyhedron


def _projection_chain(poly: Polyhedron) -> list[Polyhedron]:
    """``chain[i]`` is the projection onto the first ``i+1`` dimensions."""
    chain = []
    for i in range(1, len(poly.variables) + 1):
        chain.append(project_onto(poly, list(poly.variables[:i])))
    return chain


def _range_at(
    poly: Polyhedron, var: str, env: dict[str, Coef]
) -> tuple[int, int] | None:
    """Integer [lo, hi] for *var* in *poly* given earlier dims bound in *env*.

    Returns ``None`` for an empty range. Raises UnboundedError when a side
    has no bound.
    """
    lowers, uppers = poly.bounds_on(var)
    if not lowers or not uppers:
        raise UnboundedError(f"variable {var} is unbounded in {poly}")
    lo = max(math.ceil(b.evaluate(env)) for b in lowers)
    hi = min(math.floor(b.evaluate(env)) for b in uppers)
    if lo > hi:
        return None
    return lo, hi


def enumerate_points(
    poly: Polyhedron,
    param_env: Mapping[str, Coef] | None = None,
    *,
    limit: int | None = None,
) -> Iterator[dict[str, int]]:
    """Yield every integer point of *poly* as ``{var: value}`` dicts.

    *param_env* must bind every parameter. Yields at most *limit* points when
    given (useful for existence checks).
    """
    env0: dict[str, Coef] = dict(param_env or {})
    missing = poly.parameters() - set(env0)
    if missing:
        raise UnboundedError(
            f"enumerate_points needs concrete parameters; unbound: {sorted(missing)}"
        )
    if poly.is_trivially_empty():
        return
    dims = poly.variables
    if not dims:
        if poly.contains(env0):
            yield {}
        return
    chain = _projection_chain(poly)
    count = 0

    def rec(level: int, env: dict[str, Coef]) -> Iterator[dict[str, int]]:
        nonlocal count
        var = dims[level]
        rng = _range_at(chain[level], var, env)
        if rng is None:
            return
        lo, hi = rng
        for value in range(lo, hi + 1):
            env[var] = value
            if level + 1 == len(dims):
                # FM chains are rational shadows; re-check the full system.
                if poly.contains(env):
                    count += 1
                    yield {d: int(env[d]) for d in dims}
                    if limit is not None and count >= limit:
                        del env[var]
                        return
            else:
                yield from rec(level + 1, env)
                if limit is not None and count >= limit:
                    break
        env.pop(var, None)

    yield from rec(0, env0)


def count_points(poly: Polyhedron, param_env: Mapping[str, Coef] | None = None) -> int:
    """Number of integer points (brute force)."""
    return sum(1 for _ in enumerate_points(poly, param_env))


def max_objective_enumerate(
    poly: Polyhedron,
    objective,
    param_env: Mapping[str, Coef] | None = None,
) -> Fraction | None:
    """Brute-force maximum of an affine *objective* (None when empty)."""
    best: Fraction | None = None
    env = dict(param_env or {})
    for point in enumerate_points(poly, param_env):
        value = objective.evaluate({**env, **point})
        if best is None or value > best:
            best = value
    return best
