"""Exact redundant-constraint elimination.

Fourier–Motzkin projections accumulate implied inequalities; guard and
bound quality (fewer run-time tests) improves when they are pruned. A
constraint is redundant iff the polyhedron with the constraint *negated*
(over the integers: ``e >= 0`` becomes ``e <= -1``) is empty given the
remaining constraints — checked with the sound rational test, so pruning
never changes the set.
"""

from __future__ import annotations

from repro.poly.constraint import Constraint, Kind, ge0
from repro.poly.integer import rationally_empty
from repro.poly.polyhedron import Polyhedron


def is_implied(poly: Polyhedron, constraint: Constraint) -> bool:
    """Does *poly* (as given) already force *constraint*?

    Sound but incomplete for equalities (both inequalities must be
    implied); exact for inequalities up to the rational relaxation.
    """
    if constraint.kind is Kind.EQ:
        return is_implied(poly, ge0(constraint.expr)) and is_implied(
            poly, ge0(-constraint.expr)
        )
    violating = poly.with_constraints([ge0(-constraint.expr - 1)])
    return rationally_empty(violating)


def remove_redundant(poly: Polyhedron) -> Polyhedron:
    """Drop constraints implied by the others (greedy, order-stable).

    Equalities are kept (they define the set's dimensionality and removing
    one is rarely what a caller wants); duplicate equalities are already
    deduplicated by the constructor.
    """
    kept: list[Constraint] = [c for c in poly.constraints if c.kind is Kind.EQ]
    inequalities = [c for c in poly.constraints if c.kind is Kind.GE]
    for pos, c in enumerate(inequalities):
        others = kept + inequalities[pos + 1 :]
        if not is_implied(Polyhedron(poly.variables, others), c):
            kept.append(c)
    # Preserve original ordering for stable output.
    order = {c: i for i, c in enumerate(poly.constraints)}
    kept.sort(key=lambda c: order[c])
    return Polyhedron(poly.variables, kept)


def simplify_under(poly: Polyhedron, context: Polyhedron) -> Polyhedron:
    """Drop constraints of *poly* that *context* already guarantees.

    Used for guard emission: the fused space (context) makes many domain
    constraints tautological at run time.
    """
    kept = [
        c
        for c in poly.constraints
        if not is_implied(context.with_variables(poly.variables), c)
    ]
    return Polyhedron(poly.variables, kept)
