"""Fourier–Motzkin elimination with exact rational arithmetic.

FM computes the *rational* shadow of a polyhedron. For the affine programs
this package handles (loop bounds and subscripts with unit coefficients on
the eliminated variable), the rational shadow coincides with the integer
shadow; ``eliminate(..., require_exact=True)`` enforces that condition and
raises :class:`~repro.errors.CaseSplitError` when it does not hold, so
callers can fall back to enumeration instead of silently using an
over-approximation.

Performance notes (see ``docs/architecture.md``, *Analysis-layer caching*):

- ``eliminate`` and ``project_onto`` are memoised per-process on the
  polyhedron's structural fingerprint (projections additionally persist
  to the analysis disk cache), and both cache raised
  ``CaseSplitError``/``PolyhedronError`` outcomes;
- the dominant bound combination ``e_lo * (-n) + e_up * p`` takes a
  pure-addition fast path when both coefficients on the eliminated
  variable are unit (the common case for loop nests), skipping two
  ``LinExpr`` allocations and all ``Fraction`` multiplies;
- ``_cheapest_variable`` counts bounds for *all* candidates in one pass
  over the constraints instead of one pass per candidate.

All fast paths are disabled together with ``REPRO_POLY_CACHE=off`` so
the oracle mode doubles as an un-optimised baseline for
``benchmarks/bench_compile.py``.
"""

from __future__ import annotations

from fractions import Fraction

from repro import telemetry
from repro.errors import CaseSplitError, PolyhedronError
from repro.poly import memo
from repro.poly.constraint import Constraint, Kind, ge0
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

# Safety valve against pathological constraint blowup.
MAX_CONSTRAINTS = 5000


def _prune(constraints: list[Constraint]) -> list[Constraint]:
    """Drop duplicates and syntactically dominated inequalities.

    Two GE constraints with identical variable terms differ only in the
    constant; the smaller constant is the tighter constraint.
    """
    best: dict[object, Constraint] = {}
    order: list[object] = []
    for c in constraints:
        if c.is_trivial_true():
            continue
        # key()[1] is the sorted (var, coef) tuple — cached on the
        # expression, equivalent to the term frozenset but hash-once.
        key = (c.kind, c.expr.key()[1])
        prev = best.get(key)
        if prev is None:
            best[key] = c
            order.append(key)
        elif c.kind is Kind.GE and c.expr.constant < prev.expr.constant:
            best[key] = c
        elif c.kind is Kind.EQ and c.expr != prev.expr:
            # Same terms, different constant: contradictory equalities; keep
            # both so emptiness is detected downstream.
            best[key] = prev
            order.append((key, c.expr.constant))
            best[(key, c.expr.constant)] = c
    return [best[k] for k in order]


def eliminate(poly: Polyhedron, var: str, *, require_exact: bool = False) -> Polyhedron:
    """Existentially eliminate dimension *var*.

    Equalities involving *var* are used for substitution when possible (exact
    for unit coefficients); remaining bounds are combined pairwise.
    """
    if var not in poly.variables:
        raise PolyhedronError(f"{var!r} is not a dimension of {poly!r}")
    if not memo.caching_enabled():
        return _eliminate(poly, var, require_exact, fast=False)
    return memo.memoize(
        "elim",
        (poly.fingerprint(), var, require_exact),
        lambda: _eliminate(poly, var, require_exact, fast=True),
    )


def _eliminate(
    poly: Polyhedron, var: str, require_exact: bool, *, fast: bool
) -> Polyhedron:
    telemetry.counter("poly.fm.eliminations")
    telemetry.observe("poly.fm.constraints_in", len(poly.constraints))
    new_vars = tuple(v for v in poly.variables if v != var)

    # Prefer solving an equality for var.
    for c in poly.constraints:
        a = c.expr.coeff(var)
        if c.kind is Kind.EQ and a != 0:
            if abs(a) != 1 and require_exact:
                raise CaseSplitError(
                    f"eliminating {var}: equality coefficient {a} is not unit"
                )
            rest = c.expr - LinExpr.var(var, a)
            replacement = (-rest) / a
            others = [k for k in poly.constraints if k is not c]
            substituted = [k.substitute({var: replacement}) for k in others]
            return Polyhedron(new_vars, _prune(substituted))

    lowers: list[tuple[Fraction, LinExpr]] = []  # (coef>0, expr)
    uppers: list[tuple[Fraction, LinExpr]] = []  # (coef<0, expr)
    passthrough: list[Constraint] = []
    for c in poly.constraints:
        a = c.expr.coeff(var)
        if a == 0:
            passthrough.append(c)
        elif a > 0:
            lowers.append((a, c.expr))
        else:
            uppers.append((a, c.expr))

    combined: list[Constraint] = list(passthrough)
    for p, e_lo in lowers:
        for n, e_up in uppers:
            if require_exact and p != 1 and -n != 1:
                raise CaseSplitError(
                    f"eliminating {var}: bound pair with coefficients {p}, {n}"
                )
            if fast and p == 1 and n == -1:
                # Unit coefficients on both bounds: the combination
                # degenerates to a plain sum (no Fraction multiplies).
                new_expr = e_lo + e_up
            else:
                new_expr = e_lo * (-n) + e_up * p
            assert new_expr.coeff(var) == 0
            combined.append(ge0(new_expr))
    if len(combined) > MAX_CONSTRAINTS:
        telemetry.counter("poly.fm.blowup")
        raise PolyhedronError(
            f"Fourier–Motzkin blowup eliminating {var!r}: {len(combined)} "
            f"constraints exceed MAX_CONSTRAINTS={MAX_CONSTRAINTS} "
            f"({len(lowers)} lower x {len(uppers)} upper bounds, "
            f"{len(passthrough)} passthrough) while projecting a polyhedron "
            f"over dims {list(poly.variables)}"
        )
    telemetry.observe("poly.fm.constraints_out", len(combined))
    return Polyhedron(new_vars, _prune(combined))


def _cheapest_variable(poly: Polyhedron, candidates: list[str]) -> str:
    """The candidate whose FM growth estimate (lower*upper bound product,
    zero when an equality can substitute it away) is smallest."""
    # One pass over the constraints counts bounds for every candidate at
    # once; selection order (first candidate wins ties) matches the
    # original per-candidate scan exactly.
    wanted = set(candidates)
    counts: dict[str, list[int]] = {v: [0, 0, 0] for v in candidates}  # lo, up, eq
    for c in poly.constraints:
        is_eq = c.kind is Kind.EQ
        for v, a in c.expr.terms_items():
            if v not in wanted:
                continue
            tally = counts[v]
            if is_eq:
                tally[2] += 1
            elif a > 0:
                tally[0] += 1
            else:
                tally[1] += 1
    best_var = candidates[0]
    best_cost: int | None = None
    for v in candidates:
        nlo, nup, neq = counts[v]
        cost = 0 if neq else nlo * nup
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_var = v
    return best_var


def project_onto(
    poly: Polyhedron, keep: list[str] | tuple[str, ...], *, require_exact: bool = False
) -> Polyhedron:
    """Project onto the dimensions in *keep* (order taken from *keep*).

    All other dimensions are existentially eliminated, cheapest-first.
    Parameters are always kept implicitly.
    """
    keep_set = set(keep)
    unknown = keep_set - set(poly.variables)
    if unknown:
        raise PolyhedronError(f"projection targets {sorted(unknown)} are not dimensions")
    if not memo.caching_enabled():
        return _project_onto(poly, tuple(keep), keep_set, require_exact)
    return memo.memoize_json(
        "proj",
        (poly.fingerprint(), ",".join(keep), require_exact),
        lambda: _project_onto(poly, tuple(keep), keep_set, require_exact),
        encode=memo.enc_poly,
        decode=memo.dec_poly,
    )


def _project_onto(
    poly: Polyhedron,
    keep: tuple[str, ...],
    keep_set: set[str],
    require_exact: bool,
) -> Polyhedron:
    remaining = [v for v in poly.variables if v not in keep_set]
    current = poly
    while remaining:
        var = _cheapest_variable(current, remaining)
        current = eliminate(current, var, require_exact=require_exact)
        remaining.remove(var)
    return current.with_variables(keep)
