"""Fourier–Motzkin elimination with exact rational arithmetic.

FM computes the *rational* shadow of a polyhedron. For the affine programs
this package handles (loop bounds and subscripts with unit coefficients on
the eliminated variable), the rational shadow coincides with the integer
shadow; ``eliminate(..., require_exact=True)`` enforces that condition and
raises :class:`~repro.errors.CaseSplitError` when it does not hold, so
callers can fall back to enumeration instead of silently using an
over-approximation.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import CaseSplitError, PolyhedronError
from repro.poly.constraint import Constraint, Kind, ge0
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

# Safety valve against pathological constraint blowup.
MAX_CONSTRAINTS = 5000


def _prune(constraints: list[Constraint]) -> list[Constraint]:
    """Drop duplicates and syntactically dominated inequalities.

    Two GE constraints with identical variable terms differ only in the
    constant; the smaller constant is the tighter constraint.
    """
    best: dict[object, Constraint] = {}
    order: list[object] = []
    for c in constraints:
        if c.is_trivial_true():
            continue
        key = (c.kind, frozenset(c.expr.terms.items()))
        prev = best.get(key)
        if prev is None:
            best[key] = c
            order.append(key)
        elif c.kind is Kind.GE and c.expr.constant < prev.expr.constant:
            best[key] = c
        elif c.kind is Kind.EQ and c.expr != prev.expr:
            # Same terms, different constant: contradictory equalities; keep
            # both so emptiness is detected downstream.
            best[key] = prev
            order.append((key, c.expr.constant))
            best[(key, c.expr.constant)] = c
    return [best[k] for k in order]


def eliminate(poly: Polyhedron, var: str, *, require_exact: bool = False) -> Polyhedron:
    """Existentially eliminate dimension *var*.

    Equalities involving *var* are used for substitution when possible (exact
    for unit coefficients); remaining bounds are combined pairwise.
    """
    if var not in poly.variables:
        raise PolyhedronError(f"{var!r} is not a dimension of {poly!r}")
    new_vars = tuple(v for v in poly.variables if v != var)

    # Prefer solving an equality for var.
    for c in poly.constraints:
        a = c.expr.coeff(var)
        if c.kind is Kind.EQ and a != 0:
            if abs(a) != 1 and require_exact:
                raise CaseSplitError(
                    f"eliminating {var}: equality coefficient {a} is not unit"
                )
            rest = c.expr - LinExpr.var(var, a)
            replacement = (-rest) / a
            others = [k for k in poly.constraints if k is not c]
            substituted = [k.substitute({var: replacement}) for k in others]
            return Polyhedron(new_vars, _prune(substituted))

    lowers: list[tuple[Fraction, LinExpr]] = []  # (coef>0, expr)
    uppers: list[tuple[Fraction, LinExpr]] = []  # (coef<0, expr)
    passthrough: list[Constraint] = []
    for c in poly.constraints:
        a = c.expr.coeff(var)
        if a == 0:
            passthrough.append(c)
        elif a > 0:
            lowers.append((a, c.expr))
        else:
            uppers.append((a, c.expr))

    combined: list[Constraint] = list(passthrough)
    for p, e_lo in lowers:
        for n, e_up in uppers:
            if require_exact and p != 1 and -n != 1:
                raise CaseSplitError(
                    f"eliminating {var}: bound pair with coefficients {p}, {n}"
                )
            new_expr = e_lo * (-n) + e_up * p
            assert new_expr.coeff(var) == 0
            combined.append(ge0(new_expr))
    if len(combined) > MAX_CONSTRAINTS:
        raise PolyhedronError(
            f"Fourier–Motzkin blowup eliminating {var}: {len(combined)} constraints"
        )
    return Polyhedron(new_vars, _prune(combined))


def _cheapest_variable(poly: Polyhedron, candidates: list[str]) -> str:
    """The candidate whose FM growth estimate (lower*upper bound product,
    zero when an equality can substitute it away) is smallest."""
    best_var = candidates[0]
    best_cost: float | None = None
    for v in candidates:
        nlo = nup = neq = 0
        for c in poly.constraints:
            a = c.expr.coeff(v)
            if a == 0:
                continue
            if c.kind is Kind.EQ:
                neq += 1
            elif a > 0:
                nlo += 1
            else:
                nup += 1
        cost = 0 if neq else nlo * nup
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_var = v
    return best_var


def project_onto(
    poly: Polyhedron, keep: list[str] | tuple[str, ...], *, require_exact: bool = False
) -> Polyhedron:
    """Project onto the dimensions in *keep* (order taken from *keep*).

    All other dimensions are existentially eliminated, cheapest-first.
    Parameters are always kept implicitly.
    """
    keep_set = set(keep)
    unknown = keep_set - set(poly.variables)
    if unknown:
        raise PolyhedronError(f"projection targets {sorted(unknown)} are not dimensions")
    remaining = [v for v in poly.variables if v not in keep_set]
    current = poly
    while remaining:
        var = _cheapest_variable(current, remaining)
        current = eliminate(current, var, require_exact=require_exact)
        remaining.remove(var)
    return current.with_variables(tuple(keep))
