"""Lexicographic minima of parametric integer sets (PIP-lite).

``ElimRW`` (paper Eq. 7) needs ``min_< RW̄_A(k)``: the lexicographically
earliest write that violates an anti-dependence, *parametric* in the read
iteration and the problem sizes. PIP or the Omega calculator solve this in
full generality; we implement the subset required by affine loop programs:

- dimension-wise descent: the first coordinate of the lexmin is the greatest
  lower bound of that coordinate over the projection; substituting it and
  recursing yields the remaining coordinates;
- the greatest lower bound must be a *single* affine function of the
  parameters over the whole parameter domain (checked soundly via
  :func:`repro.poly.optimize.unique_extreme_bound`); otherwise a
  :class:`~repro.errors.CaseSplitError` is raised and callers fall back to
  enumeration with concrete parameters;
- integer exactness requires the eliminated coefficients to be units, which
  :func:`repro.poly.fm.project_onto` enforces via ``require_exact``.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import CaseSplitError, UnboundedError
from repro.poly import memo
from repro.poly.enumerate import enumerate_points
from repro.poly.fm import project_onto
from repro.poly.integer import rationally_empty
from repro.poly.linexpr import Coef, LinExpr
from repro.poly.polyhedron import Polyhedron


def lexmin_enumerate(
    poly: Polyhedron, param_env: Mapping[str, Coef] | None = None
) -> dict[str, int] | None:
    """Exact lexmin by enumeration (points stream in lexicographic order)."""
    if not memo.caching_enabled():
        return _lexmin_enumerate(poly, param_env)
    point = memo.memoize_json(
        "lexenum",
        (poly.fingerprint(), memo.env_key(param_env)),
        lambda: _lexmin_enumerate(poly, param_env),
        encode=lambda p: p,
        decode=lambda p: p,
    )
    return dict(point) if point is not None else None


def _lexmin_enumerate(
    poly: Polyhedron, param_env: Mapping[str, Coef] | None
) -> dict[str, int] | None:
    for point in enumerate_points(poly, param_env, limit=1):
        return point
    return None


def parametric_lexmin(
    poly: Polyhedron,
    param_domain: Polyhedron | None = None,
) -> list[LinExpr] | None:
    """Lexmin of *poly* as affine functions of its parameters.

    Returns one :class:`LinExpr` per dimension (in dimension order), or
    ``None`` when the set is rationally empty. Raises
    :class:`CaseSplitError` when the answer is not a single affine piece and
    :class:`UnboundedError` when some dimension has no lower bound.

    *param_domain* (over the parameter names) restricts the parameter values
    considered when proving bound domination; pass e.g. ``{N >= 4}``.
    """
    if not memo.caching_enabled():
        return _parametric_lexmin(poly, param_domain)
    domain_fp = param_domain.fingerprint() if param_domain is not None else "-"
    value = memo.memoize_json(
        "plexmin",
        (poly.fingerprint(), domain_fp),
        lambda: _parametric_lexmin(poly, param_domain),
        encode=lambda r: None if r is None else [memo.enc_linexpr(e) for e in r],
        decode=lambda p: None if p is None else [memo.dec_linexpr(e) for e in p],
    )
    # Fresh list per call: memo hits alias the stored value.
    return list(value) if value is not None else None


def _parametric_lexmin(
    poly: Polyhedron,
    param_domain: Polyhedron | None,
) -> list[LinExpr] | None:
    if rationally_empty(poly):
        return None
    current = poly
    result: list[LinExpr] = []
    bindings: dict[str, LinExpr] = {}
    for var in poly.variables:
        proj = project_onto(current, [var], require_exact=True)
        lowers, _uppers = proj.bounds_on(var)
        if not lowers:
            raise UnboundedError(f"dimension {var} has no lower bound in {poly}")
        for b in lowers:
            if not b.is_integral():
                raise CaseSplitError(
                    f"lexmin of {var}: fractional bound {b} needs a ceil case split"
                )
        from repro.poly.optimize import unique_extreme_bound

        best = unique_extreme_bound(lowers, lower=True, param_domain=param_domain)
        if best is None:
            raise CaseSplitError(
                f"lexmin of {var}: no single dominating lower bound among "
                f"{[str(b) for b in lowers]}"
            )
        result.append(best)
        bindings[var] = best
        current = current.substitute({var: best})
        if rationally_empty(current.with_variables(
            tuple(v for v in poly.variables if v not in bindings)
        )):
            # The chosen bound must remain attainable; for exact unit systems
            # this cannot happen, so treat it as a case-split situation.
            raise CaseSplitError(
                f"lexmin of {var}: substituting {best} empties the set"
            )
    return result


def lexmin_with_fallback(
    poly: Polyhedron,
    param_domain: Polyhedron | None = None,
    param_env: Mapping[str, Coef] | None = None,
) -> list[LinExpr] | None:
    """Parametric lexmin, falling back to enumeration when parameters are
    concrete and the symbolic solve needs a case split."""
    try:
        return parametric_lexmin(poly, param_domain)
    except CaseSplitError:
        if param_env is None:
            raise
        point = lexmin_enumerate(poly, param_env)
        if point is None:
            return None
        return [LinExpr.const(point[v]) for v in poly.variables]
