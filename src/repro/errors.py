"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed or unsupported IR construct."""


class ParseError(ReproError):
    """Error while parsing the mini-Fortran frontend syntax."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        loc = f" at line {line}" if line is not None else ""
        loc += f", col {col}" if col is not None else ""
        super().__init__(f"{message}{loc}")


class SemanticError(ReproError):
    """Frontend semantic analysis failure (undeclared names, shape errors)."""


class NotAffineError(ReproError):
    """An expression that must be affine (bounds, subscripts) is not."""


class PolyhedronError(ReproError):
    """Invalid polyhedral operation (unknown variable, bad dimensionality)."""


class UnboundedError(PolyhedronError):
    """An optimisation over a polyhedron is unbounded."""


class CaseSplitError(PolyhedronError):
    """A parametric solution would require a case split the solver does not
    perform; callers should fall back to enumeration or refine constraints."""


class DependenceError(ReproError):
    """Dependence analysis could not complete (e.g. non-affine subscript)."""


class TransformError(ReproError):
    """A loop transformation is inapplicable or would be illegal."""


class ExecutionError(ReproError):
    """Runtime failure while interpreting an IR program."""


class MachineError(ReproError):
    """Invalid machine-model configuration or simulation failure."""


class ValidationError(ReproError):
    """Two programs expected to be equivalent produced different results."""
