"""Tile-size selection algorithms (paper Sec. 4).

- :mod:`repro.tilesize.lrw` — Wolf & Lam's LRW: the largest square tile
  whose self-interference misses for one array reference are minimised.
- :mod:`repro.tilesize.pdat` — Panda et al.'s PDAT: the fixed size
  ``sqrt((K-1)/K * C)`` elements for a K-way cache of capacity C.

The paper found both selections to "almost always coincide" on its
machine and reports PDAT-only results; the experiment harness defaults to
PDAT, with LRW available for the ablation benchmark.
"""

from repro.tilesize.lrw import lrw_tile
from repro.tilesize.pdat import pdat_tile

__all__ = ["lrw_tile", "pdat_tile"]
