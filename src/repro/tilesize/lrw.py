"""LRW tile-size selection (Wolf & Lam, PLDI'91).

LRW picks, per problem size, the largest square tile such that the number
of self-interference cache misses for one array reference is minimised.
We implement the standard formulation: walking the addresses of a tile of
a column-major ``N x N`` double array, count how many tile rows collide in
the cache (same set, different tag); the chosen edge is the largest one
with zero self-interference that fits the cache, falling back to the best
small edge otherwise.
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.machine.cache import CacheConfig


def _self_interference(cache: CacheConfig, n: int, edge: int, element_bytes: int) -> int:
    """Number of colliding line pairs among the tile's rows.

    A tile column occupies ``edge`` consecutive elements; successive tile
    columns are ``n`` elements apart (column-major leading dimension).
    Count, over the tile's columns, how many cache sets are claimed by more
    lines than the associativity allows.
    """
    line = cache.line_bytes
    nsets = cache.num_sets
    claimed: dict[int, set[int]] = {}
    for col in range(edge):
        base = col * n * element_bytes
        for off in range(0, edge * element_bytes, line):
            addr = base + off
            line_no = addr // line
            claimed.setdefault(line_no % nsets, set()).add(line_no)
    return sum(max(0, len(lines) - cache.assoc) for lines in claimed.values())


def lrw_tile(
    cache: CacheConfig, n: int, *, element_bytes: int = 8, max_edge: int | None = None
) -> int:
    """Largest square tile edge with no self-interference for size *n*."""
    if n <= 0:
        raise MachineError("problem size must be positive")
    capacity = cache.size_bytes // element_bytes
    limit = min(max_edge or n, int(capacity**0.5), n)
    best_edge, best_score = 2, None
    for edge in range(2, max(limit, 2) + 1):
        score = _self_interference(cache, n, edge, element_bytes)
        if score == 0:
            best_edge, best_score = edge, 0
        elif best_score != 0 and (best_score is None or score < best_score):
            best_edge, best_score = edge, score
    return best_edge
