"""PDAT tile-size selection (Panda, Nakamura, Dutt & Nicolau, 1999).

The paper's description: use the fixed tile size ``sqrt((K-1)/K * C)``
where ``C`` is the data-cache capacity and ``K`` its associativity —
independent of the problem size. We interpret ``C`` in *elements* of the
tiled array's type (the paper tiles double arrays for the L1 cache).
"""

from __future__ import annotations

import math

from repro.errors import MachineError
from repro.machine.cache import CacheConfig


def pdat_tile(cache: CacheConfig, *, element_bytes: int = 8) -> int:
    """Square tile edge for *cache* (at least 2)."""
    if element_bytes <= 0:
        raise MachineError("element_bytes must be positive")
    capacity = cache.size_bytes / element_bytes
    k = cache.assoc
    edge = int(math.sqrt((k - 1) / k * capacity)) if k > 1 else int(math.sqrt(capacity / 2))
    return max(edge, 2)
