"""Symbolic piecewise-affine values: affine expressions combined with
Min/Max nodes.

Parametric results of polyhedral optimisation (dependence distance bounds
``d_i``, tile sizes, lexicographic minima) are affine in the program
parameters except for outer ``min``/``max`` combinations. This package
provides a tiny expression tree for exactly that shape.
"""

from repro.symbolic.terms import (
    SymAffine,
    SymExpr,
    SymMax,
    SymMin,
    sym_affine,
    sym_const,
    sym_max,
    sym_min,
    sym_var,
)

__all__ = [
    "SymExpr",
    "SymAffine",
    "SymMin",
    "SymMax",
    "sym_affine",
    "sym_const",
    "sym_var",
    "sym_min",
    "sym_max",
]
