"""Expression tree for piecewise-affine symbolic values.

The grammar is deliberately minimal::

    SymExpr ::= SymAffine(LinExpr)
              | SymMin(SymExpr, ...)
              | SymMax(SymExpr, ...)

which is closed under the operations the polyhedral solvers produce
(``max`` of lower bounds, ``min`` of upper bounds). Construction goes
through :func:`sym_min` / :func:`sym_max`, which flatten, deduplicate and
fold constants.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from repro.poly.linexpr import Coef, LinExpr


class SymExpr:
    """Base class; use the module-level constructors."""

    def evaluate(self, env: Mapping[str, Coef]) -> Fraction:
        """Numeric value under a full parameter binding."""
        raise NotImplementedError

    def evaluate_int(self, env: Mapping[str, Coef]) -> int:
        """Evaluate and require an integral result."""
        v = self.evaluate(env)
        if v.denominator != 1:
            raise ValueError(f"{self} evaluates to non-integer {v}")
        return int(v)

    def parameters(self) -> frozenset[str]:
        """Free names of the expression."""
        raise NotImplementedError

    def substitute(self, bindings: Mapping[str, LinExpr | Coef]) -> "SymExpr":
        """Substitute parameters by affine expressions."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        raise NotImplementedError

    def __hash__(self) -> int:
        raise NotImplementedError


class SymAffine(SymExpr):
    """A plain affine expression."""

    __slots__ = ("expr",)

    def __init__(self, expr: LinExpr):
        self.expr = expr

    def evaluate(self, env: Mapping[str, Coef]) -> Fraction:
        return self.expr.evaluate(env)

    def parameters(self) -> frozenset[str]:
        return self.expr.variables()

    def substitute(self, bindings: Mapping[str, LinExpr | Coef]) -> "SymAffine":
        return SymAffine(self.expr.substitute(bindings))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SymAffine) and self.expr == other.expr

    def __hash__(self) -> int:
        return hash(("affine", self.expr))

    def __repr__(self) -> str:
        return f"SymAffine({self.expr})"

    def __str__(self) -> str:
        return str(self.expr)


class _SymNary(SymExpr):
    """Shared behaviour of Min/Max nodes."""

    __slots__ = ("args",)
    _name = "?"

    def __init__(self, args: tuple[SymExpr, ...]):
        if len(args) < 2:
            raise ValueError(f"{type(self).__name__} needs >= 2 arguments")
        self.args = args

    def _combine(self, values: Iterable[Fraction]) -> Fraction:
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, Coef]) -> Fraction:
        return self._combine(a.evaluate(env) for a in self.args)

    def parameters(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.parameters()
        return out

    def substitute(self, bindings: Mapping[str, LinExpr | Coef]) -> SymExpr:
        new = [a.substitute(bindings) for a in self.args]
        return sym_min(new) if isinstance(self, SymMin) else sym_max(new)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and set(other.args) == set(self.args)

    def __hash__(self) -> int:
        return hash((self._name, frozenset(self.args)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(map(repr, self.args))})"

    def __str__(self) -> str:
        return f"{self._name}({', '.join(map(str, self.args))})"


class SymMin(_SymNary):
    """Minimum of its arguments."""

    _name = "min"

    def _combine(self, values: Iterable[Fraction]) -> Fraction:
        return min(values)


class SymMax(_SymNary):
    """Maximum of its arguments."""

    _name = "max"

    def _combine(self, values: Iterable[Fraction]) -> Fraction:
        return max(values)


def sym_const(value: Coef) -> SymAffine:
    """Constant symbolic value."""
    return SymAffine(LinExpr.const(value))


def sym_var(name: str) -> SymAffine:
    """A single parameter."""
    return SymAffine(LinExpr.var(name))


def sym_affine(expr: LinExpr) -> SymAffine:
    """Wrap a :class:`LinExpr`."""
    return SymAffine(expr)


def _flatten(args: Iterable[SymExpr | LinExpr | int], node: type) -> list[SymExpr]:
    out: list[SymExpr] = []
    for a in args:
        if isinstance(a, LinExpr):
            a = SymAffine(a)
        elif isinstance(a, int):
            a = sym_const(a)
        if not isinstance(a, SymExpr):
            raise TypeError(f"expected SymExpr/LinExpr/int, got {type(a).__name__}")
        if isinstance(a, node):
            out.extend(a.args)
        else:
            out.append(a)
    return out


def _fold(args: list[SymExpr], pick_const) -> list[SymExpr]:
    """Deduplicate; fold all constants into one; drop affine duplicates that
    differ only in the constant (keep the one *pick_const* selects)."""
    consts: list[Fraction] = []
    by_terms: dict[frozenset, LinExpr] = {}
    others: list[SymExpr] = []
    seen_other: set[SymExpr] = set()
    for a in args:
        if isinstance(a, SymAffine):
            e = a.expr
            if e.is_constant():
                consts.append(e.constant)
                continue
            key = frozenset(e.terms.items())
            prev = by_terms.get(key)
            if prev is None or pick_const(e.constant, prev.constant) == e.constant:
                by_terms[key] = e
        elif a not in seen_other:
            seen_other.add(a)
            others.append(a)
    out: list[SymExpr] = [SymAffine(e) for e in by_terms.values()]
    out.extend(others)
    if consts:
        out.append(sym_const(pick_const(*consts) if len(consts) > 1 else consts[0]))
    return out


def sym_min(args: Iterable[SymExpr | LinExpr | int]) -> SymExpr:
    """Simplifying n-ary minimum."""
    flat = _fold(_flatten(args, SymMin), min)
    if not flat:
        raise ValueError("sym_min of no arguments")
    if len(flat) == 1:
        return flat[0]
    return SymMin(tuple(flat))


def sym_max(args: Iterable[SymExpr | LinExpr | int]) -> SymExpr:
    """Simplifying n-ary maximum."""
    flat = _fold(_flatten(args, SymMax), max)
    if not flat:
        raise ValueError("sym_max of no arguments")
    if len(flat) == 1:
        return flat[0]
    return SymMax(tuple(flat))
