"""Reuse-distance analysis: *why* a transformation changes miss counts.

Built on the Mattson LRU stack (see :func:`repro.machine.cache.
stack_distances`): the histogram of reuse distances determines the miss
ratio of *every* fully-associative LRU capacity at once, so a single pass
over the trace explains where a tiling moved the reuse mass. Used by the
cache-study example and the analysis-grade tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.cache import stack_distances


@dataclass(frozen=True)
class ReuseProfile:
    """Histogram of LRU stack distances at line granularity."""

    #: distance histogram; index d = number of accesses with distance d
    histogram: np.ndarray
    #: accesses with no previous use (cold)
    cold: int
    total: int

    def misses_at(self, capacity_lines: int) -> int:
        """Misses of a fully-associative LRU cache with that capacity."""
        return self.cold + int(self.histogram[capacity_lines:].sum())

    def miss_ratio_curve(self, capacities: list[int]) -> list[tuple[int, float]]:
        """(capacity, miss ratio) points of the MRC."""
        return [
            (c, self.misses_at(c) / self.total if self.total else 0.0)
            for c in capacities
        ]

    def mean_finite_distance(self) -> float:
        """Average reuse distance over non-cold accesses."""
        weights = self.histogram
        count = int(weights.sum())
        if count == 0:
            return 0.0
        return float((np.arange(len(weights)) * weights).sum() / count)


def reuse_profile(addresses: np.ndarray, line_shift: int) -> ReuseProfile:
    """Compute the reuse-distance histogram of an address stream."""
    d = stack_distances(np.asarray(addresses), line_shift)
    cold = int((d < 0).sum())
    finite = d[d >= 0]
    if len(finite):
        histogram = np.bincount(finite)
    else:
        histogram = np.zeros(1, dtype=np.int64)
    return ReuseProfile(histogram=histogram, cold=cold, total=len(d))
