"""Two-level cache hierarchy: L1 data cache filtered into a unified L2.

Accesses that hit L1 never reach L2 (inclusive lookup path); every L1 miss
is replayed against L2 in order. This is the standard trace-filtering model
and matches how perfex's L1/L2 miss counters relate on the R14000A.

:class:`HierarchySink` fuses both levels into one streaming pass: each
chunk is replayed against L1 and only the missing subset is forwarded to
L2, so the L2 engine touches a small fraction of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.cache import CacheConfig, CacheSink


@dataclass(frozen=True)
class HierarchyResult:
    """Miss statistics of one trace replay."""

    accesses: int
    l1_misses: int
    l2_misses: int
    #: Per-access L1 miss mask; ``None`` unless ``keep_mask=True`` was
    #: requested — it holds a bool per access and would dominate peak
    #: memory on large runs.
    l1_miss_mask: np.ndarray | None = None

    @property
    def l1_miss_rate(self) -> float:
        """L1 misses / accesses (0 for an empty trace)."""
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        """L2 misses / L1 misses (local miss rate; 0 when L1 never missed)."""
        return self.l2_misses / self.l1_misses if self.l1_misses else 0.0


class HierarchySink:
    """Streaming L1 → L2 replay over address chunks."""

    def __init__(self, l1: CacheConfig, l2: CacheConfig, *, keep_mask: bool = False):
        self._l1 = CacheSink(l1, keep_mask=keep_mask)
        self._l2 = CacheSink(l2)

    def feed(self, addresses: np.ndarray) -> np.ndarray:
        """Replay one chunk; returns its L1 miss mask."""
        addresses = np.asarray(addresses)
        if len(addresses) == 0:
            return np.zeros(0, dtype=bool)
        l1_mask = self._l1.feed(addresses)
        l2_stream = addresses[l1_mask]
        if len(l2_stream):
            self._l2.feed(l2_stream)
        return l1_mask

    def finish(self) -> HierarchyResult:
        """Accumulated miss statistics."""
        l1 = self._l1.finish()
        l2 = self._l2.finish()
        return HierarchyResult(
            accesses=l1.accesses,
            l1_misses=l1.misses,
            l2_misses=l2.misses,
            l1_miss_mask=l1.miss_mask,
        )


def simulate_hierarchy(
    l1: CacheConfig,
    l2: CacheConfig,
    addresses: np.ndarray,
    *,
    keep_mask: bool = False,
) -> HierarchyResult:
    """Replay *addresses* through L1 then L2 (one-chunk wrapper).

    Pass ``keep_mask=True`` to retain the per-access L1 miss mask
    diagnostic (off by default — it costs a bool per access).
    """
    sink = HierarchySink(l1, l2, keep_mask=keep_mask)
    if len(addresses):
        sink.feed(addresses)
    return sink.finish()
