"""Two-level cache hierarchy: L1 data cache filtered into a unified L2.

Accesses that hit L1 never reach L2 (inclusive lookup path); every L1 miss
is replayed against L2 in order. This is the standard trace-filtering model
and matches how perfex's L1/L2 miss counters relate on the R14000A.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.cache import CacheConfig, simulate_cache


@dataclass(frozen=True)
class HierarchyResult:
    """Miss statistics of one trace replay."""

    accesses: int
    l1_misses: int
    l2_misses: int
    #: Boolean per-access L1 miss mask (diagnostics; may be large).
    l1_miss_mask: np.ndarray

    @property
    def l1_miss_rate(self) -> float:
        """L1 misses / accesses (0 for an empty trace)."""
        return self.l1_misses / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        """L2 misses / L1 misses (local miss rate; 0 when L1 never missed)."""
        return self.l2_misses / self.l1_misses if self.l1_misses else 0.0


def simulate_hierarchy(
    l1: CacheConfig, l2: CacheConfig, addresses: np.ndarray
) -> HierarchyResult:
    """Replay *addresses* through L1 then L2."""
    l1_mask = simulate_cache(l1, addresses)
    l2_stream = addresses[l1_mask]
    l2_mask = simulate_cache(l2, l2_stream)
    return HierarchyResult(
        accesses=len(addresses),
        l1_misses=int(l1_mask.sum()),
        l2_misses=int(l2_mask.sum()),
        l1_miss_mask=l1_mask,
    )
