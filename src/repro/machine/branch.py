"""Branch prediction models.

Figure 7 of the paper charges 1 cycle per resolved conditional and 5 cycles
per misprediction. The R10000-family predictor is a per-site 2-bit
saturating counter table; we model exactly that (without aliasing, since our
site ids are exact). A static always-taken predictor is provided for
ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BranchStats:
    """Outcome of replaying a branch trace."""

    resolved: int
    mispredicted: int

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions / resolved (0 for an empty trace)."""
        return self.mispredicted / self.resolved if self.resolved else 0.0


class TwoBitPredictor:
    """Per-site 2-bit saturating counter (init: weakly taken).

    States 0..3; predict taken when state >= 2; increment on taken,
    decrement on not-taken, saturating.
    """

    #: Initial counter state (weakly taken).
    INITIAL_STATE = 2

    def simulate(self, site_ids: np.ndarray, taken: np.ndarray) -> BranchStats:
        """Replay (site, outcome) events in order; sites are independent, so
        events are processed grouped by site (stable order within a site)."""
        n = len(site_ids)
        if n == 0:
            return BranchStats(0, 0)
        order = np.argsort(site_ids, kind="stable")
        sid_sorted = site_ids[order]
        taken_sorted = taken[order].tolist()
        boundaries = np.flatnonzero(np.diff(sid_sorted)) + 1
        starts = [0, *boundaries.tolist()]
        ends = [*boundaries.tolist(), n]
        mispredicted = 0
        for start, end in zip(starts, ends):
            state = self.INITIAL_STATE
            for pos in range(start, end):
                outcome = taken_sorted[pos]
                if (state >= 2) != bool(outcome):
                    mispredicted += 1
                if outcome:
                    if state < 3:
                        state += 1
                elif state > 0:
                    state -= 1
        return BranchStats(resolved=n, mispredicted=mispredicted)


class StaticTakenPredictor:
    """Predicts every branch taken (ablation baseline)."""

    def simulate(self, site_ids: np.ndarray, taken: np.ndarray) -> BranchStats:
        """Mispredict exactly the not-taken outcomes."""
        n = len(site_ids)
        return BranchStats(resolved=n, mispredicted=int((np.asarray(taken) == 0).sum()))
