"""Branch prediction models.

Figure 7 of the paper charges 1 cycle per resolved conditional and 5 cycles
per misprediction. The R10000-family predictor is a per-site 2-bit
saturating counter table; we model exactly that (without aliasing, since our
site ids are exact). A static always-taken predictor is provided for
ablation studies.

Streaming: :func:`sink_for_predictor` wraps a predictor into a
:class:`~repro.machine.sinks.TraceSink` consuming encoded branch-event
chunks (``site*2 + taken``). Sites are independent and the sinks preserve
per-site order, so interleaved streaming replay is equivalent to the
grouped-by-site replay of ``simulate`` — the equivalence tests assert it.
Unknown predictor types fall back to materializing the (small) branch
trace and calling their ``simulate`` once at the end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exec.events import decode_branch_events


@dataclass(frozen=True)
class BranchStats:
    """Outcome of replaying a branch trace."""

    resolved: int
    mispredicted: int

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions / resolved (0 for an empty trace)."""
        return self.mispredicted / self.resolved if self.resolved else 0.0


class TwoBitPredictor:
    """Per-site 2-bit saturating counter (init: weakly taken).

    States 0..3; predict taken when state >= 2; increment on taken,
    decrement on not-taken, saturating.
    """

    #: Initial counter state (weakly taken).
    INITIAL_STATE = 2

    def simulate(self, site_ids: np.ndarray, taken: np.ndarray) -> BranchStats:
        """Replay (site, outcome) events in order; sites are independent, so
        events are processed grouped by site (stable order within a site)."""
        n = len(site_ids)
        if n == 0:
            return BranchStats(0, 0)
        order = np.argsort(site_ids, kind="stable")
        sid_sorted = site_ids[order]
        taken_sorted = taken[order].tolist()
        boundaries = np.flatnonzero(np.diff(sid_sorted)) + 1
        starts = [0, *boundaries.tolist()]
        ends = [*boundaries.tolist(), n]
        mispredicted = 0
        for start, end in zip(starts, ends):
            state = self.INITIAL_STATE
            for pos in range(start, end):
                outcome = taken_sorted[pos]
                if (state >= 2) != bool(outcome):
                    mispredicted += 1
                if outcome:
                    if state < 3:
                        state += 1
                elif state > 0:
                    state -= 1
        return BranchStats(resolved=n, mispredicted=mispredicted)


class StaticTakenPredictor:
    """Predicts every branch taken (ablation baseline)."""

    def simulate(self, site_ids: np.ndarray, taken: np.ndarray) -> BranchStats:
        """Mispredict exactly the not-taken outcomes."""
        n = len(site_ids)
        return BranchStats(resolved=n, mispredicted=int((np.asarray(taken) == 0).sum()))


class TwoBitPredictorSink:
    """Streaming per-site 2-bit counters over encoded branch chunks."""

    def __init__(self) -> None:
        self._states: dict[int, int] = {}
        self._resolved = 0
        self._mispredicted = 0

    def feed(self, codes: np.ndarray) -> None:
        """Update every site's counter with one chunk of events."""
        states = self._states
        init = TwoBitPredictor.INITIAL_STATE
        mispredicted = 0
        for code in np.asarray(codes, dtype=np.int64).tolist():
            site = code >> 1
            outcome = code & 1
            state = states.get(site, init)
            if (state >= 2) != bool(outcome):
                mispredicted += 1
            if outcome:
                if state < 3:
                    state += 1
            elif state > 0:
                state -= 1
            states[site] = state
        self._resolved += len(codes)
        self._mispredicted += mispredicted

    def finish(self) -> BranchStats:
        """Accumulated prediction statistics."""
        return BranchStats(self._resolved, self._mispredicted)


class StaticTakenPredictorSink:
    """Streaming always-taken predictor (vectorized per chunk)."""

    def __init__(self) -> None:
        self._resolved = 0
        self._mispredicted = 0

    def feed(self, codes: np.ndarray) -> None:
        """Mispredict the not-taken events of one chunk."""
        _, taken = decode_branch_events(codes)
        self._resolved += len(taken)
        self._mispredicted += int((taken == 0).sum())

    def finish(self) -> BranchStats:
        """Accumulated prediction statistics."""
        return BranchStats(self._resolved, self._mispredicted)


class MaterializingPredictorSink:
    """Fallback for custom predictors: collect, then ``simulate`` once.

    The branch trace is orders of magnitude smaller than the memory trace
    (one event per conditional), so materializing it does not threaten the
    streaming pipeline's memory bound.
    """

    def __init__(self, predictor) -> None:
        self._predictor = predictor
        self._chunks: list[np.ndarray] = []

    def feed(self, codes: np.ndarray) -> None:
        """Retain a copy of the chunk."""
        self._chunks.append(np.asarray(codes, dtype=np.int64).copy())

    def finish(self) -> BranchStats:
        """Replay the collected trace through the wrapped predictor."""
        codes = (
            np.concatenate(self._chunks)
            if self._chunks
            else np.empty(0, dtype=np.int64)
        )
        sid, taken = decode_branch_events(codes)
        return self._predictor.simulate(sid, taken)


def sink_for_predictor(predictor):
    """Streaming sink equivalent to ``predictor.simulate`` on the full trace."""
    if type(predictor) is TwoBitPredictor:
        return TwoBitPredictorSink()
    if type(predictor) is StaticTakenPredictor:
        return StaticTakenPredictorSink()
    return MaterializingPredictorSink(predictor)
