"""Trace-driven machine model of the paper's SGI Octane2 testbed.

The paper measures, via the SGI ``perfex`` tool: L1/L2 data-cache misses,
resolved and mispredicted branches, and graduated instructions, and converts
them to cycles with fixed typical costs (Sec. 4). This package reproduces
exactly those observables from the executor's traces:

- :mod:`repro.machine.layout` — column-major array placement in a flat
  address space;
- :mod:`repro.machine.cache` — set-associative LRU data-cache simulation;
- :mod:`repro.machine.hierarchy` — two-level (L1 + unified L2) filtering;
- :mod:`repro.machine.branch` — branch predictors (2-bit saturating
  counters by default);
- :mod:`repro.machine.configs` — the Octane2 geometry and a scaled-down
  variant for tractable sweeps;
- :mod:`repro.machine.costmodel` — per-event cycle costs (9.92 / 162.55 /
  1 / 5) and the cycle aggregation;
- :mod:`repro.machine.perfcounters` — the end-to-end "perfex" report;
- :mod:`repro.machine.sinks` — the streaming :class:`TraceSink` protocol
  that fuses all trace consumers into one bounded-memory pass.
"""

from repro.machine.branch import StaticTakenPredictor, TwoBitPredictor
from repro.machine.cache import CacheConfig, CacheSink, simulate_cache
from repro.machine.configs import MachineConfig, octane2, octane2_scaled
from repro.machine.costmodel import CostModel
from repro.machine.hierarchy import HierarchyResult, HierarchySink, simulate_hierarchy
from repro.machine.layout import MemoryLayout
from repro.machine.perfcounters import (
    MemoryPipelineSink,
    PerfReport,
    measure,
    measure_streaming,
)
from repro.machine.sinks import (
    DEFAULT_CHUNK_EVENTS,
    CountSink,
    FanoutSink,
    MaterializeSink,
    TraceSink,
)

__all__ = [
    "CacheConfig",
    "CacheSink",
    "simulate_cache",
    "MachineConfig",
    "octane2",
    "octane2_scaled",
    "CostModel",
    "HierarchyResult",
    "HierarchySink",
    "simulate_hierarchy",
    "MemoryLayout",
    "MemoryPipelineSink",
    "PerfReport",
    "measure",
    "measure_streaming",
    "TwoBitPredictor",
    "StaticTakenPredictor",
    "TraceSink",
    "MaterializeSink",
    "FanoutSink",
    "CountSink",
    "DEFAULT_CHUNK_EVENTS",
]
