"""Set-associative LRU data-cache simulation.

Matches the paper's Octane2 caches: physically simple, LRU replacement,
write-allocate (reads and writes are treated alike for residency — perfex's
data-cache miss counters do not distinguish them either). Write-back traffic
is not modelled; the paper's analysis uses miss *counts* only.

The simulator exploits the classic LRU property: with associativity ``A``,
the resident lines of a set are exactly the ``A`` most recently accessed
distinct lines mapping to it. The inner loop is plain Python over small
per-set lists (A <= 16), roughly 0.3 µs per access; traces in the scaled
experiments are a few million events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    assoc: int

    def __post_init__(self) -> None:
        for field in ("size_bytes", "line_bytes", "assoc"):
            v = getattr(self, field)
            if not isinstance(v, int) or v <= 0:
                raise MachineError(f"{self.name}: {field} must be positive int")
        if self.line_bytes & (self.line_bytes - 1):
            raise MachineError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise MachineError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc = {self.line_bytes * self.assoc}"
            )

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def line_shift(self) -> int:
        """log2(line size)."""
        return self.line_bytes.bit_length() - 1


def simulate_cache(config: CacheConfig, addresses: np.ndarray) -> np.ndarray:
    """Replay *addresses* through an initially-cold cache.

    Returns a boolean array: ``True`` where the access missed.
    """
    if addresses.ndim != 1:
        raise MachineError("addresses must be a 1-D array")
    n = len(addresses)
    misses = np.zeros(n, dtype=bool)
    if n == 0:
        return misses
    lines = (addresses >> config.line_shift).tolist()
    nsets = config.num_sets
    assoc = config.assoc
    sets: list[list[int]] = [[] for _ in range(nsets)]
    miss_list = [False] * n
    for pos, line in enumerate(lines):
        ways = sets[line % nsets]
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
        else:
            miss_list[pos] = True
            ways.insert(0, line)
            if len(ways) > assoc:
                ways.pop()
    return np.asarray(miss_list, dtype=bool)


def stack_distances(addresses: np.ndarray, line_shift: int) -> np.ndarray:
    """LRU stack distance of each access at *line* granularity.

    Distance = number of distinct lines touched since the previous access to
    the same line (``-1`` for cold accesses). A fully-associative LRU cache
    of capacity ``C`` lines hits exactly the accesses with
    ``0 <= distance < C`` — the Mattson inclusion property, used by tests
    and by the LRW-style working-set diagnostics.
    """
    lines = (np.asarray(addresses) >> line_shift).tolist()
    stack: list[int] = []
    out = np.empty(len(lines), dtype=np.int64)
    for pos, line in enumerate(lines):
        try:
            depth = stack.index(line)
        except ValueError:
            out[pos] = -1
            stack.insert(0, line)
            continue
        out[pos] = depth
        if depth:
            del stack[depth]
            stack.insert(0, line)
    return out


def misses_fully_associative(
    addresses: np.ndarray, line_shift: int, capacity_lines: int
) -> int:
    """Miss count of a fully-associative LRU cache (via stack distances)."""
    d = stack_distances(addresses, line_shift)
    return int(((d < 0) | (d >= capacity_lines)).sum())
