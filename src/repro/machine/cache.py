"""Set-associative LRU data-cache simulation.

Matches the paper's Octane2 caches: physically simple, LRU replacement,
write-allocate (reads and writes are treated alike for residency — perfex's
data-cache miss counters do not distinguish them either). Write-back traffic
is not modelled; the paper's analysis uses miss *counts* only.

The simulator exploits the classic LRU property: with associativity ``A``,
the resident lines of a set are exactly the ``A`` most recently accessed
distinct lines mapping to it.

:class:`CacheSink` is the streaming production engine. It keeps the whole
cache state in a ``(num_sets, assoc)`` integer array (MRU order, ``-1`` =
empty way) and replays each chunk with vectorized NumPy kernels:

- ``assoc <= 2`` (every shipped Octane2 level is 2-way): a closed-form
  O(n) pass. Within one set's access run, the MRU line after position
  ``i`` is simply the line at ``i``, and the second MRU line is the line
  just before the current run of equal lines — so hits fall out of two
  shifted comparisons, with prior cache state spliced in as virtual
  warm-up accesses at the head of each run.
- larger associativity: a lock-step "rounds" replay — round ``k`` updates
  the ``k``-th access of every set simultaneously (sets are independent),
  vectorized across sets; or the original per-access Python walk when a
  chunk concentrates on too few sets for rounds to pay.

:func:`simulate_cache_reference` retains the original pure-Python
implementation verbatim as the oracle the tests cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    assoc: int

    def __post_init__(self) -> None:
        for field in ("size_bytes", "line_bytes", "assoc"):
            v = getattr(self, field)
            if not isinstance(v, int) or v <= 0:
                raise MachineError(f"{self.name}: {field} must be positive int")
        if self.line_bytes & (self.line_bytes - 1):
            raise MachineError(f"{self.name}: line size must be a power of two")
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise MachineError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc = {self.line_bytes * self.assoc}"
            )

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return self.size_bytes // (self.line_bytes * self.assoc)

    @property
    def line_shift(self) -> int:
        """log2(line size)."""
        return self.line_bytes.bit_length() - 1


@dataclass(frozen=True)
class CacheResult:
    """Accumulated outcome of one cache replay."""

    accesses: int
    misses: int
    #: Per-access miss mask in feed order; ``None`` unless requested.
    miss_mask: np.ndarray | None = None

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0 for an empty stream)."""
        return self.misses / self.accesses if self.accesses else 0.0


class CacheSink:
    """Streaming set-associative LRU cache (see module docstring).

    ``feed(addresses)`` replays one byte-address chunk against the
    persistent cache state and returns that chunk's boolean miss mask
    (used by :class:`~repro.machine.hierarchy.HierarchySink` to chain the
    L1-miss stream into L2); ``finish()`` returns a :class:`CacheResult`.
    """

    def __init__(self, config: CacheConfig, *, keep_mask: bool = False):
        self.config = config
        self._shift = config.line_shift
        self._nsets = config.num_sets
        self._assoc = config.assoc
        # Set extraction: bitmask when the set count is a power of two.
        self._set_mask = (
            self._nsets - 1 if self._nsets & (self._nsets - 1) == 0 else None
        )
        #: Resident lines per set, MRU first; -1 marks an empty way.
        self._state = np.full((self._nsets, self._assoc), -1, dtype=np.int64)
        self._accesses = 0
        self._misses = 0
        self._mask_chunks: list[np.ndarray] | None = [] if keep_mask else None

    # -- public protocol ---------------------------------------------------
    def feed(self, addresses: np.ndarray) -> np.ndarray:
        """Replay one chunk; returns the chunk's per-access miss mask."""
        addresses = np.asarray(addresses)
        if addresses.ndim != 1:
            raise MachineError("addresses must be a 1-D array")
        n = len(addresses)
        if n == 0:
            return np.zeros(0, dtype=bool)
        lines = addresses.astype(np.int64, copy=False) >> self._shift
        if lines.min() < 0:
            raise MachineError("addresses must be non-negative")
        if self._set_mask is not None:
            sets = lines & self._set_mask
        else:
            sets = lines % self._nsets
        if self._assoc <= 2:
            miss = self._replay_assoc2(sets, lines)
        else:
            # Rounds pay off only when accesses spread over many sets:
            # the round count is the deepest per-set run in the chunk.
            deepest = int(np.bincount(sets, minlength=1).max())
            if deepest * 32 <= n:
                miss = self._replay_rounds(sets, lines)
            else:
                miss = self._replay_python(sets, lines)
        self._accesses += n
        self._misses += int(miss.sum())
        if self._mask_chunks is not None:
            self._mask_chunks.append(miss)
        return miss

    def finish(self) -> CacheResult:
        """Totals (and the full miss mask when ``keep_mask=True``)."""
        mask = None
        if self._mask_chunks is not None:
            mask = (
                np.concatenate(self._mask_chunks)
                if self._mask_chunks
                else np.zeros(0, dtype=bool)
            )
        return CacheResult(self._accesses, self._misses, mask)

    def _sort_by_set(self, sets: np.ndarray) -> np.ndarray:
        """Stable permutation grouping accesses by set.

        NumPy's stable argsort is a radix sort only for <= 16-bit dtypes
        (timsort otherwise, several times slower), so narrow the keys
        first — set indices are tiny.
        """
        if self._nsets <= 1 << 8:
            keys = sets.astype(np.uint8)
        elif self._nsets <= 1 << 16:
            keys = sets.astype(np.uint16)
        else:
            keys = sets
        return np.argsort(keys, kind="stable")

    # -- assoc <= 2 closed form --------------------------------------------
    def _replay_assoc2(self, sets: np.ndarray, lines: np.ndarray) -> np.ndarray:
        n = len(sets)
        order = self._sort_by_set(sets)
        s = sets[order]
        lin = lines[order]
        run_start = np.empty(n, dtype=bool)
        run_start[0] = True
        np.not_equal(s[1:], s[:-1], out=run_start[1:])
        starts = np.flatnonzero(run_start)
        run_sets = s[starts]
        run_len = np.diff(np.append(starts, n))
        way0 = self._state[run_sets, 0]  # MRU line per touched set
        # MRU hit: equal to the previous line of the same set; at a run
        # head "previous" is the pre-chunk MRU spliced in from state.
        prev = np.empty(n, dtype=np.int64)
        prev[1:] = lin[:-1]
        prev[starts] = way0
        mru_hit = lin == prev
        ends = starts + run_len - 1
        if self._assoc == 1:
            self._state[run_sets, 0] = lin[ends]
            miss = np.empty(n, dtype=bool)
            miss[order] = ~mru_hit
            return miss
        way1 = self._state[run_sets, 1]
        # The stack's second line behind position i is the line just
        # before the maximal run of equal lines ending at i-1. When that
        # equal run reaches back to the run head, the second line comes
        # from the pre-chunk state instead: pushing the head access onto
        # [way0, way1] leaves way1 behind it if it equals way0, else way0.
        change = lin != prev
        change[starts] = True
        eq_starts = np.flatnonzero(change)
        eq_lens = np.diff(np.append(eq_starts, n))
        last_change = np.repeat(eq_starts, eq_lens)  # eq-run start, inclusive
        plc = np.empty(n, dtype=np.int64)
        plc[0] = 0
        plc[1:] = last_change[:-1]
        second = lin[np.maximum(plc - 1, 0)]
        run_head = np.repeat(starts, run_len)
        sec_head = np.where(lin[starts] == way0, way1, way0)
        from_state = plc == run_head
        second[from_state] = np.repeat(sec_head, run_len)[from_state]
        second[starts] = way1  # stack untouched before the head access
        miss = np.empty(n, dtype=bool)
        miss[order] = ~(mru_hit | (lin == second))
        # Fold the run tails back into the persistent state.
        self._state[run_sets, 0] = lin[ends]
        ec = last_change[ends]
        self._state[run_sets, 1] = np.where(
            ec > starts, lin[np.maximum(ec - 1, 0)], sec_head
        )
        return miss

    # -- general associativity: lock-step rounds ---------------------------
    def _replay_rounds(self, sets: np.ndarray, lines: np.ndarray) -> np.ndarray:
        n = len(sets)
        assoc = self._assoc
        state = self._state
        order = self._sort_by_set(sets)
        s = sets[order]
        lin = lines[order]
        run_start = np.empty(n, dtype=bool)
        run_start[0] = True
        np.not_equal(s[1:], s[:-1], out=run_start[1:])
        starts = np.flatnonzero(run_start)
        run_len = np.diff(np.append(starts, n))
        # Longest runs first, so round k's active runs are a prefix.
        depth_order = np.argsort(-run_len, kind="stable")
        starts_d = starts[depth_order]
        neg_len_d = -run_len[depth_order]
        miss_sorted = np.empty(n, dtype=bool)
        cols = np.arange(assoc)
        for k in range(int(run_len.max())):
            active = int(np.searchsorted(neg_len_d, -k, side="left"))
            pos = starts_d[:active] + k
            ss = s[pos]
            ll = lin[pos]
            ways = state[ss]  # (active, assoc) copy
            eq = ways == ll[:, None]
            hit = eq.any(axis=1)
            # On a hit rotate ways 0..j to the right; on a miss (j = last
            # way) shift everything, dropping the LRU victim.
            j = np.where(hit, eq.argmax(axis=1), assoc - 1)
            shifted = np.empty_like(ways)
            shifted[:, 0] = ll
            if assoc > 1:
                shifted[:, 1:] = ways[:, :-1]
            state[ss] = np.where(cols[None, :] > j[:, None], ways, shifted)
            miss_sorted[pos] = ~hit
        miss = np.empty(n, dtype=bool)
        miss[order] = miss_sorted
        return miss

    # -- per-access fallback ------------------------------------------------
    def _replay_python(self, sets: np.ndarray, lines: np.ndarray) -> np.ndarray:
        """Original per-access walk, kept for chunks that concentrate on
        few sets (rounds would degenerate to per-access NumPy calls)."""
        state = self._state
        touched = np.unique(sets)
        ways_by_set = {
            int(q): [int(w) for w in state[q] if w >= 0] for q in touched
        }
        assoc = self._assoc
        miss = np.empty(len(sets), dtype=bool)
        for pos, (q, line) in enumerate(zip(sets.tolist(), lines.tolist())):
            ways = ways_by_set[q]
            if line in ways:
                miss[pos] = False
                if ways[0] != line:
                    ways.remove(line)
                    ways.insert(0, line)
            else:
                miss[pos] = True
                ways.insert(0, line)
                if len(ways) > assoc:
                    ways.pop()
        for q, ways in ways_by_set.items():
            row = ways + [-1] * (assoc - len(ways))
            state[q] = row
        return miss


def simulate_cache(config: CacheConfig, addresses: np.ndarray) -> np.ndarray:
    """Replay *addresses* through an initially-cold cache.

    Returns a boolean array: ``True`` where the access missed. One-chunk
    wrapper around :class:`CacheSink`.
    """
    addresses = np.asarray(addresses)
    if addresses.ndim != 1:
        raise MachineError("addresses must be a 1-D array")
    sink = CacheSink(config)
    if len(addresses) == 0:
        return np.zeros(0, dtype=bool)
    return sink.feed(addresses)


def simulate_cache_reference(config: CacheConfig, addresses: np.ndarray) -> np.ndarray:
    """The original per-access pure-Python simulator (oracle).

    Retained verbatim as the cross-check target for :class:`CacheSink`'s
    vectorized replay; roughly 0.3 µs per access.
    """
    if addresses.ndim != 1:
        raise MachineError("addresses must be a 1-D array")
    n = len(addresses)
    misses = np.zeros(n, dtype=bool)
    if n == 0:
        return misses
    lines = (addresses >> config.line_shift).tolist()
    nsets = config.num_sets
    assoc = config.assoc
    sets: list[list[int]] = [[] for _ in range(nsets)]
    miss_list = [False] * n
    for pos, line in enumerate(lines):
        ways = sets[line % nsets]
        if line in ways:
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
        else:
            miss_list[pos] = True
            ways.insert(0, line)
            if len(ways) > assoc:
                ways.pop()
    return np.asarray(miss_list, dtype=bool)


class _Fenwick:
    """Binary indexed tree over positions (1-based internally)."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int):
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, pos: int, delta: int) -> None:
        tree = self.tree
        i = pos + 1
        size = self.size
        while i <= size:
            tree[i] += delta
            i += i & -i

    def prefix(self, pos: int) -> int:
        """Sum of entries 0..pos inclusive."""
        tree = self.tree
        i = pos + 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total


def stack_distances(addresses: np.ndarray, line_shift: int) -> np.ndarray:
    """LRU stack distance of each access at *line* granularity.

    Distance = number of distinct lines touched since the previous access to
    the same line (``-1`` for cold accesses). A fully-associative LRU cache
    of capacity ``C`` lines hits exactly the accesses with
    ``0 <= distance < C`` — the Mattson inclusion property, used by tests
    and by the LRW-style working-set diagnostics.

    Position-map/Fenwick formulation: a Fenwick tree marks the *current*
    last-occurrence position of every distinct line; the distance of an
    access is the number of marks strictly between its line's previous
    occurrence and itself. O(n log n) instead of the old O(n·depth)
    ``list.index`` walk (kept as :func:`stack_distances_reference`).
    """
    lines = (np.asarray(addresses) >> line_shift).tolist()
    n = len(lines)
    out = np.empty(n, dtype=np.int64)
    tree = _Fenwick(n)
    last_pos: dict[int, int] = {}
    for i, line in enumerate(lines):
        prev = last_pos.get(line)
        if prev is None:
            out[i] = -1
        else:
            # marks in (prev, i) == distinct lines touched in between
            out[i] = tree.prefix(i - 1) - tree.prefix(prev)
            tree.add(prev, -1)
        tree.add(i, 1)
        last_pos[line] = i
    return out


def stack_distances_reference(addresses: np.ndarray, line_shift: int) -> np.ndarray:
    """Original list-based Mattson stack (oracle for :func:`stack_distances`)."""
    lines = (np.asarray(addresses) >> line_shift).tolist()
    stack: list[int] = []
    out = np.empty(len(lines), dtype=np.int64)
    for pos, line in enumerate(lines):
        try:
            depth = stack.index(line)
        except ValueError:
            out[pos] = -1
            stack.insert(0, line)
            continue
        out[pos] = depth
        if depth:
            del stack[depth]
            stack.insert(0, line)
    return out


def misses_fully_associative(
    addresses: np.ndarray, line_shift: int, capacity_lines: int
) -> int:
    """Miss count of a fully-associative LRU cache (via stack distances)."""
    d = stack_distances(addresses, line_shift)
    return int(((d < 0) | (d >= capacity_lines)).sum())
