"""Write-back cache simulation (dirty-line eviction traffic).

The paper's analysis uses miss counts only; this extension models the
write-back traffic a real Octane2 generates, for the bandwidth ablation:
every store dirties its line, and evicting a dirty line costs a write of
one line to the next level. Tiling changes not only the miss count but the
*dirty* eviction count (tiled kernels overwrite resident lines many times
before eviction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError
from repro.machine.cache import CacheConfig


@dataclass(frozen=True)
class WritebackResult:
    """Misses and dirty evictions of one replay."""

    misses: np.ndarray  # per-access bool
    writebacks: int
    #: dirty lines still resident at the end (flushed at program exit)
    dirty_at_end: int

    @property
    def miss_count(self) -> int:
        """Total misses."""
        return int(self.misses.sum())

    @property
    def total_writeback_lines(self) -> int:
        """Evicted-dirty plus final flush."""
        return self.writebacks + self.dirty_at_end


def simulate_writeback(
    config: CacheConfig, addresses: np.ndarray, is_write: np.ndarray
) -> WritebackResult:
    """Replay with write-allocate, write-back semantics."""
    if len(addresses) != len(is_write):
        raise MachineError("addresses and is_write must align")
    n = len(addresses)
    if n == 0:
        return WritebackResult(np.zeros(0, dtype=bool), 0, 0)
    lines = (np.asarray(addresses) >> config.line_shift).tolist()
    writes = np.asarray(is_write).astype(bool).tolist()
    nsets = config.num_sets
    assoc = config.assoc
    # Per set: list of [line, dirty] in MRU order.
    sets: list[list[list]] = [[] for _ in range(nsets)]
    miss_list = [False] * n
    writebacks = 0
    for pos, line in enumerate(lines):
        ways = sets[line % nsets]
        hit = None
        for way in ways:
            if way[0] == line:
                hit = way
                break
        if hit is not None:
            if ways[0] is not hit:
                ways.remove(hit)
                ways.insert(0, hit)
            if writes[pos]:
                hit[1] = True
        else:
            miss_list[pos] = True
            ways.insert(0, [line, writes[pos]])
            if len(ways) > assoc:
                victim = ways.pop()
                if victim[1]:
                    writebacks += 1
    dirty = sum(1 for ways in sets for way in ways if way[1])
    return WritebackResult(np.asarray(miss_list, dtype=bool), writebacks, dirty)
