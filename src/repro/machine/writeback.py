"""Write-back cache simulation (dirty-line eviction traffic).

The paper's analysis uses miss counts only; this extension models the
write-back traffic a real Octane2 generates, for the bandwidth ablation:
every store dirties its line, and evicting a dirty line costs a write of
one line to the next level. Tiling changes not only the miss count but the
*dirty* eviction count (tiled kernels overwrite resident lines many times
before eviction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError
from repro.machine.cache import CacheConfig


@dataclass(frozen=True)
class WritebackResult:
    """Misses and dirty evictions of one replay."""

    miss_count: int
    writebacks: int
    #: dirty lines still resident at the end (flushed at program exit)
    dirty_at_end: int
    #: Per-access miss mask; ``None`` unless requested (``keep_mask``).
    misses: np.ndarray | None = None

    @property
    def total_writeback_lines(self) -> int:
        """Evicted-dirty plus final flush."""
        return self.writebacks + self.dirty_at_end


class WritebackSink:
    """Streaming write-allocate/write-back replay.

    Consumes ``(addresses, is_write)`` chunks; per-set ``[line, dirty]``
    residency state persists across chunks.
    """

    def __init__(self, config: CacheConfig, *, keep_mask: bool = False):
        self.config = config
        # Per set: list of [line, dirty] in MRU order.
        self._sets: list[list[list]] = [[] for _ in range(config.num_sets)]
        self._writebacks = 0
        self._miss_count = 0
        self._mask_chunks: list[np.ndarray] | None = [] if keep_mask else None

    def feed(self, chunk: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        """Replay one chunk; returns its per-access miss mask."""
        addresses, is_write = chunk
        if len(addresses) != len(is_write):
            raise MachineError("addresses and is_write must align")
        n = len(addresses)
        miss_list = [False] * n
        if n:
            lines = (np.asarray(addresses) >> self.config.line_shift).tolist()
            writes = np.asarray(is_write).astype(bool).tolist()
            nsets = self.config.num_sets
            assoc = self.config.assoc
            sets = self._sets
            for pos, line in enumerate(lines):
                ways = sets[line % nsets]
                hit = None
                for way in ways:
                    if way[0] == line:
                        hit = way
                        break
                if hit is not None:
                    if ways[0] is not hit:
                        ways.remove(hit)
                        ways.insert(0, hit)
                    if writes[pos]:
                        hit[1] = True
                else:
                    miss_list[pos] = True
                    ways.insert(0, [line, writes[pos]])
                    if len(ways) > assoc:
                        victim = ways.pop()
                        if victim[1]:
                            self._writebacks += 1
        mask = np.asarray(miss_list, dtype=bool)
        self._miss_count += int(mask.sum())
        if self._mask_chunks is not None:
            self._mask_chunks.append(mask)
        return mask

    def finish(self) -> WritebackResult:
        """Accumulated totals (plus the miss mask when requested)."""
        dirty = sum(1 for ways in self._sets for way in ways if way[1])
        mask = None
        if self._mask_chunks is not None:
            mask = (
                np.concatenate(self._mask_chunks)
                if self._mask_chunks
                else np.zeros(0, dtype=bool)
            )
        return WritebackResult(
            miss_count=self._miss_count,
            writebacks=self._writebacks,
            dirty_at_end=dirty,
            misses=mask,
        )


def simulate_writeback(
    config: CacheConfig, addresses: np.ndarray, is_write: np.ndarray
) -> WritebackResult:
    """Replay with write-allocate, write-back semantics (one-chunk wrapper)."""
    sink = WritebackSink(config, keep_mask=True)
    sink.feed((addresses, is_write))
    return sink.finish()
