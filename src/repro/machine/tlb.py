"""TLB model: a fully-associative LRU cache of page translations.

Not part of the paper's measurements, but column walks with large leading
dimensions are exactly the access shape that thrashes a TLB, so the
ablation suite reports TLB misses alongside cache misses. The R10000
family has a 64-entry fully-associative TLB with (configurable) 4 KB-16 MB
pages; we model 64 entries x 4 KB by default.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of the translation cache."""

    entries: int = 64
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise MachineError("TLB needs at least one entry")
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise MachineError("page size must be a positive power of two")

    @property
    def page_shift(self) -> int:
        """log2(page size)."""
        return self.page_bytes.bit_length() - 1


class TLBSink:
    """Streaming TLB replay over address chunks.

    The LRU window persists across chunks; most chunks touch few distinct
    pages, so the per-access Python walk is cheap relative to the caches.
    """

    def __init__(self, config: TLBConfig):
        self.config = config
        self._window: OrderedDict[int, None] = OrderedDict()
        self._misses = 0

    def feed(self, addresses: np.ndarray) -> None:
        """Translate one chunk of byte addresses."""
        pages = (np.asarray(addresses) >> self.config.page_shift).tolist()
        window = self._window
        entries = self.config.entries
        misses = 0
        for page in pages:
            if page in window:
                window.move_to_end(page)
            else:
                misses += 1
                window[page] = None
                if len(window) > entries:
                    window.popitem(last=False)
        self._misses += misses

    def finish(self) -> int:
        """Total TLB misses."""
        return self._misses


def simulate_tlb(config: TLBConfig, addresses: np.ndarray) -> int:
    """Number of TLB misses over the address stream (cold-start)."""
    sink = TLBSink(config)
    sink.feed(addresses)
    return sink.finish()
