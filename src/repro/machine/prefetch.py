"""Sequential (next-line) hardware prefetching.

An ablation instrument: how much of tiling's win would a simple stream
prefetcher capture on its own? The model is tagged next-line prefetch: a
demand miss on line ``L`` also installs ``L+1`` (as LRU-inserted, so a
useless prefetch is evicted first); a demand hit on a prefetched line
promotes it and triggers the next line (stream follow-through).

Prefetching hides *latency* for sequential streams — exactly the access
shape of untiled column walks — but cannot manufacture *reuse*: the
tiled codes keep their advantage in bandwidth-bound regimes, which the
benchmark asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError
from repro.machine.cache import CacheConfig


@dataclass(frozen=True)
class PrefetchResult:
    """Outcome of a prefetching replay."""

    demand_misses: int
    prefetches_issued: int
    #: demand accesses served by a previously prefetched line
    prefetch_hits: int
    accesses: int

    @property
    def covered_fraction(self) -> float:
        """Share of would-be misses covered by prefetching."""
        would_miss = self.demand_misses + self.prefetch_hits
        return self.prefetch_hits / would_miss if would_miss else 0.0


class PrefetchSink:
    """Streaming tagged next-line prefetch replay over address chunks.

    Per-set residency state (``[line, prefetched]`` entries in MRU order)
    persists across chunks.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        # Per set: list of [line, prefetched] in MRU order.
        self._sets: list[list[list]] = [[] for _ in range(config.num_sets)]
        self._demand_misses = 0
        self._prefetches = 0
        self._prefetch_hits = 0
        self._accesses = 0

    def _install(self, line: int, *, prefetched: bool) -> None:
        ways = self._sets[line % self.config.num_sets]
        for way in ways:
            if way[0] == line:
                return  # already resident; leave position/flag
        entry = [line, prefetched]
        if prefetched:
            # LRU-insert: evict the old LRU, park the prefetch at the LRU
            # position so a useless prefetch is the next victim.
            while len(ways) >= self.config.assoc:
                ways.pop()
            ways.append(entry)
        else:
            ways.insert(0, entry)
            if len(ways) > self.config.assoc:
                ways.pop()

    def feed(self, addresses: np.ndarray) -> None:
        """Replay one chunk of byte addresses."""
        addresses = np.asarray(addresses)
        if addresses.ndim != 1:
            raise MachineError("addresses must be 1-D")
        lines = (addresses >> self.config.line_shift).tolist()
        nsets = self.config.num_sets
        sets = self._sets
        for line in lines:
            ways = sets[line % nsets]
            hit = None
            for way in ways:
                if way[0] == line:
                    hit = way
                    break
            follow = False
            if hit is not None:
                if hit[1]:
                    self._prefetch_hits += 1
                    hit[1] = False
                    follow = True  # stream follow-through
                if ways[0] is not hit:
                    ways.remove(hit)
                    ways.insert(0, hit)
            else:
                self._demand_misses += 1
                self._install(line, prefetched=False)
                follow = True
            if follow:
                self._prefetches += 1
                self._install(line + 1, prefetched=True)
        self._accesses += len(lines)

    def finish(self) -> PrefetchResult:
        """Accumulated prefetch statistics."""
        return PrefetchResult(
            demand_misses=self._demand_misses,
            prefetches_issued=self._prefetches,
            prefetch_hits=self._prefetch_hits,
            accesses=self._accesses,
        )


def simulate_prefetch(config: CacheConfig, addresses: np.ndarray) -> PrefetchResult:
    """Replay with tagged next-line prefetching (one-chunk wrapper)."""
    sink = PrefetchSink(config)
    sink.feed(addresses)
    return sink.finish()
