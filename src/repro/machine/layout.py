"""Mapping array elements to machine addresses.

The paper's kernels are Fortran programs (column-major); the executor's
memory trace carries ``(array_id, linear_index)`` pairs where the linear
index is already the column-major element offset. This module assigns each
array a base address and turns traces into address streams.

Base placement matters for cache behaviour (the paper's problem-size sweep
is designed to expose pathological conflict cases); arrays are placed
back-to-back with configurable alignment, mimicking a simple static
allocator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError

#: Size of a double-precision element (all paper kernels use doubles).
ELEMENT_BYTES = 8


@dataclass(frozen=True)
class MemoryLayout:
    """Placement of a program's arrays in a flat byte-address space."""

    #: array name -> base byte address
    bases: dict[str, int]
    #: array name -> element count
    sizes: dict[str, int]
    element_bytes: int = ELEMENT_BYTES

    @staticmethod
    def build(
        sizes: dict[str, int],
        *,
        element_bytes: int = ELEMENT_BYTES,
        align: int = 128,
        base: int = 0,
    ) -> "MemoryLayout":
        """Place arrays in name-insertion order, aligning each base."""
        if align <= 0 or align & (align - 1):
            raise MachineError(f"alignment must be a power of two, got {align}")
        bases: dict[str, int] = {}
        cursor = base
        for name, count in sizes.items():
            if count <= 0:
                raise MachineError(f"array {name} has non-positive size {count}")
            cursor = (cursor + align - 1) & ~(align - 1)
            bases[name] = cursor
            cursor += count * element_bytes
        return MemoryLayout(bases, dict(sizes), element_bytes)

    def address_of(self, name: str, linear_index: int) -> int:
        """Byte address of one element."""
        if not 0 <= linear_index < self.sizes[name]:
            raise MachineError(
                f"{name}[{linear_index}] outside 0..{self.sizes[name] - 1}"
            )
        return self.bases[name] + linear_index * self.element_bytes

    def addresses(
        self, array_ids: np.ndarray, linear: np.ndarray, id_to_name: dict[int, str]
    ) -> np.ndarray:
        """Vectorised address computation for a whole trace."""
        max_id = int(array_ids.max(initial=0))
        base_by_id = np.zeros(max_id + 1, dtype=np.int64)
        for aid, name in id_to_name.items():
            if aid <= max_id:
                base_by_id[aid] = self.bases[name]
        return base_by_id[array_ids] + linear * self.element_bytes


def layout_for_program(program, params, *, align: int = 128) -> MemoryLayout:
    """Build the layout of *program*'s arrays at concrete *params*.

    Deterministic given (program, params) — usable before a run even
    starts, which is what lets the streaming pipeline map addresses
    chunk-by-chunk while the program is still executing.
    """
    from repro.exec.events import evaluate_extents

    sizes: dict[str, int] = {}
    for decl in program.arrays:
        shape = evaluate_extents(decl.extents, params)
        sizes[decl.name] = int(np.prod(shape))
    return MemoryLayout.build(sizes, align=align)


def layout_for_run(run_result, program, params, *, align: int = 128) -> MemoryLayout:
    """Build the layout for a finished run (extents evaluated at *params*)."""
    return layout_for_program(program, params, align=align)
