"""Streaming trace sinks: the fusion protocol of the machine model.

Historically every machine component made its own pass over a fully
materialized trace, so a run's peak memory grew with its event count and
the trace was walked once per component. The streaming architecture fuses
the consumers instead: the executor flushes encoded events in bounded
NumPy chunks, and every component is a **sink** that folds each chunk into
persistent state. One pass, bounded memory — the trace itself never
exists as a whole object.

The protocol is deliberately tiny::

    class TraceSink(Protocol):
        def feed(self, chunk): ...      # fold one chunk into state
        def finish(self): ...           # return the accumulated result

Chunk types are stream-specific (duck-typed, per sink class):

- **encoded event chunks** — 1-D ``int64`` arrays straight from the
  executor (see :mod:`repro.exec.events` for the encodings). Consumed by
  :class:`~repro.machine.perfcounters.MemoryPipelineSink`, branch
  predictor sinks, and :class:`~repro.exec.tracestats.ArrayStatsSink`.
- **address chunks** — 1-D ``int64`` byte-address arrays. Consumed by
  :class:`~repro.machine.cache.CacheSink`,
  :class:`~repro.machine.hierarchy.HierarchySink`,
  :class:`~repro.machine.tlb.TLBSink` and
  :class:`~repro.machine.prefetch.PrefetchSink`.
- **access chunks** — ``(addresses, is_write)`` pairs. Consumed by
  :class:`~repro.machine.registers.RegisterFilterSink` and
  :class:`~repro.machine.writeback.WritebackSink`.

Sinks must be chunking-invariant: feeding one big chunk or many small ones
in the same order yields bit-identical results (the equivalence tests
exercise exactly this property).
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.exec.events import DEFAULT_CHUNK_EVENTS

__all__ = [
    "DEFAULT_CHUNK_EVENTS",
    "TraceSink",
    "MaterializeSink",
    "FanoutSink",
    "CountSink",
]


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can consume a trace chunk-by-chunk."""

    def feed(self, chunk: Any) -> Any:
        """Fold one chunk into internal state.

        May return a per-chunk value (e.g. a miss mask) for sinks that are
        chained inside a fused pipeline; standalone callers ignore it.
        """
        ...

    def finish(self) -> Any:
        """Return the accumulated result of the whole stream."""
        ...


class MaterializeSink:
    """Collects encoded event chunks back into one array.

    The debugging escape hatch of the streaming architecture
    (``trace_mode="materialize"``): everything downstream sees the exact
    full-trace array the pre-streaming executor produced.
    """

    def __init__(self, dtype=np.int64):
        self._dtype = dtype
        self._chunks: list[np.ndarray] = []

    def feed(self, chunk: np.ndarray) -> None:
        """Keep a copy of the chunk (the producer may reuse its buffer)."""
        self._chunks.append(np.asarray(chunk, dtype=self._dtype).copy())

    def finish(self) -> np.ndarray:
        """Concatenate every chunk in feed order."""
        if not self._chunks:
            return np.empty(0, dtype=self._dtype)
        return np.concatenate(self._chunks)


class FanoutSink:
    """Broadcasts each chunk to several sinks consuming the same stream."""

    def __init__(self, *sinks: TraceSink):
        self._sinks = sinks

    def feed(self, chunk: Any) -> None:
        """Feed every registered sink in order."""
        for sink in self._sinks:
            sink.feed(chunk)

    def finish(self) -> tuple[Any, ...]:
        """Finish every sink; results in registration order."""
        return tuple(sink.finish() for sink in self._sinks)


class CountSink:
    """Counts events without retaining them (cheap smoke-testing sink)."""

    def __init__(self) -> None:
        self.events = 0

    def feed(self, chunk: np.ndarray) -> None:
        """Add the chunk length."""
        self.events += len(chunk)

    def finish(self) -> int:
        """Total event count."""
        return self.events
