"""End-to-end perfex-style measurement of one traced run.

``measure`` is the single entry point the experiment harness uses: it takes
a traced :class:`~repro.exec.events.RunResult`, lays the arrays out in
memory, replays the memory trace through the cache hierarchy and the branch
trace through the predictor, and aggregates cycles with the cost model —
yielding every observable the paper's Figures 5–8 plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import MachineError
from repro.exec.events import Counters, RunResult
from repro.ir.program import Program
from repro.machine.branch import TwoBitPredictor
from repro.machine.configs import MachineConfig
from repro.machine.hierarchy import simulate_hierarchy
from repro.machine.layout import layout_for_run
from repro.machine.registers import filter_loads


@dataclass(frozen=True)
class PerfReport:
    """All per-run observables (the paper's perfex counters + cycles)."""

    program: str
    machine: str
    accesses: int
    register_load_hits: int
    l1_misses: int
    l2_misses: int
    branches_resolved: int
    branches_mispredicted: int
    graduated_instructions: int
    l1_miss_cycles: float
    l2_miss_cycles: float
    branch_resolve_cycles: float
    branch_mispredict_cycles: float
    total_cycles: float

    def as_dict(self) -> dict[str, float]:
        """Flat dict (stable order) for tables and JSON dumps."""
        return {
            "program": self.program,
            "machine": self.machine,
            "accesses": self.accesses,
            "register_load_hits": self.register_load_hits,
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "branches_resolved": self.branches_resolved,
            "branches_mispredicted": self.branches_mispredicted,
            "graduated_instructions": self.graduated_instructions,
            "l1_miss_cycles": self.l1_miss_cycles,
            "l2_miss_cycles": self.l2_miss_cycles,
            "branch_resolve_cycles": self.branch_resolve_cycles,
            "branch_mispredict_cycles": self.branch_mispredict_cycles,
            "total_cycles": self.total_cycles,
        }


def measure(
    result: RunResult,
    program: Program,
    params: Mapping[str, int],
    machine: MachineConfig,
    *,
    predictor=None,
) -> PerfReport:
    """Replay a traced run on *machine* and aggregate its cost report."""
    if result.trace is None:
        raise MachineError("measure() needs a traced run (trace=True)")
    layout = layout_for_run(result, program, params)
    aid, lin, rw = result.trace.memory_events()
    id_to_name = {v: k for k, v in result.array_ids.items()}
    addresses = layout.addresses(aid, lin, id_to_name)
    regs = filter_loads(addresses, rw, machine.registers)
    memory_stream = addresses[regs.to_memory]
    hier = simulate_hierarchy(machine.l1, machine.l2, memory_stream)

    sid, taken = result.trace.branch_events()
    predictor = predictor or TwoBitPredictor()
    branch = predictor.simulate(sid, taken)

    costs = machine.costs
    counters = result.counters
    # Register-elided loads never graduate as instructions.
    effective = Counters(**counters.as_dict())
    effective.loads = max(counters.loads - regs.load_hits, 0)
    return PerfReport(
        program=program.name,
        machine=machine.name,
        accesses=hier.accesses,
        register_load_hits=regs.load_hits,
        l1_misses=hier.l1_misses,
        l2_misses=hier.l2_misses,
        branches_resolved=branch.resolved,
        branches_mispredicted=branch.mispredicted,
        graduated_instructions=costs.graduated_instructions(effective),
        l1_miss_cycles=costs.l1_miss_cycle_total(hier.l1_misses),
        l2_miss_cycles=costs.l2_miss_cycle_total(hier.l2_misses),
        branch_resolve_cycles=branch.resolved * costs.branch_resolve_cycles,
        branch_mispredict_cycles=branch.mispredicted * costs.branch_mispredict_cycles,
        total_cycles=costs.total_cycles(
            effective, hier.l1_misses, hier.l2_misses, branch.mispredicted
        ),
    )
