"""End-to-end perfex-style measurement of one traced run.

Two equivalent entry points:

- :func:`measure` takes a fully-materialized traced
  :class:`~repro.exec.events.RunResult` (the debugging path);
- :func:`measure_streaming` executes the compiled program itself, driving
  the whole machine model in a single fused pass over bounded trace
  chunks — the trace never exists as one object.

Both lay the arrays out in memory, replay the memory trace through the
register filter and cache hierarchy and the branch trace through the
predictor, and aggregate cycles with the cost model — yielding every
observable the paper's Figures 5–8 plot. The two paths are bit-identical
(asserted by the equivalence test-suite): the streaming sinks are
chunking-invariant and the pipeline preserves program order.

Neither path cares which codegen tier produced the events: the block
tier's whole-trip event matrices arrive through the same chunk protocol
as the scalar tier's appends, in the same program order, so a
``PerfReport`` is independent of ``REPRO_EXEC_MODE`` (asserted per recipe
by the differential suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro import telemetry
from repro.errors import MachineError
from repro.exec.events import Counters, RunResult, decode_memory_events
from repro.ir.program import Program
from repro.machine.branch import BranchStats, TwoBitPredictor, sink_for_predictor
from repro.machine.configs import MachineConfig
from repro.machine.hierarchy import HierarchyResult, HierarchySink, simulate_hierarchy
from repro.machine.layout import MemoryLayout, layout_for_program, layout_for_run
from repro.machine.registers import RegisterFilterSink, filter_loads


@dataclass(frozen=True)
class PerfReport:
    """All per-run observables (the paper's perfex counters + cycles)."""

    program: str
    machine: str
    accesses: int
    register_load_hits: int
    l1_misses: int
    l2_misses: int
    branches_resolved: int
    branches_mispredicted: int
    graduated_instructions: int
    l1_miss_cycles: float
    l2_miss_cycles: float
    branch_resolve_cycles: float
    branch_mispredict_cycles: float
    total_cycles: float

    def as_dict(self) -> dict[str, float]:
        """Flat dict (stable order) for tables and JSON dumps."""
        return {
            "program": self.program,
            "machine": self.machine,
            "accesses": self.accesses,
            "register_load_hits": self.register_load_hits,
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "branches_resolved": self.branches_resolved,
            "branches_mispredicted": self.branches_mispredicted,
            "graduated_instructions": self.graduated_instructions,
            "l1_miss_cycles": self.l1_miss_cycles,
            "l2_miss_cycles": self.l2_miss_cycles,
            "branch_resolve_cycles": self.branch_resolve_cycles,
            "branch_mispredict_cycles": self.branch_mispredict_cycles,
            "total_cycles": self.total_cycles,
        }


class MemoryPipelineSink:
    """Fused memory-side pipeline over encoded memory-event chunks.

    Each chunk flows decode → address mapping → register filter →
    L1 → L2 in one pass, exactly mirroring the materialized path's
    whole-trace stages.
    """

    def __init__(
        self,
        machine: MachineConfig,
        layout: MemoryLayout,
        id_to_name: dict[int, str],
    ):
        self._layout = layout
        self._id_to_name = id_to_name
        self._registers = RegisterFilterSink(machine.registers)
        self._hierarchy = HierarchySink(machine.l1, machine.l2)

    def feed(self, codes: np.ndarray) -> None:
        """Push one encoded chunk through the whole memory pipeline."""
        aid, lin, rw = decode_memory_events(codes)
        addresses = self._layout.addresses(aid, lin, self._id_to_name)
        keep = self._registers.feed((addresses, rw))
        self._hierarchy.feed(addresses[keep])

    def finish(self) -> tuple[int, HierarchyResult]:
        """(register load hits, hierarchy result)."""
        regs = self._registers.finish()
        return regs.load_hits, self._hierarchy.finish()


def _assemble_report(
    program: Program,
    machine: MachineConfig,
    counters: Counters,
    load_hits: int,
    hier: HierarchyResult,
    branch: BranchStats,
) -> PerfReport:
    """Shared cost aggregation of the materialized and streaming paths."""
    costs = machine.costs
    # Register-elided loads never graduate as instructions.
    effective = Counters(**counters.as_dict())
    effective.loads = max(counters.loads - load_hits, 0)
    return PerfReport(
        program=program.name,
        machine=machine.name,
        accesses=hier.accesses,
        register_load_hits=load_hits,
        l1_misses=hier.l1_misses,
        l2_misses=hier.l2_misses,
        branches_resolved=branch.resolved,
        branches_mispredicted=branch.mispredicted,
        graduated_instructions=costs.graduated_instructions(effective),
        l1_miss_cycles=costs.l1_miss_cycle_total(hier.l1_misses),
        l2_miss_cycles=costs.l2_miss_cycle_total(hier.l2_misses),
        branch_resolve_cycles=branch.resolved * costs.branch_resolve_cycles,
        branch_mispredict_cycles=branch.mispredicted * costs.branch_mispredict_cycles,
        total_cycles=costs.total_cycles(
            effective, hier.l1_misses, hier.l2_misses, branch.mispredicted
        ),
    )


def measure(
    result: RunResult,
    program: Program,
    params: Mapping[str, int],
    machine: MachineConfig,
    *,
    predictor=None,
) -> PerfReport:
    """Replay a materialized traced run on *machine* (debugging path)."""
    if result.trace is None:
        raise MachineError("measure() needs a traced run (trace=True)")
    with telemetry.span(
        "machine.measure", program=program.name, machine=machine.name
    ):
        layout = layout_for_run(result, program, params)
        aid, lin, rw = result.trace.memory_events()
        id_to_name = {v: k for k, v in result.array_ids.items()}
        addresses = layout.addresses(aid, lin, id_to_name)
        regs = filter_loads(addresses, rw, machine.registers)
        memory_stream = addresses[regs.to_memory]
        hier = simulate_hierarchy(machine.l1, machine.l2, memory_stream)

        sid, taken = result.trace.branch_events()
        predictor = predictor or TwoBitPredictor()
        branch = predictor.simulate(sid, taken)
        return _assemble_report(
            program, machine, result.counters, regs.load_hits, hier, branch
        )


def measure_streaming(
    compiled,
    params: Mapping[str, int],
    machine: MachineConfig,
    inputs: Mapping[str, np.ndarray] | None = None,
    *,
    predictor=None,
    chunk_events: int | None = None,
) -> tuple[RunResult, PerfReport]:
    """Execute *compiled* and measure it in one fused streaming pass.

    *compiled* is a traced :class:`~repro.exec.compiled.CompiledProgram`;
    the returned :class:`~repro.exec.events.RunResult` has ``trace=None``
    (arrays, scalars and counters are intact). Peak trace memory is
    bounded by the chunk size regardless of the run's event count.
    """
    program = compiled.program
    with telemetry.span(
        "machine.measure_streaming", program=program.name, machine=machine.name
    ):
        layout = layout_for_program(program, params)
        id_to_name = {v: k for k, v in compiled.array_ids.items()}
        memory_sink = MemoryPipelineSink(machine, layout, id_to_name)
        branch_sink = sink_for_predictor(predictor or TwoBitPredictor())
        if telemetry.enabled():
            # Per-sink replay spans + chunk/event counters; the wrappers
            # preserve feed/finish semantics bit-exactly, so reports are
            # identical with telemetry on or off.
            from repro.telemetry.instrument import InstrumentedSink

            memory_sink = InstrumentedSink(memory_sink, "memory")
            branch_sink = InstrumentedSink(branch_sink, "branch")
        kwargs = {} if chunk_events is None else {"chunk_events": chunk_events}
        result = compiled.run_streaming(
            params, inputs, memory_sink=memory_sink, branch_sink=branch_sink, **kwargs
        )
        load_hits, hier = memory_sink.finish()
        branch = branch_sink.finish()
        report = _assemble_report(
            program, machine, result.counters, load_hits, hier, branch
        )
        return result, report
