"""Per-event cycle costs and cycle aggregation.

All constants are the paper's own published numbers for the SGI Octane2
(600 MHz MIPS R14000A, Sec. 4):

- typical L1 data-cache miss: 9.92 cycles;
- typical L2 data-cache miss: 162.55 cycles (so one avoided L2 miss saves
  162.55 − 9.92 = 152.63 cycles relative to an L1 miss that hits L2);
- resolving a conditional branch: 1 cycle;
- one branch misprediction: 5 cycles;
- graduated instructions: 0.25 cycles each. The R14000A is a 4-way
  superscalar, so sustained throughput is up to 4 instructions/cycle; the
  paper compares raw *event counts* (Figs. 6–8), which this model
  reproduces exactly, and only the end-to-end cycle aggregation behind the
  Fig. 5 speedups needs an IPC assumption. ``instruction_cycles = 1.0``
  (strictly scalar issue) is available for the sensitivity ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec.events import Counters


@dataclass(frozen=True)
class CostModel:
    """Cycle costs per event class."""

    l1_miss_cycles: float = 9.92
    l2_miss_cycles: float = 162.55
    branch_resolve_cycles: float = 1.0
    branch_mispredict_cycles: float = 5.0
    instruction_cycles: float = 0.25

    def graduated_instructions(self, counters: Counters) -> int:
        """Dynamic instruction count (Fig. 8's observable).

        loads + stores + fp ops + integer/address ops + resolved
        conditionals + one back-edge branch per loop iteration.
        """
        return (
            counters.loads
            + counters.stores
            + counters.flops
            + counters.intops
            + counters.branches
            + counters.loop_iters
        )

    def l1_miss_cycle_total(self, l1_misses: int) -> float:
        """Fig. 6 convention: every L1 miss charged the typical L1 cost."""
        return l1_misses * self.l1_miss_cycles

    def l2_miss_cycle_total(self, l2_misses: int) -> float:
        """Fig. 6 convention: every L2 miss charged the typical L2 cost."""
        return l2_misses * self.l2_miss_cycles

    def memory_stall_cycles(self, l1_misses: int, l2_misses: int) -> float:
        """Total stall: L1 misses that hit L2 pay 9.92; L2 misses pay 162.55."""
        l1_only = max(l1_misses - l2_misses, 0)
        return l1_only * self.l1_miss_cycles + l2_misses * self.l2_miss_cycles

    def branch_cycles(self, resolved: int, mispredicted: int) -> float:
        """Fig. 7's two series: resolution plus misprediction penalty.

        Branch resolution cycles are already part of the instruction stream
        (each resolved conditional graduates as one instruction); only the
        misprediction penalty is *additional* in the total-cycle model.
        """
        return (
            resolved * self.branch_resolve_cycles
            + mispredicted * self.branch_mispredict_cycles
        )

    def total_cycles(
        self, counters: Counters, l1_misses: int, l2_misses: int, mispredicted: int
    ) -> float:
        """End-to-end cycle estimate used for Fig. 5 speedups."""
        return (
            self.graduated_instructions(counters) * self.instruction_cycles
            + self.memory_stall_cycles(l1_misses, l2_misses)
            + mispredicted * self.branch_mispredict_cycles
        )
