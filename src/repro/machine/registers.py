"""Register-file model: load filtering ahead of the cache hierarchy.

The MIPSpro compiler keeps recently used array elements in the R14000A's
32 floating-point registers; a load whose value is already register-resident
never issues. This matters for exactly the effect the paper highlights for
Jacobi: with the time loop innermost, consecutive time steps touch the same
elements, and the compiler turns those reloads into register reuse ("we have
also reduced the number of array loads in the tiled code by an average of
40.9%").

The model is a fully-associative LRU window of *element* addresses:

- a load hits (is elided) iff its element is among the ``capacity`` most
  recently touched distinct elements;
- stores always reach memory (write-through towards the cache model) and
  make their element register-resident (store-to-load forwarding).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError

#: Element granularity (doubles).
ELEMENT_SHIFT = 3


@dataclass(frozen=True)
class RegisterFilterResult:
    """Outcome of filtering one access stream."""

    #: True where the access must go to memory.
    to_memory: np.ndarray
    #: Number of loads elided by register reuse.
    load_hits: int


def filter_loads(
    addresses: np.ndarray,
    is_write: np.ndarray,
    capacity: int = 32,
) -> RegisterFilterResult:
    """Filter the access stream through an LRU register window."""
    if capacity < 0:
        raise MachineError("register capacity must be non-negative")
    n = len(addresses)
    if capacity == 0 or n == 0:
        return RegisterFilterResult(np.ones(n, dtype=bool), 0)
    elements = (np.asarray(addresses) >> ELEMENT_SHIFT).tolist()
    writes = np.asarray(is_write).astype(bool).tolist()
    window: OrderedDict[int, None] = OrderedDict()
    keep = [True] * n
    hits = 0
    for pos, elem in enumerate(elements):
        resident = elem in window
        if resident:
            window.move_to_end(elem)
        else:
            window[elem] = None
            if len(window) > capacity:
                window.popitem(last=False)
        if resident and not writes[pos]:
            keep[pos] = False
            hits += 1
    return RegisterFilterResult(np.asarray(keep, dtype=bool), hits)
