"""Register-file model: load filtering ahead of the cache hierarchy.

The MIPSpro compiler keeps recently used array elements in the R14000A's
32 floating-point registers; a load whose value is already register-resident
never issues. This matters for exactly the effect the paper highlights for
Jacobi: with the time loop innermost, consecutive time steps touch the same
elements, and the compiler turns those reloads into register reuse ("we have
also reduced the number of array loads in the tiled code by an average of
40.9%").

The model is a fully-associative LRU window of *element* addresses:

- a load hits (is elided) iff its element is among the ``capacity`` most
  recently touched distinct elements;
- stores always reach memory (write-through towards the cache model) and
  make their element register-resident (store-to-load forwarding).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import MachineError

#: Element granularity (doubles).
ELEMENT_SHIFT = 3


@dataclass(frozen=True)
class RegisterFilterResult:
    """Outcome of filtering one access stream."""

    #: True where the access must go to memory; ``None`` for streaming
    #: replays, where the mask is consumed chunk-by-chunk instead.
    to_memory: np.ndarray | None
    #: Number of loads elided by register reuse.
    load_hits: int


class RegisterFilterSink:
    """Streaming LRU register window over ``(addresses, is_write)`` chunks.

    ``feed`` returns the chunk's keep mask (``True`` where the access goes
    to memory) so the fused pipeline can filter the address stream before
    the cache hierarchy; the window itself persists across chunks. A tiny
    window (32 registers) touched once per access keeps the plain-dict
    walk competitive with any vectorized formulation.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 0:
            raise MachineError("register capacity must be non-negative")
        self.capacity = capacity
        self._window: OrderedDict[int, None] = OrderedDict()
        self._hits = 0

    def feed(self, chunk: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        """Filter one chunk; returns its boolean to-memory mask."""
        addresses, is_write = chunk
        n = len(addresses)
        if self.capacity == 0 or n == 0:
            return np.ones(n, dtype=bool)
        elements = (np.asarray(addresses) >> ELEMENT_SHIFT).tolist()
        writes = np.asarray(is_write).astype(bool).tolist()
        window = self._window
        capacity = self.capacity
        keep = [True] * n
        hits = 0
        for pos, elem in enumerate(elements):
            resident = elem in window
            if resident:
                window.move_to_end(elem)
            else:
                window[elem] = None
                if len(window) > capacity:
                    window.popitem(last=False)
            if resident and not writes[pos]:
                keep[pos] = False
                hits += 1
        self._hits += hits
        return np.asarray(keep, dtype=bool)

    def finish(self) -> RegisterFilterResult:
        """Accumulated hit count (no global mask in streaming mode)."""
        return RegisterFilterResult(to_memory=None, load_hits=self._hits)


def filter_loads(
    addresses: np.ndarray,
    is_write: np.ndarray,
    capacity: int = 32,
) -> RegisterFilterResult:
    """Filter the access stream through an LRU register window."""
    sink = RegisterFilterSink(capacity)
    keep = sink.feed((addresses, is_write))
    return RegisterFilterResult(to_memory=keep, load_hits=sink.finish().load_hits)
