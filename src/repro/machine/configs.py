"""Machine configurations.

``octane2()`` is the paper's testbed geometry. ``octane2_scaled()`` shrinks
both caches by 16x/64x so that the miss-rate transitions the paper observes
at N = 200..2500 appear at N = 16..176 — problem sizes a pure-Python
trace simulation can sweep. The *ratios* that drive the figures are kept:

- 2-way associativity and LRU at both levels;
- L2/L1 capacity ratio large (64x paper, 16x scaled) so the L1/L2 miss
  regimes stay separated;
- the paper's 512x512-doubles-fill-L2 landmark becomes 64x64 for the
  scaled L2 (64*64*8 B = 32 KiB).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.machine.cache import CacheConfig
from repro.machine.costmodel import CostModel

#: Environment variable selecting the full-size machine for long sweeps.
FULL_MACHINE_ENV = "REPRO_FULL_MACHINE"


@dataclass(frozen=True)
class MachineConfig:
    """A complete simulated machine."""

    name: str
    l1: CacheConfig
    l2: CacheConfig
    costs: CostModel = field(default_factory=CostModel)
    #: Floating-point registers available for element reuse (the register
    #: filter ahead of L1); 0 disables the filter.
    registers: int = 32

    def l2_fill_order(self, element_bytes: int = 8) -> int:
        """Square array order n such that an n x n array fills L2 exactly
        (the paper's 512 landmark; 64 for the scaled machine)."""
        n = int((self.l2.size_bytes / element_bytes) ** 0.5)
        return n


def octane2() -> MachineConfig:
    """The paper's SGI Octane2: L1 32 KB/32 B/2-way, L2 2 MB/128 B/2-way."""
    return MachineConfig(
        name="octane2",
        l1=CacheConfig("L1", size_bytes=32 * 1024, line_bytes=32, assoc=2),
        l2=CacheConfig("L2", size_bytes=2 * 1024 * 1024, line_bytes=128, assoc=2),
    )


def octane2_scaled() -> MachineConfig:
    """Scaled-down Octane2 for tractable pure-Python sweeps.

    L1 2 KB/32 B/2-way (16x smaller), L2 32 KB/64 B/2-way (64x smaller).
    Cycle costs are unchanged — they are properties of the pipeline, not of
    the cache sizes.
    """
    return MachineConfig(
        name="octane2-scaled",
        l1=CacheConfig("L1", size_bytes=2 * 1024, line_bytes=32, assoc=2),
        l2=CacheConfig("L2", size_bytes=32 * 1024, line_bytes=64, assoc=2),
    )


def default_machine() -> MachineConfig:
    """Scaled machine unless ``REPRO_FULL_MACHINE=1`` is set."""
    if os.environ.get(FULL_MACHINE_ENV, "") == "1":
        return octane2()
    return octane2_scaled()
