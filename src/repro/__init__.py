"""repro — reproduction of Xue, Huang & Guo, "Enabling Loop Fusion and
Tiling for Cache Performance by Fixing Fusion-Preventing Data Dependences"
(ICPP 2005).

Layer map (bottom-up):

- :mod:`repro.poly` — exact integer polyhedra (FM elimination, integer
  feasibility, parametric lexmin/max): the isl/Omega/PIP substitute;
- :mod:`repro.ir` — FORTRAN-like loop-nest IR with a builder eDSL,
  pretty-printer and affine bridges;
- :mod:`repro.frontend` — a mini-Fortran text frontend for the IR;
- :mod:`repro.deps` — fusion-preventing dependence sets (paper Eq. 5–6);
- :mod:`repro.trans` — fusion, FixDeps (ElimWW_WR + ElimRW), tiling,
  skewing, peeling, scalar expansion, cleanups;
- :mod:`repro.exec` — interpreter and trace-emitting compiled executor;
- :mod:`repro.machine` — the simulated SGI Octane2 (caches, branch
  predictor, register window, perfex-style cost model);
- :mod:`repro.tilesize` — LRW and PDAT tile-size selection;
- :mod:`repro.kernels` — LU/QR/Cholesky/Jacobi in all paper variants;
- :mod:`repro.experiments` — the figure/table regeneration harness.

Quickstart::

    from repro.kernels import get_kernel
    from repro.exec import run_compiled

    jacobi = get_kernel("jacobi")
    program = jacobi.tiled(8)
    result = run_compiled(program, {"N": 64, "M": 10},
                          jacobi.make_inputs({"N": 64, "M": 10}))
"""

__version__ = "1.0.0"

from repro.errors import ReproError


def optimize_program(*args, **kwargs):
    """Top-level driver; see :func:`repro.pipeline.optimize_program`."""
    from repro.pipeline import optimize_program as _impl

    return _impl(*args, **kwargs)


__all__ = ["ReproError", "optimize_program", "__version__"]
