"""Bridging IR expressions and the polyhedral layer.

Loop bounds, array subscripts and guard conditions must be affine in the
loop variables and parameters for the dependence analysis to be exact;
these helpers recognise the affine fragment and convert in both directions.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import NotAffineError
from repro.ir.expr import (
    BinOp,
    Cmp,
    Const,
    Expr,
    LogicalAnd,
    UnOp,
    VarRef,
)
from repro.poly.constraint import Constraint, Kind, eq0, ge0
from repro.poly.linexpr import LinExpr


def expr_to_linexpr(expr: Expr) -> LinExpr:
    """Convert an affine IR expression to a :class:`LinExpr`.

    Raises :class:`NotAffineError` for anything outside the affine fragment
    (array references, intrinsics, products of variables, float constants).
    """
    if isinstance(expr, Const):
        if isinstance(expr.value, float):
            raise NotAffineError(f"float constant {expr.value} in affine context")
        return LinExpr.const(expr.value)
    if isinstance(expr, VarRef):
        return LinExpr.var(expr.name)
    if isinstance(expr, UnOp):
        return -expr_to_linexpr(expr.operand)
    if isinstance(expr, BinOp):
        if expr.op == "+":
            return expr_to_linexpr(expr.lhs) + expr_to_linexpr(expr.rhs)
        if expr.op == "-":
            return expr_to_linexpr(expr.lhs) - expr_to_linexpr(expr.rhs)
        if expr.op == "*":
            lhs, rhs = expr_to_linexpr(expr.lhs), expr_to_linexpr(expr.rhs)
            if lhs.is_constant():
                return rhs * lhs.constant
            if rhs.is_constant():
                return lhs * rhs.constant
            raise NotAffineError(f"non-affine product {expr}")
        if expr.op == "/":
            lhs, rhs = expr_to_linexpr(expr.lhs), expr_to_linexpr(expr.rhs)
            if rhs.is_constant() and rhs.constant != 0:
                return lhs / rhs.constant
            raise NotAffineError(f"non-affine division {expr}")
    raise NotAffineError(f"non-affine expression {expr}")


def is_affine(expr: Expr) -> bool:
    """True iff :func:`expr_to_linexpr` would succeed."""
    try:
        expr_to_linexpr(expr)
        return True
    except NotAffineError:
        return False


def linexpr_to_expr(lin: LinExpr) -> Expr:
    """Convert a :class:`LinExpr` with integer coefficients back to IR.

    Builds a readable sum: positive terms first, then subtractions.
    """
    if not lin.is_integral():
        raise NotAffineError(f"cannot emit fractional coefficients: {lin}")

    def term(var: str, coef: Fraction) -> Expr:
        mag = abs(int(coef))
        return VarRef(var) if mag == 1 else BinOp("*", Const(mag), VarRef(var))

    pos = [(v, c) for v, c in sorted(lin.terms.items()) if c > 0]
    neg = [(v, c) for v, c in sorted(lin.terms.items()) if c < 0]
    const = int(lin.constant)

    result: Expr | None = None
    for v, c in pos:
        t = term(v, c)
        result = t if result is None else BinOp("+", result, t)
    if const > 0 or (result is None and const == 0 and not neg):
        c_node = Const(const)
        result = c_node if result is None else BinOp("+", result, c_node)
    for v, c in neg:
        t = term(v, c)
        result = UnOp("-", t) if result is None else BinOp("-", result, t)
    if const < 0:
        result = Const(const) if result is None else BinOp("-", result, Const(-const))
    assert result is not None
    return result


def cond_to_constraints(cond: Expr) -> list[Constraint]:
    """Convert an affine boolean condition to conjunctive constraints.

    Handles comparisons and conjunctions. ``!=`` and disjunctions are not
    conjunctive-affine and raise :class:`NotAffineError`.
    """
    if isinstance(cond, LogicalAnd):
        out: list[Constraint] = []
        for a in cond.args:
            out.extend(cond_to_constraints(a))
        return out
    if isinstance(cond, Cmp):
        lhs = expr_to_linexpr(cond.lhs)
        rhs = expr_to_linexpr(cond.rhs)
        if cond.op == "==":
            return [eq0(lhs - rhs)]
        if cond.op == "<=":
            return [ge0(rhs - lhs)]
        if cond.op == "<":
            return [ge0(rhs - lhs - 1)]
        if cond.op == ">=":
            return [ge0(lhs - rhs)]
        if cond.op == ">":
            return [ge0(lhs - rhs - 1)]
        raise NotAffineError(f"disjunctive comparison {cond} is not conjunctive-affine")
    raise NotAffineError(f"non-affine condition {cond}")


def is_affine_condition(cond: Expr) -> bool:
    """True iff the condition is conjunctive-affine."""
    try:
        cond_to_constraints(cond)
        return True
    except NotAffineError:
        return False


def constraint_to_cond(constraint: Constraint) -> Expr:
    """Render a constraint as a readable IR comparison.

    Negative-coefficient terms move to the other side so the output reads
    like ``i >= k+1`` rather than ``i - k - 1 >= 0``.
    """
    expr = constraint.expr
    pos_terms = {v: c for v, c in expr.terms.items() if c > 0}
    neg_terms = {v: -c for v, c in expr.terms.items() if c < 0}
    const = expr.constant
    lhs = LinExpr(pos_terms, const if const > 0 else 0)
    rhs = LinExpr(neg_terms, -const if const < 0 else 0)
    op = "==" if constraint.kind is Kind.EQ else ">="
    return Cmp(op, linexpr_to_expr(lhs), linexpr_to_expr(rhs))


def constraints_to_cond(constraints: list[Constraint]) -> Expr | None:
    """Conjunction of constraints as an IR condition (None when empty)."""
    conds = [constraint_to_cond(c) for c in constraints]
    if not conds:
        return None
    if len(conds) == 1:
        return conds[0]
    return LogicalAnd(conds)
