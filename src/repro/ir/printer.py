"""FORTRAN-flavoured pretty printer for IR.

The output mirrors the paper's listings (``do``, ``.EQ.``, 1-based array
subscripts) so transformed programs can be compared to Figures 3 and 4 by
eye and in golden tests.
"""

from __future__ import annotations

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Select,
    UnOp,
    VarRef,
)
from repro.ir.stmt import Assign, If, Loop, Stmt

_CMP_NAMES = {
    "==": ".EQ.",
    "!=": ".NE.",
    "<": ".LT.",
    "<=": ".LE.",
    ">": ".GT.",
    ">=": ".GE.",
}

# Precedence for parenthesisation (higher binds tighter).
_PREC = {"or": 1, "and": 2, "not": 3, "cmp": 4, "+": 5, "-": 5, "*": 6, "/": 6, "neg": 7}


def _const_str(value: int | float) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(value)


def expr_str(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression, inserting parentheses only where needed."""
    if isinstance(expr, Const):
        text = _const_str(expr.value)
        return f"({text})" if text.startswith("-") and parent_prec > 5 else text
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ArrayRef):
        inner = ",".join(expr_str(e) for e in expr.indices)
        return f"{expr.name}({inner})"
    if isinstance(expr, BinOp):
        prec = _PREC[expr.op]
        lhs = expr_str(expr.lhs, prec)
        # Right operand of - and / needs the stricter context.
        rhs = expr_str(expr.rhs, prec + (1 if expr.op in "-/" else 0))
        text = f"{lhs}{expr.op}{rhs}" if prec >= 6 else f"{lhs} {expr.op} {rhs}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, UnOp):
        text = f"-{expr_str(expr.operand, _PREC['neg'])}"
        return f"({text})" if parent_prec > _PREC["neg"] else text
    if isinstance(expr, Call):
        inner = ", ".join(expr_str(a) for a in expr.args)
        return f"{expr.func}({inner})"
    if isinstance(expr, Cmp):
        prec = _PREC["cmp"]
        text = (
            f"{expr_str(expr.lhs, prec)} {_CMP_NAMES[expr.op]} {expr_str(expr.rhs, prec)}"
        )
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, LogicalAnd):
        prec = _PREC["and"]
        text = " .AND. ".join(expr_str(a, prec + 1) for a in expr.args)
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, LogicalOr):
        prec = _PREC["or"]
        text = " .OR. ".join(expr_str(a, prec + 1) for a in expr.args)
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, LogicalNot):
        return f".NOT. {expr_str(expr.arg, _PREC['not'])}"
    if isinstance(expr, Select):
        return (
            f"merge({expr_str(expr.if_true)}, {expr_str(expr.if_false)}, "
            f"{expr_str(expr.cond)})"
        )
    raise TypeError(f"unknown Expr node {type(expr).__name__}")


def _emit(stmt: Stmt, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    if isinstance(stmt, Assign):
        lines.append(f"{pad}{expr_str(stmt.target)} = {expr_str(stmt.value)}")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if ({expr_str(stmt.cond)}) then")
        for s in stmt.then:
            _emit(s, lines, depth + 1)
        if stmt.orelse:
            lines.append(f"{pad}else")
            for s in stmt.orelse:
                _emit(s, lines, depth + 1)
        lines.append(f"{pad}end if")
    elif isinstance(stmt, Loop):
        head = f"{pad}do {stmt.var} = {expr_str(stmt.lower)}, {expr_str(stmt.upper)}"
        if not stmt.has_unit_step:
            head += f", {expr_str(stmt.step)}"
        lines.append(head)
        for s in stmt.body:
            _emit(s, lines, depth + 1)
        lines.append(f"{pad}end do")
    else:
        raise TypeError(f"unknown Stmt node {type(stmt).__name__}")


def pretty_stmt(stmt: Stmt) -> str:
    """Render one statement tree."""
    lines: list[str] = []
    _emit(stmt, lines, 0)
    return "\n".join(lines)


def pretty(program) -> str:
    """Render a whole program with declarations."""
    lines = [f"program {program.name}"]
    if program.params:
        lines.append(f"  ! parameters: {', '.join(program.params)}")
    for a in program.arrays:
        dims = ", ".join(expr_str(e) for e in a.extents)
        lines.append(f"  real*8 {a.name}({dims})")
    for s in program.scalars:
        lines.append(f"  real*8 {s.name}")
    for stmt in program.body:
        _emit(stmt, lines, 1)
    lines.append("end program")
    return "\n".join(lines)
