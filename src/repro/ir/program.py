"""Programs: declarations plus a statement body.

A :class:`Program` corresponds to one of the paper's kernels: symbolic
size parameters (``N``, ``M``), array declarations with affine extents,
scalar declarations, and a body which is a sequence of loop nests (and
possibly straight-line epilogue code, e.g. LU's peeled last iteration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import IRError
from repro.ir.expr import ArrayRef, Expr, VarRef, as_expr, walk_expr
from repro.ir.stmt import Loop, Stmt, stmt_expressions, walk_stmts

#: Supported element dtypes (numpy codes).
DTYPES = ("f8", "f4", "i8")


@dataclass(frozen=True)
class ArrayDecl:
    """Array with 1-based indexing and affine extents in the parameters.

    ``extents[d]`` is the inclusive upper index bound of dimension ``d``
    (Fortran ``A(N, N)`` style). Storage is column-major (first index
    fastest), matching the paper's Fortran kernels.
    """

    name: str
    extents: tuple[Expr, ...]
    dtype: str = "f8"

    def __post_init__(self) -> None:
        if not self.extents:
            raise IRError(f"array {self.name} needs at least one extent")
        if self.dtype not in DTYPES:
            raise IRError(f"array {self.name}: unsupported dtype {self.dtype}")
        object.__setattr__(self, "extents", tuple(as_expr(e) for e in self.extents))

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.extents)


@dataclass(frozen=True)
class ScalarDecl:
    """A scalar variable (paper: ``temp``, ``m``, ``norm`` ...)."""

    name: str
    dtype: str = "f8"

    def __post_init__(self) -> None:
        if self.dtype not in DTYPES:
            raise IRError(f"scalar {self.name}: unsupported dtype {self.dtype}")


@dataclass(frozen=True)
class Program:
    """A whole kernel.

    ``outputs`` names the arrays/scalars whose final values define the
    program's observable behaviour (Theorem 2's "input/output behaviour").
    """

    name: str
    params: tuple[str, ...]
    arrays: tuple[ArrayDecl, ...]
    scalars: tuple[ScalarDecl, ...] = ()
    body: tuple[Stmt, ...] = ()
    outputs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "scalars", tuple(self.scalars))
        object.__setattr__(self, "body", tuple(self.body))
        outputs = tuple(self.outputs) or tuple(a.name for a in self.arrays)
        object.__setattr__(self, "outputs", outputs)
        self._check()

    # -- lookups ---------------------------------------------------------
    def array(self, name: str) -> ArrayDecl:
        """Declaration of array *name*."""
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"no array {name!r} in program {self.name}")

    def has_array(self, name: str) -> bool:
        """True iff *name* is a declared array."""
        return any(a.name == name for a in self.arrays)

    def scalar(self, name: str) -> ScalarDecl:
        """Declaration of scalar *name*."""
        for s in self.scalars:
            if s.name == name:
                return s
        raise KeyError(f"no scalar {name!r} in program {self.name}")

    def has_scalar(self, name: str) -> bool:
        """True iff *name* is a declared scalar."""
        return any(s.name == name for s in self.scalars)

    def loop_variables(self) -> frozenset[str]:
        """All loop variable names used anywhere in the body."""
        return frozenset(
            s.var for s in walk_stmts(self.body) if isinstance(s, Loop)
        )

    def all_names(self) -> frozenset[str]:
        """Every name in scope: params, arrays, scalars, loop variables."""
        return (
            frozenset(self.params)
            | frozenset(a.name for a in self.arrays)
            | frozenset(s.name for s in self.scalars)
            | self.loop_variables()
        )

    # -- rebuilding ---------------------------------------------------------
    def with_body(self, body: Iterable[Stmt]) -> "Program":
        """Copy with a replaced body."""
        return Program(
            self.name, self.params, self.arrays, self.scalars, tuple(body), self.outputs
        )

    def with_name(self, name: str) -> "Program":
        """Copy under a new name."""
        return Program(
            name, self.params, self.arrays, self.scalars, self.body, self.outputs
        )

    def adding_arrays(self, extra: Iterable[ArrayDecl]) -> "Program":
        """Copy with extra array declarations (for copy arrays ``H``)."""
        return Program(
            self.name,
            self.params,
            self.arrays + tuple(extra),
            self.scalars,
            self.body,
            self.outputs,
        )

    def adding_scalars(self, extra: Iterable[ScalarDecl]) -> "Program":
        """Copy with extra scalar declarations."""
        return Program(
            self.name,
            self.params,
            self.arrays,
            self.scalars + tuple(extra),
            self.body,
            self.outputs,
        )

    # -- validation ----------------------------------------------------------
    def _check(self) -> None:
        names: set[str] = set()
        for group in (self.params, [a.name for a in self.arrays], [s.name for s in self.scalars]):
            for n in group:
                if n in names:
                    raise IRError(f"duplicate declaration of {n!r} in {self.name}")
                names.add(n)
        array_ranks = {a.name: a.rank for a in self.arrays}
        declared = names | self.loop_variables()
        for out in self.outputs:
            if out not in names:
                raise IRError(f"output {out!r} is not a declared array/scalar")
        for stmt in walk_stmts(self.body):
            for top in stmt_expressions(stmt):
                for node in walk_expr(top):
                    if isinstance(node, ArrayRef):
                        rank = array_ranks.get(node.name)
                        if rank is None:
                            raise IRError(
                                f"{self.name}: reference to undeclared array {node.name!r}"
                            )
                        if len(node.indices) != rank:
                            raise IRError(
                                f"{self.name}: {node.name} has rank {rank}, "
                                f"indexed with {len(node.indices)} subscripts"
                            )
                    elif isinstance(node, VarRef) and node.name not in declared:
                        raise IRError(
                            f"{self.name}: reference to undeclared name {node.name!r}"
                        )

    def __str__(self) -> str:
        from repro.ir.printer import pretty

        return pretty(self)
