"""Expression nodes.

Expressions are immutable trees. Structural equality (``__eq__``/``__hash__``)
lets passes memoise and compare rewrites; *arithmetic* operator overloads are
provided for convenient construction, while *comparisons* are built with the
explicit constructors in :mod:`repro.ir.builder` (``ceq``, ``clt``, ...) so
that ``==`` can keep its structural meaning.
"""

from __future__ import annotations

from typing import Iterable, Union

Number = Union[int, float]

#: Arithmetic binary operators.
ARITH_OPS = ("+", "-", "*", "/")
#: Comparison operators (Fortran-style semantics, printed as .EQ. etc.).
CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
#: Intrinsic functions the interpreter understands.
INTRINSICS = ("sqrt", "abs", "min", "max")


class Expr:
    """Base class for expression nodes."""

    __slots__ = ("_hash",)

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions."""
        return ()

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash((type(self).__name__, self._key()))
            object.__setattr__(self, "_hash", h)
        return h

    # -- construction sugar (arithmetic only) --------------------------------
    def __add__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("*", as_expr(other), self)

    def __truediv__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("/", self, as_expr(other))

    def __rtruediv__(self, other: "Expr | Number") -> "BinOp":
        return BinOp("/", as_expr(other), self)

    def __neg__(self) -> "UnOp":
        return UnOp("-", self)

    def __str__(self) -> str:
        from repro.ir.printer import expr_str

        return expr_str(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


class Const(Expr):
    """Numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: Number):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"Const value must be int or float, got {value!r}")
        object.__setattr__(self, "value", value)

    def _key(self) -> tuple:
        return (self.value, type(self.value).__name__)

    def __setattr__(self, *a: object) -> None:  # immutability
        raise AttributeError("Expr nodes are immutable")


class VarRef(Expr):
    """Reference to a scalar variable, loop variable or parameter."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError(f"VarRef name must be non-empty str, got {name!r}")
        object.__setattr__(self, "name", name)

    def _key(self) -> tuple:
        return (self.name,)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Expr nodes are immutable")


class ArrayRef(Expr):
    """``A(e1, ..., ek)`` — 1-based Fortran-style array element."""

    __slots__ = ("name", "indices")

    def __init__(self, name: str, indices: Iterable[Expr]):
        idx = tuple(as_expr(e) for e in indices)
        if not idx:
            raise TypeError("ArrayRef needs at least one index")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "indices", idx)

    def children(self) -> tuple[Expr, ...]:
        return self.indices

    def _key(self) -> tuple:
        return (self.name, self.indices)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Expr nodes are immutable")


class BinOp(Expr):
    """Arithmetic binary operation."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in ARITH_OPS:
            raise ValueError(f"unknown arithmetic op {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "lhs", as_expr(lhs))
        object.__setattr__(self, "rhs", as_expr(rhs))

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def _key(self) -> tuple:
        return (self.op, self.lhs, self.rhs)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Expr nodes are immutable")


class UnOp(Expr):
    """Unary arithmetic operation (negation)."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        if op != "-":
            raise ValueError(f"unknown unary op {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "operand", as_expr(operand))

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def _key(self) -> tuple:
        return (self.op, self.operand)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Expr nodes are immutable")


class Call(Expr):
    """Intrinsic function call (sqrt, abs, min, max)."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Iterable[Expr]):
        if func not in INTRINSICS:
            raise ValueError(f"unknown intrinsic {func!r}")
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(as_expr(a) for a in args))

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def _key(self) -> tuple:
        return (self.func, self.args)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Expr nodes are immutable")


class Select(Expr):
    """``cond ? if_true : if_false`` — expression-level conditional.

    Produced by ``ElimRW`` (paper Fig. 2, line 48) when a read must be
    redirected to a copy array only at iterations where the anti-dependence
    source has already been overwritten.
    """

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond: Expr, if_true: Expr, if_false: Expr):
        object.__setattr__(self, "cond", as_expr(cond))
        object.__setattr__(self, "if_true", as_expr(if_true))
        object.__setattr__(self, "if_false", as_expr(if_false))

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.if_true, self.if_false)

    def _key(self) -> tuple:
        return (self.cond, self.if_true, self.if_false)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Expr nodes are immutable")


class Cmp(Expr):
    """Comparison producing a boolean."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr):
        if op not in CMP_OPS:
            raise ValueError(f"unknown comparison op {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "lhs", as_expr(lhs))
        object.__setattr__(self, "rhs", as_expr(rhs))

    def children(self) -> tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def _key(self) -> tuple:
        return (self.op, self.lhs, self.rhs)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Expr nodes are immutable")


class LogicalAnd(Expr):
    """Conjunction of boolean expressions."""

    __slots__ = ("args",)

    def __init__(self, args: Iterable[Expr]):
        flat: list[Expr] = []
        for a in args:
            if isinstance(a, LogicalAnd):
                flat.extend(a.args)
            else:
                flat.append(as_expr(a))
        if not flat:
            raise TypeError("LogicalAnd needs at least one operand")
        object.__setattr__(self, "args", tuple(flat))

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def _key(self) -> tuple:
        return (self.args,)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Expr nodes are immutable")


class LogicalOr(Expr):
    """Disjunction of boolean expressions."""

    __slots__ = ("args",)

    def __init__(self, args: Iterable[Expr]):
        flat: list[Expr] = []
        for a in args:
            if isinstance(a, LogicalOr):
                flat.extend(a.args)
            else:
                flat.append(as_expr(a))
        if not flat:
            raise TypeError("LogicalOr needs at least one operand")
        object.__setattr__(self, "args", tuple(flat))

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def _key(self) -> tuple:
        return (self.args,)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Expr nodes are immutable")


class LogicalNot(Expr):
    """Boolean negation."""

    __slots__ = ("arg",)

    def __init__(self, arg: Expr):
        object.__setattr__(self, "arg", as_expr(arg))

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def _key(self) -> tuple:
        return (self.arg,)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Expr nodes are immutable")


def as_expr(value: Expr | Number) -> Expr:
    """Coerce Python numbers to :class:`Const`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not IR values")
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to Expr")


def map_expr(expr: Expr, fn) -> Expr:
    """Bottom-up rebuild: apply *fn* to every node after mapping children.

    *fn* receives a node whose children are already transformed and returns a
    replacement node (or the same node).
    """
    if isinstance(expr, (Const, VarRef)):
        return fn(expr)
    if isinstance(expr, ArrayRef):
        return fn(ArrayRef(expr.name, [map_expr(e, fn) for e in expr.indices]))
    if isinstance(expr, BinOp):
        return fn(BinOp(expr.op, map_expr(expr.lhs, fn), map_expr(expr.rhs, fn)))
    if isinstance(expr, UnOp):
        return fn(UnOp(expr.op, map_expr(expr.operand, fn)))
    if isinstance(expr, Call):
        return fn(Call(expr.func, [map_expr(a, fn) for a in expr.args]))
    if isinstance(expr, Select):
        return fn(
            Select(
                map_expr(expr.cond, fn),
                map_expr(expr.if_true, fn),
                map_expr(expr.if_false, fn),
            )
        )
    if isinstance(expr, Cmp):
        return fn(Cmp(expr.op, map_expr(expr.lhs, fn), map_expr(expr.rhs, fn)))
    if isinstance(expr, LogicalAnd):
        return fn(LogicalAnd([map_expr(a, fn) for a in expr.args]))
    if isinstance(expr, LogicalOr):
        return fn(LogicalOr([map_expr(a, fn) for a in expr.args]))
    if isinstance(expr, LogicalNot):
        return fn(LogicalNot(map_expr(expr.arg, fn)))
    raise TypeError(f"unknown Expr node {type(expr).__name__}")


def walk_expr(expr: Expr):
    """Yield every node of the tree, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk_expr(child)


def free_names(expr: Expr) -> frozenset[str]:
    """Scalar/loop/parameter names referenced (array names excluded)."""
    names = set()
    for node in walk_expr(expr):
        if isinstance(node, VarRef):
            names.add(node.name)
    return frozenset(names)


def array_names(expr: Expr) -> frozenset[str]:
    """Array names referenced anywhere in the tree."""
    names = set()
    for node in walk_expr(expr):
        if isinstance(node, ArrayRef):
            names.add(node.name)
    return frozenset(names)
