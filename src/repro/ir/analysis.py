"""Structural analyses over IR: perfect nests, iteration domains, numbering.

These are the building blocks the paper's algorithm assumes: recognising
perfect loop nests (Eq. 1), turning loop bounds into polyhedral iteration
spaces, and numbering assignments for the ``alpha(R')`` component of the
anti-dependence sets (Eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import IRError, NotAffineError
from repro.ir.affine import cond_to_constraints, expr_to_linexpr
from repro.ir.expr import Expr
from repro.ir.stmt import Assign, If, Loop, Stmt, walk_stmts
from repro.poly.constraint import Constraint, ge0
from repro.poly.polyhedron import Polyhedron


@dataclass(frozen=True)
class PerfectNest:
    """A perfect loop nest: loops outermost-in, plus the innermost body.

    A bare statement (no loops) is a depth-0 nest; the paper's embedding
    machinery treats straight-line code between loops this way after code
    sinking.
    """

    loops: tuple[Loop, ...]
    body: tuple[Stmt, ...]

    @property
    def depth(self) -> int:
        """Number of loops."""
        return len(self.loops)

    @property
    def loop_vars(self) -> tuple[str, ...]:
        """Loop variable names, outermost first."""
        return tuple(loop.var for loop in self.loops)


def as_perfect_nest(stmt: Stmt) -> PerfectNest:
    """View *stmt* as a perfect nest, descending while the body is a single
    loop. A non-loop statement yields a depth-0 nest."""
    loops: list[Loop] = []
    current: tuple[Stmt, ...] = (stmt,)
    while len(current) == 1 and isinstance(current[0], Loop):
        inner = current[0]
        if not inner.has_unit_step:
            break
        loops.append(inner)
        current = inner.body
    return PerfectNest(tuple(loops), current)


def is_perfect_loop_nest(stmt: Stmt) -> bool:
    """True iff *stmt* is a loop whose nesting is perfect all the way in
    (each level is a single loop until a loop-free body)."""
    nest = as_perfect_nest(stmt)
    if nest.depth == 0:
        return False
    return not any(isinstance(s, Loop) for s in walk_stmts(nest.body))


def _bound_parts(expr: Expr, *, lower: bool) -> list:
    """Affine pieces of a loop bound: ``max(..)`` in a lower bound and
    ``min(..)`` in an upper bound decompose into several affine bounds."""
    from repro.ir.expr import Call

    if isinstance(expr, Call) and expr.func == ("max" if lower else "min"):
        out = []
        for a in expr.args:
            out.extend(_bound_parts(a, lower=lower))
        return out
    return [expr_to_linexpr(expr)]


def loop_bound_constraints(loop: Loop) -> list[Constraint]:
    """``lower <= var <= upper`` as polyhedral constraints (unit step only).

    Bounds built from ``max`` (lower) / ``min`` (upper) intrinsics — as the
    tiling and unimodular code generators emit — decompose exactly.
    """
    if not loop.has_unit_step:
        raise IRError(f"loop over {loop.var} has non-unit step; not a domain loop")
    var = expr_to_linexpr_var(loop.var)
    out = [ge0(var - lo) for lo in _bound_parts(loop.lower, lower=True)]
    out.extend(ge0(hi - var) for hi in _bound_parts(loop.upper, lower=False))
    return out


def expr_to_linexpr_var(name: str):
    """LinExpr for a single variable (tiny convenience)."""
    from repro.poly.linexpr import LinExpr

    return LinExpr.var(name)


def iteration_domain(loops: Iterable[Loop]) -> Polyhedron:
    """Polyhedron over the loop variables of *loops* (outermost first)."""
    loops = list(loops)
    constraints: list[Constraint] = []
    for loop in loops:
        constraints.extend(loop_bound_constraints(loop))
    return Polyhedron(tuple(l.var for l in loops), constraints)


@dataclass(frozen=True)
class GuardedStmt:
    """A statement with the conjunction of enclosing guard info.

    ``affine`` holds the constraints of enclosing affine guards; ``opaque``
    the conditions that were not conjunctive-affine (kept as IR expressions;
    the dependence analysis treats statements under opaque guards as
    may-execute).
    """

    stmt: Stmt
    affine: tuple[Constraint, ...]
    opaque: tuple[Expr, ...]


def flatten_guards(stmts: Iterable[Stmt]) -> list[GuardedStmt]:
    """Flatten nested Ifs into guarded assignments/loops.

    Loops are *not* entered (they appear as guarded Loop statements);
    ``else`` branches contribute the guard's opaque negation.
    """
    out: list[GuardedStmt] = []

    def rec(body: Iterable[Stmt], affine: list[Constraint], opaque: list[Expr]) -> None:
        for s in body:
            if isinstance(s, If):
                try:
                    cs = cond_to_constraints(s.cond)
                    rec(s.then, affine + cs, opaque)
                    if s.orelse:
                        # Negation of a conjunction is disjunctive: opaque.
                        rec(s.orelse, affine, opaque + [s.cond])
                except NotAffineError:
                    rec(s.then, affine, opaque + [s.cond])
                    if s.orelse:
                        rec(s.orelse, affine, opaque + [s.cond])
            else:
                out.append(GuardedStmt(s, tuple(affine), tuple(opaque)))

    rec(stmts, [], [])
    return out


def assignments_in_order(stmts: Iterable[Stmt]) -> list[Assign]:
    """All assignments in textual (pre-order) execution order.

    The position index is the paper's ``alpha(R')``: it orders different
    writes executed at the same iteration.
    """
    return [s for s in walk_stmts(stmts) if isinstance(s, Assign)]


def written_names(stmts: Iterable[Stmt]) -> frozenset[str]:
    """Names (arrays and scalars) assigned anywhere in the forest."""
    from repro.ir.expr import ArrayRef, VarRef

    names: set[str] = set()
    for s in walk_stmts(stmts):
        if isinstance(s, Assign):
            target = s.target
            if isinstance(target, ArrayRef):
                names.add(target.name)
            elif isinstance(target, VarRef):
                names.add(target.name)
    return frozenset(names)


def loops_on_path(stmts: Iterable[Stmt], target: Stmt) -> list[Loop] | None:
    """Loops enclosing the first occurrence of *target*, outermost first.

    Returns None when *target* does not occur.
    """

    def rec(body: Iterable[Stmt], stack: list[Loop]) -> list[Loop] | None:
        for s in body:
            if s is target:
                return list(stack)
            if isinstance(s, Loop):
                stack.append(s)
                found = rec(s.body, stack)
                stack.pop()
                if found is not None:
                    return found
            elif isinstance(s, If):
                found = rec(s.then, stack)
                if found is None:
                    found = rec(s.orelse, stack)
                if found is not None:
                    return found
        return None

    return rec(stmts, [])
