"""JSON (de)serialisation of IR programs.

Transformed kernels are artefacts worth persisting exactly — the golden
tests pin pretty-printed text, but JSON keeps the full tree (including
constructs the mini-Fortran frontend cannot express, like ``Select``).
The format is a plain nested-dict encoding with a ``kind`` tag per node.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import IRError
from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Select,
    UnOp,
    VarRef,
)
from repro.ir.program import ArrayDecl, Program, ScalarDecl
from repro.ir.stmt import Assign, If, Loop, Stmt


def expr_to_dict(e: Expr) -> dict[str, Any]:
    """Encode one expression node."""
    if isinstance(e, Const):
        return {"kind": "const", "value": e.value, "float": isinstance(e.value, float)}
    if isinstance(e, VarRef):
        return {"kind": "var", "name": e.name}
    if isinstance(e, ArrayRef):
        return {
            "kind": "array",
            "name": e.name,
            "indices": [expr_to_dict(x) for x in e.indices],
        }
    if isinstance(e, BinOp):
        return {
            "kind": "binop",
            "op": e.op,
            "lhs": expr_to_dict(e.lhs),
            "rhs": expr_to_dict(e.rhs),
        }
    if isinstance(e, UnOp):
        return {"kind": "unop", "op": e.op, "operand": expr_to_dict(e.operand)}
    if isinstance(e, Call):
        return {"kind": "call", "func": e.func, "args": [expr_to_dict(a) for a in e.args]}
    if isinstance(e, Cmp):
        return {
            "kind": "cmp",
            "op": e.op,
            "lhs": expr_to_dict(e.lhs),
            "rhs": expr_to_dict(e.rhs),
        }
    if isinstance(e, LogicalAnd):
        return {"kind": "and", "args": [expr_to_dict(a) for a in e.args]}
    if isinstance(e, LogicalOr):
        return {"kind": "or", "args": [expr_to_dict(a) for a in e.args]}
    if isinstance(e, LogicalNot):
        return {"kind": "not", "arg": expr_to_dict(e.arg)}
    if isinstance(e, Select):
        return {
            "kind": "select",
            "cond": expr_to_dict(e.cond),
            "if_true": expr_to_dict(e.if_true),
            "if_false": expr_to_dict(e.if_false),
        }
    raise IRError(f"cannot serialise expression {e!r}")


def expr_from_dict(d: dict[str, Any]) -> Expr:
    """Decode one expression node."""
    kind = d["kind"]
    if kind == "const":
        value = d["value"]
        return Const(float(value) if d.get("float") else int(value))
    if kind == "var":
        return VarRef(d["name"])
    if kind == "array":
        return ArrayRef(d["name"], [expr_from_dict(x) for x in d["indices"]])
    if kind == "binop":
        return BinOp(d["op"], expr_from_dict(d["lhs"]), expr_from_dict(d["rhs"]))
    if kind == "unop":
        return UnOp(d["op"], expr_from_dict(d["operand"]))
    if kind == "call":
        return Call(d["func"], [expr_from_dict(a) for a in d["args"]])
    if kind == "cmp":
        return Cmp(d["op"], expr_from_dict(d["lhs"]), expr_from_dict(d["rhs"]))
    if kind == "and":
        return LogicalAnd([expr_from_dict(a) for a in d["args"]])
    if kind == "or":
        return LogicalOr([expr_from_dict(a) for a in d["args"]])
    if kind == "not":
        return LogicalNot(expr_from_dict(d["arg"]))
    if kind == "select":
        return Select(
            expr_from_dict(d["cond"]),
            expr_from_dict(d["if_true"]),
            expr_from_dict(d["if_false"]),
        )
    raise IRError(f"unknown expression kind {kind!r}")


def stmt_to_dict(s: Stmt) -> dict[str, Any]:
    """Encode one statement node."""
    if isinstance(s, Assign):
        return {
            "kind": "assign",
            "target": expr_to_dict(s.target),
            "value": expr_to_dict(s.value),
        }
    if isinstance(s, If):
        return {
            "kind": "if",
            "cond": expr_to_dict(s.cond),
            "then": [stmt_to_dict(t) for t in s.then],
            "orelse": [stmt_to_dict(t) for t in s.orelse],
        }
    if isinstance(s, Loop):
        return {
            "kind": "loop",
            "var": s.var,
            "lower": expr_to_dict(s.lower),
            "upper": expr_to_dict(s.upper),
            "step": expr_to_dict(s.step),
            "body": [stmt_to_dict(t) for t in s.body],
        }
    raise IRError(f"cannot serialise statement {s!r}")


def stmt_from_dict(d: dict[str, Any]) -> Stmt:
    """Decode one statement node."""
    kind = d["kind"]
    if kind == "assign":
        target = expr_from_dict(d["target"])
        if not isinstance(target, (VarRef, ArrayRef)):
            raise IRError("assign target must be var or array reference")
        return Assign(target, expr_from_dict(d["value"]))
    if kind == "if":
        return If(
            expr_from_dict(d["cond"]),
            [stmt_from_dict(t) for t in d["then"]],
            [stmt_from_dict(t) for t in d["orelse"]],
        )
    if kind == "loop":
        return Loop(
            d["var"],
            expr_from_dict(d["lower"]),
            expr_from_dict(d["upper"]),
            [stmt_from_dict(t) for t in d["body"]],
            expr_from_dict(d["step"]),
        )
    raise IRError(f"unknown statement kind {kind!r}")


def program_to_dict(p: Program) -> dict[str, Any]:
    """Encode a whole program."""
    return {
        "name": p.name,
        "params": list(p.params),
        "arrays": [
            {
                "name": a.name,
                "extents": [expr_to_dict(e) for e in a.extents],
                "dtype": a.dtype,
            }
            for a in p.arrays
        ],
        "scalars": [{"name": s.name, "dtype": s.dtype} for s in p.scalars],
        "outputs": list(p.outputs),
        "body": [stmt_to_dict(s) for s in p.body],
    }


def program_from_dict(d: dict[str, Any]) -> Program:
    """Decode a whole program (runs full validation)."""
    return Program(
        d["name"],
        tuple(d["params"]),
        tuple(
            ArrayDecl(a["name"], tuple(expr_from_dict(e) for e in a["extents"]), a["dtype"])
            for a in d["arrays"]
        ),
        tuple(ScalarDecl(s["name"], s["dtype"]) for s in d["scalars"]),
        tuple(stmt_from_dict(s) for s in d["body"]),
        tuple(d["outputs"]),
    )


def dumps(p: Program, *, indent: int | None = None) -> str:
    """Program -> JSON text."""
    return json.dumps(program_to_dict(p), indent=indent)


def loads(text: str) -> Program:
    """JSON text -> Program."""
    return program_from_dict(json.loads(text))
