"""Statement nodes: assignment, guarded block, and ``do`` loop."""

from __future__ import annotations

from typing import Callable, Iterable

from repro.ir.expr import ArrayRef, Const, Expr, VarRef, as_expr


class Stmt:
    """Base class for statements. Statements are immutable trees."""

    __slots__ = ("_hash",)

    def _key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash((type(self).__name__, self._key()))
            object.__setattr__(self, "_hash", h)
        return h

    def __str__(self) -> str:
        from repro.ir.printer import pretty_stmt

        return pretty_stmt(self)

    def __repr__(self) -> str:
        first = str(self).splitlines()[0]
        return f"<{type(self).__name__} {first!r}>"


class Assign(Stmt):
    """``target = value`` where target is a scalar or array element."""

    __slots__ = ("target", "value")

    def __init__(self, target: VarRef | ArrayRef, value: Expr):
        if not isinstance(target, (VarRef, ArrayRef)):
            raise TypeError(
                f"Assign target must be VarRef or ArrayRef, got {type(target).__name__}"
            )
        object.__setattr__(self, "target", target)
        object.__setattr__(self, "value", as_expr(value))

    def _key(self) -> tuple:
        return (self.target, self.value)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Stmt nodes are immutable")


class If(Stmt):
    """``if (cond) then ... [else ...]``."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(
        self,
        cond: Expr,
        then: Iterable[Stmt],
        orelse: Iterable[Stmt] = (),
    ):
        object.__setattr__(self, "cond", as_expr(cond))
        object.__setattr__(self, "then", _as_body(then))
        object.__setattr__(self, "orelse", _as_body(orelse))
        if not self.then and not self.orelse:
            raise TypeError("If with empty branches")

    def _key(self) -> tuple:
        return (self.cond, self.then, self.orelse)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Stmt nodes are immutable")


class Loop(Stmt):
    """``do var = lower, upper[, step]`` with inclusive bounds.

    Step defaults to 1 and must be a positive constant when present (the
    paper's model; tiled loops use step = tile size).
    """

    __slots__ = ("var", "lower", "upper", "step", "body")

    def __init__(
        self,
        var: str,
        lower: Expr | int,
        upper: Expr | int,
        body: Iterable[Stmt],
        step: Expr | int = 1,
    ):
        if not isinstance(var, str) or not var:
            raise TypeError(f"Loop var must be non-empty str, got {var!r}")
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "lower", as_expr(lower))
        object.__setattr__(self, "upper", as_expr(upper))
        object.__setattr__(self, "step", as_expr(step))
        object.__setattr__(self, "body", _as_body(body))
        if not self.body:
            raise TypeError(f"Loop over {var} with empty body")

    @property
    def has_unit_step(self) -> bool:
        """True iff the step is the constant 1."""
        return isinstance(self.step, Const) and self.step.value == 1

    def _key(self) -> tuple:
        return (self.var, self.lower, self.upper, self.step, self.body)

    def __setattr__(self, *a: object) -> None:
        raise AttributeError("Stmt nodes are immutable")


def _as_body(stmts: Iterable[Stmt]) -> tuple[Stmt, ...]:
    body = tuple(stmts)
    for s in body:
        if not isinstance(s, Stmt):
            raise TypeError(f"statement expected, got {type(s).__name__}")
    return body


def walk_stmts(stmts: Iterable[Stmt]):
    """Yield every statement in the forest, pre-order."""
    for s in stmts:
        yield s
        if isinstance(s, If):
            yield from walk_stmts(s.then)
            yield from walk_stmts(s.orelse)
        elif isinstance(s, Loop):
            yield from walk_stmts(s.body)


def map_stmt_exprs(stmt: Stmt, fn: Callable[[Expr], Expr]) -> Stmt:
    """Rebuild *stmt* with *fn* applied to every expression it contains.

    ``fn`` receives whole expressions (assignment targets and values, guard
    conditions, loop bounds) and returns replacements.
    """
    if isinstance(stmt, Assign):
        target = fn(stmt.target)
        if not isinstance(target, (VarRef, ArrayRef)):
            raise TypeError("expression mapper changed an Assign target kind")
        return Assign(target, fn(stmt.value))
    if isinstance(stmt, If):
        return If(
            fn(stmt.cond),
            [map_stmt_exprs(s, fn) for s in stmt.then],
            [map_stmt_exprs(s, fn) for s in stmt.orelse],
        )
    if isinstance(stmt, Loop):
        return Loop(
            stmt.var,
            fn(stmt.lower),
            fn(stmt.upper),
            [map_stmt_exprs(s, fn) for s in stmt.body],
            fn(stmt.step),
        )
    raise TypeError(f"unknown Stmt node {type(stmt).__name__}")


def stmt_expressions(stmt: Stmt):
    """Yield the top-level expressions of a statement (not recursing into
    nested statements)."""
    if isinstance(stmt, Assign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, Loop):
        yield stmt.lower
        yield stmt.upper
        yield stmt.step
    else:
        raise TypeError(f"unknown Stmt node {type(stmt).__name__}")
