"""Loop-nest intermediate representation.

The IR models the paper's program class: FORTRAN-like programs made of
``do`` loops (unit step by default, affine bounds), assignments over scalars
and multi-dimensional arrays (1-based, column-major storage), and ``if``
guards. Non-affine guard conditions are allowed (LU's data-dependent pivot
test); non-affine subscripts are rejected by the dependence analysis, not by
the IR itself.
"""

from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Select,
    UnOp,
    VarRef,
)
from repro.ir.stmt import Assign, If, Loop, Stmt
from repro.ir.program import ArrayDecl, Program, ScalarDecl
from repro.ir.builder import (
    and_,
    assign,
    ceq,
    cge,
    cgt,
    cle,
    clt,
    cne,
    fabs,
    fmax,
    fmin,
    idx,
    if_,
    loop,
    not_,
    or_,
    sqrt,
    sym,
    val,
)
from repro.ir.printer import pretty
from repro.ir.affine import (
    cond_to_constraints,
    constraints_to_cond,
    expr_to_linexpr,
    is_affine,
    is_affine_condition,
    linexpr_to_expr,
)
from repro.ir.analysis import (
    PerfectNest,
    as_perfect_nest,
    is_perfect_loop_nest,
    iteration_domain,
)

__all__ = [
    "Expr",
    "Const",
    "VarRef",
    "ArrayRef",
    "BinOp",
    "UnOp",
    "Call",
    "Cmp",
    "Select",
    "LogicalAnd",
    "LogicalOr",
    "LogicalNot",
    "Stmt",
    "Assign",
    "If",
    "Loop",
    "Program",
    "ArrayDecl",
    "ScalarDecl",
    "pretty",
    "expr_to_linexpr",
    "linexpr_to_expr",
    "cond_to_constraints",
    "constraints_to_cond",
    "is_affine",
    "is_affine_condition",
    "PerfectNest",
    "as_perfect_nest",
    "is_perfect_loop_nest",
    "iteration_domain",
    "sym",
    "val",
    "idx",
    "assign",
    "loop",
    "if_",
    "ceq",
    "cne",
    "clt",
    "cle",
    "cgt",
    "cge",
    "and_",
    "or_",
    "not_",
    "sqrt",
    "fabs",
    "fmin",
    "fmax",
]
