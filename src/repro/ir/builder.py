"""Construction helpers (a small eDSL) for writing IR programs by hand.

Example (Jacobi's first nest)::

    i, j, N = sym("i"), sym("j"), sym("N")
    L, A = arr2("L"), arr2("A")   # user-defined shorthands over idx()
    nest = loop("i", 2, N - 1,
             [loop("j", 2, N - 1,
                [assign(idx("L", j, i),
                        (idx("A", j, i - 1) + idx("A", j - 1, i)
                         + idx("A", j + 1, i) + idx("A", j, i + 1)) * 0.25)])])
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.expr import (
    ArrayRef,
    Call,
    Cmp,
    Const,
    Expr,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Number,
    VarRef,
    as_expr,
)
from repro.ir.stmt import Assign, If, Loop, Stmt


def sym(name: str) -> VarRef:
    """A scalar/loop/parameter reference."""
    return VarRef(name)


def val(value: Number) -> Const:
    """A literal."""
    return Const(value)


def idx(array: str, *indices: Expr | Number) -> ArrayRef:
    """Array element ``array(indices...)`` (1-based)."""
    return ArrayRef(array, [as_expr(e) for e in indices])


def assign(target: VarRef | ArrayRef | str, value: Expr | Number) -> Assign:
    """Assignment; a string target means a scalar variable."""
    if isinstance(target, str):
        target = VarRef(target)
    return Assign(target, as_expr(value))


def loop(
    var: str,
    lower: Expr | Number,
    upper: Expr | Number,
    body: Iterable[Stmt],
    step: Expr | Number = 1,
) -> Loop:
    """``do var = lower, upper[, step]``."""
    return Loop(var, as_expr(lower), as_expr(upper), body, as_expr(step))


def if_(cond: Expr, then: Iterable[Stmt] | Stmt, orelse: Iterable[Stmt] | Stmt = ()) -> If:
    """Guarded block; single statements are wrapped in a tuple."""
    if isinstance(then, Stmt):
        then = (then,)
    if isinstance(orelse, Stmt):
        orelse = (orelse,)
    return If(cond, then, orelse)


# -- comparisons (named to avoid clobbering structural ==) -------------------


def ceq(lhs: Expr | Number, rhs: Expr | Number) -> Cmp:
    """``lhs .EQ. rhs``"""
    return Cmp("==", as_expr(lhs), as_expr(rhs))


def cne(lhs: Expr | Number, rhs: Expr | Number) -> Cmp:
    """``lhs .NE. rhs``"""
    return Cmp("!=", as_expr(lhs), as_expr(rhs))


def clt(lhs: Expr | Number, rhs: Expr | Number) -> Cmp:
    """``lhs .LT. rhs``"""
    return Cmp("<", as_expr(lhs), as_expr(rhs))


def cle(lhs: Expr | Number, rhs: Expr | Number) -> Cmp:
    """``lhs .LE. rhs``"""
    return Cmp("<=", as_expr(lhs), as_expr(rhs))


def cgt(lhs: Expr | Number, rhs: Expr | Number) -> Cmp:
    """``lhs .GT. rhs``"""
    return Cmp(">", as_expr(lhs), as_expr(rhs))


def cge(lhs: Expr | Number, rhs: Expr | Number) -> Cmp:
    """``lhs .GE. rhs``"""
    return Cmp(">=", as_expr(lhs), as_expr(rhs))


def and_(*args: Expr) -> Expr:
    """Conjunction (flattening); one argument passes through."""
    if len(args) == 1:
        return args[0]
    return LogicalAnd(args)


def or_(*args: Expr) -> Expr:
    """Disjunction (flattening); one argument passes through."""
    if len(args) == 1:
        return args[0]
    return LogicalOr(args)


def not_(arg: Expr) -> LogicalNot:
    """Negation."""
    return LogicalNot(arg)


def sqrt(arg: Expr | Number) -> Call:
    """``sqrt(arg)`` intrinsic."""
    return Call("sqrt", [as_expr(arg)])


def fabs(arg: Expr | Number) -> Call:
    """``abs(arg)`` intrinsic."""
    return Call("abs", [as_expr(arg)])


def fmin(*args: Expr | Number) -> Call:
    """``min(args...)`` intrinsic."""
    return Call("min", [as_expr(a) for a in args])


def fmax(*args: Expr | Number) -> Call:
    """``max(args...)`` intrinsic."""
    return Call("max", [as_expr(a) for a in args])
