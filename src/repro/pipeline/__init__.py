"""The pass-pipeline subsystem.

Two entry levels:

- :mod:`repro.pipeline.driver` — ``optimize_program``, the one-call
  Figure-1-in / tiled-code-out driver (fuse → FixDeps → scalarise → tile →
  un-sink), kept from the original flat module;
- the declarative layer — :class:`Pass` implementations wrapping
  :mod:`repro.trans` (:mod:`repro.pipeline.passes`),
  :class:`VariantRecipe` + content fingerprints
  (:mod:`repro.pipeline.recipe`), and :class:`PassManager` with per-pass
  timing/size evidence and boundary verification
  (:mod:`repro.pipeline.manager`). The bundled kernels' variants are
  recipes registered in :mod:`repro.kernels.recipes`.
"""

from repro.pipeline.driver import OptimizationResult, optimize_program
from repro.pipeline.manager import (
    CHECKED_COUNTERS,
    IRStats,
    PassManager,
    PassRecord,
    PipelineReport,
    crosscheck_engines,
    ir_stats,
)
from repro.pipeline.passes import (
    BREAK,
    PRESERVE,
    RESTORE,
    TILE,
    TIME_TILE,
    ExpandScalar,
    FixDeps,
    Fuse,
    FusionSpec,
    Pass,
    PassContext,
    Scalarize,
    SkewPermute,
    Source,
    Tile,
    ToProgram,
    UndoSinking,
)
from repro.pipeline.recipe import (
    VariantRecipe,
    machine_fingerprint,
    measurement_fingerprint,
    program_fingerprint,
    stable_hash,
)

__all__ = [
    "OptimizationResult",
    "optimize_program",
    "Pass",
    "PassContext",
    "PassManager",
    "PassRecord",
    "PipelineReport",
    "IRStats",
    "ir_stats",
    "crosscheck_engines",
    "CHECKED_COUNTERS",
    "VariantRecipe",
    "FusionSpec",
    "Source",
    "Fuse",
    "ToProgram",
    "FixDeps",
    "Scalarize",
    "ExpandScalar",
    "SkewPermute",
    "Tile",
    "UndoSinking",
    "TILE",
    "TIME_TILE",
    "PRESERVE",
    "BREAK",
    "RESTORE",
    "stable_hash",
    "program_fingerprint",
    "machine_fingerprint",
    "measurement_fingerprint",
]
