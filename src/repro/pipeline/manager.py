"""``PassManager``: run a recipe, record per-pass evidence, verify it.

Running a :class:`~repro.pipeline.recipe.VariantRecipe` yields the final
program plus a :class:`PipelineReport` — per-pass wall time, IR-size
statistics and (optionally) pretty-printed IR snapshots. With
``verify=True`` the manager additionally checks, at **every pass
boundary**, on a small-N instance:

1. *engine agreement* — the compiled engine and the tree-walking
   interpreter produce the same outputs and the same memory/branch/loop
   event counts for the current program (reusing
   :mod:`repro.exec.validate`), and
2. *semantic preservation* — the current program matches the recipe's
   source program, wherever the pass chain so far is declared
   semantics-preserving (fusion deliberately breaks semantics until
   ``FixDeps`` restores them; those boundaries are skipped — measuring the
   broken fused program is part of the paper's experiment).

A pass that claims ``preserve`` but miscompiles is therefore caught at its
own boundary with a :class:`~repro.errors.ValidationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro import telemetry
from repro.errors import ExecutionError, TransformError, ValidationError
from repro.ir.program import Program
from repro.ir.stmt import If, Loop, Stmt
from repro.pipeline.passes import BREAK, RESTORE, PassContext
from repro.pipeline.recipe import VariantRecipe
from repro.trans.model import FusedNest

#: Small-N parameter values used for boundary verification.
VERIFY_PARAMS = {"N": 9, "M": 3}

#: Event counters that both execution engines maintain independently.
CHECKED_COUNTERS = ("loads", "stores", "branches", "loop_iters")


@dataclass(frozen=True)
class IRStats:
    """Size of one IR value (program or fused nest)."""

    statements: int
    loops: int
    guards: int
    depth: int

    def __str__(self) -> str:
        return (
            f"{self.statements} stmts / {self.loops} loops / "
            f"{self.guards} guards / depth {self.depth}"
        )


def _stmt_stats(stmts, depth: int = 0) -> tuple[int, int, int, int]:
    statements = loops = guards = 0
    max_depth = depth
    for s in stmts:
        statements += 1
        if isinstance(s, Loop):
            loops += 1
            b = _stmt_stats(s.body, depth + 1)
            statements += b[0]
            loops += b[1]
            guards += b[2]
            max_depth = max(max_depth, b[3])
        elif isinstance(s, If):
            guards += 1
            for arm in (s.then, s.orelse):
                b = _stmt_stats(arm, depth)
                statements += b[0]
                loops += b[1]
                guards += b[2]
                max_depth = max(max_depth, b[3])
    return statements, loops, guards, max_depth


def ir_stats(value: Program | FusedNest) -> IRStats:
    """Size statistics of an IR value (cheap; no code emission)."""
    if isinstance(value, Program):
        return IRStats(*_stmt_stats(value.body))
    stmts: list[Stmt] = list(value.preamble) + list(value.epilogue)
    for group in value.groups:
        stmts.extend(group.prologue)
        stmts.extend(group.body)
    statements, loops, guards, depth = _stmt_stats(stmts)
    return IRStats(
        statements,
        loops,
        guards,
        depth + len(value.context) + len(value.fused_loops),
    )


@dataclass(frozen=True)
class PassRecord:
    """Evidence for one executed pass."""

    name: str
    seconds: float
    before: IRStats
    after: IRStats
    detail: str = ""
    verified: bool = False
    snapshot: str | None = None


@dataclass
class PipelineReport:
    """Everything a recipe run recorded."""

    recipe: str
    records: list[PassRecord] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Wall time summed over all passes."""
        return sum(r.seconds for r in self.records)

    def as_rows(self) -> list[dict[str, Any]]:
        """Flat dict rows (CSV-friendly)."""
        return [
            {
                "recipe": self.recipe,
                "pass": r.name,
                "seconds": round(r.seconds, 6),
                "stmts_before": r.before.statements,
                "stmts_after": r.after.statements,
                "loops_after": r.after.loops,
                "guards_after": r.after.guards,
                "depth_after": r.after.depth,
                "verified": r.verified,
                "detail": r.detail,
            }
            for r in self.records
        ]

    def render(self) -> str:
        """Aligned text table of the per-pass evidence."""
        from repro.utils.tables import render_table

        rows = [
            [
                r.name,
                r.seconds * 1e3,
                r.after.statements,
                r.after.loops,
                r.after.guards,
                r.after.depth,
                "yes" if r.verified else "-",
                r.detail,
            ]
            for r in self.records
        ]
        return render_table(
            ["pass", "ms", "stmts", "loops", "guards", "depth", "verified", "notes"],
            rows,
            title=f"Pipeline — {self.recipe} "
            f"({self.total_seconds * 1e3:.1f} ms total)",
            float_fmt=",.1f",
        )


def crosscheck_engines(
    program: Program,
    params: Mapping[str, int],
    inputs: Mapping[str, np.ndarray] | None,
) -> None:
    """Compiled vs interpreted: same outputs, same event counts."""
    from repro.exec.compiled import run_compiled
    from repro.exec.interp import run_interpreted
    from repro.exec.validate import compare_outputs

    compiled = run_compiled(program, params, inputs)
    interpreted = run_interpreted(program, params, inputs)
    problems = compare_outputs(compiled, interpreted, program.outputs)
    for name in CHECKED_COUNTERS:
        a = getattr(compiled.counters, name)
        b = getattr(interpreted.counters, name)
        if a != b:
            problems.append(f"counter {name}: compiled {a} vs interpreted {b}")
    if problems:
        raise ValidationError(
            f"engines disagree on {program.name} at {dict(params)}: "
            + "; ".join(problems)
        )


class PassManager:
    """Run recipes, record per-pass evidence, optionally verify boundaries.

    ``verify_params`` / ``input_factory`` override the small-N instance the
    boundary checks run on; by default they come from the kernel module in
    the :class:`~repro.pipeline.passes.PassContext` (its ``PARAMS`` and
    ``make_inputs``).
    """

    def __init__(
        self,
        *,
        verify: bool = False,
        verify_params: Mapping[str, int] | None = None,
        input_factory: Callable[[Mapping[str, int]], Mapping[str, np.ndarray]] | None = None,
        snapshots: bool = False,
    ):
        self.verify = verify
        self.verify_params = dict(verify_params) if verify_params else None
        self.input_factory = input_factory
        self.snapshots = snapshots

    # -- verification helpers --------------------------------------------
    def _instance(self, ctx: PassContext):
        params = self.verify_params
        if params is None:
            if ctx.kernel is None:
                raise TransformError(
                    "PassManager(verify=True) needs verify_params or a "
                    "kernel module in the context"
                )
            params = {p: VERIFY_PARAMS[p] for p in ctx.kernel.PARAMS}
        if self.input_factory is not None:
            inputs = self.input_factory(params)
        elif ctx.kernel is not None:
            inputs = ctx.kernel.make_inputs(params)
        else:
            inputs = None
        return params, inputs

    def _verify_boundary(
        self,
        value: Program | FusedNest,
        baseline: Program | None,
        trusted: bool,
        ctx: PassContext,
    ) -> tuple[bool, str]:
        """Check one boundary; returns (checks ran, note).

        An *untrusted* boundary (between a ``break`` pass and the next
        ``restore``) may legitimately fail at runtime — QR's unfixed fused
        program divides by a not-yet-computed pivot, for instance — so a
        crash there is recorded, not raised. At a trusted boundary every
        failure propagates.
        """
        from repro.exec.validate import assert_equivalent

        program = value.to_program() if isinstance(value, FusedNest) else value
        params, inputs = self._instance(ctx)
        try:
            crosscheck_engines(program, params, inputs)
        except ExecutionError as exc:
            if trusted:
                raise
            return False, f"verify skipped (broken-semantics program): {exc}"
        if trusted and baseline is not None and program is not baseline:
            assert_equivalent(
                baseline, program, params, inputs, outputs=baseline.outputs
            )
        return True, ""

    # -- execution -------------------------------------------------------
    def run(
        self, recipe: VariantRecipe, ctx: PassContext | None = None
    ) -> tuple[Program | FusedNest, PipelineReport]:
        """Apply every pass of *recipe*; return (final value, report)."""
        ctx = ctx or PassContext()
        report = PipelineReport(recipe=recipe.name)
        value: Program | FusedNest | None = None
        baseline: Program | None = None
        trusted = True
        with telemetry.span("pipeline.recipe", recipe=recipe.name):
            for p in recipe.passes:
                before = ir_stats(value) if value is not None else IRStats(0, 0, 0, 0)
                # The span doubles as the pass stopwatch: its duration is
                # the PassRecord's wall time whether telemetry records or
                # not (the disabled span still measures).
                with telemetry.span(
                    "pipeline.pass", **{"recipe": recipe.name, "pass": p.name}
                ) as psp:
                    value = p.apply(value, ctx)
                seconds = psp.duration
                after = ir_stats(value)
                if p.semantics == BREAK:
                    trusted = False
                elif p.semantics == RESTORE:
                    trusted = True
                verified, note = False, ""
                if self.verify:
                    with telemetry.span(
                        "pipeline.verify", **{"pass": p.name, "trusted": trusted}
                    ):
                        verified, note = self._verify_boundary(
                            value, baseline, trusted, ctx
                        )
                if baseline is None and isinstance(value, Program):
                    baseline = value
                snapshot = None
                if self.snapshots:
                    from repro.ir.printer import pretty

                    current = (
                        value.to_program() if isinstance(value, FusedNest) else value
                    )
                    snapshot = pretty(current)
                detail_fn = getattr(p, "detail", None)
                detail = detail_fn() if callable(detail_fn) else ""
                if note:
                    detail = f"{detail}; {note}" if detail else note
                # IR-stat deltas ride on the pass span (attrs may be set
                # after exit; the recorded span shares the dict).
                psp.set(
                    stmts_before=before.statements,
                    stmts_after=after.statements,
                    loops_after=after.loops,
                    guards_after=after.guards,
                    depth_after=after.depth,
                    verified=verified,
                )
                report.records.append(
                    PassRecord(
                        name=p.name,
                        seconds=seconds,
                        before=before,
                        after=after,
                        detail=detail,
                        verified=verified,
                        snapshot=snapshot,
                    )
                )
        if value is None:
            raise TransformError(f"recipe {recipe.name} has no passes")
        return value, report

    def build(
        self, recipe: VariantRecipe, ctx: PassContext | None = None
    ) -> tuple[Program, PipelineReport]:
        """Run the recipe and require the result to be a program."""
        value, report = self.run(recipe, ctx)
        if isinstance(value, FusedNest):
            value = value.to_program()
        return value, report
