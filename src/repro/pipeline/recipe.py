"""Declarative variant recipes and content fingerprints.

A :class:`VariantRecipe` is an ordered list of pass instances — the whole
definition of a kernel variant. Because every pass describes itself as
plain data, a recipe has a stable content **fingerprint**; combined with
the fingerprint of the *emitted program* and of the machine/sweep
configuration it yields the disk-cache key for measurements, replacing the
hand-bumped version tags the runner used to carry (stale-cache hazard: a
cost-semantics change that nobody remembered to bump past).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.ir.program import Program
from repro.pipeline.passes import Pass


def stable_hash(data: Any, *, length: int = 16) -> str:
    """Hex digest of any JSON-serialisable value (stable across runs)."""
    text = json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:length]


@dataclass(frozen=True)
class VariantRecipe:
    """One kernel variant as an ordered list of passes."""

    kernel: str
    variant: str
    passes: tuple[Pass, ...]
    description: str = ""

    def describe(self) -> dict[str, Any]:
        """Plain-data form of the whole recipe."""
        return {
            "kernel": self.kernel,
            "variant": self.variant,
            "passes": [p.describe() for p in self.passes],
        }

    def fingerprint(self) -> str:
        """Content hash of the recipe definition."""
        return stable_hash(self.describe())

    @property
    def name(self) -> str:
        """``kernel/variant`` display name."""
        return f"{self.kernel}/{self.variant}"


def program_fingerprint(program: Program) -> str:
    """Content hash of an emitted program (full JSON tree)."""
    from repro.ir import serialize

    return stable_hash(serialize.program_to_dict(program))


def machine_fingerprint(machine) -> str:
    """Content hash of a machine config: geometry, costs, registers.

    Any change to the cost model or cache shape changes the hash — cached
    measurements can never silently survive a semantics change.
    """
    from dataclasses import asdict

    return stable_hash(asdict(machine))


def measurement_fingerprint(
    recipe: VariantRecipe,
    program: Program,
    machine,
    run_params: Mapping[str, Any],
) -> str:
    """The disk-cache key core for one measurement.

    ``run_params`` carries everything else that determines the numbers:
    problem size, tile edge, input seed, Jacobi's M, …
    """
    return stable_hash(
        {
            "recipe": recipe.describe(),
            "program": program_fingerprint(program),
            "machine": machine_fingerprint(machine),
            "run": dict(run_params),
        },
        length=20,
    )
