"""The ``Pass`` protocol and the passes wrapping :mod:`repro.trans`.

A pass is one reproducible step of a variant recipe: it consumes a
:class:`~repro.ir.program.Program` or a
:class:`~repro.trans.model.FusedNest`, produces the next one, and can
describe itself as plain data (for fingerprints and reports). Every pass
declares its **semantic effect** relative to the recipe's source program:

- ``preserve`` — input/output behaviour is unchanged (tiling, skewing,
  scalarisation, guard cleanup, …);
- ``break``    — behaviour may change (fusion ignores fusion-preventing
  dependences on purpose; the paper measures that program anyway);
- ``restore``  — behaviour is re-established (``FixDeps``).

:class:`~repro.pipeline.manager.PassManager` uses the declarations to know
*where* semantic equivalence against the source is checkable: everywhere
except between a ``break`` and the next ``restore``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import TransformError
from repro.ir.expr import Expr
from repro.ir.printer import expr_str
from repro.ir.program import Program
from repro.ir.stmt import Loop
from repro.trans.fusion import NestEmbedding
from repro.trans.model import FusedNest

#: Semantic-effect declarations (see module docstring).
PRESERVE, BREAK, RESTORE = "preserve", "break", "restore"

#: Placeholder tile edges resolved from the :class:`PassContext` at build
#: time, so one recipe covers every tile size of a sweep.
TILE = "$tile"
TIME_TILE = "$time_tile"


@dataclass(frozen=True)
class PassContext:
    """Bind-time inputs of a recipe build.

    ``kernel`` is the kernel module (source builders, ``make_inputs``);
    ``tile`` / ``time_tile`` resolve the :data:`TILE` / :data:`TIME_TILE`
    placeholders.
    """

    kernel: Any = None
    tile: int | None = None
    time_tile: int | None = None

    def tile_edge(self) -> int:
        """The bound tile edge (default 8, as the kernel builders used)."""
        return self.tile if self.tile is not None else 8

    def time_tile_edge(self) -> int:
        """The time-tile edge (defaults to the space tile)."""
        return self.time_tile if self.time_tile is not None else self.tile_edge()


@dataclass(frozen=True)
class FusionSpec:
    """Everything :func:`repro.trans.fusion.fuse_siblings` needs for one
    kernel: the fused loop spec plus one embedding per fusable item."""

    fused_loops: tuple[tuple[str, Expr, Expr], ...]
    embeddings: tuple[NestEmbedding, ...]
    context_depth: int = 0
    epilogue_from: int | None = None

    def describe(self) -> dict[str, Any]:
        """Plain-data form (for fingerprints)."""
        return {
            "fused_loops": [
                [var, expr_str(lo), expr_str(hi)] for var, lo, hi in self.fused_loops
            ],
            "embeddings": [
                {
                    "var_map": dict(e.var_map),
                    "placement": {k: expr_str(v) for k, v in e.placement.items()},
                }
                for e in self.embeddings
            ],
            "context_depth": self.context_depth,
            "epilogue_from": self.epilogue_from,
        }


class Pass:
    """Base class: one recipe step (see module docstring)."""

    #: Semantic effect relative to the recipe source (PRESERVE/BREAK/RESTORE).
    semantics: str = PRESERVE

    @property
    def name(self) -> str:
        """Display name of the pass."""
        return type(self).__name__

    def describe(self) -> dict[str, Any]:
        """Plain-data description (must be JSON-serialisable and capture
        every parameter that affects the emitted program)."""
        return {"pass": self.name}

    def apply(self, value: Program | FusedNest, ctx: PassContext):
        """Transform *value* under *ctx*."""
        raise NotImplementedError


def _expect_program(value, who: str) -> Program:
    if not isinstance(value, Program):
        raise TransformError(f"{who} needs a Program, got {type(value).__name__}")
    return value


def _expect_nest(value, who: str) -> FusedNest:
    if not isinstance(value, FusedNest):
        raise TransformError(f"{who} needs a FusedNest, got {type(value).__name__}")
    return value


def _locate_nest(program: Program, nest: int | str, who: str) -> int:
    """Resolve a nest selector: an index, or a loop variable name."""
    if isinstance(nest, int):
        return nest
    for pos, stmt in enumerate(program.body):
        if isinstance(stmt, Loop) and stmt.var == nest:
            return pos
    raise TransformError(f"{who}: no top-level loop over {nest!r}")


@dataclass(frozen=True)
class Source(Pass):
    """Produce the recipe's source program from the kernel module
    (``sequential`` — Figure 1 — or ``fusable``, the peeled/distributed
    preparation form)."""

    builder: str = "sequential"
    semantics = PRESERVE

    def describe(self) -> dict[str, Any]:
        return {"pass": self.name, "builder": self.builder}

    def apply(self, value, ctx: PassContext) -> Program:
        if ctx.kernel is None:
            raise TransformError("Source pass needs a kernel module in the context")
        return getattr(ctx.kernel, self.builder)()


@dataclass(frozen=True)
class Fuse(Pass):
    """Fuse the sibling nests into one perfect nest (paper Sec. 2).

    Declared ``break``: the fused order ignores fusion-preventing
    dependences — that is precisely what :class:`FixDeps` repairs.
    """

    fusion: FusionSpec
    semantics = BREAK

    def describe(self) -> dict[str, Any]:
        return {"pass": self.name, **self.fusion.describe()}

    def apply(self, value, ctx: PassContext) -> FusedNest:
        from repro.trans.fusion import fuse_siblings

        program = _expect_program(value, self.name)
        return fuse_siblings(
            program,
            self.fusion.fused_loops,
            self.fusion.embeddings,
            context_depth=self.fusion.context_depth,
            epilogue_from=self.fusion.epilogue_from,
        )


@dataclass(frozen=True)
class ToProgram(Pass):
    """Emit a :class:`FusedNest` as an executable program."""

    rename: str | None = None
    semantics = PRESERVE

    def describe(self) -> dict[str, Any]:
        return {"pass": self.name, "rename": self.rename}

    def apply(self, value, ctx: PassContext) -> Program:
        return _expect_nest(value, self.name).to_program(self.rename)


@dataclass(frozen=True)
class FixDeps(Pass):
    """Repair every fusion-preventing dependence (paper Sec. 3) and emit
    the fixed program. Declared ``restore``."""

    rename: str | None = None
    value_ranges: Mapping[str, Any] | None = None
    simplify_copies: bool = True
    semantics = RESTORE

    def describe(self) -> dict[str, Any]:
        ranges = None
        if self.value_ranges:
            ranges = {
                var: [expr_str(r.lower), expr_str(r.upper)]
                for var, r in sorted(self.value_ranges.items())
            }
        return {
            "pass": self.name,
            "rename": self.rename,
            "value_ranges": ranges,
            "simplify_copies": self.simplify_copies,
        }

    def apply(self, value, ctx: PassContext) -> Program:
        from repro.trans.fixdeps import fix_dependences

        nest = _expect_nest(value, self.name)
        report = fix_dependences(
            nest,
            value_ranges=self.value_ranges,
            simplify_copies=self.simplify_copies,
        )
        program = report.program(self.rename)
        object.__setattr__(self, "_last_report", report)
        return program

    def detail(self) -> str:
        """Audit line from the most recent application."""
        report = getattr(self, "_last_report", None)
        if report is None:
            return ""
        collapsed = report.ww_wr.collapsed_groups()
        copies = [ins.copy_array for ins in report.rw.insertions]
        bits = []
        if collapsed:
            bits.append(f"collapsed {collapsed}")
        if copies:
            bits.append(f"copies {copies}")
        return "; ".join(bits) or "already legal"


@dataclass(frozen=True)
class Scalarize(Pass):
    """Demote iteration-local arrays to scalars
    (:func:`repro.trans.cleanup.scalarize_arrays`)."""

    arrays: tuple[str, ...] | None = None
    semantics = PRESERVE

    def describe(self) -> dict[str, Any]:
        return {"pass": self.name, "arrays": list(self.arrays) if self.arrays else None}

    def apply(self, value, ctx: PassContext) -> Program:
        from repro.trans.cleanup import scalarize_arrays

        program = _expect_program(value, self.name)
        return scalarize_arrays(program, list(self.arrays) if self.arrays else None)


@dataclass(frozen=True)
class ExpandScalar(Pass):
    """Array-expand a scalar along a loop dimension
    (:func:`repro.trans.expand.expand_scalar`; LU's per-step pivot)."""

    scalar: str
    along: str
    extent: str
    semantics = PRESERVE

    def describe(self) -> dict[str, Any]:
        return {
            "pass": self.name,
            "scalar": self.scalar,
            "along": self.along,
            "extent": self.extent,
        }

    def apply(self, value, ctx: PassContext) -> Program:
        from repro.ir import sym
        from repro.trans.expand import expand_scalar

        program = _expect_program(value, self.name)
        return expand_scalar(program, self.scalar, self.along, sym(self.extent))


@dataclass(frozen=True)
class SkewPermute(Pass):
    """Skew + permute one perfect nest (paper Sec. 4, Jacobi's time
    skewing; :func:`repro.trans.skew.skew_and_permute`)."""

    skews: Mapping[int, Mapping[int, int]]
    order: tuple[int, ...]
    new_names: tuple[str, ...]
    rename: str | None = None
    #: Nest selector: a body index or a top-level loop variable name.
    nest: int | str = 0
    semantics = PRESERVE

    def describe(self) -> dict[str, Any]:
        return {
            "pass": self.name,
            "skews": {str(k): {str(i): c for i, c in v.items()}
                      for k, v in sorted(self.skews.items())},
            "order": list(self.order),
            "new_names": list(self.new_names),
            "rename": self.rename,
            "nest": self.nest,
        }

    def apply(self, value, ctx: PassContext) -> Program:
        from repro.trans.skew import skew_and_permute

        program = _expect_program(value, self.name)
        return skew_and_permute(
            program,
            skews=self.skews,
            order=self.order,
            nest_index=_locate_nest(program, self.nest, self.name),
            new_names=self.new_names,
            name=self.rename,
        )


@dataclass(frozen=True)
class Tile(Pass):
    """Tile a perfect nest (:func:`repro.trans.tiling.tile_program`).

    Sizes may be integers or the :data:`TILE` / :data:`TIME_TILE`
    placeholders, resolved from the context at build time.
    """

    sizes: Mapping[str, int | str]
    order: tuple[str, ...] | None = None
    rename: str | None = None
    nest: int | str = 0
    semantics = PRESERVE

    def describe(self) -> dict[str, Any]:
        return {
            "pass": self.name,
            "sizes": dict(self.sizes),
            "order": list(self.order) if self.order else None,
            "rename": self.rename,
            "nest": self.nest,
        }

    def _resolve(self, size: int | str, ctx: PassContext) -> int:
        if size == TILE:
            return ctx.tile_edge()
        if size == TIME_TILE:
            return ctx.time_tile_edge()
        if isinstance(size, int):
            return size
        raise TransformError(f"{self.name}: unknown tile placeholder {size!r}")

    def apply(self, value, ctx: PassContext) -> Program:
        from repro.trans.tiling import tile_program

        program = _expect_program(value, self.name)
        sizes = {var: self._resolve(size, ctx) for var, size in self.sizes.items()}
        return tile_program(
            program,
            sizes,
            order=self.order,
            nest_index=_locate_nest(program, self.nest, self.name),
            name=self.rename,
        )


@dataclass(frozen=True)
class UndoSinking(Pass):
    """Paper Sec. 4: "the effect of code sinking is undone as much as
    possible" — unswitch invariant guards, propagate guard facts, split
    the per-point guards out of the tile loops."""

    semantics = PRESERVE

    def apply(self, value, ctx: PassContext) -> Program:
        from repro.trans.cleanup import propagate_guard_facts
        from repro.trans.splitting import split_point_guards
        from repro.trans.unswitch import unswitch_invariant_guards

        program = _expect_program(value, self.name)
        return split_point_guards(
            propagate_guard_facts(unswitch_invariant_guards(program))
        )
