"""The end-to-end driver: Figure 1 in, cache-tiled program out.

``optimize_program`` chains the whole paper:

1. fuse the sibling nests (auto boundary embeddings unless given);
2. **FixDeps** — repair every fusion-preventing dependence;
3. scalarise iteration-local temporaries;
4. tile the resulting perfect nest — but only when the reordering is
   *proven* legal (exact polyhedral check) or *validated* by execution
   against the original on caller-supplied inputs;
5. undo the code-sinking guards (unswitch + fact propagation + index-set
   splitting).

Every decision is recorded in the returned :class:`OptimizationResult` so
callers can see what was (and was not) done and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.deps.access import ValueRange
from repro.errors import ReproError, TransformError
from repro.exec.validate import assert_equivalent
from repro.ir.analysis import as_perfect_nest
from repro.ir.expr import Expr
from repro.ir.program import Program
from repro.machine.configs import MachineConfig, octane2_scaled
from repro.tilesize.pdat import pdat_tile
from repro.trans.autofuse import auto_fuse
from repro.trans.cleanup import propagate_guard_facts, scalarize_arrays
from repro.trans.fixdeps import FixDepsReport, fix_dependences
from repro.trans.fusion import NestEmbedding, fuse_siblings
from repro.trans.legality import fully_permutable
from repro.trans.splitting import split_point_guards
from repro.trans.tiling import tile_program
from repro.trans.unswitch import unswitch_invariant_guards

#: An input factory: params -> {array name: ndarray}.
InputFactory = Callable[[Mapping[str, int]], Mapping[str, np.ndarray]]


@dataclass
class OptimizationResult:
    """Everything the driver produced, with an audit trail."""

    original: Program
    fixdeps: FixDepsReport
    fixed: Program
    tiled: Program | None
    tile: int | None
    #: human-readable decisions ("tiling proven legal", "skipped: ...")
    notes: list[str] = field(default_factory=list)

    @property
    def best(self) -> Program:
        """The most optimised program produced."""
        return self.tiled if self.tiled is not None else self.fixed


def optimize_program(
    program: Program,
    fused_loops: Sequence[tuple[str, Expr, Expr]],
    *,
    context_depth: int = 0,
    epilogue_from: int | None = None,
    embeddings: Sequence[NestEmbedding] | None = None,
    value_ranges: Mapping[str, ValueRange] | None = None,
    machine: MachineConfig | None = None,
    tile: int | None = None,
    scalarize: bool = True,
    undo_sinking: bool = True,
    validate_inputs: InputFactory | None = None,
    validate_sizes: Sequence[Mapping[str, int]] = (),
) -> OptimizationResult:
    """Run the full paper pipeline on *program* (see module docstring).

    ``validate_inputs`` + ``validate_sizes`` enable execution validation of
    each stage; without them, tiling happens only under a legality proof.
    """
    machine = machine or octane2_scaled()
    notes: list[str] = []

    # 1. fusion
    if embeddings is not None:
        nest = fuse_siblings(
            program,
            fused_loops,
            embeddings,
            context_depth=context_depth,
            epilogue_from=epilogue_from,
        )
        notes.append("fused with caller-supplied embeddings")
    else:
        nest = auto_fuse(
            program,
            fused_loops,
            context_depth=context_depth,
            epilogue_from=epilogue_from,
        )
        notes.append("fused with derived boundary embeddings")

    # 2. FixDeps
    report = fix_dependences(nest, value_ranges=value_ranges)
    collapsed = report.ww_wr.collapsed_groups()
    if collapsed:
        notes.append(f"ElimWW_WR collapsed dimensions: {collapsed}")
    for ins in report.rw.insertions:
        notes.append(
            f"ElimRW introduced {ins.copy_array!r} for {ins.array!r} "
            f"({ins.precopied_reads} pre-copied, {ins.redirected_reads} guarded reads)"
        )
    if not collapsed and not report.rw.insertions:
        notes.append("fusion already legal; FixDeps changed nothing")
    fixed = report.program(f"{program.name}_fixed")

    # 3. scalarisation
    if scalarize:
        before = {a.name for a in fixed.arrays}
        fixed = scalarize_arrays(fixed, None)
        gone = before - {a.name for a in fixed.arrays}
        if gone:
            notes.append(f"scalarised temporaries: {sorted(gone)}")

    def validate(candidate: Program) -> bool:
        if validate_inputs is None or not validate_sizes:
            return False
        for params in validate_sizes:
            assert_equivalent(
                program, candidate, params, validate_inputs(params),
                outputs=program.outputs,
            )
        return True

    if validate_inputs is not None and validate_sizes:
        validate(fixed)
        notes.append(f"fixed program validated at {list(validate_sizes)}")

    # 4. tiling (proof- or validation-gated)
    tiled: Program | None = None
    chosen_tile: int | None = None
    nest_stmt = fixed.body[_main_nest_index(fixed)]
    depth = as_perfect_nest(nest_stmt).depth
    if depth == 0:
        notes.append("tiling skipped: no perfect nest")
    else:
        proven = False
        try:
            proven = fully_permutable(
                nest_stmt, value_ranges=value_ranges,
                scalars=frozenset(s.name for s in fixed.scalars),
            )
        except ReproError:
            proven = False
        can_validate = validate_inputs is not None and bool(validate_sizes)
        if not proven and not can_validate:
            notes.append(
                "tiling skipped: not proven fully permutable and no "
                "validation inputs supplied"
            )
        else:
            chosen_tile = tile or pdat_tile(machine.l1)
            vars_ = as_perfect_nest(nest_stmt).loop_vars
            try:
                candidate = tile_program(
                    fixed,
                    {v: chosen_tile for v in vars_},
                    nest_index=_main_nest_index(fixed),
                    name=f"{program.name}_tiled",
                )
                if undo_sinking:
                    candidate = split_point_guards(
                        propagate_guard_facts(
                            unswitch_invariant_guards(candidate)
                        )
                    )
                if proven:
                    notes.append(
                        f"tiling proven legal (fully permutable), tile {chosen_tile}"
                    )
                    if can_validate:
                        validate(candidate)
                else:
                    validate(candidate)
                    notes.append(
                        f"tiling validated by execution, tile {chosen_tile}"
                    )
                tiled = candidate
            except (TransformError, ReproError) as exc:
                notes.append(f"tiling failed: {exc}")
                tiled = None
                chosen_tile = None

    return OptimizationResult(
        original=program,
        fixdeps=report,
        fixed=fixed,
        tiled=tiled,
        tile=chosen_tile,
        notes=notes,
    )


def _main_nest_index(program: Program) -> int:
    """Index of the deepest top-level loop (skips ElimRW pre-copy loops)."""
    from repro.ir.stmt import Loop

    best, best_depth = 0, -1
    for pos, stmt in enumerate(program.body):
        if isinstance(stmt, Loop):
            depth = as_perfect_nest(stmt).depth
            if depth > best_depth:
                best, best_depth = pos, depth
    return best
