"""Recursive-descent parser for the mini-Fortran frontend.

Grammar (newline-separated statements)::

    program   := 'program' NAME NL decl* 'begin' NL stmt* 'end' NL?
    decl      := 'param' names NL
               | ('real' | 'integer') vardecl (',' vardecl)* NL
               | 'output' names NL
    vardecl   := NAME [ '(' expr (',' expr)* ')' ]
    stmt      := assign | do | if
    assign    := lvalue '=' expr NL
    do        := 'do' NAME '=' expr ',' expr [',' expr] NL stmt* 'end' 'do' NL
    if        := 'if' '(' cond ')' 'then' NL stmt* ['else' NL stmt*]
                 'end' 'if' NL
    cond      := disj;  disj := conj ('||' conj)*;  conj := atom ('&&' atom)*
    atom      := '!!' atom | expr CMP expr | '(' cond ')'
    expr      := term (('+'|'-') term)*
    term      := factor (('*'|'/') factor)*
    factor    := ['-'] (NUMBER | call | lvalue | NAME | '(' expr ')')
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend.lexer import Token, tokenize
from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    UnOp,
    VarRef,
)
from repro.ir.program import ArrayDecl, Program, ScalarDecl
from repro.ir.stmt import Assign, If, Loop, Stmt

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, source: str):
        self.tokens = list(tokenize(source))
        self.pos = 0
        self.arrays: dict[str, ArrayDecl] = {}
        self.scalars: dict[str, ScalarDecl] = {}
        self.params: list[str] = []
        self.outputs: list[str] = []

    # -- token helpers ------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.line, tok.col)
        return self.next()

    def skip_newlines(self) -> None:
        while self.at("newline"):
            self.next()

    def end_of_stmt(self) -> None:
        if self.at("eof"):
            return
        self.expect("newline")
        self.skip_newlines()

    # -- declarations ------------------------------------------------------
    def parse(self) -> Program:
        self.skip_newlines()
        self.expect("kw", "program")
        name = self.expect("name").text
        self.end_of_stmt()
        while not self.at("kw", "begin"):
            self._decl()
        self.expect("kw", "begin")
        self.end_of_stmt()
        body: list[Stmt] = []
        while not self.at("kw", "end"):
            body.append(self._stmt())
        self.expect("kw", "end")
        self.skip_newlines()
        self.expect("eof")
        return Program(
            name,
            tuple(self.params),
            tuple(self.arrays.values()),
            tuple(self.scalars.values()),
            tuple(body),
            tuple(self.outputs),
        )

    def _names(self) -> list[str]:
        names = [self.expect("name").text]
        while self.at("op", ","):
            self.next()
            names.append(self.expect("name").text)
        return names

    def _decl(self) -> None:
        tok = self.peek()
        if self.at("kw", "param"):
            self.next()
            self.params.extend(self._names())
        elif self.at("kw", "real") or self.at("kw", "integer"):
            dtype = "f8" if self.next().text == "real" else "i8"
            while True:
                name = self.expect("name").text
                if self.at("op", "("):
                    self.next()
                    extents = [self._expr()]
                    while self.at("op", ","):
                        self.next()
                        extents.append(self._expr())
                    self.expect("op", ")")
                    self.arrays[name] = ArrayDecl(name, tuple(extents), dtype)
                else:
                    self.scalars[name] = ScalarDecl(name, dtype)
                if not self.at("op", ","):
                    break
                self.next()
        elif self.at("kw", "output"):
            self.next()
            self.outputs.extend(self._names())
        else:
            raise ParseError(f"unexpected {tok.text!r} in declarations", tok.line, tok.col)
        self.end_of_stmt()

    # -- statements -------------------------------------------------------------
    def _stmt(self) -> Stmt:
        if self.at("kw", "do"):
            return self._do()
        if self.at("kw", "if"):
            return self._if()
        return self._assign()

    def _assign(self) -> Stmt:
        tok = self.expect("name")
        target: VarRef | ArrayRef
        if self.at("op", "("):
            target = self._array_ref(tok)
        else:
            target = VarRef(tok.text)
        self.expect("op", "=")
        value = self._expr()
        self.end_of_stmt()
        return Assign(target, value)

    def _do(self) -> Stmt:
        self.expect("kw", "do")
        var = self.expect("name").text
        self.expect("op", "=")
        lower = self._expr()
        self.expect("op", ",")
        upper = self._expr()
        step: Expr = Const(1)
        if self.at("op", ","):
            self.next()
            step = self._expr()
        self.end_of_stmt()
        body: list[Stmt] = []
        while not self.at("kw", "end"):
            body.append(self._stmt())
        self.expect("kw", "end")
        self.expect("kw", "do")
        self.end_of_stmt()
        return Loop(var, lower, upper, body, step)

    def _if(self) -> Stmt:
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self._cond()
        self.expect("op", ")")
        self.expect("kw", "then")
        self.end_of_stmt()
        then: list[Stmt] = []
        orelse: list[Stmt] = []
        while not (self.at("kw", "end") or self.at("kw", "else")):
            then.append(self._stmt())
        if self.at("kw", "else"):
            self.next()
            self.end_of_stmt()
            while not self.at("kw", "end"):
                orelse.append(self._stmt())
        self.expect("kw", "end")
        self.expect("kw", "if")
        self.end_of_stmt()
        return If(cond, then, orelse)

    # -- conditions ----------------------------------------------------------
    def _cond(self) -> Expr:
        left = self._conj()
        parts = [left]
        while self.at("op", "||"):
            self.next()
            parts.append(self._conj())
        return parts[0] if len(parts) == 1 else LogicalOr(parts)

    def _conj(self) -> Expr:
        parts = [self._cond_atom()]
        while self.at("op", "&&"):
            self.next()
            parts.append(self._cond_atom())
        return parts[0] if len(parts) == 1 else LogicalAnd(parts)

    def _cond_atom(self) -> Expr:
        if self.at("op", "!!"):
            self.next()
            return LogicalNot(self._cond_atom())
        if self.at("op", "("):
            # Could be a parenthesised condition or an arithmetic group.
            saved = self.pos
            self.next()
            try:
                inner = self._cond()
                self.expect("op", ")")
                if not self._peek_cmp():
                    return inner
            except ParseError:
                pass
            self.pos = saved
        lhs = self._expr()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _CMP_OPS:
            self.next()
            rhs = self._expr()
            return Cmp(tok.text, lhs, rhs)
        raise ParseError(f"expected comparison, found {tok.text!r}", tok.line, tok.col)

    def _peek_cmp(self) -> bool:
        tok = self.peek()
        return tok.kind == "op" and tok.text in _CMP_OPS

    # -- expressions ----------------------------------------------------------
    def _expr(self) -> Expr:
        node = self._term()
        while self.at("op", "+") or self.at("op", "-"):
            op = self.next().text
            node = BinOp(op, node, self._term())
        return node

    def _term(self) -> Expr:
        node = self._factor()
        while self.at("op", "*") or self.at("op", "/"):
            op = self.next().text
            node = BinOp(op, node, self._factor())
        return node

    def _factor(self) -> Expr:
        if self.at("op", "-"):
            self.next()
            inner = self._factor()
            # Fold negative literals so `-2` round-trips as Const(-2).
            if isinstance(inner, Const):
                return Const(-inner.value)
            return UnOp("-", inner)
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return Const(int(tok.text))
        if tok.kind == "float":
            self.next()
            return Const(float(tok.text))
        if tok.kind == "kw" and tok.text in ("sqrt", "abs", "min", "max"):
            self.next()
            self.expect("op", "(")
            args = [self._expr()]
            while self.at("op", ","):
                self.next()
                args.append(self._expr())
            self.expect("op", ")")
            return Call(tok.text, args)
        if tok.kind == "name":
            self.next()
            if self.at("op", "("):
                return self._array_ref(tok)
            return VarRef(tok.text)
        if self.at("op", "("):
            self.next()
            inner = self._expr()
            self.expect("op", ")")
            return inner
        raise ParseError(f"unexpected {tok.text!r} in expression", tok.line, tok.col)

    def _array_ref(self, name_tok: Token) -> ArrayRef:
        self.expect("op", "(")
        indices = [self._expr()]
        while self.at("op", ","):
            self.next()
            indices.append(self._expr())
        self.expect("op", ")")
        return ArrayRef(name_tok.text, indices)


def parse_program(source: str) -> Program:
    """Parse mini-Fortran *source* into a validated :class:`Program`."""
    return _Parser(source).parse()
