"""Tokeniser for the mini-Fortran frontend."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError

KEYWORDS = frozenset(
    {
        "program", "param", "real", "integer", "output", "begin", "end",
        "do", "if", "then", "else", "sqrt", "abs", "min", "max",
    }
)

_DOT_OPS = {
    ".eq.": "==",
    ".ne.": "!=",
    ".lt.": "<",
    ".le.": "<=",
    ".gt.": ">",
    ".ge.": ">=",
    ".and.": "&&",
    ".or.": "||",
    ".not.": "!!",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t]+)
  | (?P<newline>\n)
  | (?P<dotop>\.(?:eq|ne|lt|le|gt|ge|and|or|not)\.)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>==|!=|<=|>=|&&|\|\||[-+*/(),=<>])
  | (?P<comment>![^\n]*)
    """,
    re.VERBOSE | re.IGNORECASE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'kw', 'name', 'int', 'float', 'op', 'newline', 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens, folding Fortran dot-operators onto C spellings and
    collapsing blank/comment-only lines."""
    line = 1
    col = 1
    pos = 0
    pending_newline = False
    emitted_any = False
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line, col)
        pos = m.end()
        text = m.group(0)
        kind = m.lastgroup
        if kind == "ws" or kind == "comment":
            col += len(text)
            continue
        if kind == "newline":
            if emitted_any:
                pending_newline = True
            line += 1
            col = 1
            continue
        if pending_newline:
            yield Token("newline", "\n", line - 1, 0)
            pending_newline = False
        tok_line, tok_col = line, col
        col += len(text)
        if kind == "dotop":
            yield Token("op", _DOT_OPS[text.lower()], tok_line, tok_col)
        elif kind == "name":
            lowered = text.lower()
            if lowered in KEYWORDS:
                yield Token("kw", lowered, tok_line, tok_col)
            else:
                yield Token("name", text, tok_line, tok_col)
        elif kind in ("int", "float", "op"):
            yield Token(kind, text, tok_line, tok_col)
        emitted_any = True
    if emitted_any:
        yield Token("newline", "\n", line, col)
    yield Token("eof", "", line, col)
