"""Mini-Fortran text frontend.

Programs can be written in the paper's FORTRAN-like notation and parsed
into the IR::

    from repro.frontend import parse_program

    program = parse_program('''
    program axpy
      param N
      real X(N), Y(N)
      real a
      output Y
    begin
      a = 2.0
      do i = 1, N
        Y(i) = Y(i) + a * X(i)
      end do
    end
    ''')

Comparison operators accept both Fortran (``.EQ.``, ``.LT.`` ...) and C
(``==``, ``<`` ...) spellings; ``!`` starts a comment.
"""

from repro.frontend.lexer import Token, tokenize
from repro.frontend.parser import parse_program

__all__ = ["Token", "tokenize", "parse_program"]
