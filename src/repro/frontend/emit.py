"""Emitting parseable mini-Fortran source from IR.

The pretty-printer (:mod:`repro.ir.printer`) targets the paper's listing
style; this emitter targets the *frontend grammar*, so programs round-trip:

    parse_program(to_source(p)) == p        (structurally)

which the property tests exercise on random programs. Useful for saving
transformed kernels as standalone, re-parseable artefacts.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Select,
    UnOp,
    VarRef,
)
from repro.ir.printer import expr_str
from repro.ir.program import Program
from repro.ir.stmt import Assign, If, Loop, Stmt

_CMP_TEXT = {"==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _expr(e: Expr, prec: int = 0) -> str:
    if isinstance(e, Const):
        text = repr(e.value) if isinstance(e.value, float) else str(e.value)
        if text.startswith("-"):
            # the parser folds unary minus on literals back into Const
            return f"(-{text[1:]})"
        return text
    if isinstance(e, VarRef):
        return e.name
    if isinstance(e, ArrayRef):
        return f"{e.name}({', '.join(_expr(x) for x in e.indices)})"
    if isinstance(e, BinOp):
        p = 5 if e.op in "+-" else 6
        lhs = _expr(e.lhs, p)
        rhs = _expr(e.rhs, p + 1)
        text = f"{lhs} {e.op} {rhs}"
        return f"({text})" if p < prec else text
    if isinstance(e, UnOp):
        inner = _expr(e.operand, 7)
        return f"(-{inner})"
    if isinstance(e, Call):
        return f"{e.func}({', '.join(_expr(a) for a in e.args)})"
    if isinstance(e, Cmp):
        return f"{_expr(e.lhs, 5)} {_CMP_TEXT[e.op]} {_expr(e.rhs, 5)}"
    if isinstance(e, LogicalAnd):
        return " .AND. ".join(_cond_atom(a) for a in e.args)
    if isinstance(e, LogicalOr):
        return " .OR. ".join(_cond_atom(a) for a in e.args)
    if isinstance(e, LogicalNot):
        return f".NOT. {_cond_atom(e.arg)}"
    if isinstance(e, Select):
        raise IRError(
            "merge()/Select has no frontend syntax; lower it first "
            f"(offending expression: {expr_str(e)})"
        )
    raise IRError(f"cannot emit expression {e!r}")


def _cond_atom(e: Expr) -> str:
    text = _expr(e)
    if isinstance(e, (LogicalAnd, LogicalOr)):
        return f"({text})"
    return text


def _stmt(s: Stmt, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    if isinstance(s, Assign):
        lines.append(f"{pad}{_expr(s.target)} = {_expr(s.value)}")
    elif isinstance(s, Loop):
        head = f"{pad}do {s.var} = {_expr(s.lower)}, {_expr(s.upper)}"
        if not s.has_unit_step:
            head += f", {_expr(s.step)}"
        lines.append(head)
        for t in s.body:
            _stmt(t, lines, depth + 1)
        lines.append(f"{pad}end do")
    elif isinstance(s, If):
        lines.append(f"{pad}if ({_expr(s.cond)}) then")
        for t in s.then:
            _stmt(t, lines, depth + 1)
        if s.orelse:
            lines.append(f"{pad}else")
            for t in s.orelse:
                _stmt(t, lines, depth + 1)
        lines.append(f"{pad}end if")
    else:
        raise IRError(f"cannot emit statement {s!r}")


def to_source(program: Program) -> str:
    """Parseable mini-Fortran text for *program*."""
    lines = [f"program {program.name}"]
    if program.params:
        lines.append(f"  param {', '.join(program.params)}")
    for a in program.arrays:
        dims = ", ".join(_expr(e) for e in a.extents)
        kw = "integer" if a.dtype == "i8" else "real"
        lines.append(f"  {kw} {a.name}({dims})")
    for s in program.scalars:
        kw = "integer" if s.dtype == "i8" else "real"
        lines.append(f"  {kw} {s.name}")
    if program.outputs:
        lines.append(f"  output {', '.join(program.outputs)}")
    lines.append("begin")
    for stmt in program.body:
        _stmt(stmt, lines, 1)
    lines.append("end")
    return "\n".join(lines) + "\n"
