"""Gauss–Seidel stencil (extension kernel).

The paper mentions Gauss–Seidel alongside Jacobi as a stencil that defeats
data shackling [8]. Unlike Jacobi it updates **in place** — each sweep
reads the *current* time step's west/north neighbours and the previous
step's east/south ones — so there is nothing to fuse (a single nest
already) and no anti-dependence to copy away: the whole tiling story is
skewing legality, which our exact polyhedral checker proves.

Included as the natural "future work" extension: it reuses the
unimodular/legality/tiling layers end-to-end on a kernel the paper only
names.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.ir import ArrayDecl, Program, assign, idx, loop, sym
from repro.kernels.inputs import default_rng, grid_field

NAME = "gauss_seidel"
PARAMS = ("N", "M")
DEFAULT_PARAMS = {"N": 32, "M": 8}

_N, _M = sym("N"), sym("M")
_t, _i, _j = sym("t"), sym("i"), sym("j")


def sequential() -> Program:
    """In-place 4-point Gauss–Seidel sweeps."""
    body = loop(
        "t",
        0,
        _M,
        [
            loop(
                "i",
                2,
                _N - 1,
                [
                    loop(
                        "j",
                        2,
                        _N - 1,
                        [
                            assign(
                                idx("A", _j, _i),
                                (
                                    idx("A", _j, _i - 1)
                                    + idx("A", _j - 1, _i)
                                    + idx("A", _j + 1, _i)
                                    + idx("A", _j, _i + 1)
                                )
                                * 0.25,
                            )
                        ],
                    )
                ],
            )
        ],
    )
    return Program(
        "gauss_seidel_seq", PARAMS, (ArrayDecl("A", (_N, _N)),), (), (body,),
        outputs=("A",),
    )


#: The (t, i, j) skew making the nest fully permutable. Gauss–Seidel's
#: dependences are (0,1,0), (0,0,1) (within a sweep, via the west/north
#: reads) and the time-carried (1,-1,0), (1,0,-1) (east/south reads of the
#: previous sweep), so skewing each space loop by **1t** already suffices:
#: (1,-1,0) -> (1, 0, 1). Proven by the exact polyhedral legality check in
#: the tests; the unit skew also keeps every tile bound integral.
SKEWS = {1: {0: 1}, 2: {0: 1}}
ORDER = (0, 1, 2)


def tiled(tile: int = 8, *, time_tile: int | None = None, undo_sinking: bool = True) -> Program:
    """Skew the space loops by t and tile all three loops."""
    from repro.kernels.recipes import build_variant

    return build_variant(NAME, "tiled", tile=tile, time_tile=time_tile)


def fusable() -> Program:
    """Already a single perfect nest; provided for interface uniformity."""
    return sequential()


def make_inputs(params: Mapping[str, int], rng=None) -> dict[str, np.ndarray]:
    """Random initial field."""
    rng = rng or default_rng()
    return {"A": grid_field(params["N"], rng)}


def reference(params: Mapping[str, int], inputs: Mapping[str, np.ndarray]) -> dict:
    """Literal numpy transcription (loops; Gauss–Seidel is sequential in
    its sweeps, so no vectorised shortcut exists along both axes)."""
    a = np.array(inputs["A"], dtype=np.float64)
    n, m = params["N"], params["M"]
    for _ in range(m + 1):
        for i in range(1, n - 1):  # 0-based column index
            for j in range(1, n - 1):
                a[j, i] = 0.25 * (
                    a[j, i - 1] + a[j - 1, i] + a[j + 1, i] + a[j, i + 1]
                )
    return {"A": a}
