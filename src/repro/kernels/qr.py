"""QR factorisation, Householder-style (paper Fig. 1b / Fig. 3b / Fig. 4b).

Per step ``i``: column norm, reflector normalisation, products
``X(j,i) = sum_k A(k,i) A(k,j)``, and the trailing update. The program is
the simplified form the paper takes from Kodukula's thesis; it is not a
textbook QR, so the reference is a literal (vectorised) numpy transcription
of the same operation sequence.

The fused form (dims ``(j, k)``, context ``i``) violates:

- ``WR_norm(2,3)`` — the paper's reported dependence; fixed by collapsing
  the ``k`` dimension of the norm accumulation (the Fig. 4b ``P`` loop);
- the flow dependences from the column scaling into the ``X`` products and
  from the ``X`` accumulation into the trailing update — the paper's
  Fig. 3b/4b listings elide these (their printed QR codes are garbled by
  transposition typos), but they are real under Fig. 1b semantics; FixDeps
  collapses the scaling's ``j`` dimension and the accumulation's ``k``
  dimension, after which the nest is legal.

Preparation: the imperfect ``X`` nest (init + accumulation) is distributed
into two perfect nests before fusion.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.ir import ArrayDecl, Program, ScalarDecl, assign, idx, loop, sym
from repro.ir.builder import sqrt
from repro.kernels.inputs import default_rng
from repro.pipeline.passes import FusionSpec
from repro.trans.fixdeps import FixDepsReport, fix_dependences
from repro.trans.fusion import NestEmbedding
from repro.trans.model import FusedNest

NAME = "qr"
PARAMS = ("N",)
DEFAULT_PARAMS = {"N": 32}

_N = sym("N")
_i, _j, _k = sym("i"), sym("j"), sym("k")
_norm, _norm2, _asqr = sym("norm"), sym("norm2"), sym("asqr")

_AT_ORIGIN = NestEmbedding(placement={"j": _i, "k": _i})

#: The Figure-3(b) fused form: dims (j, k), both from i to N.
FUSION = FusionSpec(
    fused_loops=(("j", _i, _N), ("k", _i, _N)),
    embeddings=(
        _AT_ORIGIN,                                               # norm = 0
        NestEmbedding(var_map={"j": "k"}, placement={"j": _i}),   # norm +=
        _AT_ORIGIN,                                               # norm2 = sqrt
        _AT_ORIGIN,                                               # asqr = ...
        _AT_ORIGIN,                                               # A(i,i) = ||v||
        NestEmbedding(var_map={"j": "j"}, placement={"k": _i}),   # scale
        NestEmbedding(var_map={"j": "j"}, placement={"k": _i}),   # X init
        NestEmbedding(var_map={"j": "j", "k": "k"}),              # X acc
        NestEmbedding(var_map={"j": "j", "k": "k"}),              # update
    ),
    context_depth=1,
)


def _decls():
    return (
        (ArrayDecl("A", (_N, _N)), ArrayDecl("X", (_N, _N))),
        (ScalarDecl("norm"), ScalarDecl("norm2"), ScalarDecl("asqr")),
    )


def _householder_pivot():
    """norm2 = sqrt(norm); asqr = A(i,i)^2; A(i,i) = ||v||."""
    aii = idx("A", _i, _i)
    return [
        assign("norm2", sqrt(_norm)),
        assign("asqr", aii * aii),
        assign(aii, sqrt(_norm - _asqr + (aii - _norm2) * (aii - _norm2))),
    ]


def sequential() -> Program:
    """The Figure-1(b) program (imperfect X nest intact)."""
    arrays, scalars = _decls()
    body = loop(
        "i",
        1,
        _N,
        [
            assign("norm", 0.0),
            loop("j", _i, _N, [assign("norm", _norm + idx("A", _j, _i) * idx("A", _j, _i))]),
            *_householder_pivot(),
            loop("j", _i + 1, _N, [assign(idx("A", _j, _i), idx("A", _j, _i) / idx("A", _i, _i))]),
            loop(
                "j",
                _i + 1,
                _N,
                [
                    assign(idx("X", _j, _i), 0.0),
                    loop(
                        "k",
                        _i,
                        _N,
                        [
                            assign(
                                idx("X", _j, _i),
                                idx("X", _j, _i) + idx("A", _k, _i) * idx("A", _k, _j),
                            )
                        ],
                    ),
                ],
            ),
            loop(
                "j",
                _i + 1,
                _N,
                [
                    loop(
                        "k",
                        _i + 1,
                        _N,
                        [
                            assign(
                                idx("A", _k, _j),
                                idx("A", _k, _j) - idx("A", _k, _i) * idx("X", _j, _i),
                            )
                        ],
                    )
                ],
            ),
        ],
    )
    return Program("qr_seq", PARAMS, arrays, scalars, (body,), outputs=("A", "X"))


def fusable() -> Program:
    """Figure-1(b) with the imperfect X nest distributed into init +
    accumulation loops.

    The split is *derived*, not hand-written: the statement dependence
    graph of the X nest has no cycle between the init and the accumulation
    (each ``X(j,i)`` is private to its ``j`` iteration), so
    :func:`repro.trans.distribution.distribute_loop` may separate them.
    """
    from repro.trans.distribution import distribute_loop

    arrays, scalars = _decls()
    seq = sequential()
    outer = seq.body[0]
    items = list(outer.body)
    x_nest = items[6]
    distributed = distribute_loop(x_nest, scalars=frozenset(s.name for s in scalars))
    if len(distributed) != 2:
        raise AssertionError("X nest must distribute into init + accumulation")
    items[6:7] = distributed
    body = loop("i", 1, _N, items)
    return Program(
        "qr_fusable", PARAMS, arrays, scalars, (body,), outputs=("A", "X")
    )


def fused_nest() -> FusedNest:
    """The Figure-3(b) fused form (:data:`FUSION` on :func:`fusable`)."""
    from repro.kernels.recipes import build_fused_nest

    return build_fused_nest(NAME)


def fixdeps_report() -> FixDepsReport:
    """FixDeps audit; expected collapses: G2.k, G4.j, G6.k; no copies."""
    return fix_dependences(fused_nest())


def fixed() -> Program:
    """The Figure-4(b) form."""
    from repro.kernels.recipes import build_variant

    return build_variant(NAME, "fixed")


def tiled(tile: int = 8, *, undo_sinking: bool = True) -> Program:
    """Sec. 4: tile the outermost ``i`` and ``j`` loops."""
    from repro.kernels.recipes import build_variant

    return build_variant(NAME, "tiled" if undo_sinking else "tiled_sunk", tile=tile)


def make_inputs(params: Mapping[str, int], rng=None) -> dict[str, np.ndarray]:
    """Random near-orthogonal input.

    The paper's simplified QR (Fig. 1b, "inessential statements removed")
    is not norm-preserving: on generic matrices the trailing updates grow
    multiplicatively and overflow doubles well below the experiment sizes.
    With an orthogonal input the iterates stay O(1) through N in the
    hundreds, which keeps every variant finite; the *access pattern* — all
    the machine model observes — is input-independent for QR anyway.
    """
    rng = rng or default_rng()
    n = params["N"]
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    return {"A": q, "X": np.zeros((n, n))}


def reference(params: Mapping[str, int], inputs: Mapping[str, np.ndarray]) -> dict:
    """Vectorised numpy transcription of the Figure-1(b) sequence."""
    a = np.array(inputs["A"], dtype=np.float64)
    x = np.array(inputs["X"], dtype=np.float64)
    n = params["N"]
    for i in range(n):
        col = a[i:, i]
        norm = float(col @ col)
        norm2 = float(np.sqrt(norm))
        asqr = a[i, i] ** 2
        a[i, i] = np.sqrt(norm - asqr + (a[i, i] - norm2) ** 2)
        a[i + 1 :, i] /= a[i, i]
        if i + 1 < n:
            x[i + 1 :, i] = a[i:, i + 1 :].T @ a[i:, i]
            a[i + 1 :, i + 1 :] -= np.outer(a[i + 1 :, i], x[i + 1 :, i])
    return {"A": a, "X": x}
