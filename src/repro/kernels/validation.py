"""Cross-variant validation: the executable Theorems 1–2 as a library API.

``validate_kernel`` runs every variant of a kernel (sequential, fusable,
fused-unfixed, fixed, tiled at several tile sizes) against the numpy
reference on deterministic inputs and reports which agree. The *fused*
variant is expected to diverge exactly when the kernel has
fusion-preventing dependences — that expectation is part of the report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exec.compiled import run_compiled
from repro.kernels.registry import get_kernel

#: Relative tolerance for fp comparisons across reordered variants.
RTOL = 1e-8
ATOL = 1e-10


@dataclass(frozen=True)
class VariantCheck:
    """Outcome for one (variant, size) pair."""

    variant: str
    n: int
    tile: int | None
    matches_reference: bool


@dataclass(frozen=True)
class ValidationMatrix:
    """All checks for one kernel."""

    kernel: str
    checks: tuple[VariantCheck, ...]
    #: True when the raw fusion is (correctly) not equivalent for some size.
    fusion_requires_fixing: bool

    def all_fixed_variants_valid(self) -> bool:
        """Every non-'fused' variant matched the reference everywhere."""
        return all(c.matches_reference for c in self.checks if c.variant != "fused")

    def failures(self) -> list[VariantCheck]:
        """Non-'fused' checks that diverged (should be empty)."""
        return [
            c for c in self.checks if c.variant != "fused" and not c.matches_reference
        ]


def _matches(mod, program, params, inputs) -> bool:
    ref = mod.reference(params, inputs)
    out = run_compiled(program, params, inputs)
    for name in program.outputs:
        if name not in ref:
            continue
        if not np.allclose(out.arrays[name], ref[name], rtol=RTOL, atol=ATOL):
            return False
    return True


def validate_kernel(
    kernel: str,
    sizes: tuple[int, ...] = (6, 9, 13),
    tiles: tuple[int, ...] = (3, 5),
) -> ValidationMatrix:
    """Run the full variant matrix for *kernel*."""
    mod = get_kernel(kernel)
    checks: list[VariantCheck] = []
    fused_diverged = False

    programs: list[tuple[str, int | None, object]] = [
        ("sequential", None, mod.sequential()),
        ("fusable", None, mod.fusable()),
        ("fused", None, mod.fused_nest().to_program()),
        ("fixed", None, mod.fixed()),
    ]
    programs.extend(("tiled", t, mod.tiled(t)) for t in tiles)

    for n in sizes:
        params = {"N": n}
        if "M" in mod.PARAMS:
            params["M"] = 4
        inputs = mod.make_inputs(params)
        for variant, tile, program in programs:
            ok = _matches(mod, program, params, inputs)
            checks.append(VariantCheck(variant, n, tile, ok))
            if variant == "fused" and not ok:
                fused_diverged = True
    return ValidationMatrix(
        kernel=kernel,
        checks=tuple(checks),
        fusion_requires_fixing=fused_diverged,
    )
