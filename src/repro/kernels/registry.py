"""Kernel lookup by name."""

from __future__ import annotations

from types import ModuleType


def _modules() -> dict[str, ModuleType]:
    from repro.kernels import cholesky, gauss_seidel, jacobi, lu, qr

    return {
        "lu": lu,
        "qr": qr,
        "cholesky": cholesky,
        "jacobi": jacobi,
        "gauss_seidel": gauss_seidel,
    }


#: Kernel names in the paper's Figure-1 order (the evaluation suite).
KERNELS = ("lu", "qr", "cholesky", "jacobi")

#: Extension kernels beyond the paper's four (Sec. 5 mentions
#: Gauss–Seidel as a stencil data shackling cannot handle).
EXTENSION_KERNELS = ("gauss_seidel",)


def get_kernel(name: str) -> ModuleType:
    """The kernel module for *name* (lu / qr / cholesky / jacobi)."""
    mods = _modules()
    if name not in mods:
        raise KeyError(f"unknown kernel {name!r}; choose from {sorted(mods)}")
    return mods[name]
