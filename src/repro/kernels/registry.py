"""Kernel lookup by name.

One data-driven table (:data:`_KERNEL_TABLE`) is the single source of
truth: the :data:`KERNELS` / :data:`EXTENSION_KERNELS` tuples, the error
message of :func:`get_kernel`, and the recipe registry's kernel set are all
derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Callable, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.pipeline.recipe import VariantRecipe


@dataclass(frozen=True)
class KernelEntry:
    """One registered kernel: import hook + suite classification."""

    name: str
    load: Callable[[], ModuleType]
    extension: bool = False


def _load(module: str) -> Callable[[], ModuleType]:
    def loader() -> ModuleType:
        import importlib

        return importlib.import_module(f"repro.kernels.{module}")

    return loader


#: Paper's Figure-1 kernels first (the evaluation suite), then extensions
#: (Sec. 5 mentions Gauss–Seidel as a stencil data shackling cannot handle).
_KERNEL_TABLE = (
    KernelEntry("lu", _load("lu")),
    KernelEntry("qr", _load("qr")),
    KernelEntry("cholesky", _load("cholesky")),
    KernelEntry("jacobi", _load("jacobi")),
    KernelEntry("gauss_seidel", _load("gauss_seidel"), extension=True),
)

#: Kernel names in the paper's Figure-1 order (the evaluation suite).
KERNELS = tuple(e.name for e in _KERNEL_TABLE if not e.extension)

#: Extension kernels beyond the paper's four.
EXTENSION_KERNELS = tuple(e.name for e in _KERNEL_TABLE if e.extension)

#: Every registered kernel name.
ALL_KERNELS = KERNELS + EXTENSION_KERNELS

_BY_NAME = {e.name: e for e in _KERNEL_TABLE}


def get_kernel(name: str) -> ModuleType:
    """The kernel module for *name* (one of lu / qr / cholesky / jacobi /
    gauss_seidel)."""
    entry = _BY_NAME.get(name)
    if entry is None:
        raise KeyError(
            f"unknown kernel {name!r}; choose from {sorted(_BY_NAME)}"
        )
    return entry.load()


def get_recipe(kernel: str, variant: str) -> "VariantRecipe":
    """The registered :class:`VariantRecipe` for (kernel, variant)."""
    from repro.kernels import recipes

    return recipes.get_recipe(kernel, variant)


def variants_for(kernel: str) -> tuple[str, ...]:
    """Registered variant names for *kernel*."""
    from repro.kernels import recipes

    return recipes.variants_for(kernel)
