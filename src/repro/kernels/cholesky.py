"""Cholesky factorisation (paper Fig. 1c / Fig. 3c / Fig. 4c).

Per step ``k``: square root of the pivot, scale of the column below it,
symmetric rank-1 update of the trailing lower triangle. The fused form is
already legal — ``FixDeps`` verifies that and changes nothing (the paper's
observation "the fused program for Cholesky is already legal"). The tiled
variant blocks the ``k`` loop and sinks the point loop inside ``j``
(right-looking blocked Cholesky).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.ir import ArrayDecl, Program, assign, idx, loop, sym
from repro.ir.builder import sqrt
from repro.kernels.inputs import default_rng, spd_matrix
from repro.pipeline.passes import FusionSpec
from repro.trans.fixdeps import FixDepsReport, fix_dependences
from repro.trans.fusion import NestEmbedding
from repro.trans.model import FusedNest

NAME = "cholesky"
PARAMS = ("N",)
DEFAULT_PARAMS = {"N": 32}

_N = sym("N")
_k, _j, _i = sym("k"), sym("j"), sym("i")

#: The Figure-3(c) fused form: dims (j, i), triangular ``i >= j``.
FUSION = FusionSpec(
    fused_loops=(("j", _k + 1, _N), ("i", _j, _N)),
    embeddings=(
        NestEmbedding(placement={"j": _k + 1, "i": _k + 1}),  # sqrt
        NestEmbedding(var_map={"i": "i"}, placement={"j": _k + 1}),  # scale
        NestEmbedding(var_map={"j": "j", "i": "i"}),  # update
    ),
    context_depth=1,
    epilogue_from=1,
)


def sequential() -> Program:
    """The Figure-1(c) program (lower-triangular, in place)."""
    body = loop(
        "k",
        1,
        _N,
        [
            assign(idx("A", _k, _k), sqrt(idx("A", _k, _k))),
            loop("i", _k + 1, _N, [assign(idx("A", _i, _k), idx("A", _i, _k) / idx("A", _k, _k))]),
            loop(
                "j",
                _k + 1,
                _N,
                [
                    loop(
                        "i",
                        _j,
                        _N,
                        [
                            assign(
                                idx("A", _i, _j),
                                idx("A", _i, _j) - idx("A", _i, _k) * idx("A", _j, _k),
                            )
                        ],
                    )
                ],
            ),
        ],
    )
    return Program(
        "cholesky_seq", PARAMS, (ArrayDecl("A", (_N, _N)),), (), (body,), outputs=("A",)
    )


def fusable() -> Program:
    """Figure-3(c)'s peeled form: ``k`` to N-1 with the last sqrt split off.

    At ``k = N`` the inner loops are empty, so peeling leaves only the final
    ``A(N,N) = sqrt(A(N,N))``.
    """
    seq = sequential()
    outer = seq.body[0]
    from repro.trans.peel import peel_last

    shortened, peeled = peel_last(outer)
    epilogue = (peeled[0],)  # the sqrt; the peeled empty loops are dropped
    return seq.with_body((shortened,) + epilogue).with_name("cholesky_fusable")


def fused_nest() -> FusedNest:
    """The Figure-3(c) fused form (:data:`FUSION` on :func:`fusable`)."""
    from repro.kernels.recipes import build_fused_nest

    return build_fused_nest(NAME)


def fixdeps_report() -> FixDepsReport:
    """FixDeps audit; expected: no collapses, no copies (legal as fused)."""
    return fix_dependences(fused_nest())


def fixed() -> Program:
    """The Figure-4(c) program."""
    from repro.kernels.recipes import build_variant

    return build_variant(NAME, "fixed")


def tiled(tile: int = 8, *, undo_sinking: bool = True) -> Program:
    """Sec. 4: tile the outermost ``k`` loop (point loop sunk inside j)."""
    from repro.kernels.recipes import build_variant

    return build_variant(NAME, "tiled" if undo_sinking else "tiled_sunk", tile=tile)


def make_inputs(params: Mapping[str, int], rng=None) -> dict[str, np.ndarray]:
    """Random SPD input."""
    rng = rng or default_rng()
    return {"A": spd_matrix(params["N"], rng)}


def reference(params: Mapping[str, int], inputs: Mapping[str, np.ndarray]) -> dict:
    """numpy Cholesky; only the lower triangle (incl. diagonal) is compared.

    The kernel leaves the strict upper triangle of ``A`` untouched, so the
    reference copies it through from the input.
    """
    a0 = np.array(inputs["A"], dtype=np.float64)
    n = params["N"]
    lower = np.linalg.cholesky(a0)
    out = np.triu(a0, 1) + lower
    assert out.shape == (n, n)
    return {"A": out}
