"""The bundled kernels' variants as declarative pass recipes.

One table replaces five hand-rolled builder families: every (kernel,
variant) the experiment harness can measure is a
:class:`~repro.pipeline.recipe.VariantRecipe` built here from the kernel
modules' *definitions* (source programs, fusion embeddings, value ranges)
plus the Section-4 schedule data (tile orders, skews). Adding a variant —
a fused-without-fix ablation, an alternate tile shape — is one entry in
this module, measurable immediately by name through
:func:`repro.experiments.runner.measure_variant`.

The standard variants mirror the paper:

- ``seq``        — the Figure-1 program;
- ``fused``      — the Figure-3 fused nest, emitted *without* fixing
  (semantically broken where fusion-preventing dependences exist);
- ``fixed``      — the Figure-4 program (FixDeps applied);
- ``tiled``      — Section 4: scalar expansion / skewing as needed, tiling,
  code-sinking undone;
- ``tiled_sunk`` — ``tiled`` with the sinking guards left in place (the
  code shape of the paper's Figures 7–8).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ReproError
from repro.ir.program import Program
from repro.pipeline.manager import PassManager, PipelineReport
from repro.pipeline.passes import (
    TILE,
    TIME_TILE,
    ExpandScalar,
    FixDeps,
    Fuse,
    Pass,
    PassContext,
    Scalarize,
    SkewPermute,
    Source,
    Tile,
    ToProgram,
    UndoSinking,
)
from repro.pipeline.recipe import VariantRecipe
from repro.trans.model import FusedNest

_REGISTRY: dict[str, dict[str, VariantRecipe]] | None = None


def _lu() -> Iterable[VariantRecipe]:
    from repro.kernels import lu

    fixed = (
        Source("fusable"),
        Fuse(lu.FUSION),
        FixDeps(rename="lu_fixed", value_ranges=lu.VALUE_RANGES),
    )
    # The pivot row is array-expanded over k before tiling: with k sunk
    # inside j, searches of different steps interleave with the lazy column
    # swaps, so each step needs its own pivot cell.
    tiled = (
        *fixed,
        ExpandScalar("m", "k", "N"),
        Tile({"k": TILE}, order=("kt", "j", "k", "i"), rename="lu_tiled"),
    )
    yield _recipe("lu", "seq", (Source("sequential"),), "Figure 1a")
    yield _recipe("lu", "fused", (Source("fusable"), Fuse(lu.FUSION), ToProgram()),
                  "Figure 3a (unfixed)")
    yield _recipe("lu", "fixed", fixed, "Figure 4a")
    yield _recipe("lu", "tiled", (*tiled, UndoSinking()), "Sec. 4, k-loop tiled")
    yield _recipe("lu", "tiled_sunk", tiled, "tiled, sinking guards kept")


def _qr() -> Iterable[VariantRecipe]:
    from repro.kernels import qr

    fixed = (Source("fusable"), Fuse(qr.FUSION), FixDeps(rename="qr_fixed"))
    tiled = (
        *fixed,
        Tile({"i": TILE, "j": TILE}, order=("it", "jt", "i", "j", "k"),
             rename="qr_tiled"),
    )
    yield _recipe("qr", "seq", (Source("sequential"),), "Figure 1b")
    yield _recipe("qr", "fused", (Source("fusable"), Fuse(qr.FUSION), ToProgram()),
                  "Figure 3b (unfixed)")
    yield _recipe("qr", "fixed", fixed, "Figure 4b")
    yield _recipe("qr", "tiled", (*tiled, UndoSinking()), "Sec. 4, i/j tiled")
    yield _recipe("qr", "tiled_sunk", tiled, "tiled, sinking guards kept")


def _cholesky() -> Iterable[VariantRecipe]:
    from repro.kernels import cholesky

    fixed = (
        Source("fusable"),
        Fuse(cholesky.FUSION),
        FixDeps(rename="cholesky_fixed"),
    )
    tiled = (
        *fixed,
        Tile({"k": TILE}, order=("kt", "j", "k", "i"), rename="cholesky_tiled"),
    )
    yield _recipe("cholesky", "seq", (Source("sequential"),), "Figure 1c")
    yield _recipe("cholesky", "fused",
                  (Source("fusable"), Fuse(cholesky.FUSION), ToProgram()),
                  "Figure 3c (already legal)")
    yield _recipe("cholesky", "fixed", fixed, "Figure 4c")
    yield _recipe("cholesky", "tiled", (*tiled, UndoSinking()),
                  "Sec. 4, k-loop tiled")
    yield _recipe("cholesky", "tiled_sunk", tiled, "tiled, sinking guards kept")


def _jacobi() -> Iterable[VariantRecipe]:
    from repro.kernels import jacobi

    fixed = (
        Source("sequential"),
        Fuse(jacobi.FUSION),
        FixDeps(rename="jacobi_fixed"),
        Scalarize(("L",)),
    )
    # Skew the space loops by time, move time innermost, tile all three.
    # The skewed nest carries no guards, so there is no sinking to undo —
    # ``tiled`` and ``tiled_sunk`` coincide for the stencils.
    tiled = (
        *fixed,
        SkewPermute(
            skews={1: {0: 1}, 2: {0: 1}},
            order=(1, 2, 0),
            new_names=("ii", "jj", "tt"),
            rename="jacobi_skewed",
            nest="t",
        ),
        Tile(
            {"ii": TILE, "jj": TILE, "tt": TIME_TILE},
            order=("iit", "jjt", "ttt", "ii", "jj", "tt"),
            rename="jacobi_tiled",
            nest="ii",
        ),
    )
    yield _recipe("jacobi", "seq", (Source("sequential"),), "Figure 1d")
    yield _recipe("jacobi", "fused",
                  (Source("sequential"), Fuse(jacobi.FUSION), ToProgram()),
                  "Figure 3d (unfixed)")
    yield _recipe("jacobi", "fixed", fixed, "Figure 4d, L scalarised")
    yield _recipe("jacobi", "tiled", tiled, "Sec. 4, skewed + time-tiled")
    yield _recipe("jacobi", "tiled_sunk", tiled, "alias of tiled (no guards)")


def _gauss_seidel() -> Iterable[VariantRecipe]:
    from repro.kernels import gauss_seidel as gs

    tiled = (
        Source("sequential"),
        SkewPermute(
            skews=gs.SKEWS,
            order=gs.ORDER,
            new_names=("tt", "ii", "jj"),
            rename="gauss_seidel_skewed",
            nest=0,
        ),
        Tile(
            {"tt": TIME_TILE, "ii": TILE, "jj": TILE},
            order=("ttt", "iit", "jjt", "tt", "ii", "jj"),
            rename="gauss_seidel_tiled",
            nest=0,
        ),
    )
    yield _recipe("gauss_seidel", "seq", (Source("sequential"),),
                  "in-place 4-point sweeps")
    yield _recipe("gauss_seidel", "tiled", tiled, "skewed + tiled (no fusion stage)")
    yield _recipe("gauss_seidel", "tiled_sunk", tiled, "alias of tiled (no guards)")


def _recipe(
    kernel: str, variant: str, passes: tuple[Pass, ...], description: str
) -> VariantRecipe:
    return VariantRecipe(kernel, variant, tuple(passes), description)


def _registry() -> dict[str, dict[str, VariantRecipe]]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = {}
        for factory in (_lu, _qr, _cholesky, _jacobi, _gauss_seidel):
            for recipe in factory():
                _REGISTRY.setdefault(recipe.kernel, {})[recipe.variant] = recipe
    return _REGISTRY


def register(recipe: VariantRecipe) -> VariantRecipe:
    """Register a custom recipe (overrides any same-named entry)."""
    _registry().setdefault(recipe.kernel, {})[recipe.variant] = recipe
    return recipe


def variants_for(kernel: str) -> tuple[str, ...]:
    """Registered variant names for *kernel* (standard grid order first)."""
    table = _registry().get(kernel)
    if table is None:
        raise ReproError(
            f"unknown kernel {kernel!r}; choose from {sorted(_registry())}"
        )
    return tuple(table)


def all_recipes() -> tuple[VariantRecipe, ...]:
    """Every registered recipe, kernels in registration order."""
    return tuple(r for table in _registry().values() for r in table.values())


def get_recipe(kernel: str, variant: str) -> VariantRecipe:
    """Look one recipe up; raises :class:`ReproError` with the choices."""
    table = _registry().get(kernel)
    if table is None:
        raise ReproError(
            f"unknown kernel {kernel!r}; choose from {sorted(_registry())}"
        )
    recipe = table.get(variant)
    if recipe is None:
        raise ReproError(
            f"unknown variant {variant!r} for {kernel}; "
            f"choose from {tuple(table)}"
        )
    return recipe


def build_variant(
    kernel: str,
    variant: str,
    *,
    tile: int | None = None,
    time_tile: int | None = None,
    manager: PassManager | None = None,
    with_report: bool = False,
) -> Program | tuple[Program, PipelineReport]:
    """Build one variant program through its registered recipe."""
    from repro.kernels.registry import get_kernel

    recipe = get_recipe(kernel, variant)
    ctx = PassContext(kernel=get_kernel(kernel), tile=tile, time_tile=time_tile)
    program, report = (manager or PassManager()).build(recipe, ctx)
    return (program, report) if with_report else program


#: Extra tile edges (beyond the default) the registry build matrix covers
#: for the tiled variants — with the default-tile builds of all recipes
#: this yields the 43 registered program points tracked by the
#: differential tests, the CI oracle job and ``benchmarks/bench_compile``.
MATRIX_EXTRA_TILES = (16, 32)


def registry_build_matrix() -> tuple[tuple[str, str, int | None], ...]:
    """Every (kernel, variant, tile) build point of the full registry.

    All recipes at the default tile, plus each ``tiled``/``tiled_sunk``
    recipe at :data:`MATRIX_EXTRA_TILES`.
    """
    points: list[tuple[str, str, int | None]] = [
        (r.kernel, r.variant, None) for r in all_recipes()
    ]
    for r in all_recipes():
        if r.variant in ("tiled", "tiled_sunk"):
            for t in MATRIX_EXTRA_TILES:
                points.append((r.kernel, r.variant, t))
    return tuple(points)


def registry_program_hashes() -> dict[str, str]:
    """Content hash of every emitted program in the registry build matrix.

    The differential guarantee of the analysis-layer cache is stated over
    this mapping: it must be identical with ``REPRO_POLY_CACHE`` on and
    off.
    """
    from repro.pipeline.recipe import program_fingerprint

    out: dict[str, str] = {}
    for kernel, variant, tile in registry_build_matrix():
        program = build_variant(kernel, variant, tile=tile)
        label = f"{kernel}/{variant}" + ("" if tile is None else f"@t{tile}")
        out[label] = program_fingerprint(program)
    return out


def build_fused_nest(kernel: str) -> FusedNest:
    """Run the ``fused`` recipe up to (and including) its ``Fuse`` pass."""
    from repro.kernels.registry import get_kernel

    recipe = get_recipe(kernel, "fused")
    ctx = PassContext(kernel=get_kernel(kernel))
    value: Program | FusedNest | None = None
    for p in recipe.passes:
        value = p.apply(value, ctx)
        if isinstance(value, FusedNest):
            return value
    raise ReproError(f"recipe {recipe.name} never produced a fused nest")
