"""Random well-conditioned inputs for the kernels.

Factorisations need matrices that do not blow up numerically in any of the
(reordered but mathematically identical) variants: diagonally dominated
random matrices for LU/QR, and SPD matrices for Cholesky.
"""

from __future__ import annotations

import numpy as np


def default_rng(seed: int = 20050615) -> np.random.Generator:
    """The repo-wide deterministic RNG (seeded with the paper's venue date)."""
    return np.random.default_rng(seed)


def diagonally_dominant(n: int, rng: np.random.Generator) -> np.ndarray:
    """Random matrix with a dominant diagonal (safe for LU and QR)."""
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a += np.eye(n) * (n + 1.0)
    return a


def spd_matrix(n: int, rng: np.random.Generator) -> np.ndarray:
    """Random symmetric positive-definite matrix (safe for Cholesky)."""
    b = rng.uniform(-1.0, 1.0, size=(n, n))
    return b @ b.T + np.eye(n) * (n + 1.0)


def grid_field(n: int, rng: np.random.Generator) -> np.ndarray:
    """Random initial field for the Jacobi solver."""
    return rng.uniform(0.0, 1.0, size=(n, n))
