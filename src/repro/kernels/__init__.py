"""The paper's four kernels (Fig. 1): LU with partial pivoting, QR
(Householder-style column norms), Cholesky, and Jacobi.

Each kernel module exposes the same surface:

- ``sequential()`` — the Figure-1 program as IR;
- ``fusable()`` — the (possibly peeled/distributed) equivalent program the
  fusion step consumes;
- ``fused_nest()`` — the Figure-3 fused form (before dependence fixing);
- ``fixed()`` — the Figure-4 form: ``FixDeps`` applied, plus cleanups;
- ``tiled(tile)`` — the Section-4 cache-tiled variant;
- ``make_inputs(params, rng)`` — well-conditioned random inputs;
- ``reference(params, inputs)`` — an independent numpy implementation.

All variants are validated against each other by the test suite (the
executable Theorems 1–2).
"""

from repro.kernels.registry import (
    ALL_KERNELS,
    EXTENSION_KERNELS,
    KERNELS,
    get_kernel,
    get_recipe,
    variants_for,
)

__all__ = [
    "ALL_KERNELS",
    "EXTENSION_KERNELS",
    "KERNELS",
    "get_kernel",
    "get_recipe",
    "variants_for",
]
