"""Jacobi 4-point stencil (paper Fig. 1d / Fig. 3d / Fig. 4d).

Two sweeps per time step over the same data: compute the smoothed field
``L`` from ``A``, then write it back. Fusing the sweeps violates the
anti-dependences on the backward neighbours ``A(j,i-1)`` and ``A(j-1,i)``;
``ElimRW`` fixes them with the copy array ``H`` and (via the guard
simplification) the paper's boundary pre-copies. The tiled variant skews
the fused ``(t, i, j)`` nest by time, moves time innermost, and tiles all
three loops.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.ir import ArrayDecl, Program, assign, idx, loop, sym, val
from repro.kernels.inputs import default_rng, grid_field
from repro.pipeline.passes import FusionSpec
from repro.trans.cleanup import scalarize_arrays
from repro.trans.fixdeps import FixDepsReport, fix_dependences
from repro.trans.fusion import NestEmbedding
from repro.trans.model import FusedNest

NAME = "jacobi"
PARAMS = ("N", "M")
DEFAULT_PARAMS = {"N": 32, "M": 8}

_N, _M = sym("N"), sym("M")
_t, _i, _j = sym("t"), sym("i"), sym("j")

_IDENTITY = NestEmbedding(var_map={"i": "i", "j": "j"})

#: The Figure-3(d) fused form: both sweeps aligned identically.
FUSION = FusionSpec(
    fused_loops=(("i", val(2), _N - 1), ("j", val(2), _N - 1)),
    embeddings=(_IDENTITY, _IDENTITY),
    context_depth=1,
)


def _stencil_value():
    return (
        idx("A", _j, _i - 1)
        + idx("A", _j - 1, _i)
        + idx("A", _j + 1, _i)
        + idx("A", _j, _i + 1)
    ) * 0.25


def sequential() -> Program:
    """The Figure-1(d) program."""
    compute = loop(
        "i", 2, _N - 1, [loop("j", 2, _N - 1, [assign(idx("L", _j, _i), _stencil_value())])]
    )
    writeback = loop(
        "i", 2, _N - 1, [loop("j", 2, _N - 1, [assign(idx("A", _j, _i), idx("L", _j, _i))])]
    )
    body = loop("t", 0, _M, [compute, writeback])
    return Program(
        "jacobi_seq",
        PARAMS,
        (ArrayDecl("A", (_N, _N)), ArrayDecl("L", (_N, _N))),
        (),
        (body,),
        outputs=("A",),
    )


def fusable() -> Program:
    """Jacobi fuses as-is (no peeling or distribution needed)."""
    return sequential()


def fused_nest() -> FusedNest:
    """The Figure-3(d) fused form (:data:`FUSION` on :func:`fusable`)."""
    from repro.kernels.recipes import build_fused_nest

    return build_fused_nest(NAME)


def fixed(*, simplify_copies: bool = True, scalarize: bool = True) -> Program:
    """The Figure-4(d) form: copies inserted, ``L`` scalarised."""
    if simplify_copies and scalarize:
        from repro.kernels.recipes import build_variant

        return build_variant(NAME, "fixed")
    report = fix_dependences(fused_nest(), simplify_copies=simplify_copies)
    program = report.program("jacobi_fixed")
    if scalarize:
        program = scalarize_arrays(program, ["L"])
    return program


def fixdeps_report() -> FixDepsReport:
    """Full FixDeps audit (used by tests and reports)."""
    return fix_dependences(fused_nest())


def tiled(tile: int = 8, *, time_tile: int | None = None, undo_sinking: bool = True) -> Program:
    """Sec. 4 tiling: skew space loops by time, time innermost, tile all.

    ``tile`` is the space tile; ``time_tile`` defaults to the same.
    ``undo_sinking`` is accepted for interface uniformity; the skewed
    Jacobi carries no guards ("no extra conditionals are introduced").
    """
    from repro.kernels.recipes import build_variant

    return build_variant(NAME, "tiled", tile=tile, time_tile=time_tile)


def make_inputs(params: Mapping[str, int], rng=None) -> dict[str, np.ndarray]:
    """Random initial field."""
    rng = rng or default_rng()
    return {"A": grid_field(params["N"], rng)}


def reference(params: Mapping[str, int], inputs: Mapping[str, np.ndarray]) -> dict:
    """Vectorised numpy Jacobi (M+1 steps, matching ``do t = 0, M``)."""
    a = np.array(inputs["A"], dtype=np.float64)
    n, m = params["N"], params["M"]
    for _ in range(m + 1):
        smooth = 0.25 * (
            a[1 : n - 1, 0 : n - 2]
            + a[0 : n - 2, 1 : n - 1]
            + a[2:n, 1 : n - 1]
            + a[1 : n - 1, 2:n]
        )
        a[1 : n - 1, 1 : n - 1] = smooth
    return {"A": a}
