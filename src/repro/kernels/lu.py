"""LU factorisation with partial pivoting (paper Fig. 1a / 3a / 4a).

The interesting kernel: the pivot search and row swap are *data-dependent*
(non-affine guards, and the swap's ``A(m,j)`` subscript uses the run-time
pivot row ``m``). The dependence analysis handles this with:

- may-execute treatment of the opaque guards, and
- a declared value range ``k <= m <= N`` that over-approximates the fuzzy
  subscript (the pivot row always lies in the trailing column).

FixDeps then finds exactly the paper's fix: ``WR_m(2,3)`` (plus the temp
flow/output violations the search/swap share) forces the search's ``i``
dimension to collapse — the Fig. 4a ``P`` loop running entirely at
``(j, i) = (k+1, k)``. No copying is needed (Sec. 3.2: "No extra memory
space is introduced for these kernels").
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.deps.access import ValueRange
from repro.ir import (
    ArrayDecl,
    Program,
    ScalarDecl,
    assign,
    cgt,
    cne,
    idx,
    if_,
    loop,
    sym,
)
from repro.ir.builder import fabs
from repro.kernels.inputs import default_rng
from repro.pipeline.passes import FusionSpec
from repro.trans.fixdeps import FixDepsReport, fix_dependences
from repro.trans.fusion import NestEmbedding
from repro.trans.model import FusedNest
from repro.trans.peel import peel_last

NAME = "lu"
PARAMS = ("N",)
DEFAULT_PARAMS = {"N": 32}

_N = sym("N")
_k, _j, _i = sym("k"), sym("j"), sym("i")
_m, _temp, _d = sym("m"), sym("temp"), sym("d")

#: The pivot row is always found in the trailing column: k <= m <= N.
VALUE_RANGES = {"m": ValueRange(_k, _N)}

_AT_ORIGIN = NestEmbedding(placement={"j": _k + 1, "i": _k})

#: Fused dims (j: k+1..N, i: k..N). Differs from Fig. 3a only in the swap
#: embedding: trailing-column swaps ride the fused ``j`` dimension at
#: ``i = k`` (lazy per-column swaps) instead of the ``i`` dimension at
#: ``j = k+1``.
FUSION = FusionSpec(
    fused_loops=(("j", _k + 1, _N), ("i", _k, _N)),
    embeddings=(
        _AT_ORIGIN,                                                 # temp = 0
        _AT_ORIGIN,                                                 # m = k
        NestEmbedding(var_map={"i": "i"}, placement={"j": _k + 1}),  # search
        _AT_ORIGIN,                                                 # swap col k
        NestEmbedding(var_map={"j": "j"}, placement={"i": _k}),     # swap cols
        NestEmbedding(var_map={"i": "i"}, placement={"j": _k + 1}),  # scale
        NestEmbedding(var_map={"j": "j", "i": "i"}),               # update
    ),
    context_depth=1,
    epilogue_from=1,
)


def _step_items():
    """The five items of one elimination step (Fig. 1a body)."""
    search = loop(
        "i",
        _k,
        _N,
        [
            assign("d", idx("A", _i, _k)),
            if_(cgt(fabs(_d), _temp), [assign("temp", fabs(_d)), assign("m", _i)]),
        ],
    )
    swap = if_(
        cne(_m, _k),
        loop(
            "j",
            _k,
            _N,
            [
                assign("temp", idx("A", _k, _j)),
                assign(idx("A", _k, _j), idx("A", _m, _j)),
                assign(idx("A", _m, _j), _temp),
            ],
        ),
    )
    scale = loop(
        "i", _k + 1, _N, [assign(idx("A", _i, _k), idx("A", _i, _k) / idx("A", _k, _k))]
    )
    update = loop(
        "j",
        _k + 1,
        _N,
        [
            loop(
                "i",
                _k + 1,
                _N,
                [
                    assign(
                        idx("A", _i, _j),
                        idx("A", _i, _j) - idx("A", _i, _k) * idx("A", _k, _j),
                    )
                ],
            )
        ],
    )
    return [assign("temp", 0.0), assign("m", _k), search, swap, scale, update]


def _swap_col(col):
    """Exchange rows k and m within one column (guarded by m != k)."""
    return if_(
        cne(_m, _k),
        [
            assign("temp", idx("A", _k, col)),
            assign(idx("A", _k, col), idx("A", _m, col)),
            assign(idx("A", _m, col), _temp),
        ],
    )


def _fusable_items():
    """The Fig-1a step with the swap's first column peeled off.

    The swap loop ``do j = k, N`` becomes the column-k exchange plus a loop
    over the trailing columns. This lets the trailing swaps be embedded
    along the fused ``j`` dimension (lazy per-column swaps), which — unlike
    the Fig. 3a embedding along ``i`` — admits the paper's final ``k``-loop
    tiling: a whole-row swap at the head of step ``k`` would have to follow
    every pending update of earlier steps in the same tile, making the
    ``k`` loop unblockable under conservative (fuzzy-``m``) dependences.
    """
    items = _step_items()
    swap_cols = loop("j", _k + 1, _N, list(_swap_col(_j).then))
    # Keep the guard outside the loop as in Fig. 1; sinking pushes it in.
    swap_cols = if_(cne(_m, _k), swap_cols)
    items[3:4] = [_swap_col(_k), swap_cols]
    return items


def _decls():
    return (
        (ArrayDecl("A", (_N, _N)),),
        (ScalarDecl("temp"), ScalarDecl("m", "i8"), ScalarDecl("d")),
    )


def sequential() -> Program:
    """The Figure-1(a) program."""
    arrays, scalars = _decls()
    body = loop("k", 1, _N, _step_items())
    return Program("lu_seq", PARAMS, arrays, scalars, (body,), outputs=("A",))


def fusable() -> Program:
    """The peeled form fed to fusion: ``k`` to N-1 with the last step as an
    epilogue (as in Fig. 3a), and the swap's first column split off (see
    :func:`_fusable_items`)."""
    arrays, scalars = _decls()
    outer = loop("k", 1, _N, _fusable_items())
    shortened, peeled = peel_last(outer)
    return Program(
        "lu_fusable",
        PARAMS,
        arrays,
        scalars,
        (shortened,) + peeled,
        outputs=("A",),
    )


def fused_nest() -> FusedNest:
    """The fused form (:data:`FUSION` applied to :func:`fusable`)."""
    from repro.kernels.recipes import build_fused_nest

    return build_fused_nest(NAME)


def fixdeps_report() -> FixDepsReport:
    """FixDeps audit; expected: collapse i of the pivot search, no copies."""
    return fix_dependences(fused_nest(), value_ranges=VALUE_RANGES)


def fixed() -> Program:
    """The Figure-4(a) form (pivot search as the ``P`` sweep loop)."""
    from repro.kernels.recipes import build_variant

    return build_variant(NAME, "fixed")


def tiled(tile: int = 8, *, undo_sinking: bool = True) -> Program:
    """Sec. 4: tile the outermost ``k`` loop (point loop inside ``j``).

    The pivot row ``m`` is array-expanded over ``k`` first: with ``k``
    inside ``j``, searches of different steps interleave with the lazy
    column swaps, so each step needs its own pivot cell.
    """
    from repro.kernels.recipes import build_variant

    return build_variant(NAME, "tiled" if undo_sinking else "tiled_sunk", tile=tile)


def make_inputs(params: Mapping[str, int], rng=None) -> dict[str, np.ndarray]:
    """Random diagonally-dominant matrix (well-conditioned elimination,
    but off-diagonal pivots still occur occasionally)."""
    rng = rng or default_rng()
    # Milder dominance than for pure stability so that pivoting actually
    # triggers: scale the diagonal boost down.
    n = params["N"]
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a += np.eye(n) * 1.5
    return {"A": a}


def reference(params: Mapping[str, int], inputs: Mapping[str, np.ndarray]) -> dict:
    """Literal numpy transcription of Figure 1(a).

    Note the paper's swap exchanges only the *trailing* parts of rows k and
    m (columns k..N), unlike LAPACK's full-row pivoting.
    """
    a = np.array(inputs["A"], dtype=np.float64)
    n = params["N"]
    for k in range(n):
        m = k + int(np.argmax(np.abs(a[k:, k])))
        if m != k:
            tmp = a[k, k:].copy()
            a[k, k:] = a[m, k:]
            a[m, k:] = tmp
        if k + 1 < n:
            a[k + 1 :, k] /= a[k, k]
            a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    return {"A": a}
