"""Fresh-name generation for compiler passes.

Transformations that introduce loop variables (tile loops, copy loops) or
arrays (copy arrays ``H_A_k``) must not collide with names already used in
the program being rewritten.
"""

from __future__ import annotations

import itertools
import keyword
from collections.abc import Iterable


class NameGenerator:
    """Generates names guaranteed not to collide with a reserved set.

    The generator is deterministic: the same sequence of requests against the
    same reserved set yields the same names, which keeps transformed programs
    stable across runs (important for golden tests).
    """

    def __init__(self, reserved: Iterable[str] = ()):  # noqa: D107
        self._used: set[str] = set(reserved)

    def reserve(self, name: str) -> None:
        """Mark *name* as taken."""
        self._used.add(name)

    def reserve_all(self, names: Iterable[str]) -> None:
        """Mark every name in *names* as taken."""
        self._used.update(names)

    def fresh(self, base: str) -> str:
        """Return *base* if free, else ``base_2``, ``base_3``, ...

        Python keywords are never returned (generated programs compile to
        Python source). The returned name is recorded as used.
        """
        if base not in self._used and not keyword.iskeyword(base):
            self._used.add(base)
            return base
        for i in itertools.count(2):
            cand = f"{base}_{i}"
            if cand not in self._used:
                self._used.add(cand)
                return cand
        raise AssertionError("unreachable")

    def __contains__(self, name: str) -> bool:
        return name in self._used


def fresh_name(base: str, used: Iterable[str]) -> str:
    """One-shot helper: a name based on *base* not present in *used*."""
    return NameGenerator(used).fresh(base)
