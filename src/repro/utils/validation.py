"""Argument-validation helpers used across the package."""

from __future__ import annotations

from typing import Any


def check_type(value: Any, types: type | tuple[type, ...], what: str) -> Any:
    """Raise ``TypeError`` unless *value* is an instance of *types*."""
    if not isinstance(value, types):
        names = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise TypeError(f"{what} must be {names}, got {type(value).__name__}")
    return value


def check_positive_int(value: Any, what: str) -> int:
    """Raise unless *value* is an ``int`` > 0."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{what} must be int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{what} must be positive, got {value}")
    return value


def check_nonnegative_int(value: Any, what: str) -> int:
    """Raise unless *value* is an ``int`` >= 0."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{what} must be int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{what} must be non-negative, got {value}")
    return value
