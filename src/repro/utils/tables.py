"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows/series the paper reports; this
module renders them as aligned monospace tables suitable for terminals and
for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def _fmt_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    float_fmt: str = ".3f",
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table.

    Numeric columns are right-aligned; text columns left-aligned. Floats are
    formatted with *float_fmt*.
    """
    cells = [[_fmt_cell(v, float_fmt) for v in row] for row in rows]
    ncol = len(headers)
    for i, row in enumerate(cells):
        if len(row) != ncol:
            raise ValueError(f"row {i} has {len(row)} cells, expected {ncol}")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(ncol)
    ]
    numeric = [
        bool(rows) and all(isinstance(r[c], (int, float)) for r in rows)
        for c in range(ncol)
    ]

    def fmt_row(row: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(row):
            parts.append(cell.rjust(widths[c]) if numeric[c] else cell.ljust(widths[c]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in cells)
    return "\n".join(lines)
