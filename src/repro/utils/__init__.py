"""Small shared utilities: naming, validation, timing, text tables."""

from repro.utils.naming import NameGenerator, fresh_name
from repro.utils.tables import render_table
from repro.utils.timing import Timer
from repro.utils.validation import check_positive_int, check_type

__all__ = [
    "NameGenerator",
    "fresh_name",
    "render_table",
    "Timer",
    "check_positive_int",
    "check_type",
]
