"""A small capped LRU mapping for in-process memoisation.

The experiment runner used to memoise builds and measurements in plain
module-level dicts — unbounded, and with no way to reset them between
sweeps. :class:`LRUCache` bounds the footprint (oldest-used entries fall
out first) and supports explicit clearing.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator, MutableMapping


class LRUCache(MutableMapping):
    """A dict with a maximum size, evicting the least-recently-used entry.

    Reads and writes both refresh recency. ``maxsize=None`` means
    unbounded (but still clearable).
    """

    def __init__(self, maxsize: int | None = 128):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __getitem__(self, key: Hashable) -> Any:
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self.maxsize is not None and len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Recency-refreshing lookup without the ``Mapping.get`` exception
        round-trip (this is the hot path of the intern tables)."""
        data = self._data
        if key in data:
            data.move_to_end(key)
            return data[key]
        return default

    def __delitem__(self, key: Hashable) -> None:
        del self._data[key]

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value, computing (and caching) it on a miss."""
        try:
            value = self[key]
        except KeyError:
            self.misses += 1
            value = compute()
            self[key] = value
        else:
            self.hits += 1
        return value

    def clear(self) -> None:
        self._data.clear()

    def __repr__(self) -> str:
        cap = "∞" if self.maxsize is None else self.maxsize
        return (
            f"LRUCache({len(self._data)}/{cap}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )
