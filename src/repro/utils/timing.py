"""Lightweight wall-clock timing for experiment harnesses.

Following the optimisation workflow of the scientific-Python guides: measure
before and while optimising. These helpers are deliberately tiny — they are
for coarse per-experiment accounting, not micro-benchmarks (pytest-benchmark
handles those).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed seconds.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None


class StageTimes:
    """Named stage timers for multi-phase pipelines (analysis, codegen, sim)."""

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = {}

    def stage(self, name: str) -> Timer:
        """Return (creating if needed) the timer for *name*."""
        return self._timers.setdefault(name, Timer())

    def summary(self) -> dict[str, float]:
        """Elapsed seconds per stage, insertion-ordered."""
        return {name: t.elapsed for name, t in self._timers.items()}
