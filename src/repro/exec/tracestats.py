"""Per-array statistics of a traced run.

Break the global perfex numbers down by array: which array's loads
dominate, how read/write-balanced each array is, and how many distinct
elements were touched (the footprint). Used by reports and examples to
attribute the machine-model observations to specific data structures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.exec.events import RunResult


@dataclass(frozen=True)
class ArrayStats:
    """Access statistics of one array in one run."""

    name: str
    loads: int
    stores: int
    distinct_elements: int

    @property
    def accesses(self) -> int:
        """Loads plus stores."""
        return self.loads + self.stores

    @property
    def reuse_factor(self) -> float:
        """Accesses per distinct element (1.0 = streaming, no reuse)."""
        return self.accesses / self.distinct_elements if self.distinct_elements else 0.0


def trace_statistics(result: RunResult) -> dict[str, ArrayStats]:
    """Per-array stats of a traced run (requires ``trace=True``)."""
    if result.trace is None:
        raise ExecutionError("trace_statistics needs a traced run")
    aid, lin, rw = result.trace.memory_events()
    out: dict[str, ArrayStats] = {}
    for name, array_id in result.array_ids.items():
        mask = aid == array_id
        if not mask.any():
            out[name] = ArrayStats(name, 0, 0, 0)
            continue
        writes = rw[mask]
        elements = lin[mask]
        out[name] = ArrayStats(
            name=name,
            loads=int((writes == 0).sum()),
            stores=int((writes == 1).sum()),
            distinct_elements=int(len(np.unique(elements))),
        )
    return out


def footprint_bytes(result: RunResult, element_bytes: int = 8) -> int:
    """Total distinct data touched, in bytes."""
    stats = trace_statistics(result)
    return sum(s.distinct_elements for s in stats.values()) * element_bytes
