"""Per-array statistics of a traced run.

Break the global perfex numbers down by array: which array's loads
dominate, how read/write-balanced each array is, and how many distinct
elements were touched (the footprint). Used by reports and examples to
attribute the machine-model observations to specific data structures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError
from repro.exec.events import RunResult, decode_memory_events


@dataclass(frozen=True)
class ArrayStats:
    """Access statistics of one array in one run."""

    name: str
    loads: int
    stores: int
    distinct_elements: int

    @property
    def accesses(self) -> int:
        """Loads plus stores."""
        return self.loads + self.stores

    @property
    def reuse_factor(self) -> float:
        """Accesses per distinct element (1.0 = streaming, no reuse)."""
        return self.accesses / self.distinct_elements if self.distinct_elements else 0.0


class ArrayStatsSink:
    """Streaming per-array statistics over encoded memory-event chunks.

    Load/store counts accumulate with :func:`numpy.bincount`; distinct
    elements accumulate as per-array sets — bounded by the data footprint,
    not by the trace length, so the sink respects the streaming memory
    budget.
    """

    def __init__(self, array_ids: dict[str, int]):
        self._array_ids = dict(array_ids)
        size = max(self._array_ids.values(), default=-1) + 1
        self._loads = np.zeros(size, dtype=np.int64)
        self._stores = np.zeros(size, dtype=np.int64)
        self._elements: list[set[int]] = [set() for _ in range(size)]

    def feed(self, codes: np.ndarray) -> None:
        """Accumulate one chunk of encoded memory events."""
        aid, lin, rw = decode_memory_events(codes)
        size = len(self._loads)
        reads = rw == 0
        self._loads += np.bincount(aid[reads], minlength=size)
        self._stores += np.bincount(aid[~reads], minlength=size)
        order = np.argsort(aid, kind="stable")
        aid_sorted = aid[order]
        lin_sorted = lin[order]
        boundaries = np.flatnonzero(np.diff(aid_sorted)) + 1
        starts = [0, *boundaries.tolist()]
        ends = [*boundaries.tolist(), len(aid_sorted)]
        for start, end in zip(starts, ends):
            if start < end:
                array_id = int(aid_sorted[start])
                self._elements[array_id].update(
                    np.unique(lin_sorted[start:end]).tolist()
                )

    def finish(self) -> dict[str, ArrayStats]:
        """Per-array statistics, keyed by array name."""
        out: dict[str, ArrayStats] = {}
        for name, array_id in self._array_ids.items():
            out[name] = ArrayStats(
                name=name,
                loads=int(self._loads[array_id]),
                stores=int(self._stores[array_id]),
                distinct_elements=len(self._elements[array_id]),
            )
        return out


def trace_statistics(result: RunResult) -> dict[str, ArrayStats]:
    """Per-array stats of a traced run (requires ``trace=True``)."""
    if result.trace is None:
        raise ExecutionError("trace_statistics needs a traced run")
    sink = ArrayStatsSink(result.array_ids)
    sink.feed(result.trace.memory)
    return sink.finish()


def footprint_bytes(result: RunResult, element_bytes: int = 8) -> int:
    """Total distinct data touched, in bytes."""
    stats = trace_statistics(result)
    return sum(s.distinct_elements for s in stats.values()) * element_bytes
