"""Executing IR programs.

Two engines with identical semantics:

- :mod:`repro.exec.interp` — a tree-walking interpreter; slow, simple,
  trusted. Used by tests as the semantic oracle.
- :mod:`repro.exec.compiled` — compiles IR to Python source (the guides'
  "move the hot loop to compiled code" advice, applied to our own IR);
  1–2 orders of magnitude faster and able to emit the memory-access and
  branch traces the machine model consumes. Itself two-tier: eligible
  innermost affine loops vectorize into whole-trip NumPy blocks
  (:mod:`repro.exec.blocktier`), guarded at runtime, bit-identical to the
  scalar tier (``exec_mode`` / ``REPRO_EXEC_MODE`` selects).

Both run a :class:`~repro.ir.program.Program` against concrete parameter
values and named input arrays, and return a :class:`RunResult`.
"""

from repro.exec.events import Counters, RunResult, TraceBuffers
from repro.exec.compiled import CompiledProgram, resolve_exec_mode, run_compiled
from repro.exec.interp import run_interpreted
from repro.exec.validate import assert_equivalent, compare_outputs

__all__ = [
    "Counters",
    "RunResult",
    "TraceBuffers",
    "CompiledProgram",
    "resolve_exec_mode",
    "run_compiled",
    "run_interpreted",
    "assert_equivalent",
    "compare_outputs",
]
