"""Execution results: dynamic counters and event traces.

The machine model is trace-driven: it replays the memory-access and branch
traces produced by a run. Traces use compact integer encodings so the hot
path is a single ``list.append`` per event:

- memory event: ``((array_id * 2 + is_write) << ADDR_BITS) | linear_index``
- branch event: ``site_id * 2 + taken``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

#: Default number of events an executor buffers before flushing a chunk
#: to the trace sinks (streaming mode).
DEFAULT_CHUNK_EVENTS = 1 << 16

#: Bits reserved for the linear element index within one array.
ADDR_BITS = 40
#: Mask extracting the linear index from a memory event code.
ADDR_MASK = (1 << ADDR_BITS) - 1


def memory_event_base(array_id: int, is_write: bool | int) -> int:
    """The high bits of a memory event code; OR/add the linear index in.

    Both codegen tiers build their codes from this one definition, so the
    scalar per-event appends and the block tier's vectorized
    ``base + index_vector`` emission cannot drift apart.
    """
    return (array_id * 2 + int(is_write)) << ADDR_BITS


def decode_memory_events(
    codes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode encoded memory events into (array_id, linear_index, is_write).

    Works on any chunk of the stream — the encoding is stateless — so the
    streaming sinks and the materialized :class:`TraceBuffers` share it.
    """
    codes = np.asarray(codes, dtype=np.int64)
    head = codes >> ADDR_BITS
    return head >> 1, codes & ADDR_MASK, head & 1


def decode_branch_events(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decode encoded branch events into (site_id, taken)."""
    codes = np.asarray(codes, dtype=np.int64)
    return codes >> 1, codes & 1


def check_addressable(program_name: str, array_name: str, size: int) -> None:
    """Layout-time guard for the trace encoding.

    A memory event packs the linear element index into the low
    :data:`ADDR_BITS` bits; an array with more than ``2**ADDR_BITS``
    elements would silently alias its high indices into the array-id
    field. Raise instead of corrupting the trace.
    """
    from repro.errors import ExecutionError

    if size > ADDR_MASK + 1:
        raise ExecutionError(
            f"{program_name}: array {array_name} has {size} elements; linear "
            f"indices do not fit the {ADDR_BITS}-bit trace address field "
            f"(max {ADDR_MASK + 1} elements)"
        )


@dataclass
class Counters:
    """Dynamic operation counts of one run.

    These feed the perfex-style cost model: *graduated instructions* are a
    weighted combination (see :mod:`repro.machine.costmodel`), branches feed
    the predictor, loads/stores cross-check the memory trace length.
    """

    loads: int = 0
    stores: int = 0
    flops: int = 0
    intops: int = 0
    branches: int = 0
    loop_iters: int = 0

    def total_memory_ops(self) -> int:
        """Loads plus stores."""
        return self.loads + self.stores

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (stable key order)."""
        return {
            "loads": self.loads,
            "stores": self.stores,
            "flops": self.flops,
            "intops": self.intops,
            "branches": self.branches,
            "loop_iters": self.loop_iters,
        }

    def __add__(self, other: "Counters") -> "Counters":
        return Counters(
            self.loads + other.loads,
            self.stores + other.stores,
            self.flops + other.flops,
            self.intops + other.intops,
            self.branches + other.branches,
            self.loop_iters + other.loop_iters,
        )


@dataclass
class TraceBuffers:
    """Raw event traces of one run (see module docstring for encodings)."""

    #: Encoded memory events in program order.
    memory: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    #: Encoded branch events in program order.
    branches: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def memory_events(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode the memory trace into (array_id, linear_index, is_write)."""
        return decode_memory_events(self.memory)

    def branch_events(self) -> tuple[np.ndarray, np.ndarray]:
        """Decode the branch trace into (site_id, taken)."""
        return decode_branch_events(self.branches)


@dataclass
class RunResult:
    """Everything a run produced."""

    #: Final array values, shaped per declaration (column-major semantics).
    arrays: dict[str, np.ndarray]
    #: Final scalar values.
    scalars: dict[str, float]
    counters: Counters
    #: Present only for traced runs.
    trace: TraceBuffers | None = None
    #: array name -> integer id used in the memory trace.
    array_ids: dict[str, int] = field(default_factory=dict)
    #: branch site id -> human-readable description (source condition).
    branch_sites: dict[int, str] = field(default_factory=dict)

    def output_arrays(self, outputs: tuple[str, ...]) -> dict[str, np.ndarray]:
        """Subset of arrays/scalars named as program outputs."""
        result: dict[str, np.ndarray] = {}
        for name in outputs:
            if name in self.arrays:
                result[name] = self.arrays[name]
        return result


def evaluate_extents(
    extent_exprs, params: Mapping[str, int]
) -> tuple[int, ...]:
    """Evaluate declared array extents under concrete parameters."""
    from repro.ir.affine import expr_to_linexpr

    out = []
    for e in extent_exprs:
        value = expr_to_linexpr(e).evaluate(params)
        if value.denominator != 1 or value < 1:
            raise ValueError(f"array extent {e} evaluates to {value}")
        out.append(int(value))
    return tuple(out)
