"""Program-equivalence checking (Theorems 1 and 2, executably).

The paper proves that ``FixDeps`` preserves input/output behaviour; we check
it by running the original and transformed programs on the same inputs and
comparing the declared outputs to floating-point tolerance. Transformations
that only reorder *independent* operations are bitwise-exact; reassociation
(none of ours reassociates reductions) would need the tolerance.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.errors import ValidationError
from repro.exec.compiled import run_compiled
from repro.exec.events import RunResult
from repro.ir.program import Program


def compare_outputs(
    a: RunResult,
    b: RunResult,
    outputs: tuple[str, ...],
    *,
    rtol: float = 1e-10,
    atol: float = 1e-12,
) -> list[str]:
    """Differences between two runs' outputs; empty list means equivalent."""
    problems: list[str] = []
    for name in outputs:
        if name in a.arrays and name in b.arrays:
            left, right = a.arrays[name], b.arrays[name]
            if left.shape != right.shape:
                problems.append(f"{name}: shape {left.shape} vs {right.shape}")
            elif not np.allclose(left, right, rtol=rtol, atol=atol, equal_nan=True):
                bad = ~np.isclose(left, right, rtol=rtol, atol=atol, equal_nan=True)
                count = int(bad.sum())
                worst = float(np.nanmax(np.abs(left - right)))
                problems.append(
                    f"{name}: {count} elements differ (max abs diff {worst:.3e})"
                )
        elif name in a.scalars and name in b.scalars:
            if not np.isclose(a.scalars[name], b.scalars[name], rtol=rtol, atol=atol):
                problems.append(
                    f"{name}: scalar {a.scalars[name]} vs {b.scalars[name]}"
                )
        else:
            problems.append(f"{name}: missing from one of the runs")
    return problems


def assert_equivalent(
    original: Program,
    transformed: Program,
    params: Mapping[str, int],
    inputs: Mapping[str, np.ndarray] | None = None,
    *,
    outputs: tuple[str, ...] | None = None,
    rtol: float = 1e-10,
    atol: float = 1e-12,
    runner: Callable[..., RunResult] = run_compiled,
) -> None:
    """Run both programs and raise :class:`ValidationError` on divergence.

    ``outputs`` defaults to the original program's declared outputs; copy
    arrays introduced by ``ElimRW`` are therefore ignored automatically.
    """
    outs = outputs if outputs is not None else original.outputs
    ra = runner(original, params, inputs)
    rb = runner(transformed, params, inputs)
    problems = compare_outputs(ra, rb, outs, rtol=rtol, atol=atol)
    if problems:
        raise ValidationError(
            f"{original.name} vs {transformed.name} at {dict(params)}: "
            + "; ".join(problems)
        )
