"""Static analysis and runtime guards for the block (vectorized) exec tier.

The compiled executor (:mod:`repro.exec.compiled`) has two codegen tiers.
The scalar tier executes one Python statement per IR statement *per
iteration*; the block tier compiles an eligible innermost ``Loop`` into
whole-trip NumPy array operations — one gather/compute/scatter per body
statement and one ``(trip, events_per_iter)`` event matrix per loop entry
— which is how a trace producer gets within shouting distance of the
vectorized trace consumers.

Eligibility is decided in two stages, both conservative:

**Static** (:func:`analyze_block_loop`, at compile time): the body must be
straight-line ``Assign`` statements into array elements, the value
expressions must use only elementwise-safe operations (``+ - * /``,
unary ``-``, ``sqrt``, ``abs``), and every subscript must be affine with
integral coefficients and free of array references, intrinsics and
division. Anything else — guards, scalar reductions, ``Select``,
non-affine subscripts — compiles on the scalar tier, per loop.

**Runtime** (:func:`block_guard`, at every loop entry): block execution
runs each statement over the whole trip range (all gathers of a statement
before all its scatters, statements in order), which reorders accesses
across iterations. The guard proves, from the concrete affine form
``index(t) = a*t + b`` of every access (``t`` = 0-based iteration
number), that no reordered pair can ever touch the same element in a
different order than the scalar tier would — otherwise that loop *entry*
falls back to the scalar code, keeping traces and values bit-identical.

The pair conditions (``W`` a write with slope ``a_w != 0``, ``R`` a read
or a later write; ``T`` the trip count):

- identical index expressions collide only at the same iteration, where
  statement order is preserved — statically safe, no runtime check;
- equal slopes collide at iteration distance ``q = (b_r - b_w) / a_w``;
  unsafe only if ``q`` is integral, ``|q| <= T - 1`` and its sign matches
  the one program order forbids;
- a loop-invariant read (``a_r == 0``) collides at the single iteration
  ``q = (b_r - b_w) / a_w``; unsafe only if ``q`` lands inside the trip
  range with an iteration on the forbidden side;
- any other slope combination is not analyzed: the guard reports unsafe
  and the entry runs on the scalar tier.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import NotAffineError
from repro.ir.affine import expr_to_linexpr
from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Const,
    Expr,
    UnOp,
    VarRef,
    walk_expr,
)
from repro.ir.stmt import Assign, Loop

#: Default minimum trip count before the block tier is worth entering
#: (NumPy per-call overhead beats the scalar tier only past a few
#: elements). Override per-compile or with ``REPRO_BLOCK_MIN_TRIP``.
DEFAULT_MIN_BLOCK_TRIP = 16

#: Intrinsics with bit-identical NumPy elementwise equivalents.
_VECTOR_CALLS = ("sqrt", "abs")

#: Static reasons :func:`classify_block_loop` rejects a loop, in the
#: order the checks run. These are the structured fallback-reason
#: counter suffixes telemetry records (``exec.fallback.static.<reason>``).
STATIC_FALLBACK_REASONS = (
    "non_const_step",      # step is not a positive integer constant
    "non_assign_body",     # body has guards / nested loops / scalar targets
    "non_vector_value",    # value uses Select/Cmp/non-elementwise calls
    "non_affine_subscript",  # a subscript is non-affine or non-integral
)


def resolve_min_block_trip(override: int | None = None) -> int:
    """The effective block-tier trip threshold (``>= 1``)."""
    if override is None:
        override = int(os.environ.get("REPRO_BLOCK_MIN_TRIP", DEFAULT_MIN_BLOCK_TRIP))
    return max(1, int(override))


@dataclass(frozen=True)
class BlockAccess:
    """One traced memory access of a block body, in event-emission order."""

    pattern: int  #: index into :attr:`BlockPlan.patterns`
    is_write: bool
    array: str


@dataclass(frozen=True)
class BlockPlan:
    """Everything codegen needs to emit the block tier for one loop.

    ``patterns`` holds the distinct ``(array, subscript-exprs)`` shapes;
    the generated code computes one index vector and one runtime
    ``(slope, intercept)`` pair per pattern. ``accesses`` lists every
    traced access in the exact order the scalar tier would emit its
    events. ``write_patterns`` / ``pairs`` drive :func:`block_guard`.
    """

    loop: Loop
    patterns: tuple[tuple[str, tuple[Expr, ...]], ...]
    accesses: tuple[BlockAccess, ...]
    write_patterns: tuple[int, ...]
    #: (write pattern, other pattern, need_pos): unsafe when a collision
    #: exists at positive (True) / negative (False) iteration distance.
    pairs: tuple[tuple[int, int, bool], ...]


def _subscript_ok(sub: Expr, var: str) -> bool:
    """Affine, integral, and free of arrays/calls/division/comparison."""
    for node in walk_expr(sub):
        if isinstance(node, (ArrayRef, Call)):
            return False
        if isinstance(node, BinOp) and node.op == "/":
            return False
        if not isinstance(node, (Const, VarRef, BinOp, UnOp)):
            return False
    try:
        lin = expr_to_linexpr(sub)
    except NotAffineError:
        return False
    return lin.is_integral()


def _value_ok(expr: Expr) -> bool:
    """Only nodes with bit-identical elementwise NumPy equivalents."""
    if isinstance(expr, (Const, VarRef)):
        return True
    if isinstance(expr, ArrayRef):
        return True  # subscripts are checked separately
    if isinstance(expr, (BinOp, UnOp)):
        return all(_value_ok(c) for c in expr.children())
    if isinstance(expr, Call):
        return expr.func in _VECTOR_CALLS and all(_value_ok(a) for a in expr.args)
    return False  # Select / Cmp / logical nodes: scalar tier


def _reads_in_order(expr: Expr) -> list[ArrayRef]:
    """Array reads in the scalar tier's event-emission (DFS) order."""
    out: list[ArrayRef] = []
    if isinstance(expr, ArrayRef):
        out.append(expr)  # subscripts hold no reads (checked)
        return out
    for child in expr.children():
        out.extend(_reads_in_order(child))
    return out


def analyze_block_loop(loop: Loop) -> BlockPlan | None:
    """Classify *loop* for the block tier; ``None`` means scalar only."""
    plan, _reason = classify_block_loop(loop)
    return plan


def classify_block_loop(loop: Loop) -> tuple[BlockPlan | None, str | None]:
    """Like :func:`analyze_block_loop` but names the rejection.

    Returns ``(plan, None)`` for an eligible loop, else ``(None,
    reason)`` with *reason* one of :data:`STATIC_FALLBACK_REASONS`.
    """
    if not (isinstance(loop.step, Const) and isinstance(loop.step.value, int)
            and loop.step.value >= 1):
        return None, "non_const_step"
    for stmt in loop.body:
        if not isinstance(stmt, Assign) or not isinstance(stmt.target, ArrayRef):
            return None, "non_assign_body"
        if not _value_ok(stmt.value):
            return None, "non_vector_value"

    var = loop.var
    patterns: list[tuple[str, tuple[Expr, ...]]] = []
    pattern_ids: dict[tuple[str, tuple[Expr, ...]], int] = {}

    def pattern_id(ref: ArrayRef) -> int | None:
        for sub in ref.indices:
            if not _subscript_ok(sub, var):
                return None
        key = (ref.name, ref.indices)
        if key not in pattern_ids:
            pattern_ids[key] = len(patterns)
            patterns.append(key)
        return pattern_ids[key]

    # (pattern, is_write, stmt position) in event-emission order.
    accesses: list[BlockAccess] = []
    ordered: list[tuple[int, bool, int]] = []
    for pos, stmt in enumerate(loop.body):
        assert isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef)
        for ref in _reads_in_order(stmt.value):
            pid = pattern_id(ref)
            if pid is None:
                return None, "non_affine_subscript"
            ordered.append((pid, False, pos))
            accesses.append(BlockAccess(pid, False, ref.name))
        pid = pattern_id(stmt.target)
        if pid is None:
            return None, "non_affine_subscript"
        ordered.append((pid, True, pos))
        accesses.append(BlockAccess(pid, True, stmt.target.name))

    write_patterns = tuple(sorted({pid for pid, w, _ in ordered if w}))
    pairs: list[tuple[int, int, bool]] = []
    seen: set[tuple[int, int, bool]] = set()
    for wpid, w_is_write, wpos in ordered:
        if not w_is_write:
            continue
        warr = patterns[wpid][0]
        for opid, o_is_write, opos in ordered:
            if patterns[opid][0] != warr:
                continue
            if opid == wpid:
                continue  # identical index shape: same-iteration only
            if o_is_write and opos <= wpos:
                continue  # W-W pairs once, earlier write as the probe
            # Scalar order within one iteration: all reads of a statement
            # precede its write. The write precedes the partner iff the
            # partner sits in a later statement (reads of the same
            # statement come first; a later write always does).
            precedes = wpos < opos
            key = (wpid, opid, precedes)
            if key not in seen:
                seen.add(key)
                pairs.append(key)
    return BlockPlan(
        loop=loop,
        patterns=tuple(patterns),
        accesses=tuple(accesses),
        write_patterns=write_patterns,
        pairs=tuple(pairs),
    ), None


def _pair_unsafe(
    aw: int, bw: int, ar: int, br: int, trip: int, need_pos: bool
) -> bool:
    """Can write (aw, bw) and partner (ar, br) collide on the forbidden
    side of program order within ``trip`` iterations? Conservative: any
    slope combination this does not model reports unsafe."""
    d = br - bw
    if ar == aw:
        if d == 0 or d % aw:
            return False
        q = d // aw  # collision iteration distance i_w - i_partner
        if need_pos:
            return 0 < q <= trip - 1
        return -(trip - 1) <= q < 0
    if ar == 0:
        if d % aw:
            return False
        q = d // aw  # the one iteration whose write hits the location
        if q < 0 or q > trip - 1:
            return False
        return q >= 1 if need_pos else q <= trip - 2
    return True


def block_guard(
    ab: tuple[tuple[int, int], ...],
    writes: tuple[int, ...],
    pairs: tuple[tuple[int, int, bool], ...],
    trip: int,
) -> bool:
    """Runtime go/no-go for one block-loop entry.

    ``ab[p]`` is the concrete ``(slope, intercept)`` of pattern ``p``'s
    linear element index over 0-based iteration numbers. True means the
    vectorized schedule is provably order-equivalent to the scalar tier
    for this entry; False routes the entry to the scalar fallback.
    """
    for w in writes:
        if ab[w][0] == 0:
            return False  # invariant write target: a recurrence shape
    for wpid, opid, need_pos in pairs:
        aw, bw = ab[wpid]
        ar, br = ab[opid]
        if _pair_unsafe(aw, bw, ar, br, trip, need_pos):
            return False
    return True
