"""IR -> Python compilation.

The hot path of every experiment is executing a kernel while recording its
memory-access and branch traces. A tree-walking interpreter pays dispatch
overhead on every node; instead we compile the IR once into a Python
function and call it per run. Compilation has **two codegen tiers**,
selected per innermost loop:

- the **scalar tier** executes one Python statement per IR statement per
  iteration (closures over flat storage, one encoded ``list.append`` per
  trace event) — the oracle, able to run any program;
- the **block tier** (``exec_mode="block"``, the default) compiles an
  eligible innermost ``Loop`` — straight-line affine ``Assign`` bodies
  with no blocking loop-carried dependence, see
  :mod:`repro.exec.blocktier` — into whole-trip NumPy operations: one
  gather/compute/scatter per statement and one ``(trip, events/iter)``
  int64 event matrix raveled into the trace stream per loop entry.
  Static per-iteration :class:`_Costs` are multiplied by the trip count,
  so counters stay exact; a runtime dependence guard routes unsafe loop
  *entries* to the scalar fallback, keeping traces, values and counters
  bit-identical to ``exec_mode="scalar"`` (asserted by the differential
  suite in ``tests/exec/test_block_scalar_differential.py``).

Traced runs come in two modes. :meth:`CompiledProgram.run` materializes
the full trace into one :class:`~repro.exec.events.TraceBuffers` (the
debugging path). :meth:`CompiledProgram.run_streaming` instead flushes the
event buffers to :class:`~repro.machine.sinks.TraceSink` consumers in
bounded NumPy chunks: the generated scalar-tier code checks the buffer
level at every loop-iteration boundary and drains through the sinks, and
block-tier loops hand their event matrices to the same flush machinery as
ready-made int64 chunks.

Cost accounting model (documented in DESIGN.md):

- array element load/store: 1 load/store event + ``rank`` integer address
  ops (+ the arithmetic inside the subscripts, counted as intops);
- scalar variables live in registers: no memory events;
- arithmetic outside subscripts: 1 flop per operator/intrinsic;
- every ``if`` evaluation: 1 branch event (site-tagged, taken bit);
- every loop iteration: 1 loop_iter + 2 intops (increment, bound check).
"""

from __future__ import annotations

import math
import os
from typing import Mapping

import numpy as np

from repro import telemetry
from repro.errors import ExecutionError
from repro.exec.blocktier import (
    BlockPlan,
    analyze_block_loop,
    block_guard,
    classify_block_loop,
    resolve_min_block_trip,
)
from repro.exec.events import (
    DEFAULT_CHUNK_EVENTS,
    Counters,
    RunResult,
    TraceBuffers,
    check_addressable,
    evaluate_extents,
    memory_event_base,
)
from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Select,
    UnOp,
    VarRef,
    map_expr,
)
from repro.ir.program import Program
from repro.ir.stmt import Assign, If, Loop, Stmt, walk_stmts

_CMP_PY = {"==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: Buffer cap used by materializing runs — large enough that the flush
#: guard in generated code never fires.
_NEVER_FLUSH = 1 << 62

#: Execution tiers a program can be compiled for.
EXEC_MODES = ("block", "scalar")


def resolve_exec_mode(override: str | None = None) -> str:
    """The effective executor tier: *override*, else ``REPRO_EXEC_MODE``,
    else ``"block"`` (the two-tier executor; ``"scalar"`` is the oracle)."""
    mode = override or os.environ.get("REPRO_EXEC_MODE", "block")
    if mode not in EXEC_MODES:
        raise ExecutionError(
            f"exec_mode must be one of {EXEC_MODES}, got {mode!r}"
        )
    return mode


def _noop_flush() -> None:
    return None


class TierFallbacks:
    """Running counts of block-tier runtime fallbacks for one compiled
    program, split by reason. The generated code calls :meth:`guard` /
    :meth:`trip` on the (rare) fallback paths, so the counts exist
    whether or not telemetry is recording — the measurement layer reads
    per-run deltas and the run summary surfaces them.
    """

    __slots__ = ("guard_rejected", "below_min_trip")

    def __init__(self) -> None:
        self.guard_rejected = 0
        self.below_min_trip = 0

    def guard(self) -> None:
        """One loop entry rejected by the runtime dependence guard."""
        self.guard_rejected += 1

    def trip(self) -> None:
        """One non-empty loop entry below the block-tier trip floor."""
        self.below_min_trip += 1

    def as_dict(self) -> dict[str, int]:
        return {
            "guard_rejected": self.guard_rejected,
            "below_min_trip": self.below_min_trip,
        }


def _fp_errstate():
    """Error state under which block-tier float math runs: raise where the
    scalar tier would raise (division by zero, invalid sqrt)."""
    return np.errstate(divide="raise", invalid="raise", over="ignore")


def _py(name: str) -> str:
    """IR identifier as a safe Python identifier (keywords get a suffix)."""
    import keyword

    return name + "_kw" if keyword.iskeyword(name) else name


class _Costs:
    """Static per-block operation counts accumulated during codegen."""

    __slots__ = ("loads", "stores", "flops", "intops", "branches", "loop_iters")

    def __init__(self) -> None:
        self.loads = self.stores = self.flops = 0
        self.intops = self.branches = self.loop_iters = 0

    def emit(self, lines: list[str], indent: str) -> None:
        for name in ("loads", "stores", "flops", "intops", "branches", "loop_iters"):
            n = getattr(self, name)
            if n:
                lines.append(f"{indent}_c_{name} += {n}")

    def emit_scaled(self, lines: list[str], indent: str, trip: str) -> None:
        """Per-iteration counts times a runtime trip count (block tier)."""
        for name in ("loads", "stores", "flops", "intops", "branches", "loop_iters"):
            n = getattr(self, name)
            if n:
                lines.append(f"{indent}_c_{name} += {trip} * {n}")


class _Codegen:
    """Generates the body of the compiled kernel function."""

    def __init__(self, program: Program, trace: bool, *, block_tier: bool = False):
        self.program = program
        self.trace = trace
        self.block_tier = block_tier
        # Storage representation must be fixed before any statement is
        # emitted (scalar-tier subscript/value reads are wrapped for
        # ndarray storage), so pre-scan for block-eligible loops.
        self.ndarray_storage = block_tier and any(
            isinstance(s, Loop) and analyze_block_loop(s) is not None
            for s in walk_stmts(program.body)
        )
        self.block_loops = 0
        #: (loop var, tier, static fallback reason | None) per *innermost*
        #: loop, in emission order — the per-loop telemetry evidence.
        self.loop_tiers: list[tuple[str, str, str | None]] = []
        self.array_ids = {a.name: i for i, a in enumerate(program.arrays)}
        self.ranks = {a.name: a.rank for a in program.arrays}
        self.branch_sites: dict[int, str] = {}
        self._tmp = 0
        self.lines: list[str] = []

    # -- helpers ----------------------------------------------------------
    def fresh(self, base: str) -> str:
        self._tmp += 1
        return f"_{base}{self._tmp}"

    def _site(self, cond: Expr) -> int:
        site = len(self.branch_sites)
        self.branch_sites[site] = str(cond)
        return site

    def _lin_parts(
        self,
        array: str,
        indices: tuple[Expr, ...],
        lines: list[str],
        indent: str,
        costs: _Costs,
    ) -> str:
        """The flat (column-major) element-index expression for *indices*."""
        parts = []
        for d, sub in enumerate(indices):
            code = self._expr(sub, lines, indent, costs, in_subscript=True)
            stride = f"_s_{array}_{d}"
            parts.append(f"(({code})-1)" if d == 0 else f"{stride}*(({code})-1)")
        costs.intops += len(indices)
        return " + ".join(parts)

    def _linear_index(
        self, ref: ArrayRef, lines: list[str], indent: str, costs: _Costs
    ) -> str:
        """Emit computation of the flat (column-major) element index."""
        expr = self._lin_parts(ref.name, ref.indices, lines, indent, costs)
        tmp = self.fresh("l")
        lines.append(f"{indent}{tmp} = {expr}")
        return tmp

    # -- expressions ----------------------------------------------------------
    def _expr(
        self,
        expr: Expr,
        lines: list[str],
        indent: str,
        costs: _Costs,
        *,
        in_subscript: bool = False,
    ) -> str:
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, VarRef):
            return _py(expr.name)
        if isinstance(expr, ArrayRef):
            lin = self._linear_index(expr, lines, indent, costs)
            costs.loads += 1
            if self.trace:
                code = memory_event_base(self.array_ids[expr.name], False)
                lines.append(f"{indent}_ma({code} + {lin})")
            elem = f"{_py(expr.name)}[{lin}]"
            if self.ndarray_storage:
                # Keep scalar-tier semantics identical to list storage:
                # subscript positions need Python ints, value positions
                # plain floats (np.float64 round-trips bit-exactly).
                return f"int({elem})" if in_subscript else f"float({elem})"
            return elem
        if isinstance(expr, BinOp):
            lhs = self._expr(expr.lhs, lines, indent, costs, in_subscript=in_subscript)
            rhs = self._expr(expr.rhs, lines, indent, costs, in_subscript=in_subscript)
            if in_subscript:
                costs.intops += 1
            else:
                costs.flops += 1
            return f"({lhs} {expr.op} {rhs})"
        if isinstance(expr, UnOp):
            inner = self._expr(expr.operand, lines, indent, costs, in_subscript=in_subscript)
            if in_subscript:
                costs.intops += 1
            else:
                costs.flops += 1
            return f"(-{inner})"
        if isinstance(expr, Call):
            args = [
                self._expr(a, lines, indent, costs, in_subscript=in_subscript)
                for a in expr.args
            ]
            costs.flops += 1
            if expr.func == "sqrt":
                return f"_sqrt({args[0]})"
            if expr.func == "abs":
                return f"abs({args[0]})"
            return f"{expr.func}({', '.join(args)})"
        if isinstance(expr, Cmp):
            lhs = self._expr(expr.lhs, lines, indent, costs, in_subscript=in_subscript)
            rhs = self._expr(expr.rhs, lines, indent, costs, in_subscript=in_subscript)
            costs.intops += 1
            return f"({lhs} {_CMP_PY[expr.op]} {rhs})"
        if isinstance(expr, LogicalAnd):
            parts = [
                self._expr(a, lines, indent, costs, in_subscript=in_subscript)
                for a in expr.args
            ]
            return "(" + " and ".join(parts) + ")"
        if isinstance(expr, LogicalOr):
            parts = [
                self._expr(a, lines, indent, costs, in_subscript=in_subscript)
                for a in expr.args
            ]
            return "(" + " or ".join(parts) + ")"
        if isinstance(expr, LogicalNot):
            inner = self._expr(expr.arg, lines, indent, costs, in_subscript=in_subscript)
            return f"(not {inner})"
        if isinstance(expr, Select):
            return self._select(expr, lines, indent, costs)
        raise ExecutionError(f"cannot compile expression {expr!r}")

    def _select(self, expr: Select, lines: list[str], indent: str, costs: _Costs) -> str:
        """Expression conditional with per-arm dynamic cost accounting."""
        cond = self._expr(expr.cond, lines, indent, costs)
        tmp_c = self.fresh("sc")
        tmp_v = self.fresh("sv")
        lines.append(f"{indent}{tmp_c} = {cond}")
        costs.branches += 1
        if self.trace:
            site = self._site(expr.cond)
            lines.append(f"{indent}_ba({site * 2} + (1 if {tmp_c} else 0))")
        lines.append(f"{indent}if {tmp_c}:")
        arm_costs = _Costs()
        arm_lines: list[str] = []
        val = self._expr(expr.if_true, arm_lines, indent + "    ", arm_costs)
        lines.extend(arm_lines)
        arm_costs.emit(lines, indent + "    ")
        lines.append(f"{indent}    {tmp_v} = {val}")
        lines.append(f"{indent}else:")
        arm_costs = _Costs()
        arm_lines = []
        val = self._expr(expr.if_false, arm_lines, indent + "    ", arm_costs)
        lines.extend(arm_lines)
        arm_costs.emit(lines, indent + "    ")
        lines.append(f"{indent}    {tmp_v} = {val}")
        return tmp_v

    # -- statements --------------------------------------------------------
    def _block(self, stmts: tuple[Stmt, ...], indent: str, extra: _Costs | None = None) -> None:
        """Emit a statement block, merging static costs of straight-line runs."""
        costs = extra if extra is not None else _Costs()
        pending: list[str] = []

        def flush() -> None:
            nonlocal costs, pending
            self.lines.extend(pending)
            costs.emit(self.lines, indent)
            pending = []
            costs = _Costs()

        for stmt in stmts:
            if isinstance(stmt, Assign):
                self._assign(stmt, pending, indent, costs)
            elif isinstance(stmt, If):
                self._if(stmt, pending, indent, costs)
                flush()
            elif isinstance(stmt, Loop):
                flush()
                self._loop(stmt, indent)
            else:
                raise ExecutionError(f"cannot compile statement {stmt!r}")
        flush()

    def _assign(self, stmt: Assign, lines: list[str], indent: str, costs: _Costs) -> None:
        value = self._expr(stmt.value, lines, indent, costs)
        target = stmt.target
        if isinstance(target, VarRef):
            lines.append(f"{indent}{_py(target.name)} = {value}")
            return
        tmp = self.fresh("v")
        lines.append(f"{indent}{tmp} = {value}")
        lin = self._linear_index(target, lines, indent, costs)
        costs.stores += 1
        if self.trace:
            code = memory_event_base(self.array_ids[target.name], True)
            lines.append(f"{indent}_ma({code} + {lin})")
        lines.append(f"{indent}{_py(target.name)}[{lin}] = {tmp}")

    def _if(self, stmt: If, lines: list[str], indent: str, costs: _Costs) -> None:
        cond = self._expr(stmt.cond, lines, indent, costs)
        costs.branches += 1
        tmp = self.fresh("c")
        lines.append(f"{indent}{tmp} = {cond}")
        if self.trace:
            site = self._site(stmt.cond)
            lines.append(f"{indent}_ba({site * 2} + (1 if {tmp} else 0))")
        lines.append(f"{indent}if {tmp}:")
        self.lines.extend(lines)
        lines.clear()
        if stmt.then:
            mark = len(self.lines)
            self._block(stmt.then, indent + "    ")
            if len(self.lines) == mark:
                self.lines.append(f"{indent}    pass")
        else:
            self.lines.append(f"{indent}    pass")
        if stmt.orelse:
            self.lines.append(f"{indent}else:")
            self._block(stmt.orelse, indent + "    ")

    def _loop(self, stmt: Loop, indent: str) -> None:
        costs = _Costs()
        head: list[str] = []
        lo = self._expr(stmt.lower, head, indent, costs, in_subscript=True)
        hi = self._expr(stmt.upper, head, indent, costs, in_subscript=True)
        step = self._expr(stmt.step, head, indent, costs, in_subscript=True)
        self.lines.extend(head)
        costs.emit(self.lines, indent)
        plan, reason = (
            classify_block_loop(stmt) if self.block_tier else (None, "exec_mode")
        )
        if not any(isinstance(s, Loop) for s in walk_stmts(stmt.body)):
            tier = "scalar" if plan is None else "block"
            self.loop_tiers.append((stmt.var, tier, reason))
        if plan is None:
            self._emit_scalar_loop(stmt, indent, lo, hi, step)
        else:
            self._emit_two_tier_loop(stmt, plan, indent, lo, hi)

    def _emit_scalar_loop(
        self, stmt: Loop, indent: str, lo: str, hi: str, step: str
    ) -> None:
        """The per-iteration tier: one Python loop, per-event appends."""
        if isinstance(stmt.step, Const) and stmt.step.value == 1:
            self.lines.append(f"{indent}for {_py(stmt.var)} in range({lo}, ({hi}) + 1):")
        else:
            self.lines.append(
                f"{indent}for {_py(stmt.var)} in range({lo}, ({hi}) + 1, {step}):"
            )
        if self.trace:
            # Flush point: between iterations the event buffers may be
            # drained to the trace sinks. The guard is one len()+compare
            # per iteration, leaving the per-event path a bare append.
            self.lines.append(
                f"{indent}    if len(_mem) >= _cap or len(_bra) >= _cap: _flush()"
            )
        body_costs = _Costs()
        body_costs.loop_iters += 1
        body_costs.intops += 2
        self._block(stmt.body, indent + "    ", extra=body_costs)

    # -- block tier -------------------------------------------------------
    def _emit_lin_at(
        self, array: str, indices: tuple[Expr, ...], var: str, var_code: str,
        indent: str,
    ) -> str:
        """Emit the flat element index with the loop variable bound to the
        runtime value named *var_code* (an int or an int64 vector).

        Cost-free: the scalar tier already accounts for subscript
        arithmetic once per iteration; these are simulator-side values.
        """
        subst = tuple(
            map_expr(
                sub,
                lambda e: VarRef(var_code)
                if isinstance(e, VarRef) and e.name == var
                else e,
            )
            for sub in indices
        )
        scratch: list[str] = []
        expr = self._lin_parts(array, subst, scratch, indent, _Costs())
        assert not scratch, "affine subscripts emit no support lines"
        tmp = self.fresh("l")
        self.lines.append(f"{indent}{tmp} = {expr}")
        return tmp

    def _vec_expr(self, expr: Expr, reads, px: dict[int, str]) -> str:
        """NumPy-elementwise code for a block-eligible value expression.

        *reads* is an iterator over the statement's read accesses in the
        scalar tier's emission order; *px* maps pattern id -> the name of
        its precomputed index vector.
        """
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, VarRef):
            return _py(expr.name)
        if isinstance(expr, ArrayRef):
            acc = next(reads)
            return f"{_py(expr.name)}[{px[acc.pattern]}]"
        if isinstance(expr, BinOp):
            lhs = self._vec_expr(expr.lhs, reads, px)
            rhs = self._vec_expr(expr.rhs, reads, px)
            return f"({lhs} {expr.op} {rhs})"
        if isinstance(expr, UnOp):
            return f"(-{self._vec_expr(expr.operand, reads, px)})"
        if isinstance(expr, Call):
            args = [self._vec_expr(a, reads, px) for a in expr.args]
            if expr.func == "sqrt":
                return f"_npsqrt({args[0]})"
            if expr.func == "abs":
                return f"_npabs({args[0]})"
        raise ExecutionError(f"not block-vectorizable: {expr!r}")

    def _emit_two_tier_loop(
        self, stmt: Loop, plan: BlockPlan, indent: str, lo: str, hi: str
    ) -> None:
        """Runtime-guarded block path with the scalar loop as fallback."""
        self.block_loops += 1
        assert isinstance(stmt.step, Const)
        step = stmt.step.value
        ind2 = indent + "    "
        lo_v, hi_v = self.fresh("lo"), self.fresh("hi")
        self.lines.append(f"{indent}{lo_v} = {lo}")
        self.lines.append(f"{indent}{hi_v} = {hi}")
        trip, ok = self.fresh("T"), self.fresh("ok")
        self.lines.append(
            f"{indent}{trip} = ({hi_v} - {lo_v}) // {step} + 1 "
            f"if {hi_v} >= {lo_v} else 0"
        )
        # Runtime dependence guard: concrete (slope, intercept) per access
        # pattern, affinely extrapolated from the first two lattice points.
        self.lines.append(f"{indent}if {trip} >= _mbt:")
        v0, v1 = self.fresh("q"), self.fresh("q")
        self.lines.append(f"{ind2}{v0} = {lo_v}")
        self.lines.append(f"{ind2}{v1} = {lo_v} + {step}")
        ab_parts = []
        for array, indices in plan.patterns:
            b_name = self._emit_lin_at(array, indices, stmt.var, v0, ind2)
            at_next = self._emit_lin_at(array, indices, stmt.var, v1, ind2)
            a_name = self.fresh("a")
            self.lines.append(f"{ind2}{a_name} = {at_next} - {b_name}")
            ab_parts.append(f"({a_name}, {b_name})")
        self.lines.append(
            f"{ind2}{ok} = _bg(({', '.join(ab_parts)},), "
            f"{plan.write_patterns!r}, {plan.pairs!r}, {trip})"
        )
        self.lines.append(f"{ind2}if not {ok}: _fbg()")
        self.lines.append(f"{indent}else:")
        self.lines.append(f"{indent}    {ok} = False")
        self.lines.append(f"{indent}    if {trip} > 0: _fbt()")

        self.lines.append(f"{indent}if {ok}:")
        iv = self.fresh("iv")
        self.lines.append(
            f"{ind2}{iv} = _np.arange({lo_v}, {hi_v} + 1, {step}, dtype=_np.int64)"
        )
        px: dict[int, str] = {}
        for pid, (array, indices) in enumerate(plan.patterns):
            px[pid] = self._emit_lin_at(array, indices, stmt.var, iv, ind2)
        self.lines.append(f"{ind2}with _fpe():")
        ind3 = ind2 + "    "
        acc_iter = iter(plan.accesses)
        for body_stmt in stmt.body:
            assert isinstance(body_stmt, Assign)
            assert isinstance(body_stmt.target, ArrayRef)
            val = self._vec_expr(body_stmt.value, acc_iter, px)
            wacc = next(acc_iter)
            self.lines.append(
                f"{ind3}{_py(body_stmt.target.name)}[{px[wacc.pattern]}] = {val}"
            )
        if self.trace:
            k = len(plan.accesses)
            ev = self.fresh("E")
            self.lines.append(
                f"{ind2}{ev} = _np.empty(({trip}, {k}), dtype=_np.int64)"
            )
            for col, acc in enumerate(plan.accesses):
                base = memory_event_base(self.array_ids[acc.array], acc.is_write)
                self.lines.append(f"{ind2}{ev}[:, {col}] = {base} + {px[acc.pattern]}")
            self.lines.append(f"{ind2}_mv({ev}.reshape(-1))")
        # Static per-iteration costs, scaled by the trip count. The probe
        # replays the scalar tier's codegen against scratch buffers so the
        # counts are the scalar path's, by construction.
        probe = _Costs()
        probe.loop_iters += 1
        probe.intops += 2
        scratch: list[str] = []
        for body_stmt in stmt.body:
            self._assign(body_stmt, scratch, ind2, probe)
        probe.emit_scaled(self.lines, ind2, trip)

        self.lines.append(f"{indent}else:")
        self._emit_scalar_loop(stmt, indent + "    ", lo_v, hi_v, str(step))

    # -- whole function -------------------------------------------------------
    def generate(self) -> str:
        p = self.program
        ind = "    "
        out: list[str] = [
            "def _kernel(_params, _arrays, _exts, _mem, _bra, _cap, _flush, _mv):"
        ]
        out.append(f"{ind}_sqrt = _math.sqrt")
        for name in p.params:
            out.append(f"{ind}{_py(name)} = _params[{name!r}]")
        for a in p.arrays:
            out.append(f"{ind}{_py(a.name)} = _arrays[{a.name!r}]")
            for d in range(a.rank - 1):
                # stride of dimension d+1 = product of extents 0..d
                prod = "*".join(f"_exts[{a.name!r}][{e}]" for e in range(d + 1))
                out.append(f"{ind}_s_{a.name}_{d + 1} = {prod}")
        for s in p.scalars:
            init = "0" if s.dtype == "i8" else "0.0"
            out.append(f"{ind}{_py(s.name)} = {init}")
        if self.trace:
            out.append(f"{ind}_ma = _mem.append")
            out.append(f"{ind}_ba = _bra.append")
        out.append(
            f"{ind}_c_loads = _c_stores = _c_flops = _c_intops = "
            f"_c_branches = _c_loop_iters = 0"
        )
        self.lines = []
        self._block(p.body, ind)
        out.extend(self.lines or [f"{ind}pass"])
        scalar_dict = ", ".join(f"{s.name!r}: {_py(s.name)}" for s in p.scalars)
        out.append(
            f"{ind}return (_c_loads, _c_stores, _c_flops, _c_intops, "
            f"_c_branches, _c_loop_iters, {{{scalar_dict}}})"
        )
        return "\n".join(out)


class CompiledProgram:
    """A program compiled to a Python callable.

    Compile once, run many times with different parameters/inputs::

        cp = CompiledProgram(program, trace=True)
        result = cp.run({"N": 64}, {"A": a0})

    ``exec_mode`` selects the codegen tier: ``"block"`` (default, or via
    ``REPRO_EXEC_MODE``) vectorizes eligible innermost loops and falls
    back per loop / per entry; ``"scalar"`` is the pure per-iteration
    oracle. Both produce bit-identical traces, counters and values.
    ``min_block_trip`` (default ``REPRO_BLOCK_MIN_TRIP`` or 16) is the
    smallest trip count worth vectorizing. :attr:`block_loops` counts the
    loops that got a block path.
    """

    def __init__(
        self,
        program: Program,
        *,
        trace: bool = False,
        exec_mode: str | None = None,
        min_block_trip: int | None = None,
    ):
        self.program = program
        self.trace = trace
        self.exec_mode = resolve_exec_mode(exec_mode)
        self.min_block_trip = resolve_min_block_trip(min_block_trip)
        #: Runtime fallback counts (guard-rejected / below-min-trip loop
        #: entries), accumulated across every run of this instance.
        self.fallbacks = TierFallbacks()
        with telemetry.span(
            "exec.compile", program=program.name, mode=self.exec_mode
        ) as csp:
            gen = _Codegen(program, trace, block_tier=self.exec_mode == "block")
            self.source = gen.generate()
            self.array_ids = gen.array_ids
            self.branch_sites = gen.branch_sites
            #: Number of innermost loops compiled with a block (vector) path.
            self.block_loops = gen.block_loops
            #: (loop var, tier, static reason | None) per innermost loop.
            self.loop_tiers = tuple(gen.loop_tiers)
            self._ndarray_storage = gen.ndarray_storage
            namespace: dict = {
                "_math": math,
                "_np": np,
                "_npsqrt": np.sqrt,
                "_npabs": np.abs,
                "_bg": block_guard,
                "_mbt": self.min_block_trip,
                "_fpe": _fp_errstate,
                "_fbg": self.fallbacks.guard,
                "_fbt": self.fallbacks.trip,
            }
            exec(compile(self.source, f"<repro:{program.name}>", "exec"), namespace)
            self._fn = namespace["_kernel"]
            if telemetry.enabled():
                csp.set(block_loops=self.block_loops)
                for var, tier, reason in self.loop_tiers:
                    attrs = {"var": var, "tier": tier}
                    if reason is not None:
                        attrs["reason"] = reason
                    telemetry.record_span(
                        "exec.loop", telemetry.perf_counter(), 0.0, **attrs
                    )
                    telemetry.counter(f"exec.loops.{tier}")
                    if tier == "scalar" and reason not in (None, "exec_mode"):
                        telemetry.counter(f"exec.fallback.static.{reason}")

    @property
    def static_fallbacks(self) -> dict[str, int]:
        """Innermost loops rejected from the block tier at compile time,
        keyed by :data:`~repro.exec.blocktier.STATIC_FALLBACK_REASONS`."""
        counts: dict[str, int] = {}
        for _var, tier, reason in self.loop_tiers:
            if tier == "scalar" and reason not in (None, "exec_mode"):
                counts[reason] = counts.get(reason, 0) + 1
        return counts

    def _prepare(
        self,
        params: Mapping[str, int],
        inputs: Mapping[str, np.ndarray] | None,
    ) -> tuple[dict[str, tuple[int, ...]], dict[str, object]]:
        """Evaluate extents, validate trace addressability, seed storage.

        Storage is a flat column-major Python list per array on the scalar
        tier and a flat float64 ndarray when any loop has a block path
        (gather/scatter needs ndarrays; scalar statements index either).
        """
        inputs = inputs or {}
        p = self.program
        missing = set(p.params) - set(params)
        if missing:
            raise ExecutionError(f"missing parameters: {sorted(missing)}")
        exts: dict[str, tuple[int, ...]] = {}
        storage: dict[str, object] = {}
        for a in p.arrays:
            shape = evaluate_extents(a.extents, params)
            exts[a.name] = shape
            size = int(np.prod(shape))
            if self.trace:
                check_addressable(p.name, a.name, size)
            given = inputs.get(a.name)
            if given is not None:
                arr = np.asarray(given, dtype=np.float64)
                if arr.shape != shape:
                    raise ExecutionError(
                        f"input {a.name} has shape {arr.shape}, expected {shape}"
                    )
                flat = arr.flatten(order="F")
                storage[a.name] = flat if self._ndarray_storage else flat.tolist()
            elif self._ndarray_storage:
                storage[a.name] = np.zeros(size, dtype=np.float64)
            else:
                storage[a.name] = [0.0] * size
        return exts, storage

    def _execute(
        self,
        params: Mapping[str, int],
        exts: dict[str, tuple[int, ...]],
        storage: dict[str, object],
        mem: list[int],
        bra: list[int],
        cap: int,
        flush,
        emit_vec,
    ) -> tuple[Counters, dict[str, float]]:
        """Call the generated kernel and package counters."""
        fb = self.fallbacks
        guard0, trip0 = fb.guard_rejected, fb.below_min_trip
        with telemetry.span(
            "exec.run", program=self.program.name, mode=self.exec_mode
        ) as sp:
            try:
                (loads, stores, flops, intops, branches, iters, scalars) = self._fn(
                    dict(params), storage, exts, mem, bra, cap, flush, emit_vec
                )
            except (IndexError, ZeroDivisionError, KeyError, FloatingPointError) as exc:
                raise ExecutionError(
                    f"runtime failure in {self.program.name}: {exc}"
                ) from exc
        if telemetry.enabled():
            dg = fb.guard_rejected - guard0
            dt = fb.below_min_trip - trip0
            if dg:
                telemetry.counter("exec.fallback.guard_rejected", dg)
            if dt:
                telemetry.counter("exec.fallback.below_min_trip", dt)
            sp.set(guard_rejected=dg, below_min_trip=dt)
        scalars = {
            k: (v.item() if isinstance(v, np.generic) else v)
            for k, v in scalars.items()
        }
        return Counters(loads, stores, flops, intops, branches, iters), scalars

    def _result(
        self,
        exts: dict[str, tuple[int, ...]],
        storage: dict[str, object],
        counters: Counters,
        scalars: dict[str, float],
        trace: TraceBuffers | None,
    ) -> RunResult:
        arrays = {
            name: np.asarray(vals, dtype=np.float64).reshape(exts[name], order="F")
            for name, vals in storage.items()
        }
        return RunResult(
            arrays=arrays,
            scalars=scalars,
            counters=counters,
            trace=trace,
            array_ids=dict(self.array_ids),
            branch_sites=dict(self.branch_sites),
        )

    def run(
        self,
        params: Mapping[str, int],
        inputs: Mapping[str, np.ndarray] | None = None,
    ) -> RunResult:
        """Execute under *params*, seeding arrays from *inputs* (column-major
        flattening); missing arrays start at zero.

        Materializes the full trace when tracing is enabled — peak memory
        grows with the event count. Use :meth:`run_streaming` to replay
        the trace through sinks in bounded memory instead.
        """
        exts, storage = self._prepare(params, inputs)
        mem: list[int] = []
        bra: list[int] = []

        def emit_vec(chunk: np.ndarray) -> None:
            # Block-tier event matrices join the same materialized buffer
            # the scalar tier appends to, preserving program order.
            mem.extend(chunk.tolist())

        # A cap no run reaches: the flush guard never fires, so the
        # buffers simply accumulate the whole trace.
        counters, scalars = self._execute(
            params, exts, storage, mem, bra, _NEVER_FLUSH, _noop_flush, emit_vec
        )
        trace = None
        if self.trace:
            trace = TraceBuffers(
                np.asarray(mem, dtype=np.int64),
                np.asarray(bra, dtype=np.int64),
            )
        return self._result(exts, storage, counters, scalars, trace)

    def run_streaming(
        self,
        params: Mapping[str, int],
        inputs: Mapping[str, np.ndarray] | None = None,
        *,
        memory_sink=None,
        branch_sink=None,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
    ) -> RunResult:
        """Execute while streaming encoded events through trace sinks.

        ``memory_sink`` / ``branch_sink`` receive 1-D ``int64`` chunks of
        encoded events (see :mod:`repro.exec.events`) in program order;
        a ``None`` sink discards its stream. The returned
        :class:`~repro.exec.events.RunResult` carries arrays, scalars and
        counters but ``trace=None`` — the trace only ever existed as
        chunks. The caller owns the sinks' lifecycle and calls their
        ``finish()`` afterwards.

        Scalar-tier chunks are at most ``chunk_events`` plus the events
        of one innermost loop iteration (the guard sits at iteration
        boundaries). A block-tier loop entry materializes its own events
        as one ``trip * events_per_iteration`` matrix, flushes any
        pending scalar-tier events first (order is preserved), then feeds
        the matrix through the sinks in ``chunk_events``-sized slices.
        """
        if not self.trace:
            raise ExecutionError("run_streaming() needs a traced program (trace=True)")
        if chunk_events <= 0:
            raise ExecutionError(f"chunk_events must be positive, got {chunk_events}")
        exts, storage = self._prepare(params, inputs)
        mem: list[int] = []
        bra: list[int] = []

        def flush() -> None:
            if mem:
                if memory_sink is not None:
                    memory_sink.feed(np.asarray(mem, dtype=np.int64))
                mem.clear()
            if bra:
                if branch_sink is not None:
                    branch_sink.feed(np.asarray(bra, dtype=np.int64))
                bra.clear()

        def emit_vec(chunk: np.ndarray) -> None:
            if mem:
                if memory_sink is not None:
                    memory_sink.feed(np.asarray(mem, dtype=np.int64))
                mem.clear()
            if memory_sink is not None:
                for off in range(0, len(chunk), chunk_events):
                    memory_sink.feed(chunk[off : off + chunk_events])

        counters, scalars = self._execute(
            params, exts, storage, mem, bra, chunk_events, flush, emit_vec
        )
        flush()  # tail events after the last loop boundary
        return self._result(exts, storage, counters, scalars, trace=None)


def run_compiled(
    program: Program,
    params: Mapping[str, int],
    inputs: Mapping[str, np.ndarray] | None = None,
    *,
    trace: bool = False,
    exec_mode: str | None = None,
) -> RunResult:
    """One-shot compile + run."""
    return CompiledProgram(program, trace=trace, exec_mode=exec_mode).run(
        params, inputs
    )
