"""IR -> Python compilation.

The hot path of every experiment is executing a kernel while recording its
memory-access and branch traces. A tree-walking interpreter pays dispatch
overhead on every node; instead we compile the IR once into a Python
function (closures over flat Python lists for array storage, encoded
``list.append`` calls for trace events) and call it per run.

Traced runs come in two modes. :meth:`CompiledProgram.run` materializes
the full trace into one :class:`~repro.exec.events.TraceBuffers` (the
debugging path). :meth:`CompiledProgram.run_streaming` instead flushes the
event buffers to :class:`~repro.machine.sinks.TraceSink` consumers in
bounded NumPy chunks: the generated code checks the buffer level at every
loop-iteration boundary (one ``len`` comparison per iteration, so the
per-event hot path stays a plain ``list.append``) and drains through the
sinks, keeping peak trace memory at roughly the chunk size no matter how
many events a run produces.

Cost accounting model (documented in DESIGN.md):

- array element load/store: 1 load/store event + ``rank`` integer address
  ops (+ the arithmetic inside the subscripts, counted as intops);
- scalar variables live in registers: no memory events;
- arithmetic outside subscripts: 1 flop per operator/intrinsic;
- every ``if`` evaluation: 1 branch event (site-tagged, taken bit);
- every loop iteration: 1 loop_iter + 2 intops (increment, bound check).
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.exec.events import (
    ADDR_BITS,
    DEFAULT_CHUNK_EVENTS,
    Counters,
    RunResult,
    TraceBuffers,
    check_addressable,
    evaluate_extents,
)
from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Select,
    UnOp,
    VarRef,
)
from repro.ir.program import Program
from repro.ir.stmt import Assign, If, Loop, Stmt

_CMP_PY = {"==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: Buffer cap used by materializing runs — large enough that the flush
#: guard in generated code never fires.
_NEVER_FLUSH = 1 << 62


def _noop_flush() -> None:
    return None


def _py(name: str) -> str:
    """IR identifier as a safe Python identifier (keywords get a suffix)."""
    import keyword

    return name + "_kw" if keyword.iskeyword(name) else name


class _Costs:
    """Static per-block operation counts accumulated during codegen."""

    __slots__ = ("loads", "stores", "flops", "intops", "branches", "loop_iters")

    def __init__(self) -> None:
        self.loads = self.stores = self.flops = 0
        self.intops = self.branches = self.loop_iters = 0

    def emit(self, lines: list[str], indent: str) -> None:
        for name in ("loads", "stores", "flops", "intops", "branches", "loop_iters"):
            n = getattr(self, name)
            if n:
                lines.append(f"{indent}_c_{name} += {n}")


class _Codegen:
    """Generates the body of the compiled kernel function."""

    def __init__(self, program: Program, trace: bool):
        self.program = program
        self.trace = trace
        self.array_ids = {a.name: i for i, a in enumerate(program.arrays)}
        self.ranks = {a.name: a.rank for a in program.arrays}
        self.branch_sites: dict[int, str] = {}
        self._tmp = 0
        self.lines: list[str] = []

    # -- helpers ----------------------------------------------------------
    def fresh(self, base: str) -> str:
        self._tmp += 1
        return f"_{base}{self._tmp}"

    def _site(self, cond: Expr) -> int:
        site = len(self.branch_sites)
        self.branch_sites[site] = str(cond)
        return site

    def _linear_index(
        self, ref: ArrayRef, lines: list[str], indent: str, costs: _Costs
    ) -> str:
        """Emit computation of the flat (column-major) element index."""
        parts = []
        for d, sub in enumerate(ref.indices):
            code = self._expr(sub, lines, indent, costs, in_subscript=True)
            stride = f"_s_{ref.name}_{d}"
            parts.append(f"(({code})-1)" if d == 0 else f"{stride}*(({code})-1)")
        costs.intops += len(ref.indices)
        tmp = self.fresh("l")
        lines.append(f"{indent}{tmp} = {' + '.join(parts)}")
        return tmp

    # -- expressions ----------------------------------------------------------
    def _expr(
        self,
        expr: Expr,
        lines: list[str],
        indent: str,
        costs: _Costs,
        *,
        in_subscript: bool = False,
    ) -> str:
        if isinstance(expr, Const):
            return repr(expr.value)
        if isinstance(expr, VarRef):
            return _py(expr.name)
        if isinstance(expr, ArrayRef):
            lin = self._linear_index(expr, lines, indent, costs)
            costs.loads += 1
            if self.trace:
                aid = self.array_ids[expr.name]
                code = (aid * 2) << ADDR_BITS
                lines.append(f"{indent}_ma({code} + {lin})")
            return f"{_py(expr.name)}[{lin}]"
        if isinstance(expr, BinOp):
            lhs = self._expr(expr.lhs, lines, indent, costs, in_subscript=in_subscript)
            rhs = self._expr(expr.rhs, lines, indent, costs, in_subscript=in_subscript)
            if in_subscript:
                costs.intops += 1
            else:
                costs.flops += 1
            return f"({lhs} {expr.op} {rhs})"
        if isinstance(expr, UnOp):
            inner = self._expr(expr.operand, lines, indent, costs, in_subscript=in_subscript)
            if in_subscript:
                costs.intops += 1
            else:
                costs.flops += 1
            return f"(-{inner})"
        if isinstance(expr, Call):
            args = [
                self._expr(a, lines, indent, costs, in_subscript=in_subscript)
                for a in expr.args
            ]
            costs.flops += 1
            if expr.func == "sqrt":
                return f"_sqrt({args[0]})"
            if expr.func == "abs":
                return f"abs({args[0]})"
            return f"{expr.func}({', '.join(args)})"
        if isinstance(expr, Cmp):
            lhs = self._expr(expr.lhs, lines, indent, costs, in_subscript=in_subscript)
            rhs = self._expr(expr.rhs, lines, indent, costs, in_subscript=in_subscript)
            costs.intops += 1
            return f"({lhs} {_CMP_PY[expr.op]} {rhs})"
        if isinstance(expr, LogicalAnd):
            parts = [
                self._expr(a, lines, indent, costs, in_subscript=in_subscript)
                for a in expr.args
            ]
            return "(" + " and ".join(parts) + ")"
        if isinstance(expr, LogicalOr):
            parts = [
                self._expr(a, lines, indent, costs, in_subscript=in_subscript)
                for a in expr.args
            ]
            return "(" + " or ".join(parts) + ")"
        if isinstance(expr, LogicalNot):
            inner = self._expr(expr.arg, lines, indent, costs, in_subscript=in_subscript)
            return f"(not {inner})"
        if isinstance(expr, Select):
            return self._select(expr, lines, indent, costs)
        raise ExecutionError(f"cannot compile expression {expr!r}")

    def _select(self, expr: Select, lines: list[str], indent: str, costs: _Costs) -> str:
        """Expression conditional with per-arm dynamic cost accounting."""
        cond = self._expr(expr.cond, lines, indent, costs)
        tmp_c = self.fresh("sc")
        tmp_v = self.fresh("sv")
        lines.append(f"{indent}{tmp_c} = {cond}")
        costs.branches += 1
        if self.trace:
            site = self._site(expr.cond)
            lines.append(f"{indent}_ba({site * 2} + (1 if {tmp_c} else 0))")
        lines.append(f"{indent}if {tmp_c}:")
        arm_costs = _Costs()
        arm_lines: list[str] = []
        val = self._expr(expr.if_true, arm_lines, indent + "    ", arm_costs)
        lines.extend(arm_lines)
        arm_costs.emit(lines, indent + "    ")
        lines.append(f"{indent}    {tmp_v} = {val}")
        lines.append(f"{indent}else:")
        arm_costs = _Costs()
        arm_lines = []
        val = self._expr(expr.if_false, arm_lines, indent + "    ", arm_costs)
        lines.extend(arm_lines)
        arm_costs.emit(lines, indent + "    ")
        lines.append(f"{indent}    {tmp_v} = {val}")
        return tmp_v

    # -- statements --------------------------------------------------------
    def _block(self, stmts: tuple[Stmt, ...], indent: str, extra: _Costs | None = None) -> None:
        """Emit a statement block, merging static costs of straight-line runs."""
        costs = extra if extra is not None else _Costs()
        pending: list[str] = []

        def flush() -> None:
            nonlocal costs, pending
            self.lines.extend(pending)
            costs.emit(self.lines, indent)
            pending = []
            costs = _Costs()

        for stmt in stmts:
            if isinstance(stmt, Assign):
                self._assign(stmt, pending, indent, costs)
            elif isinstance(stmt, If):
                self._if(stmt, pending, indent, costs)
                flush()
            elif isinstance(stmt, Loop):
                flush()
                self._loop(stmt, indent)
            else:
                raise ExecutionError(f"cannot compile statement {stmt!r}")
        flush()

    def _assign(self, stmt: Assign, lines: list[str], indent: str, costs: _Costs) -> None:
        value = self._expr(stmt.value, lines, indent, costs)
        target = stmt.target
        if isinstance(target, VarRef):
            lines.append(f"{indent}{_py(target.name)} = {value}")
            return
        tmp = self.fresh("v")
        lines.append(f"{indent}{tmp} = {value}")
        lin = self._linear_index(target, lines, indent, costs)
        costs.stores += 1
        if self.trace:
            aid = self.array_ids[target.name]
            code = (aid * 2 + 1) << ADDR_BITS
            lines.append(f"{indent}_ma({code} + {lin})")
        lines.append(f"{indent}{_py(target.name)}[{lin}] = {tmp}")

    def _if(self, stmt: If, lines: list[str], indent: str, costs: _Costs) -> None:
        cond = self._expr(stmt.cond, lines, indent, costs)
        costs.branches += 1
        tmp = self.fresh("c")
        lines.append(f"{indent}{tmp} = {cond}")
        if self.trace:
            site = self._site(stmt.cond)
            lines.append(f"{indent}_ba({site * 2} + (1 if {tmp} else 0))")
        lines.append(f"{indent}if {tmp}:")
        self.lines.extend(lines)
        lines.clear()
        if stmt.then:
            mark = len(self.lines)
            self._block(stmt.then, indent + "    ")
            if len(self.lines) == mark:
                self.lines.append(f"{indent}    pass")
        else:
            self.lines.append(f"{indent}    pass")
        if stmt.orelse:
            self.lines.append(f"{indent}else:")
            self._block(stmt.orelse, indent + "    ")

    def _loop(self, stmt: Loop, indent: str) -> None:
        costs = _Costs()
        head: list[str] = []
        lo = self._expr(stmt.lower, head, indent, costs, in_subscript=True)
        hi = self._expr(stmt.upper, head, indent, costs, in_subscript=True)
        step = self._expr(stmt.step, head, indent, costs, in_subscript=True)
        self.lines.extend(head)
        costs.emit(self.lines, indent)
        if isinstance(stmt.step, Const) and stmt.step.value == 1:
            self.lines.append(f"{indent}for {_py(stmt.var)} in range({lo}, ({hi}) + 1):")
        else:
            self.lines.append(
                f"{indent}for {_py(stmt.var)} in range({lo}, ({hi}) + 1, {step}):"
            )
        if self.trace:
            # Flush point: between iterations the event buffers may be
            # drained to the trace sinks. The guard is one len()+compare
            # per iteration, leaving the per-event path a bare append.
            self.lines.append(
                f"{indent}    if len(_mem) >= _cap or len(_bra) >= _cap: _flush()"
            )
        body_costs = _Costs()
        body_costs.loop_iters += 1
        body_costs.intops += 2
        self._block(stmt.body, indent + "    ", extra=body_costs)

    # -- whole function -------------------------------------------------------
    def generate(self) -> str:
        p = self.program
        ind = "    "
        out: list[str] = [
            "def _kernel(_params, _arrays, _exts, _mem, _bra, _cap, _flush):"
        ]
        out.append(f"{ind}_sqrt = _math.sqrt")
        for name in p.params:
            out.append(f"{ind}{_py(name)} = _params[{name!r}]")
        for a in p.arrays:
            out.append(f"{ind}{_py(a.name)} = _arrays[{a.name!r}]")
            for d in range(a.rank - 1):
                # stride of dimension d+1 = product of extents 0..d
                prod = "*".join(f"_exts[{a.name!r}][{e}]" for e in range(d + 1))
                out.append(f"{ind}_s_{a.name}_{d + 1} = {prod}")
        for s in p.scalars:
            init = "0" if s.dtype == "i8" else "0.0"
            out.append(f"{ind}{_py(s.name)} = {init}")
        if self.trace:
            out.append(f"{ind}_ma = _mem.append")
            out.append(f"{ind}_ba = _bra.append")
        out.append(
            f"{ind}_c_loads = _c_stores = _c_flops = _c_intops = "
            f"_c_branches = _c_loop_iters = 0"
        )
        self.lines = []
        self._block(p.body, ind)
        out.extend(self.lines or [f"{ind}pass"])
        scalar_dict = ", ".join(f"{s.name!r}: {_py(s.name)}" for s in p.scalars)
        out.append(
            f"{ind}return (_c_loads, _c_stores, _c_flops, _c_intops, "
            f"_c_branches, _c_loop_iters, {{{scalar_dict}}})"
        )
        return "\n".join(out)


class CompiledProgram:
    """A program compiled to a Python callable.

    Compile once, run many times with different parameters/inputs::

        cp = CompiledProgram(program, trace=True)
        result = cp.run({"N": 64}, {"A": a0})
    """

    def __init__(self, program: Program, *, trace: bool = False):
        self.program = program
        self.trace = trace
        gen = _Codegen(program, trace)
        self.source = gen.generate()
        self.array_ids = gen.array_ids
        self.branch_sites = gen.branch_sites
        namespace: dict = {"_math": math}
        exec(compile(self.source, f"<repro:{program.name}>", "exec"), namespace)
        self._fn = namespace["_kernel"]

    def _prepare(
        self,
        params: Mapping[str, int],
        inputs: Mapping[str, np.ndarray] | None,
    ) -> tuple[dict[str, tuple[int, ...]], dict[str, list]]:
        """Evaluate extents, validate trace addressability, seed storage."""
        inputs = inputs or {}
        p = self.program
        missing = set(p.params) - set(params)
        if missing:
            raise ExecutionError(f"missing parameters: {sorted(missing)}")
        exts: dict[str, tuple[int, ...]] = {}
        storage: dict[str, list] = {}
        for a in p.arrays:
            shape = evaluate_extents(a.extents, params)
            exts[a.name] = shape
            size = int(np.prod(shape))
            if self.trace:
                check_addressable(p.name, a.name, size)
            given = inputs.get(a.name)
            if given is not None:
                arr = np.asarray(given, dtype=np.float64)
                if arr.shape != shape:
                    raise ExecutionError(
                        f"input {a.name} has shape {arr.shape}, expected {shape}"
                    )
                storage[a.name] = arr.flatten(order="F").tolist()
            else:
                storage[a.name] = [0.0] * size
        return exts, storage

    def _execute(
        self,
        params: Mapping[str, int],
        exts: dict[str, tuple[int, ...]],
        storage: dict[str, list],
        mem: list[int],
        bra: list[int],
        cap: int,
        flush,
    ) -> tuple[Counters, dict[str, float]]:
        """Call the generated kernel and package counters."""
        try:
            (loads, stores, flops, intops, branches, iters, scalars) = self._fn(
                dict(params), storage, exts, mem, bra, cap, flush
            )
        except (IndexError, ZeroDivisionError, KeyError) as exc:
            raise ExecutionError(
                f"runtime failure in {self.program.name}: {exc}"
            ) from exc
        return Counters(loads, stores, flops, intops, branches, iters), scalars

    def _result(
        self,
        exts: dict[str, tuple[int, ...]],
        storage: dict[str, list],
        counters: Counters,
        scalars: dict[str, float],
        trace: TraceBuffers | None,
    ) -> RunResult:
        arrays = {
            name: np.asarray(vals, dtype=np.float64).reshape(exts[name], order="F")
            for name, vals in storage.items()
        }
        return RunResult(
            arrays=arrays,
            scalars=scalars,
            counters=counters,
            trace=trace,
            array_ids=dict(self.array_ids),
            branch_sites=dict(self.branch_sites),
        )

    def run(
        self,
        params: Mapping[str, int],
        inputs: Mapping[str, np.ndarray] | None = None,
    ) -> RunResult:
        """Execute under *params*, seeding arrays from *inputs* (column-major
        flattening); missing arrays start at zero.

        Materializes the full trace when tracing is enabled — peak memory
        grows with the event count. Use :meth:`run_streaming` to replay
        the trace through sinks in bounded memory instead.
        """
        exts, storage = self._prepare(params, inputs)
        mem: list[int] = []
        bra: list[int] = []
        # A cap no run reaches: the flush guard never fires, so the
        # buffers simply accumulate the whole trace.
        counters, scalars = self._execute(
            params, exts, storage, mem, bra, _NEVER_FLUSH, _noop_flush
        )
        trace = None
        if self.trace:
            trace = TraceBuffers(
                np.asarray(mem, dtype=np.int64),
                np.asarray(bra, dtype=np.int64),
            )
        return self._result(exts, storage, counters, scalars, trace)

    def run_streaming(
        self,
        params: Mapping[str, int],
        inputs: Mapping[str, np.ndarray] | None = None,
        *,
        memory_sink=None,
        branch_sink=None,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
    ) -> RunResult:
        """Execute while streaming encoded events through trace sinks.

        ``memory_sink`` / ``branch_sink`` receive 1-D ``int64`` chunks of
        encoded events (see :mod:`repro.exec.events`) in program order;
        a ``None`` sink discards its stream. The returned
        :class:`~repro.exec.events.RunResult` carries arrays, scalars and
        counters but ``trace=None`` — the trace only ever existed as
        chunks. The caller owns the sinks' lifecycle and calls their
        ``finish()`` afterwards.

        Chunks are at most ``chunk_events`` plus the events of one
        innermost loop iteration (the guard sits at iteration
        boundaries); peak trace memory is bounded accordingly.
        """
        if not self.trace:
            raise ExecutionError("run_streaming() needs a traced program (trace=True)")
        if chunk_events <= 0:
            raise ExecutionError(f"chunk_events must be positive, got {chunk_events}")
        exts, storage = self._prepare(params, inputs)
        mem: list[int] = []
        bra: list[int] = []

        def flush() -> None:
            if mem:
                if memory_sink is not None:
                    memory_sink.feed(np.asarray(mem, dtype=np.int64))
                mem.clear()
            if bra:
                if branch_sink is not None:
                    branch_sink.feed(np.asarray(bra, dtype=np.int64))
                bra.clear()

        counters, scalars = self._execute(
            params, exts, storage, mem, bra, chunk_events, flush
        )
        flush()  # tail events after the last loop boundary
        return self._result(exts, storage, counters, scalars, trace=None)


def run_compiled(
    program: Program,
    params: Mapping[str, int],
    inputs: Mapping[str, np.ndarray] | None = None,
    *,
    trace: bool = False,
) -> RunResult:
    """One-shot compile + run."""
    return CompiledProgram(program, trace=trace).run(params, inputs)
