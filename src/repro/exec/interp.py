"""Tree-walking interpreter: the semantic oracle.

Slower than :mod:`repro.exec.compiled` but with no code generation between
the IR and its meaning; tests require both engines to agree on every kernel,
which guards the compiler against miscodegen. Memory-op, branch and
loop-iteration counters are maintained independently of the compiler's
static-cost scheme, so the event counts can be cross-checked too (flop /
intop classification is codegen-specific and left at zero here).
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.exec.events import Counters, RunResult, evaluate_extents
from repro.ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cmp,
    Const,
    Expr,
    LogicalAnd,
    LogicalNot,
    LogicalOr,
    Select,
    UnOp,
    VarRef,
)
from repro.ir.program import Program
from repro.ir.stmt import Assign, If, Loop, Stmt


class _Interp:
    def __init__(self, program: Program, params: Mapping[str, int], inputs):
        self.program = program
        self.counters = Counters()
        self.env: dict[str, float | int] = dict(params)
        self.exts: dict[str, tuple[int, ...]] = {}
        self.arrays: dict[str, np.ndarray] = {}
        inputs = inputs or {}
        for a in program.arrays:
            shape = evaluate_extents(a.extents, params)
            self.exts[a.name] = shape
            given = inputs.get(a.name)
            if given is not None:
                arr = np.array(given, dtype=np.float64)
                if arr.shape != shape:
                    raise ExecutionError(
                        f"input {a.name} has shape {arr.shape}, expected {shape}"
                    )
            else:
                arr = np.zeros(shape, dtype=np.float64)
            self.arrays[a.name] = arr
        for s in program.scalars:
            self.env[s.name] = 0 if s.dtype == "i8" else 0.0

    # -- expressions ----------------------------------------------------------
    def _index(self, ref: ArrayRef) -> tuple[int, ...]:
        idx = []
        shape = self.exts[ref.name]
        for d, sub in enumerate(ref.indices):
            v = self.eval(sub)
            if not float(v).is_integer():
                raise ExecutionError(f"non-integer subscript {v} in {ref}")
            v = int(v)
            if not 1 <= v <= shape[d]:
                raise ExecutionError(
                    f"subscript {v} out of bounds 1..{shape[d]} in {ref}"
                )
            idx.append(v - 1)
        return tuple(idx)

    def eval(self, expr: Expr):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, VarRef):
            try:
                return self.env[expr.name]
            except KeyError:
                raise ExecutionError(f"unbound variable {expr.name}") from None
        if isinstance(expr, ArrayRef):
            self.counters.loads += 1
            return float(self.arrays[expr.name][self._index(expr)])
        if isinstance(expr, BinOp):
            lhs, rhs = self.eval(expr.lhs), self.eval(expr.rhs)
            if expr.op == "+":
                return lhs + rhs
            if expr.op == "-":
                return lhs - rhs
            if expr.op == "*":
                return lhs * rhs
            return lhs / rhs
        if isinstance(expr, UnOp):
            return -self.eval(expr.operand)
        if isinstance(expr, Call):
            args = [self.eval(a) for a in expr.args]
            if expr.func == "sqrt":
                return math.sqrt(args[0])
            if expr.func == "abs":
                return abs(args[0])
            if expr.func == "min":
                return min(args)
            return max(args)
        if isinstance(expr, Cmp):
            lhs, rhs = self.eval(expr.lhs), self.eval(expr.rhs)
            return {
                "==": lhs == rhs,
                "!=": lhs != rhs,
                "<": lhs < rhs,
                "<=": lhs <= rhs,
                ">": lhs > rhs,
                ">=": lhs >= rhs,
            }[expr.op]
        if isinstance(expr, LogicalAnd):
            return all(self.eval(a) for a in expr.args)
        if isinstance(expr, LogicalOr):
            return any(self.eval(a) for a in expr.args)
        if isinstance(expr, LogicalNot):
            return not self.eval(expr.arg)
        if isinstance(expr, Select):
            taken = self.eval(expr.cond)
            self.counters.branches += 1
            return self.eval(expr.if_true if taken else expr.if_false)
        raise ExecutionError(f"cannot interpret {expr!r}")

    # -- statements -----------------------------------------------------------
    def run_block(self, stmts: tuple[Stmt, ...]) -> None:
        for stmt in stmts:
            self.run_stmt(stmt)

    def run_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            value = self.eval(stmt.value)
            target = stmt.target
            if isinstance(target, VarRef):
                self.env[target.name] = value
            else:
                self.counters.stores += 1
                self.arrays[target.name][self._index(target)] = value
        elif isinstance(stmt, If):
            self.counters.branches += 1
            if self.eval(stmt.cond):
                self.run_block(stmt.then)
            else:
                self.run_block(stmt.orelse)
        elif isinstance(stmt, Loop):
            lo = int(self.eval(stmt.lower))
            hi = int(self.eval(stmt.upper))
            step = int(self.eval(stmt.step))
            if step <= 0:
                raise ExecutionError(f"non-positive loop step {step}")
            for v in range(lo, hi + 1, step):
                self.counters.loop_iters += 1
                self.env[stmt.var] = v
                self.run_block(stmt.body)
        else:
            raise ExecutionError(f"cannot interpret statement {stmt!r}")


def run_interpreted(
    program: Program,
    params: Mapping[str, int],
    inputs: Mapping[str, np.ndarray] | None = None,
) -> RunResult:
    """Interpret *program*; returns a :class:`RunResult` without traces."""
    interp = _Interp(program, params, inputs)
    interp.run_block(program.body)
    scalars = {
        s.name: interp.env[s.name] for s in program.scalars if s.name in interp.env
    }
    return RunResult(
        arrays=interp.arrays,
        scalars=scalars,
        counters=interp.counters,
        trace=None,
    )
