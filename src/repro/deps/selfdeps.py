"""Self-dependences of one perfect nest: distance/direction vectors.

The final cache-tiling stage (Sec. 4) reorders a perfect nest's loops
(strip-mine + interchange, skew + permute). Its legality is governed by the
nest's own dependences: a reordering is legal iff every dependence's
transformed distance vector stays lexicographically positive, and a band of
loops is tileable iff it is *fully permutable* (every dependence
non-negative in every band dimension).

This module computes, for a perfect nest with (possibly guarded) body:

- the set of dependences as polyhedra over (source iter, sink iter);
- per-dependence **direction vectors**: for each loop level, the provable
  sign set of ``sink_level - source_level`` ('<', '=', '>').

Fuzzy subscripts and opaque guards widen conservatively (more directions),
so a legality proof is sound; failure to prove means "unknown", and callers
fall back to execution validation (LU's data-dependent swaps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping

from repro.deps.access import ValueRange
from repro.deps.graph import StmtAccess, _extract
from repro.errors import DependenceError
from repro.ir.analysis import PerfectNest, as_perfect_nest, loop_bound_constraints
from repro.ir.stmt import Stmt
from repro.poly.constraint import Constraint, eq0, ge0
from repro.poly.integer import check_feasibility
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron
from repro.utils.naming import NameGenerator

Direction = Literal["<", "=", ">"]

#: Sink-iteration dimension suffix.
SINK = "__snk"


@dataclass(frozen=True)
class SelfDependence:
    """One dependence of a nest on itself.

    ``directions[d]`` summarises, per loop level ``d``, the feasible signs
    of ``sink[d] - source[d]`` over all dependence instances ('<' means the
    sink iterates later). The summary is the classic per-level direction
    vector: it may over-approximate correlations between levels, which only
    makes legality proofs more conservative (never unsound).
    """

    kind: str  # flow | anti | output
    name: str
    loop_vars: tuple[str, ...]
    directions: tuple[frozenset[Direction], ...]
    exact: bool
    #: The feasible dependence components as polyhedra over
    #: (source iters, sink iters = var + SINK); one per carrying level.
    polys: tuple[Polyhedron, ...] = ()

    def distance_signs(self) -> tuple[frozenset[Direction], ...]:
        """Alias with the textbook name."""
        return self.directions

    def sink_minus_source(self, level: int) -> LinExpr:
        """The distance expression of loop level *level* (0-based)."""
        v = self.loop_vars[level]
        return LinExpr.var(v + SINK) - LinExpr.var(v)


def _accesses_per_stmt(
    nest: PerfectNest,
    scalars: frozenset[str],
    value_ranges: Mapping[str, ValueRange],
) -> list[list[StmtAccess]]:
    constraints: list[Constraint] = []
    for loop in nest.loops:
        constraints.extend(loop_bound_constraints(loop))
    namer = NameGenerator(set(nest.loop_vars))
    return [
        _extract(stmt, nest.loop_vars, constraints, scalars, value_ranges, namer)
        for stmt in nest.body
    ]


def self_dependences(
    stmt: Stmt,
    *,
    scalars: frozenset[str] = frozenset(),
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
) -> list[SelfDependence]:
    """All loop-carried and loop-independent dependences of a perfect nest."""
    nest = as_perfect_nest(stmt)
    if nest.depth == 0:
        raise DependenceError("not a loop nest")
    accesses = _accesses_per_stmt(nest, scalars, value_ranges or {})
    loop_vars = nest.loop_vars
    out: list[SelfDependence] = []
    flat = [
        (pos, acc) for pos, accs in enumerate(accesses) for acc in accs
    ]
    for pos1, r1 in flat:
        for pos2, r2 in flat:
            if r1.name != r2.name or not (r1.is_write or r2.is_write):
                continue
            kind = (
                "output"
                if r1.is_write and r2.is_write
                else ("flow" if r1.is_write else "anti")
            )
            dep = _direction_vector(
                r1, r2, pos1 <= pos2, loop_vars, param_lo
            )
            if dep is not None:
                directions, polys = dep
                out.append(
                    SelfDependence(
                        kind=kind,
                        name=r1.name,
                        loop_vars=loop_vars,
                        directions=directions,
                        exact=r1.exact and r2.exact,
                        polys=tuple(polys),
                    )
                )
    return _dedupe(out)


def _dedupe(deps: list[SelfDependence]) -> list[SelfDependence]:
    """Merge dependences with identical (kind, name, directions) signatures,
    keeping the union of their component polyhedra (needed by the exact
    legality checks)."""
    from dataclasses import replace

    merged: dict[tuple, SelfDependence] = {}
    order: list[tuple] = []
    for d in deps:
        key = (d.kind, d.name, d.directions)
        prev = merged.get(key)
        if prev is None:
            merged[key] = d
            order.append(key)
        else:
            extra = tuple(p for p in d.polys if p not in prev.polys)
            if extra:
                merged[key] = replace(prev, polys=prev.polys + extra)
    return [merged[k] for k in order]


def _pair_base(r1: StmtAccess, r2: StmtAccess, loop_vars) -> Polyhedron:
    ren = {v: v + SINK for v in r2.domain.variables}
    d2 = r2.domain.rename(ren)
    variables = tuple(dict.fromkeys(r1.domain.variables + d2.variables))
    constraints = list(r1.domain.constraints) + list(d2.constraints)
    for s1, s2 in zip(r1.subscripts, tuple(s.rename(ren) for s in r2.subscripts)):
        constraints.append(eq0(s1 - s2))
    return Polyhedron(variables, constraints)


def _direction_vector(
    r1: StmtAccess,
    r2: StmtAccess,
    src_textually_first: bool,
    loop_vars: tuple[str, ...],
    param_lo,
) -> tuple[tuple[frozenset[Direction], ...], list[Polyhedron]] | None:
    """Per-level provable sign sets plus the feasible component polyhedra;
    None when no dependence exists.

    The source must execute before the sink: source iter lex-< sink iter,
    or equal iterations with the source textually first.
    """
    base = _pair_base(r1, r2, loop_vars)
    # Build the "source before sink" disjunction level by level and check
    # per-level signs within each feasible level class.
    n = len(loop_vars)
    signs: list[set[Direction]] = [set() for _ in range(n)]
    any_feasible = False
    components: list[Polyhedron] = []
    levels = list(range(1, n + 1)) + ([0] if src_textually_first else [])
    for level in levels:
        constraints: list[Constraint] = []
        for depth, v in enumerate(loop_vars, start=1):
            diff = LinExpr.var(v + SINK) - LinExpr.var(v)
            if level == 0 or depth < level:
                constraints.append(eq0(diff))
            elif depth == level:
                constraints.append(ge0(diff - 1))
        poly = base.with_constraints(constraints)
        if not check_feasibility(poly, param_lo=param_lo).feasible:
            continue
        any_feasible = True
        components.append(poly)
        for depth, v in enumerate(loop_vars, start=1):
            diff = LinExpr.var(v + SINK) - LinExpr.var(v)
            if level == 0 or depth < level:
                signs[depth - 1].add("=")
            elif depth == level:
                signs[depth - 1].add("<")  # sink > source: forward dep
            else:
                for mark, c in (
                    ("<", ge0(diff - 1)),
                    ("=", eq0(diff)),
                    (">", ge0(-diff - 1)),
                ):
                    probe = poly.with_constraints([c])
                    if check_feasibility(probe, param_lo=param_lo).feasible:
                        signs[depth - 1].add(mark)
    if not any_feasible:
        return None
    return tuple(frozenset(s) for s in signs), components
