"""Extracting array/scalar references from fused statement groups.

Each :class:`Reference` is one textual read or write occurrence together
with:

- affine subscript functions over (context + fused) variables — scalars are
  rank-0 with an empty subscript tuple;
- the iteration sub-domain where the access may execute (group domain
  refined by enclosing *affine* guards; *opaque* guards — LU's data-
  dependent pivot test — widen to may-execute and mark the reference
  inexact);
- for subscripts that mention a scalar with a declared value range (LU's
  ``m``), a fresh *fuzzy* dimension bounded by that range replaces the
  scalar, over-approximating the touched elements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping

from repro.errors import DependenceError, NotAffineError
from repro.ir.affine import cond_to_constraints, expr_to_linexpr
from repro.ir.expr import ArrayRef, Expr, Select, VarRef, walk_expr
from repro.ir.stmt import Assign, If, Loop, Stmt
from repro.poly.constraint import Constraint, ge0
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron
from repro.trans.model import FusedNest, StmtGroup


@dataclass(frozen=True)
class ValueRange:
    """Declared bounds for a scalar used in subscripts (affine IR exprs over
    context variables and parameters)."""

    lower: Expr
    upper: Expr


@dataclass(frozen=True)
class Reference:
    """One read or write occurrence inside a fused group."""

    group: int
    name: str
    is_write: bool
    #: Affine subscripts over ctx+fused (+fuzzy) variables; () for scalars.
    subscripts: tuple[LinExpr, ...]
    #: Iteration sub-domain (dims: ctx + fused + fuzzy vars of this ref).
    domain: Polyhedron
    #: Fresh fuzzy dimension names introduced for this reference.
    fuzzy: tuple[str, ...]
    #: 1-based assignment number within the group (paper's alpha); for a
    #: read, the number of the assignment containing it (0 in guards).
    alpha: int
    #: Position of the containing top-level statement in the group body.
    stmt_pos: int
    #: False when an opaque guard or fuzzy subscript widened this reference.
    exact: bool

    def subscripts_renamed(self, mapping: Mapping[str, str]) -> tuple[LinExpr, ...]:
        """Subscripts with variables renamed."""
        return tuple(s.rename(mapping) for s in self.subscripts)


class _Extractor:
    def __init__(
        self,
        nest: FusedNest,
        group: StmtGroup,
        value_ranges: Mapping[str, ValueRange],
    ):
        self.nest = nest
        self.group = group
        self.value_ranges = value_ranges
        self.scalars = {s.name for s in nest.base.scalars}
        self.dims = set(nest.context_vars) | set(nest.fused_vars)
        self.params = set(nest.base.params)
        self.refs: list[Reference] = []
        self.alpha = 0
        self._fuzz_counter = itertools.count(1)

    # -- subscripts -----------------------------------------------------------
    def _subscript(
        self, expr: Expr, fuzzy: list[str], extra: list[Constraint]
    ) -> LinExpr:
        """Affine subscript; scalars with value ranges become fuzzy dims."""
        lin = expr_to_linexpr(expr)  # may raise NotAffineError
        rename: dict[str, str] = {}
        for var in lin.variables():
            if var in self.dims or var in self.params:
                continue
            vr = self.value_ranges.get(var)
            if vr is None:
                raise DependenceError(
                    f"group {self.group.index}: subscript {expr} uses scalar "
                    f"{var!r} without a declared value range"
                )
            fresh = f"_fz{next(self._fuzz_counter)}"
            rename[var] = fresh
            fuzzy.append(fresh)
            fv = LinExpr.var(fresh)
            extra.append(ge0(fv - expr_to_linexpr(vr.lower)))
            extra.append(ge0(expr_to_linexpr(vr.upper) - fv))
        return lin.rename(rename) if rename else lin

    def _make_ref(
        self,
        node: ArrayRef | VarRef,
        is_write: bool,
        guards: list[Constraint],
        opaque_count: int,
        stmt_pos: int,
    ) -> None:
        fuzzy: list[str] = []
        extra: list[Constraint] = []
        if isinstance(node, ArrayRef):
            name = node.name
            subs = tuple(self._subscript(e, fuzzy, extra) for e in node.indices)
        else:
            name = node.name
            subs = ()
        domain = Polyhedron(
            self.group.domain.variables + tuple(fuzzy),
            list(self.group.domain.constraints) + guards + extra,
        )
        self.refs.append(
            Reference(
                group=self.group.index,
                name=name,
                is_write=is_write,
                subscripts=subs,
                domain=domain,
                fuzzy=tuple(fuzzy),
                alpha=self.alpha,
                stmt_pos=stmt_pos,
                exact=(opaque_count == 0 and not fuzzy),
            )
        )

    # -- reads inside an expression -------------------------------------------
    def _reads_in(
        self, expr: Expr, guards: list[Constraint], opaque: int, stmt_pos: int
    ) -> None:
        for node in walk_expr(expr):
            if isinstance(node, ArrayRef):
                self._make_ref(node, False, guards, opaque, stmt_pos)
            elif isinstance(node, VarRef) and node.name in self.scalars:
                self._make_ref(node, False, guards, opaque, stmt_pos)
            if isinstance(node, Select):
                # Conservatively treat both arms as may-read (walk_expr
                # already descends); nothing extra needed.
                pass

    # -- statements ------------------------------------------------------------
    def walk(self, stmts: tuple[Stmt, ...]) -> None:
        for pos, stmt in enumerate(stmts):
            self._stmt(stmt, [], 0, pos)

    def _stmt(
        self, stmt: Stmt, guards: list[Constraint], opaque: int, stmt_pos: int
    ) -> None:
        if isinstance(stmt, Assign):
            self.alpha += 1
            self._reads_in(stmt.value, guards, opaque, stmt_pos)
            target = stmt.target
            if isinstance(target, ArrayRef):
                for sub in target.indices:
                    self._reads_in(sub, guards, opaque, stmt_pos)
                self._make_ref(target, True, guards, opaque, stmt_pos)
            elif target.name in self.scalars:
                self._make_ref(target, True, guards, opaque, stmt_pos)
        elif isinstance(stmt, If):
            self._reads_in(stmt.cond, guards, opaque, stmt_pos)
            try:
                cs = cond_to_constraints(stmt.cond)
                for s in stmt.then:
                    self._stmt(s, guards + cs, opaque, stmt_pos)
                for s in stmt.orelse:
                    self._stmt(s, guards, opaque + 1, stmt_pos)
            except NotAffineError:
                for s in stmt.then:
                    self._stmt(s, guards, opaque + 1, stmt_pos)
                for s in stmt.orelse:
                    self._stmt(s, guards, opaque + 1, stmt_pos)
        elif isinstance(stmt, Loop):
            raise DependenceError(
                f"group {self.group.index}: nested loop over {stmt.var} in a "
                "fused group body is not supported by the dependence analysis"
            )
        else:
            raise DependenceError(f"unsupported statement {stmt!r}")


def extract_references(
    nest: FusedNest,
    group: StmtGroup,
    value_ranges: Mapping[str, ValueRange] | None = None,
) -> list[Reference]:
    """All read/write references of *group*, in textual order."""
    ex = _Extractor(nest, group, value_ranges or {})
    ex.walk(group.body)
    return ex.refs
