"""Dependence distance bounds ``d_i`` (paper Fig. 2, lines 19–24).

For the violated set ``W(k)`` of a group, ``d_i`` bounds how far (in fused
dimension ``i``) a violating sink instance can precede its source::

    d_i = max{ exec_src_i(I) - exec_dst_i(I') | (I, I') in W(k) }

(the paper writes ``I_i - I'_i``; we use execution coordinates so earlier
collapsing rounds are taken into account). The collapse set of the tiling
step is ``{ i : d_i > 0 }`` — every dimension that carries a violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.deps.fusionpreventing import Violation
from repro.poly.constraint import ge0
from repro.poly.integer import integer_feasible
from repro.poly.linexpr import LinExpr
from repro.poly.optimize import parametric_max
from repro.symbolic.terms import SymExpr, sym_const, sym_max
from repro.trans.model import FusedNest, primed


@dataclass(frozen=True)
class DistanceReport:
    """Per-dimension distance information for one group's violations."""

    #: fused variable order
    fused_vars: tuple[str, ...]
    #: symbolic d_i per fused dimension (paper's convention: max of the
    #: empty set is 0)
    distances: tuple[SymExpr, ...]
    #: dimensions (names) proven able to carry a violation (d_i > 0 for
    #: some parameter values)
    positive: frozenset[str]

    def collapse_dims(self) -> tuple[str, ...]:
        """Dimensions to collapse, in fused order."""
        return tuple(v for v in self.fused_vars if v in self.positive)


def _distance_objective(
    nest: FusedNest, violation: Violation, var: str
) -> LinExpr:
    src_group = next(g for g in nest.groups if g.index == violation.src.group)
    dst_group = next(g for g in nest.groups if g.index == violation.dst.group)
    prime = {v: primed(v) for v in nest.fused_vars}
    e_src = src_group.exec_coordinate(var)
    e_dst = dst_group.exec_coordinate(var).rename(prime)
    return e_src - e_dst


def dependence_distances(
    nest: FusedNest,
    violations: Sequence[Violation],
    *,
    param_lo: int | Mapping[str, int] = 4,
) -> DistanceReport:
    """Compute ``d_i`` and the positive-distance dimension set."""
    fused = nest.fused_vars
    distances: list[SymExpr] = []
    positive: set[str] = set()
    for var in fused:
        per_violation: list[SymExpr] = []
        for v in violations:
            objective = _distance_objective(nest, v, var)
            m = parametric_max(v.poly, objective)
            if m is not None:
                per_violation.append(m)
            # Positivity: does some instance have distance >= 1?
            carried = v.poly.with_constraints([ge0(objective - 1)])
            if integer_feasible(carried, param_lo=param_lo):
                positive.add(var)
        distances.append(sym_max(per_violation) if per_violation else sym_const(0))
    return DistanceReport(
        fused_vars=fused,
        distances=tuple(distances),
        positive=frozenset(positive),
    )
