"""Statement-level dependence graphs within one loop.

Used by loop distribution (the inverse of fusion — the paper applies it to
expose perfect nests, e.g. QR's imperfect ``X`` nest, and names its
generalisation as future work): the statements directly inside a loop are
the nodes; a directed edge ``a -> b`` records a dependence whose source
instance executes before its sink instance. Distribution must keep every
strongly connected component together and order the components
topologically.

Statements may themselves contain loops (that is the point — distribution
splits imperfect nests); each statement's accesses are extracted with its
inner loop bounds as extra polyhedral dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import networkx as nx

from repro.deps.access import ValueRange
from repro.errors import DependenceError, NotAffineError
from repro.ir.affine import cond_to_constraints, expr_to_linexpr
from repro.ir.analysis import loop_bound_constraints
from repro.ir.expr import ArrayRef, Expr, VarRef, walk_expr
from repro.ir.stmt import Assign, If, Loop, Stmt
from repro.poly import memo
from repro.poly.constraint import Constraint, eq0, ge0
from repro.poly.integer import check_feasibility
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron
from repro.utils.naming import NameGenerator


@dataclass(frozen=True)
class StmtAccess:
    """One access of one statement, with its full iteration domain."""

    name: str
    is_write: bool
    subscripts: tuple[LinExpr, ...]
    #: dims: outer loop vars + this statement's (renamed) inner loop vars.
    domain: Polyhedron
    exact: bool


def _extract(
    stmt: Stmt,
    outer_vars: tuple[str, ...],
    base_constraints: list[Constraint],
    scalars: frozenset[str],
    value_ranges: Mapping[str, ValueRange],
    namer: NameGenerator,
) -> list[StmtAccess]:
    """All accesses of *stmt* (recursing through inner loops and guards)."""
    out: list[StmtAccess] = []
    fuzz_counter = [0]

    def subscript(
        expr: Expr, dims: list[str], constraints: list[Constraint], exact: list[bool]
    ) -> LinExpr:
        lin = expr_to_linexpr(expr)
        rename: dict[str, str] = {}
        for var in lin.variables():
            if var in dims or var in outer_vars:
                continue
            vr = value_ranges.get(var)
            if vr is None:
                if var in scalars:
                    raise DependenceError(
                        f"subscript {expr} uses scalar {var!r} without a value range"
                    )
                continue  # a parameter
            fuzz_counter[0] += 1
            fresh = f"_gz{fuzz_counter[0]}"
            rename[var] = fresh
            dims.append(fresh)
            fv = LinExpr.var(fresh)
            constraints.append(ge0(fv - expr_to_linexpr(vr.lower)))
            constraints.append(ge0(expr_to_linexpr(vr.upper) - fv))
            exact[0] = False
        return lin.rename(rename) if rename else lin

    def emit(
        node: ArrayRef | VarRef,
        is_write: bool,
        dims: list[str],
        constraints: list[Constraint],
        exact_flag: bool,
    ) -> None:
        local_dims = list(dims)
        local_constraints = list(constraints)
        exact = [exact_flag]
        if isinstance(node, ArrayRef):
            subs = tuple(
                subscript(e, local_dims, local_constraints, exact)
                for e in node.indices
            )
        else:
            subs = ()
        out.append(
            StmtAccess(
                name=node.name if isinstance(node, (ArrayRef, VarRef)) else "?",
                is_write=is_write,
                subscripts=subs,
                domain=Polyhedron(tuple(outer_vars) + tuple(local_dims), local_constraints),
                exact=exact[0],
            )
        )

    def reads_in(expr: Expr, dims, constraints, exact_flag) -> None:
        for node in walk_expr(expr):
            if isinstance(node, ArrayRef):
                emit(node, False, dims, constraints, exact_flag)
            elif isinstance(node, VarRef) and node.name in scalars:
                emit(node, False, dims, constraints, exact_flag)

    def rec(s: Stmt, dims: list[str], constraints: list[Constraint], exact: bool) -> None:
        if isinstance(s, Assign):
            reads_in(s.value, dims, constraints, exact)
            target = s.target
            if isinstance(target, ArrayRef):
                for sub in target.indices:
                    reads_in(sub, dims, constraints, exact)
                emit(target, True, dims, constraints, exact)
            elif target.name in scalars:
                emit(target, True, dims, constraints, exact)
        elif isinstance(s, If):
            reads_in(s.cond, dims, constraints, exact)
            try:
                extra = cond_to_constraints(s.cond)
                for t in s.then:
                    rec(t, dims, constraints + extra, exact)
                for t in s.orelse:
                    rec(t, dims, constraints, False)
            except NotAffineError:
                for t in s.then:
                    rec(t, dims, constraints, False)
                for t in s.orelse:
                    rec(t, dims, constraints, False)
        elif isinstance(s, Loop):
            fresh = namer.fresh(s.var)
            bounds = [
                c.rename({s.var: fresh}) for c in loop_bound_constraints(s)
            ]
            inner_dims = dims + [fresh]
            # rename the loop var inside the body subscripts by renaming at
            # the LinExpr level: walk with a substitution of the var name.
            from repro.ir.expr import map_expr
            from repro.ir.stmt import map_stmt_exprs

            def rn(expr: Expr) -> Expr:
                def fn(node: Expr) -> Expr:
                    if isinstance(node, VarRef) and node.name == s.var:
                        return VarRef(fresh)
                    return node

                return map_expr(expr, fn)

            for t in s.body:
                rec(map_stmt_exprs(t, rn), inner_dims, constraints + bounds, exact)
        else:
            raise DependenceError(f"unsupported statement {s!r}")

    rec(stmt, [], list(base_constraints), True)
    return out


def dependence_graph(
    loop: Loop,
    *,
    scalars: frozenset[str] = frozenset(),
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
) -> nx.DiGraph:
    """Dependence graph of the statements directly inside *loop*.

    Edge ``a -> b`` means some instance of statement ``a`` must execute
    before some conflicting instance of statement ``b`` (flow, anti or
    output — all are ordering constraints for distribution).

    The edge set is memoised (in process and on disk) on the loop's
    serialized content, so every variant of a kernel — and every later
    cold build — reuses one analysis per distinct loop nest. A fresh
    ``DiGraph`` is returned each call; callers may mutate it freely.
    """
    value_ranges = value_ranges or {}
    if memo.caching_enabled():
        from repro.ir.serialize import expr_to_dict, stmt_to_dict

        key_doc = {
            "loop": stmt_to_dict(loop),
            "scalars": sorted(scalars),
            "ranges": {
                name: [expr_to_dict(vr.lower), expr_to_dict(vr.upper)]
                for name, vr in sorted(value_ranges.items())
            },
        }
        payload = memo.memoize_json(
            "depgraph",
            (memo.stable_key(key_doc), memo.env_key(param_lo)),
            lambda: _graph_payload(loop, scalars, value_ranges, param_lo),
            encode=lambda p: p,
            decode=lambda p: p,
        )
    else:
        payload = _graph_payload(loop, scalars, value_ranges, param_lo)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(payload["n"]))
    graph.add_edges_from((a, b) for a, b in payload["e"])
    return graph


def _graph_payload(
    loop: Loop,
    scalars: frozenset[str],
    value_ranges: Mapping[str, ValueRange],
    param_lo: int | Mapping[str, int],
) -> dict:
    """Node count and edge list of the dependence graph (JSON-able)."""
    outer = (loop.var,)
    base = loop_bound_constraints(loop)
    namer = NameGenerator({loop.var})
    accesses: list[list[StmtAccess]] = []
    for stmt in loop.body:
        accesses.append(_extract(stmt, outer, base, scalars, value_ranges, namer))

    edges: list[list[int]] = []
    for a in range(len(loop.body)):
        for b in range(len(loop.body)):
            if a == b:
                continue
            if _depends(accesses[a], accesses[b], loop.var, a < b, param_lo):
                edges.append([a, b])
    return {"n": len(loop.body), "e": edges}


def _depends(
    src_acc: list[StmtAccess],
    dst_acc: list[StmtAccess],
    loop_var: str,
    src_textually_first: bool,
    param_lo,
) -> bool:
    """Is there a dependence with source in ``src_acc`` executing first?"""
    for r1 in src_acc:
        for r2 in dst_acc:
            if r1.name != r2.name or not (r1.is_write or r2.is_write):
                continue
            if _conflict(r1, r2, loop_var, strict=not src_textually_first, param_lo=param_lo):
                return True
    return False


def _conflict(r1: StmtAccess, r2: StmtAccess, loop_var: str, *, strict: bool, param_lo) -> bool:
    suffix = "_r2"
    ren = {v: v + suffix for v in r2.domain.variables}
    d2 = r2.domain.rename(ren)
    variables = tuple(dict.fromkeys(r1.domain.variables + d2.variables))
    constraints = list(r1.domain.constraints) + list(d2.constraints)
    for s1, s2 in zip(r1.subscripts, tuple(s.rename(ren) for s in r2.subscripts)):
        constraints.append(eq0(s1 - s2))
    v1 = LinExpr.var(loop_var)
    v2 = LinExpr.var(loop_var + suffix)
    # Source instance at v1 executes before sink at v2: v1 < v2, or v1 == v2
    # when the source is textually first (strict=False).
    order = ge0(v2 - v1 - 1) if strict else ge0(v2 - v1)
    poly = Polyhedron(variables, constraints + [order])
    return check_feasibility(poly, param_lo=param_lo).feasible
