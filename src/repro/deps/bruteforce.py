"""Trace-based dependence oracle.

Runs the *original* (unfused) program and the *fused* iteration schedule
symbolically at small concrete sizes, recording every (element, access)
event, and reports which dependences fusion would reverse. Tests compare
this ground truth against the polyhedral :func:`violated_dependences`.

The oracle interprets accesses structurally (which element is touched at
which iteration) using the same reference extraction as the analysis, but
*enumerates* instead of solving — so it exercises domains, guards and
subscripts through an independent code path.
"""

from __future__ import annotations

from typing import Mapping

from repro.deps.access import ValueRange, extract_references
from repro.poly.enumerate import enumerate_points
from repro.trans.model import FusedNest


def _element(ref, point: Mapping[str, int], params: Mapping[str, int]):
    env = {**params, **point}
    return tuple(int(s.evaluate(env)) for s in ref.subscripts)


def trace_violations(
    nest: FusedNest,
    params: Mapping[str, int],
    *,
    value_ranges: Mapping[str, ValueRange] | None = None,
) -> set[tuple[str, str, int, int]]:
    """Violated dependences at concrete *params*, as
    ``(kind, name, src_group, dst_group)`` tuples.

    Fuzzy references are expanded over their whole value range (matching the
    analysis' over-approximation); opaque guards are treated as
    may-execute, also matching the analysis.
    """
    fused = nest.fused_vars
    out: set[tuple[str, str, int, int]] = set()
    refs_by_group = {
        g.index: extract_references(nest, g, value_ranges) for g in nest.groups
    }
    group_by_index = {g.index: g for g in nest.groups}

    # Collect (exec_vector, element) instances per reference.
    instances: dict[int, list[tuple[tuple[int, ...], tuple[int, ...], object]]] = {}
    for gidx, refs in refs_by_group.items():
        group = group_by_index[gidx]
        for ridx, ref in enumerate(refs):
            inst = []
            for point in enumerate_points(ref.domain, params):
                env = {**params, **point}
                ctx_vec = tuple(point[v] for v in nest.context_vars)
                exec_vec = tuple(
                    int(group.exec_coordinate(v).evaluate(env)) for v in fused
                )
                inst.append((ctx_vec, exec_vec, _element(ref, point, params)))
            instances[(gidx, ridx)] = inst

    for g_src in nest.groups:
        for g_dst in nest.groups:
            if g_dst.index <= g_src.index:
                continue
            for kind, sw, dw in (
                ("flow", True, False),
                ("output", True, True),
                ("anti", False, True),
            ):
                for sidx, src in enumerate(refs_by_group[g_src.index]):
                    if src.is_write != sw:
                        continue
                    for didx, dst in enumerate(refs_by_group[g_dst.index]):
                        if dst.is_write != dw or dst.name != src.name:
                            continue
                        key = (kind, src.name, g_src.index, g_dst.index)
                        if key in out:
                            continue
                        if _pair_violated(
                            instances[(g_src.index, sidx)],
                            instances[(g_dst.index, didx)],
                        ):
                            out.add(key)
    return out


def _pair_violated(src_inst, dst_inst) -> bool:
    # Index sink instances by (ctx, element) for O(1) matching.
    by_key: dict[tuple, list[tuple[int, ...]]] = {}
    for ctx, ev, elem in dst_inst:
        by_key.setdefault((ctx, elem), []).append(ev)
    for ctx, ev, elem in src_inst:
        for dv in by_key.get((ctx, elem), ()):
            if dv < ev:  # sink executes strictly earlier
                return True
    return False
