"""Dependence analysis over fused programs.

Implements the paper's Eq. 5–6: the sets of flow (``WR``), output (``WW``)
and anti (``RW``) dependences that loop fusion *violates*, computed as
parametric integer sets over (context, source iteration, sink iteration).
Violations are evaluated against each group's **execution relation**, so
rounds of ``ElimWW_WR`` see the effect of earlier tiling.
"""

from repro.deps.access import Reference, extract_references
from repro.deps.fusionpreventing import Violation, violated_dependences
from repro.deps.distances import DistanceReport, dependence_distances
from repro.deps.bruteforce import trace_violations

__all__ = [
    "Reference",
    "extract_references",
    "Violation",
    "violated_dependences",
    "DistanceReport",
    "dependence_distances",
    "trace_violations",
]
