"""Fusion-preventing dependence sets (paper Eq. 5–6), execution-aware.

A dependence from nest ``L_k`` (source, textually earlier) to ``L_k'``
(sink, ``k < k'``) is *violated* by fusion iff the sink instance executes
strictly before the source instance in the fused program::

    exec_{k'}(I') < exec_k(I)      (lexicographically, fused dims only)

Context dimensions are shared, so only same-context violations exist; the
strict lexicographic order is decomposed into per-level conjunctive sets.
Each group's ``exec`` relation reflects any collapsing already applied by
``ElimWW_WR``, so later rounds and ``ElimRW`` see the current program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping, Sequence

from repro.deps.access import Reference, ValueRange, extract_references
from repro.poly import memo
from repro.poly.constraint import Constraint, eq0, ge0
from repro.poly.integer import check_feasibility
from repro.poly.polyhedron import Polyhedron
from repro.trans.model import FusedNest, StmtGroup, primed

Kind = Literal["flow", "output", "anti"]

#: Default inclusive lower bound assumed for problem-size parameters when
#: probing dependence feasibility.
DEFAULT_PARAM_LO = 4


@dataclass(frozen=True)
class Violation:
    """One feasible fusion-preventing dependence component."""

    kind: Kind
    name: str
    src: Reference
    dst: Reference
    #: 1-based fused dimension at which the order is reversed.
    level: int
    #: Over ctx + fused + primed-fused (+ fuzzy) dims.
    poly: Polyhedron
    #: Sample instance proving feasibility (may include probed parameters).
    witness: dict[str, int] | None
    #: False when either endpoint was over-approximated.
    exact: bool

    def describe(self) -> str:
        """Human-readable one-liner (used by reports and tests)."""
        rw = {"flow": "WR", "output": "WW", "anti": "RW"}[self.kind]
        return (
            f"{rw}_{self.name}({self.src.group},{self.dst.group}) "
            f"level {self.level}"
        )


def _pair_polyhedron(
    nest: FusedNest,
    src_group: StmtGroup,
    dst_group: StmtGroup,
    src: Reference,
    dst: Reference,
    level: int,
) -> Polyhedron:
    """The violation set for one (src ref, dst ref, lex level) triple."""
    ctx = nest.context_vars
    fused = nest.fused_vars
    prime_map = {v: primed(v) for v in fused}

    # Rename the sink's fused dims (and fuzzy dims, to keep them distinct).
    dst_fuzzy_map = {f: f + "_d" for f in dst.fuzzy}
    dst_rename = {**prime_map, **dst_fuzzy_map}
    dst_domain = dst.domain.rename(dst_rename)
    dst_subs = dst.subscripts_renamed(dst_rename)

    variables = (
        ctx
        + fused
        + tuple(primed(v) for v in fused)
        + src.fuzzy
        + tuple(dst_fuzzy_map[f] for f in dst.fuzzy)
    )
    constraints: list[Constraint] = []
    constraints.extend(src.domain.constraints)
    constraints.extend(dst_domain.constraints)
    # Same element.
    for a, b in zip(src.subscripts, dst_subs):
        constraints.append(eq0(a - b))
    # exec_dst(I') < exec_src(I) at `level`.
    for j, v in enumerate(fused, start=1):
        e_src = src_group.exec_coordinate(v)
        e_dst = dst_group.exec_coordinate(v).rename(dst_rename)
        if j < level:
            constraints.append(eq0(e_src - e_dst))
        elif j == level:
            constraints.append(ge0(e_src - e_dst - 1))
            break
    return Polyhedron(variables, constraints)


def violated_dependences(
    nest: FusedNest,
    kinds: Sequence[Kind] = ("flow", "output", "anti"),
    *,
    src_group: int | None = None,
    arrays: Sequence[str] | None = None,
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = DEFAULT_PARAM_LO,
) -> list[Violation]:
    """All feasible fusion-preventing dependences of *nest*.

    ``src_group`` restricts to dependences whose source is that group (the
    paper's ``W(k)`` / ``RW(k)`` sets); ``arrays`` restricts the variable.

    Results are memoised per-process on the nest's content fingerprint
    (plus every filter argument), so variants of a kernel that share base
    nests share one dependence computation per transform round.
    """
    if not memo.caching_enabled():
        return _violated_dependences(
            nest, kinds, src_group, arrays, value_ranges, param_lo
        )
    key = (
        nest.fingerprint(),
        ",".join(kinds),
        "-" if src_group is None else src_group,
        "-" if arrays is None else ",".join(arrays),
        _ranges_key(value_ranges),
        memo.env_key(param_lo),
    )
    result = memo.memoize(
        "viol",
        key,
        lambda: _violated_dependences(
            nest, kinds, src_group, arrays, value_ranges, param_lo
        ),
    )
    # Fresh list per call: memo hits alias the stored value.
    return list(result)


def _ranges_key(value_ranges: Mapping[str, ValueRange] | None) -> str:
    if not value_ranges:
        return "-"
    from repro.ir.serialize import expr_to_dict

    return memo.stable_key(
        {
            name: [expr_to_dict(vr.lower), expr_to_dict(vr.upper)]
            for name, vr in sorted(value_ranges.items())
        }
    )


def _violated_dependences(
    nest: FusedNest,
    kinds: Sequence[Kind],
    src_group: int | None,
    arrays: Sequence[str] | None,
    value_ranges: Mapping[str, ValueRange] | None,
    param_lo: int | Mapping[str, int],
) -> list[Violation]:
    refs_by_group: dict[int, list[Reference]] = {
        g.index: extract_references(nest, g, value_ranges) for g in nest.groups
    }
    group_by_index = {g.index: g for g in nest.groups}
    n = len(nest.fused_vars)
    out: list[Violation] = []
    for g_src in nest.groups:
        if src_group is not None and g_src.index != src_group:
            continue
        for g_dst in nest.groups:
            if g_dst.index <= g_src.index:
                continue
            for kind in kinds:
                src_writes = kind in ("flow", "output")
                dst_writes = kind in ("output", "anti")
                for src in refs_by_group[g_src.index]:
                    if src.is_write != src_writes:
                        continue
                    for dst in refs_by_group[g_dst.index]:
                        if dst.is_write != dst_writes:
                            continue
                        if src.name != dst.name:
                            continue
                        if arrays is not None and src.name not in arrays:
                            continue
                        for level in range(1, n + 1):
                            poly = _pair_polyhedron(
                                nest, g_src, g_dst, src, dst, level
                            )
                            res = check_feasibility(poly, param_lo=param_lo)
                            if res.feasible:
                                out.append(
                                    Violation(
                                        kind=kind,
                                        name=src.name,
                                        src=src,
                                        dst=dst,
                                        level=level,
                                        poly=poly,
                                        witness=res.witness,
                                        exact=src.exact and dst.exact
                                        and res.decisive,
                                    )
                                )
    return out


def summarize(violations: Sequence[Violation]) -> dict[str, int]:
    """Count violations per (kind, array, source, sink) — handy in tests."""
    counts: dict[str, int] = {}
    for v in violations:
        key = v.describe()
        counts[key] = counts.get(key, 0) + 1
    return counts
