"""ElimRW: eliminating fusion-preventing anti-dependences by array copying
(paper Fig. 2, lines 36–48, plus the line-6 guard simplification).

For each variable ``A`` and each group ``k`` whose reads are violated by
later groups' writes:

1. the violating *write instances* are computed (the paper's
   ``min_< RW̄_A(k)``: with the verified write-once-per-context property,
   every violating write is the earliest overwrite of its element);
2. a copy array ``H`` mirroring ``A`` is introduced and, guarded by
   membership in the violating-write set, ``H(f') = A(f')`` is inserted at
   the beginning of group ``k+1``'s body — just before anything could
   clobber the element;
3. every violated read of ``A`` in group ``k`` is redirected:
   ``A(f)`` becomes ``merge(H(f), A(f), C_R)`` where ``C_R`` holds at
   iterations whose element has already been overwritten;
4. *guard simplification*: when the ``C_R``-false iterations only touch
   elements never written anywhere, those elements are pre-copied into
   ``H`` before the nest and the read uses ``H`` unconditionally — this
   reproduces the paper's boundary copies for Jacobi (Fig. 4d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.deps.access import Reference, ValueRange, extract_references
from repro.deps.fusionpreventing import Violation, violated_dependences
from repro.errors import TransformError
from repro.ir.affine import constraint_to_cond, linexpr_to_expr
from repro.ir.expr import ArrayRef, Expr, Select, VarRef, map_expr
from repro.ir.program import ArrayDecl, ScalarDecl
from repro.ir.stmt import Assign, If, Loop, Stmt
from repro.poly.constraint import Constraint, Kind, eq0, ge0
from repro.poly.fm import project_onto
from repro.poly.integer import integer_feasible
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron
from repro.trans.model import FusedNest, _implied_by, primed
from repro.utils.naming import NameGenerator


@dataclass(frozen=True)
class CopyInsertion:
    """Audit record of one ElimRW action."""

    array: str
    src_group: int
    copy_array: str
    guarded_copies: int
    precopied_reads: int
    redirected_reads: int


@dataclass(frozen=True)
class ElimRWResult:
    """Transformed nest plus audit records."""

    nest: FusedNest
    insertions: tuple[CopyInsertion, ...]


def eliminate_rw(
    nest: FusedNest,
    *,
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
    simplify: bool = True,
    widen_copies: bool = True,
) -> ElimRWResult:
    """Fix every fusion-preventing anti-dependence by copying.

    ``widen_copies`` copies at every instance of a violating write reference
    instead of only the exactly-violating instances (simpler guards, same
    semantics given the write-once check).
    """
    violations = violated_dependences(
        nest, ("anti",), value_ranges=value_ranges, param_lo=param_lo
    )
    if not violations:
        return ElimRWResult(nest, ())

    # Group violations by (variable, source group).
    by_pair: dict[tuple[str, int], list[Violation]] = {}
    for v in violations:
        by_pair.setdefault((v.name, v.src.group), []).append(v)

    # Only one copy array per variable when a single source group needs one
    # (Theorems 3–4 merging).
    groups_per_array: dict[str, set[int]] = {}
    for (name, k), _ in by_pair.items():
        groups_per_array.setdefault(name, set()).add(k)

    current = nest
    insertions: list[CopyInsertion] = []
    namer = NameGenerator(nest.base.all_names())
    for (name, k), vios in sorted(by_pair.items()):
        copy_name = (
            namer.fresh(f"H_{name}")
            if len(groups_per_array[name]) == 1
            else namer.fresh(f"H_{name}_{k}")
        )
        current, record = _fix_pair(
            current, name, k, vios, copy_name, param_lo, simplify, namer,
            value_ranges, widen_copies,
        )
        insertions.append(record)
    return ElimRWResult(current, tuple(insertions))


# ---------------------------------------------------------------------------


def _fix_pair(
    nest: FusedNest,
    name: str,
    k: int,
    vios: list[Violation],
    copy_name: str,
    param_lo,
    simplify: bool,
    namer: NameGenerator,
    value_ranges: Mapping[str, ValueRange] | None = None,
    widen: bool = True,
) -> tuple[FusedNest, CopyInsertion]:
    for v in vios:
        if v.dst.fuzzy or v.src.fuzzy:
            raise TransformError(
                f"{v.describe()}: copying with fuzzy subscripts is not supported"
            )
    _check_write_once(nest, name, k, vios, param_lo)

    space = nest.space()
    is_scalar = nest.base.has_scalar(name)

    # ---- 1. violating-write instance sets, per write reference ------------
    # With the write-once-per-context property verified, it is safe (and
    # matches the paper's line-6 guard simplification, cf. Fig. 4d) to widen
    # each copy to the write reference's full domain: copying an element the
    # violated reads never need is harmless, and the guards collapse to the
    # write's own membership test.
    unprime = {primed(v): v for v in nest.fused_vars}
    write_sets: dict[tuple[int, int, int], tuple[Reference, list[Polyhedron]]] = {}
    for v in vios:
        key = (v.dst.group, v.dst.stmt_pos, v.dst.alpha)
        if widen:
            proj = v.dst.domain
        else:
            keep = list(nest.context_vars) + [primed(u) for u in nest.fused_vars]
            proj = project_onto(v.poly, keep).rename(unprime)
        ref, polys = write_sets.setdefault(key, (v.dst, []))
        if proj not in polys:
            polys.append(proj)

    # ---- 2. guarded copy statements at the head of group k+1 ---------------
    copy_stmts: list[Stmt] = []
    for _key, (wref, polys) in sorted(write_sets.items()):
        target, source = _copy_refs(copy_name, name, wref, is_scalar)
        for poly in polys:
            guard = [c for c in poly.constraints if not _implied_by(space, c)]
            copy = Assign(target, source)
            if guard:
                copy_stmts.append(If(_conjunction(guard), (copy,)))
            else:
                copy_stmts.append(copy)

    # ---- 3. per-read redirection (with optional pre-copy simplification) ---
    by_read: dict[tuple, tuple[Reference, list[Polyhedron]]] = {}
    for v in vios:
        key = (v.src.stmt_pos, v.src.alpha, v.src.subscripts)
        keep = list(nest.context_vars) + list(nest.fused_vars)
        proj = project_onto(v.poly, keep)
        ref, polys = by_read.setdefault(key, (v.src, []))
        if proj not in polys:
            polys.append(proj)

    groups = {g.index: g for g in nest.groups}
    group_k = groups[k]
    body = list(group_k.body)
    preamble: list[Stmt] = list(nest.preamble)
    precopied = redirected = 0
    for (stmt_pos, *_rest), (ref, polys) in sorted(
        by_read.items(), key=lambda kv: (kv[0][0], kv[0][1], str(kv[0][2]))
    ):
        disjuncts = [
            [c for c in p.constraints if not _implied_by(ref.domain, c)]
            for p in polys
        ]
        precopy_elems = None
        if simplify:
            precopy_elems = _precopy_element_set(
                nest, ref, disjuncts, param_lo, value_ranges
            )
        if precopy_elems is not None:
            preamble.extend(
                _emit_precopy(precopy_elems, copy_name, name, is_scalar, namer)
            )
            body[stmt_pos] = _redirect_read(
                body[stmt_pos], ref, copy_name, cond=None, is_scalar=is_scalar
            )
            precopied += 1
        else:
            cond = _disjunction(disjuncts)
            body[stmt_pos] = _redirect_read(
                body[stmt_pos], ref, copy_name, cond=cond, is_scalar=is_scalar
            )
            redirected += 1

    # ---- 4. assemble ----------------------------------------------------------
    new_groups = []
    for g in nest.groups:
        if g.index == k:
            g = g.with_body(tuple(body))
        if g.index == k + 1:
            g = g.with_prologue(tuple(copy_stmts) + g.prologue)
        new_groups.append(g)
    base = nest.base
    if is_scalar:
        decl = base.scalar(name)
        base = base.adding_scalars([ScalarDecl(copy_name, decl.dtype)])
    else:
        decl = base.array(name)
        base = base.adding_arrays([ArrayDecl(copy_name, decl.extents, decl.dtype)])
    result = nest.with_base(base).with_groups(tuple(new_groups))
    result = result.with_preamble(tuple(preamble))
    record = CopyInsertion(
        array=name,
        src_group=k,
        copy_array=copy_name,
        guarded_copies=len(copy_stmts),
        precopied_reads=precopied,
        redirected_reads=redirected,
    )
    return result, record


def _check_write_once(nest, name, k, vios, param_lo) -> None:
    """Verify each violating element is overwritten by at most one write
    instance per context iteration (makes every violating write the
    paper's min-earliest overwrite of its element)."""
    write_refs: dict[tuple[int, int, int], Reference] = {}
    for v in vios:
        write_refs[(v.dst.group, v.dst.stmt_pos, v.dst.alpha)] = v.dst
    refs = list(write_refs.values())
    for i, w1 in enumerate(refs):
        for w2 in refs[i:]:
            if _writes_collide(nest, w1, w2, same_ref=w1 is w2, param_lo=param_lo):
                raise TransformError(
                    f"ElimRW on {name}: multiple same-context writes can hit "
                    "one element; the min-earliest copy set would need a "
                    "case split (not implemented)"
                )


def _writes_collide(nest, w1: Reference, w2: Reference, *, same_ref: bool, param_lo) -> bool:
    """Can two (distinct) write instances of one context iteration write the
    same element?"""
    suffix = "_w2"
    ren = {v: v + suffix for v in nest.fused_vars}
    for f in w2.fuzzy:
        ren[f] = f + suffix
    d2 = w2.domain.rename(ren)
    variables = tuple(dict.fromkeys(w1.domain.variables + d2.variables))
    constraints: list[Constraint] = list(w1.domain.constraints) + list(d2.constraints)
    for a, b in zip(w1.subscripts, w2.subscripts_renamed(ren)):
        constraints.append(eq0(a - b))
    base = Polyhedron(variables, constraints)
    # Distinct instances: differ in some fused dimension.
    for v in nest.fused_vars:
        diff = LinExpr.var(v) - LinExpr.var(v + suffix)
        for sign in (1, -1):
            poly = base.with_constraints([ge0(diff * sign - 1)])
            if integer_feasible(poly, param_lo=param_lo):
                return True
    if not same_ref:
        # Same iteration but different statements also collide.
        same = base.with_constraints(
            [eq0(LinExpr.var(v) - LinExpr.var(v + suffix)) for v in nest.fused_vars]
        )
        if integer_feasible(same, param_lo=param_lo):
            return True
    return False


def _copy_refs(copy_name: str, name: str, wref: Reference, is_scalar: bool):
    if is_scalar:
        return VarRef(copy_name), VarRef(name)
    subs = [linexpr_to_expr(s) for s in wref.subscripts]
    return ArrayRef(copy_name, subs), ArrayRef(name, subs)


def _conjunction(constraints: Sequence[Constraint]) -> Expr:
    from repro.ir.builder import and_

    return and_(*[constraint_to_cond(c) for c in constraints])


def _disjunction(disjuncts: list[list[Constraint]]) -> Expr:
    from repro.ir.builder import and_, or_

    parts: list[Expr] = []
    for d in disjuncts:
        if not d:
            # One disjunct is always true: the whole condition is true.
            from repro.ir.builder import ceq, val

            return ceq(val(0), val(0))
        parts.append(and_(*[constraint_to_cond(c) for c in d]))
    return or_(*parts)


def _precopy_element_set(
    nest: FusedNest,
    ref: Reference,
    disjuncts: list[list[Constraint]],
    param_lo,
    value_ranges: Mapping[str, ValueRange] | None = None,
) -> Polyhedron | None:
    """The elements read while ``C_R`` is false, when they are provably
    never written anywhere in the program; None when the simplification
    does not apply."""
    if not ref.subscripts:
        return None  # scalars: nothing to pre-copy
    # Complementable only for a single one-inequality disjunct.
    if len(disjuncts) != 1 or len(disjuncts[0]) != 1:
        return None
    c = disjuncts[0][0]
    if c.kind is not Kind.GE:
        return None
    negated = ge0(-c.expr - 1)
    e0 = ref.domain.with_constraints([negated])
    # Element coordinates as fresh dims bound to the subscripts.
    elem_vars = tuple(f"_e{d}" for d in range(len(ref.subscripts)))
    widened = e0.with_variables(e0.variables + elem_vars)
    widened = widened.with_constraints(
        [eq0(LinExpr.var(ev) - s) for ev, s in zip(elem_vars, ref.subscripts)]
    )
    elems = project_onto(widened, list(elem_vars))
    # Never-written check across every write of the variable in any group.
    for g in nest.groups:
        for w in extract_references(nest, g, value_ranges):
            if not w.is_write or w.name != ref.name:
                continue
            ren = {v: v + "_w" for v in nest.fused_vars}
            for f in w.fuzzy:
                ren[f] = f + "_w"
            wd = w.domain.rename(ren)
            variables = tuple(dict.fromkeys(elem_vars + wd.variables))
            cs = list(elems.constraints) + list(wd.constraints)
            for ev, s in zip(elem_vars, w.subscripts_renamed(ren)):
                cs.append(eq0(LinExpr.var(ev) - s))
            if integer_feasible(Polyhedron(variables, cs), param_lo=param_lo):
                return None
    return elems


def _emit_precopy(
    elems: Polyhedron, copy_name: str, name: str, is_scalar: bool, namer: NameGenerator
) -> list[Stmt]:
    """Loops copying every element of *elems* into the copy array."""
    assert not is_scalar
    elem_vars = list(elems.variables)
    loop_names = {ev: namer.fresh("c") for ev in elem_vars}
    subs = [VarRef(loop_names[ev]) for ev in elem_vars]
    body: tuple[Stmt, ...] = (
        Assign(ArrayRef(copy_name, subs), ArrayRef(name, subs)),
    )
    for d in reversed(range(len(elem_vars))):
        prefix = elem_vars[: d + 1]
        proj = project_onto(elems, prefix)
        lowers, uppers = proj.bounds_on(elem_vars[d])
        if not lowers or not uppers:
            raise TransformError(f"pre-copy element set unbounded in dim {d}")
        from repro.trans.loopgen import _combine
        from repro.trans.model import assumed_param_domain

        pd = assumed_param_domain(
            {v for b in lowers + uppers for v in b.variables()} - set(elem_vars)
        )
        ren = {ev: loop_names[ev] for ev in elem_vars}
        lo = _combine([b.rename(ren) for b in lowers], lower=True, param_domain=pd)
        hi = _combine([b.rename(ren) for b in uppers], lower=False, param_domain=pd)
        body = (
            Loop(loop_names[elem_vars[d]], lo, hi, body),
        )
    return list(body)


def _redirect_read(
    stmt: Stmt,
    ref: Reference,
    copy_name: str,
    *,
    cond: Expr | None,
    is_scalar: bool,
) -> Stmt:
    """Rewrite matching read occurrences in *stmt* to use the copy array."""
    from repro.ir.affine import expr_to_linexpr

    def matches(node: Expr) -> bool:
        if is_scalar:
            return isinstance(node, VarRef) and node.name == ref.name
        if not (isinstance(node, ArrayRef) and node.name == ref.name):
            return False
        try:
            subs = tuple(expr_to_linexpr(e) for e in node.indices)
        except Exception:
            return False
        return subs == ref.subscripts

    def rewrite(expr: Expr) -> Expr:
        def fn(node: Expr) -> Expr:
            if matches(node):
                replacement: Expr
                if is_scalar:
                    replacement = VarRef(copy_name)
                else:
                    replacement = ArrayRef(copy_name, node.children())
                if cond is None:
                    return replacement
                return Select(cond, replacement, node)
            return node

        return map_expr(expr, fn)

    def transform(s: Stmt) -> Stmt:
        if isinstance(s, Assign):
            # Only the value side reads; subscript reads of the target are
            # reads of index variables, not of the redirected array element.
            return Assign(s.target, rewrite(s.value))
        if isinstance(s, If):
            return If(
                rewrite(s.cond),
                tuple(transform(t) for t in s.then),
                tuple(transform(t) for t in s.orelse),
            )
        if isinstance(s, Loop):
            return Loop(
                s.var,
                s.lower,
                s.upper,
                tuple(transform(t) for t in s.body),
                s.step,
            )
        raise TransformError(f"unsupported statement {s!r}")

    return transform(stmt)
