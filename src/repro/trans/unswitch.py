"""Loop unswitching: hoisting loop-invariant guards out of loops.

Code sinking guards every fused statement group; a production compiler
(the paper's MIPSpro at -O3) hoists the loop-invariant ones back out —
the paper states it directly: "In the tiled codes, the effect of code
sinking is undone as much as possible." This pass implements that undo:

    do i { if (c) X; rest }   ==>   if (c) do i { X; rest }
                                    else  do i { rest }

whenever ``c`` neither reads the loop variable nor anything the loop body
writes. Applied innermost-first and repeatedly, each invariant guard is
evaluated once per *outer* iteration instead of once per point; code size
grows by at most 2^(invariant guards per loop), which is <= 4 for the
paper kernels.
"""

from __future__ import annotations

from repro.ir.analysis import written_names
from repro.ir.expr import Expr, free_names
from repro.ir.program import Program
from repro.ir.stmt import Assign, If, Loop, Stmt

#: Guard against pathological code growth.
MAX_VERSIONS_PER_LOOP = 8


def _invariant(cond: Expr, loop: Loop) -> bool:
    names = free_names(cond)
    if loop.var in names:
        return False
    return not (names & written_names(loop.body))


def _split_condition(cond: Expr, loop: Loop) -> tuple[Expr | None, Expr | None]:
    """(invariant part, residual part); either may be None.

    A conjunction splits conjunct-wise: hoisting the invariant conjuncts is
    sound because the guard executes iff *both* parts hold, and the
    invariant part is constant across the loop.
    """
    from repro.ir.expr import LogicalAnd

    if _invariant(cond, loop):
        return cond, None
    if isinstance(cond, LogicalAnd):
        inv = [a for a in cond.args if _invariant(a, loop)]
        var = [a for a in cond.args if not _invariant(a, loop)]
        if inv:
            inv_part = inv[0] if len(inv) == 1 else LogicalAnd(inv)
            var_part = var[0] if len(var) == 1 else LogicalAnd(var)
            return inv_part, var_part
    return None, None


def _first_unswitchable(loop: Loop) -> tuple[int, If, Expr, Expr | None] | None:
    for pos, stmt in enumerate(loop.body):
        if isinstance(stmt, If) and not stmt.orelse:
            inv, residual = _split_condition(stmt.cond, loop)
            if inv is not None:
                return pos, stmt, inv, residual
        elif isinstance(stmt, If) and _invariant(stmt.cond, loop):
            return pos, stmt, stmt.cond, None
    return None


def _unswitch_loop(loop: Loop, budget: int) -> Stmt:
    # Recurse into children first so inner loops are already clean.
    body = tuple(_unswitch_stmt(s) for s in loop.body)
    loop = Loop(loop.var, loop.lower, loop.upper, body, loop.step)
    if budget <= 1:
        return loop
    found = _first_unswitchable(loop)
    if found is None:
        return loop
    pos, guard, inv_cond, residual = found
    taken_inner: tuple[Stmt, ...] = tuple(guard.then)
    if residual is not None:
        taken_inner = (If(residual, taken_inner),)
    taken_body = loop.body[:pos] + taken_inner + loop.body[pos + 1 :]
    # When the hoisted condition is false the whole guard is false (for a
    # split conjunction there is no else branch by construction).
    nottaken_body = loop.body[:pos] + tuple(guard.orelse) + loop.body[pos + 1 :]
    branches = []
    for new_body in (taken_body, nottaken_body):
        if new_body:
            branches.append(
                _unswitch_loop(
                    Loop(loop.var, loop.lower, loop.upper, new_body, loop.step),
                    budget // 2,
                )
            )
        else:
            branches.append(None)
    then = (branches[0],) if branches[0] is not None else ()
    orelse = (branches[1],) if branches[1] is not None else ()
    if not then and not orelse:
        return loop
    return If(inv_cond, then, orelse)


def _unswitch_stmt(stmt: Stmt) -> Stmt:
    if isinstance(stmt, Loop):
        return _unswitch_loop(stmt, MAX_VERSIONS_PER_LOOP)
    if isinstance(stmt, If):
        return If(
            stmt.cond,
            tuple(_unswitch_stmt(s) for s in stmt.then),
            tuple(_unswitch_stmt(s) for s in stmt.orelse),
        )
    if isinstance(stmt, Assign):
        return stmt
    return stmt


def unswitch_invariant_guards(program: Program, *, name: str | None = None) -> Program:
    """Hoist invariant guards throughout the program body."""
    body = tuple(_unswitch_stmt(s) for s in program.body)
    out = program.with_body(body)
    return out.with_name(name or program.name)
