"""Loop transformations: fusion, code sinking, FixDeps, tiling, skewing.

The pipeline mirrors the paper's Section 3:

1. :mod:`repro.trans.fusion` — embed K sibling perfect nests (within a
   common context of outer loops) into one fused iteration space (Eq. 2–4),
   producing a :class:`~repro.trans.model.FusedNest`;
2. :mod:`repro.trans.elim_ww_wr` — eliminate fusion-preventing flow/output
   dependences by collapsing (full-extent tiling) the offending dimensions
   of earlier nests, bottom-up (Fig. 2, lines 7–35);
3. :mod:`repro.trans.elim_rw` — eliminate fusion-preventing anti-dependences
   by array copying (Fig. 2, lines 36–48) with the paper's guard-
   simplification optimisation (line 6);
4. :mod:`repro.trans.fixdeps` — the FixDeps driver combining 2 and 3;
5. :mod:`repro.trans.tiling` / :mod:`repro.trans.skew` — standard cache
   tiling and skewing of the resulting perfect nest (Sec. 4).

Exports are lazy: the dependence analysis imports :mod:`repro.trans.model`,
and eager re-exports here would close an import cycle.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "FusedNest": ("repro.trans.model", "FusedNest"),
    "StmtGroup": ("repro.trans.model", "StmtGroup"),
    "NestEmbedding": ("repro.trans.fusion", "NestEmbedding"),
    "fuse_siblings": ("repro.trans.fusion", "fuse_siblings"),
    "auto_fuse": ("repro.trans.autofuse", "auto_fuse"),
    "fix_dependences": ("repro.trans.fixdeps", "fix_dependences"),
    "tile_program": ("repro.trans.tiling", "tile_program"),
    "skew_and_permute": ("repro.trans.skew", "skew_and_permute"),
    "unimodular_transform": ("repro.trans.unimodular", "unimodular_transform"),
    "sink_guards": ("repro.trans.sinking", "sink_guards"),
    "unswitch_invariant_guards": ("repro.trans.unswitch", "unswitch_invariant_guards"),
    "split_point_guards": ("repro.trans.splitting", "split_point_guards"),
    "propagate_guard_facts": ("repro.trans.cleanup", "propagate_guard_facts"),
    "scalarize_arrays": ("repro.trans.cleanup", "scalarize_arrays"),
    "distribute_loop": ("repro.trans.distribution", "distribute_loop"),
    "try_fuse_adjacent": ("repro.trans.fuse_direct", "try_fuse_adjacent"),
    "fuse_all_legal": ("repro.trans.fuse_direct", "fuse_all_legal"),
    "expand_scalar": ("repro.trans.expand", "expand_scalar"),
    "unroll_program": ("repro.trans.unroll", "unroll_program"),
    "unroll_and_jam_program": ("repro.trans.unroll", "unroll_and_jam_program"),
    "permutation_legal": ("repro.trans.legality", "permutation_legal"),
    "fully_permutable": ("repro.trans.legality", "fully_permutable"),
    "fully_permutable_under": ("repro.trans.legality", "fully_permutable_under"),
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    if name in _EXPORTS:
        import importlib

        module, attr = _EXPORTS[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(f"module 'repro.trans' has no attribute {name!r}")


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.trans.fixdeps import fix_dependences
    from repro.trans.fusion import NestEmbedding, fuse_siblings
    from repro.trans.model import FusedNest, StmtGroup
    from repro.trans.sinking import sink_guards
    from repro.trans.skew import skew_and_permute
    from repro.trans.tiling import tile_program
