"""Loop peeling.

The paper peels the last iteration of LU's ``k`` loop before fusing (the
final pivot search runs without a trailing update). ``peel_last`` splits
``do v = lo, hi`` into ``do v = lo, hi-1`` plus the body at ``v = hi``.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.expr import BinOp, Const, Expr, VarRef, map_expr
from repro.ir.stmt import Loop, Stmt, map_stmt_exprs


def substitute_var(stmt: Stmt, var: str, value: Expr) -> Stmt:
    """Replace every reference to *var* in *stmt* with *value*."""

    def rewrite(expr: Expr) -> Expr:
        def fn(node: Expr) -> Expr:
            if isinstance(node, VarRef) and node.name == var:
                return value
            return node

        return map_expr(expr, fn)

    return map_stmt_exprs(stmt, rewrite)


def peel_last(loop: Loop) -> tuple[Loop, tuple[Stmt, ...]]:
    """Split off the final iteration; caller must know the range is
    non-empty (the peeled statements execute unconditionally)."""
    if not loop.has_unit_step:
        raise TransformError("peel_last requires a unit-step loop")
    shortened = Loop(
        loop.var,
        loop.lower,
        BinOp("-", loop.upper, Const(1)),
        loop.body,
        loop.step,
    )
    peeled = tuple(substitute_var(s, loop.var, loop.upper) for s in loop.body)
    return shortened, peeled
