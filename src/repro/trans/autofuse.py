"""Automatic embedding derivation for fusion.

The paper notes (Sec. 3.1) that the placement of the smaller nests inside
the common iteration space "may not be critical" — any placement works
because FixDeps repairs whatever the choice violates. This module encodes
the boundary-placement heuristic all four paper kernels follow:

- each item's loops map **positionally to the innermost fused dimensions**
  (a depth-``d`` item occupies the last ``d`` fused loops, outermost
  first);
- every remaining (leading) fused dimension is pinned to its **lower
  bound** — the fused space's boundary.

Under this rule the derived embeddings for LU, QR, Cholesky and Jacobi
coincide (up to equivalent placement algebra) with the hand-written
Figure-3 embeddings, which the test suite checks by program equivalence.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TransformError
from repro.ir.analysis import as_perfect_nest
from repro.ir.expr import Expr
from repro.ir.program import Program
from repro.ir.stmt import Loop, Stmt
from repro.trans.fusion import NestEmbedding, fuse_siblings
from repro.trans.model import FusedNest
from repro.trans.sinking import sink_guards


def derive_embedding(
    item: Stmt, fused_loops: Sequence[tuple[str, Expr, Expr]]
) -> NestEmbedding:
    """The boundary embedding for one item (see module docstring)."""
    nest = as_perfect_nest(sink_guards(item))
    fused_vars = [v for v, _, _ in fused_loops]
    if nest.depth > len(fused_vars):
        raise TransformError(
            f"item of depth {nest.depth} cannot embed into "
            f"{len(fused_vars)} fused dimensions"
        )
    tail = fused_vars[len(fused_vars) - nest.depth :]
    var_map = dict(zip(nest.loop_vars, tail))
    placement = {
        v: lo
        for (v, lo, _hi) in fused_loops[: len(fused_vars) - nest.depth]
    }
    return NestEmbedding(var_map=var_map, placement=placement)


def auto_fuse(
    program: Program,
    fused_loops: Sequence[tuple[str, Expr, Expr]],
    *,
    context_depth: int = 0,
    epilogue_from: int | None = None,
) -> FusedNest:
    """:func:`fuse_siblings` with embeddings derived automatically."""
    top = list(program.body)
    if epilogue_from is not None:
        top = top[:epilogue_from]
    items: list[Stmt] = top
    for _ in range(context_depth):
        if len(items) != 1 or not isinstance(items[0], Loop):
            raise TransformError("context loop chain malformed")
        items = list(items[0].body)
    embeddings = [derive_embedding(item, fused_loops) for item in items]
    return fuse_siblings(
        program,
        fused_loops,
        embeddings,
        context_depth=context_depth,
        epilogue_from=epilogue_from,
    )
