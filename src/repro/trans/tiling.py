"""Standard rectangular loop tiling (Sec. 4's final cache-tiling step).

Strip-mines each selected loop into a (tile, point) pair and regenerates
the nest in a caller-chosen loop order, with bounds recomputed from the
iteration-space polyhedron (so triangular spaces — LU, QR, Cholesky — get
the correct ``max``/``min`` clamps). Legality is not re-checked here; the
kernels' tiled variants are validated by execution equivalence against the
sequential programs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import TransformError
from repro.ir.analysis import as_perfect_nest, iteration_domain
from repro.ir.program import Program
from repro.ir.stmt import Stmt
from repro.poly.constraint import ge0
from repro.poly.linexpr import LinExpr
from repro.trans.loopgen import emit_loops
from repro.utils.naming import NameGenerator


def tile_perfect_nest(
    stmt: Stmt,
    tiles: Mapping[str, int],
    *,
    order: Sequence[str] | None = None,
    reserved: frozenset[str] = frozenset(),
) -> tuple[Stmt, dict[str, str]]:
    """Tile one perfect nest; returns the new nest and var -> tile-var map.

    ``order`` lists the full new loop order (tile variables named
    ``<var>t``); default puts all tile loops outermost (in original loop
    order) followed by all point loops.
    """
    nest = as_perfect_nest(stmt)
    if nest.depth == 0:
        raise TransformError("statement is not a loop nest")
    loop_vars = list(nest.loop_vars)
    unknown = set(tiles) - set(loop_vars)
    if unknown:
        raise TransformError(f"tile request for non-loop vars {sorted(unknown)}")
    for var, size in tiles.items():
        if not isinstance(size, int) or size < 1:
            raise TransformError(f"tile size for {var} must be a positive int")

    namer = NameGenerator(set(loop_vars) | reserved)
    tile_names = {v: namer.fresh(f"{v}t") for v in loop_vars if v in tiles}

    domain = iteration_domain(nest.loops)
    all_vars = tuple(tile_names[v] for v in loop_vars if v in tiles) + tuple(loop_vars)
    constraints = list(domain.constraints)
    from repro.poly.fm import project_onto

    for v, tv in tile_names.items():
        size = tiles[v]
        pv, tvv = LinExpr.var(v), LinExpr.var(tv)
        constraints.append(ge0(pv - tvv))
        constraints.append(ge0(tvv + (size - 1) - pv))
        # Anchor the tile lattice at the variable's global lower bound when
        # it is a single parameter-only expression (keeps tile loops like
        # ``do kt = 1, ...`` instead of the FM-relaxed ``lo - T + 1``).
        lowers, _ = project_onto(domain, [v]).bounds_on(v)
        if len(lowers) == 1:
            constraints.append(ge0(tvv - lowers[0]))
    from repro.poly.polyhedron import Polyhedron

    tiled_domain = Polyhedron(all_vars, constraints)

    if order is None:
        order = [tile_names[v] for v in loop_vars if v in tiles] + loop_vars
    else:
        order = list(order)
        if set(order) != set(all_vars):
            raise TransformError(
                f"order {order} must be a permutation of {all_vars}"
            )

    steps = {tile_names[v]: tiles[v] for v in tile_names}
    new_nest = emit_loops(tiled_domain, order, nest.body, steps=steps)
    return new_nest, tile_names


def tile_program(
    program: Program,
    tiles: Mapping[str, int],
    *,
    order: Sequence[str] | None = None,
    nest_index: int = 0,
    name: str | None = None,
) -> Program:
    """Tile the perfect nest at ``program.body[nest_index]``."""
    body = list(program.body)
    new_nest, _ = tile_perfect_nest(
        body[nest_index], tiles, order=order, reserved=frozenset(program.all_names())
    )
    body[nest_index] = new_nest
    out = program.with_body(body)
    return out.with_name(name or f"{program.name}_tiled")
