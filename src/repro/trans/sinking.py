"""Code sinking: normalising guards so nests expose their loop structure.

The paper obtains Figure 3 from Figure 1 by *code sinking* — moving
statements (and loop-invariant guards) into the loops they will be fused
with. In this implementation most sinking falls out of the embedding step
(straight-line code becomes a depth-0 group placed at one fused point); the
remaining structural normalisation is pushing loop-invariant ``if`` guards
inside the loops they wrap, so ``if (m.NE.k) do j=... body`` exposes the
``do j`` for embedding::

    if (c) { do v = l, u { B } }   ==>   do v = l, u { if (c) B }

which is semantics-preserving whenever ``c`` does not depend on ``v`` or on
anything ``B`` writes.
"""

from __future__ import annotations

from repro.ir.analysis import written_names
from repro.ir.expr import free_names
from repro.ir.stmt import If, Loop, Stmt


def _cond_blocks_sinking(cond, loop: Loop) -> bool:
    names = free_names(cond)
    if loop.var in names:
        return True
    # The guard must stay invariant across iterations: nothing it reads may
    # be written in the loop body.
    return bool(names & written_names(loop.body))


def sink_guards(stmt: Stmt) -> Stmt:
    """Recursively push loop-invariant guards inside single-loop bodies."""
    if isinstance(stmt, Loop):
        return Loop(
            stmt.var,
            stmt.lower,
            stmt.upper,
            tuple(sink_guards(s) for s in stmt.body),
            stmt.step,
        )
    if isinstance(stmt, If):
        then = tuple(sink_guards(s) for s in stmt.then)
        orelse = tuple(sink_guards(s) for s in stmt.orelse)
        if (
            not orelse
            and len(then) == 1
            and isinstance(then[0], Loop)
            and not _cond_blocks_sinking(stmt.cond, then[0])
        ):
            inner = then[0]
            sunk = If(stmt.cond, inner.body)
            return sink_guards(
                Loop(inner.var, inner.lower, inner.upper, (sunk,), inner.step)
            )
        return If(stmt.cond, then, orelse)
    return stmt
