"""Data model of a fused program (the paper's Eq. 4 plus bookkeeping).

A :class:`FusedNest` is one perfect nest ``do I_1 ... do I_n`` (under an
optional *context* of outer loops shared by all original nests) whose body
is a sequence of :class:`StmtGroup` — one per original nest ``L_k``,
rewritten into fused coordinates and guarded by membership in ``F_k(IS_k)``.

The model carries the *execution relation* of each group: after
``ElimWW_WR`` collapses some dimensions of a group (full-extent tiling),
every instance of that group executes at the collapsed dimensions' origin.
Dependence rounds therefore compare **execution coordinates**::

    exec_k(I)_i = origin_i      if i collapsed for group k
                = I_i           otherwise

which stay affine, so each round remains a polyhedral problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.errors import TransformError
from repro.ir.affine import constraints_to_cond, linexpr_to_expr
from repro.ir.expr import Expr
from repro.ir.program import Program
from repro.ir.stmt import If, Loop, Stmt
from repro.poly.constraint import Constraint
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron

#: Suffix used to build "primed" (sink) copies of fused variables in
#: dependence polyhedra.
PRIME = "__p"

#: Problem-size parameters are assumed to be at least this large when
#: proving bound domination during code generation (the paper's kernels run
#: at N >= 200; degenerate tiny sizes would only change which redundant
#: bound is emitted, never correctness of the guarded code).
ASSUMED_PARAM_LO = 4


def assumed_param_domain(params) -> "Polyhedron":
    """``{ p >= ASSUMED_PARAM_LO }`` over the given parameter names."""
    from repro.poly.constraint import ge0

    names = tuple(params)
    return Polyhedron(
        names, [ge0(LinExpr.var(p) - ASSUMED_PARAM_LO) for p in names]
    )


def primed(name: str) -> str:
    """The primed twin of a fused variable."""
    return name + PRIME


@dataclass(frozen=True)
class StmtGroup:
    """One original nest embedded in the fused space.

    ``domain`` is over ``context_vars + fused_vars`` and describes
    ``F_k(IS_k)``; ``guard`` lists only the constraints beyond the fused
    space bounds (what must be tested at run time). ``collapsed`` maps each
    collapsed fused variable to its origin expression (affine over context
    variables and parameters).
    """

    index: int
    body: tuple[Stmt, ...]
    domain: Polyhedron
    guard: tuple[Constraint, ...]
    collapsed: Mapping[str, LinExpr] = field(default_factory=dict)
    #: Extra leading statements inserted by ElimRW (copy operations),
    #: executed before `body` under the same guard-free position.
    prologue: tuple[Stmt, ...] = ()

    def exec_coordinate(self, var: str) -> LinExpr:
        """Execution coordinate of fused variable *var* for this group."""
        if var in self.collapsed:
            return self.collapsed[var]
        return LinExpr.var(var)

    def with_collapsed(self, extra: Mapping[str, LinExpr]) -> "StmtGroup":
        """Collapse additional dimensions (ElimWW_WR tiling step)."""
        merged = dict(self.collapsed)
        for var, origin in extra.items():
            if var in merged and merged[var] != origin:
                raise TransformError(
                    f"group {self.index}: conflicting origins for {var}"
                )
            merged[var] = origin
        return replace(self, collapsed=merged)

    def with_body(self, body: tuple[Stmt, ...]) -> "StmtGroup":
        """Replace the statement list."""
        return replace(self, body=body)

    def with_prologue(self, prologue: tuple[Stmt, ...]) -> "StmtGroup":
        """Replace the ElimRW prologue."""
        return replace(self, prologue=prologue)


@dataclass(frozen=True)
class FusedNest:
    """The fused program: context loops around one perfect fused nest."""

    #: Declarations and parameters come from here; body is ignored.
    base: Program
    #: Outer loops shared by every group (e.g. LU's ``k``), outermost first.
    context: tuple[Loop, ...]
    #: Fused loop spec: (var, lower, upper) with IR bound expressions.
    fused_loops: tuple[tuple[str, Expr, Expr], ...]
    groups: tuple[StmtGroup, ...]
    #: Statements to run before the context loops (ElimRW pre-copies).
    preamble: tuple[Stmt, ...] = ()
    #: Statements kept after the fused nest (e.g. LU's peeled last k).
    epilogue: tuple[Stmt, ...] = ()

    @property
    def context_vars(self) -> tuple[str, ...]:
        """Context loop variables, outermost first."""
        return tuple(l.var for l in self.context)

    @property
    def fused_vars(self) -> tuple[str, ...]:
        """Fused loop variables, outermost first."""
        return tuple(v for v, _, _ in self.fused_loops)

    def fingerprint(self) -> str:
        """Stable content digest of the whole fused program state.

        Covers everything dependence analysis can observe — base program,
        context loops, fused loop specs, and each group's body, domain,
        guard, collapse map and prologue — so it keys the cross-variant
        dependence memo in :mod:`repro.deps`: variants of one kernel share
        identical nests until a transform actually rewrites them, and then
        their fingerprints (and memo entries) diverge. Cached per instance
        (transforms build new instances via ``replace``, so the content
        under one instance never changes).
        """
        cached = getattr(self, "_fp", None)
        if cached is not None:
            return cached
        from repro.ir.serialize import expr_to_dict, program_to_dict, stmt_to_dict
        from repro.poly import memo

        def group_doc(g: StmtGroup) -> dict:
            return {
                "i": g.index,
                "body": [stmt_to_dict(s) for s in g.body],
                "dom": [g.domain.fingerprint(), list(g.domain.variables)],
                "guard": [c.fingerprint_text() for c in g.guard],
                "collapsed": {
                    v: g.collapsed[v].fingerprint_text()
                    for v in sorted(g.collapsed)
                },
                "pro": [stmt_to_dict(s) for s in g.prologue],
            }

        doc = {
            "base": program_to_dict(self.base),
            "ctx": [stmt_to_dict(l) for l in self.context],
            "fused": [
                [v, expr_to_dict(lo), expr_to_dict(hi)]
                for v, lo, hi in self.fused_loops
            ],
            "groups": [group_doc(g) for g in self.groups],
            "pre": [stmt_to_dict(s) for s in self.preamble],
            "epi": [stmt_to_dict(s) for s in self.epilogue],
        }
        fp = memo.stable_key(doc)
        object.__setattr__(self, "_fp", fp)  # frozen dataclass, pure cache
        return fp

    def space(self) -> Polyhedron:
        """Iteration space over context + fused variables."""
        from repro.ir.analysis import loop_bound_constraints
        from repro.ir.affine import expr_to_linexpr
        from repro.poly.constraint import ge0

        constraints: list[Constraint] = []
        for loop in self.context:
            constraints.extend(loop_bound_constraints(loop))
        for var, lo, hi in self.fused_loops:
            v = LinExpr.var(var)
            constraints.extend(
                [ge0(v - expr_to_linexpr(lo)), ge0(expr_to_linexpr(hi) - v)]
            )
        return Polyhedron(self.context_vars + self.fused_vars, constraints)

    def fused_lower_bound(self, var: str) -> LinExpr:
        """Origin O_v of fused dimension *var* (the space's lower bound)."""
        from repro.ir.affine import expr_to_linexpr

        for v, lo, _hi in self.fused_loops:
            if v == var:
                return expr_to_linexpr(lo)
        raise TransformError(f"{var} is not a fused variable")

    def with_groups(self, groups: tuple[StmtGroup, ...]) -> "FusedNest":
        """Replace the group tuple."""
        return replace(self, groups=groups)

    def with_preamble(self, preamble: tuple[Stmt, ...]) -> "FusedNest":
        """Replace the preamble."""
        return replace(self, preamble=preamble)

    def with_base(self, base: Program) -> "FusedNest":
        """Replace the declaration-carrying base program."""
        return replace(self, base=base)

    # -- code generation ------------------------------------------------------
    def to_program(self, name: str | None = None) -> Program:
        """Emit the fused nest as an executable IR program."""
        body = self._emit_fused_body()
        stmt: tuple[Stmt, ...] = body
        for var, lo, hi in reversed(self.fused_loops):
            stmt = (Loop(var, lo, hi, stmt),)
        for ctx in reversed(self.context):
            stmt = (Loop(ctx.var, ctx.lower, ctx.upper, stmt, ctx.step),)
        full = self.preamble + stmt + self.epilogue
        prog = self.base.with_body(full)
        return prog.with_name(name or f"{self.base.name}_fused")

    def _emit_fused_body(self) -> tuple[Stmt, ...]:
        out: list[Stmt] = []
        for group in self.groups:
            stmts = group.prologue + self._emit_group(group)
            out.extend(stmts)
        return tuple(out)

    def _emit_group(self, group: StmtGroup) -> tuple[Stmt, ...]:
        if not group.collapsed:
            return _guarded(group.guard, group.body)
        return self._emit_collapsed(group)

    def _emit_collapsed(self, group: StmtGroup) -> tuple[Stmt, ...]:
        """Tiled-code emission (paper Fig. 2, lines 27–33) for full-extent
        tiles: at the tile origin, sweep loops enumerate every point of
        ``F_k(IS_k)`` along the collapsed dimensions."""
        from repro.ir.affine import constraint_to_cond
        from repro.ir.builder import ceq
        from repro.poly.fm import project_onto
        from repro.utils.naming import NameGenerator

        namer = NameGenerator(self.base.all_names() | {primed(v) for v in self.fused_vars})
        collapsed_vars = [v for v in self.fused_vars if v in group.collapsed]
        sweep_names = {v: namer.fresh(f"{v}s") for v in collapsed_vars}

        # Body with collapsed fused vars renamed to sweep variables.
        from repro.ir.expr import VarRef, map_expr
        from repro.ir.stmt import map_stmt_exprs

        def rename(expr):
            def fn(node):
                if isinstance(node, VarRef) and node.name in sweep_names:
                    return VarRef(sweep_names[node.name])
                return node

            return map_expr(expr, fn)

        body: tuple[Stmt, ...] = tuple(map_stmt_exprs(s, rename) for s in group.body)

        # Sweep loop bounds, innermost outward: bounds of collapsed dim v in
        # the group's domain, given context and earlier collapsed dims.
        keep_outer = list(self.context_vars) + [
            v for v in self.fused_vars if v not in group.collapsed
        ]
        for v in reversed(collapsed_vars):
            prefix = [
                u
                for u in self.fused_vars
                if u in group.collapsed
                and self.fused_vars.index(u) <= self.fused_vars.index(v)
            ]
            proj = project_onto(group.domain, keep_outer + prefix)
            lowers, uppers = proj.bounds_on(v)
            if not lowers or not uppers:
                raise TransformError(
                    f"group {group.index}: cannot bound sweep dimension {v}"
                )
            from repro.trans.loopgen import _combine

            pd = assumed_param_domain(self.base.params)
            rename_map = {u: sweep_names[u] for u in prefix if u != v}
            lo = _combine(
                [b.rename(rename_map) for b in lowers], lower=True, param_domain=pd
            )
            hi = _combine(
                [b.rename(rename_map) for b in uppers], lower=False, param_domain=pd
            )
            body = (Loop(sweep_names[v], lo, hi, body),)

        # Origin guard: collapsed dims pinned at their origin; plus the
        # group's membership constraints on the remaining dims — obtained by
        # projecting the domain onto the uncollapsed dims and dropping
        # whatever the fused space already guarantees.
        conds: list[Expr] = []
        for v in collapsed_vars:
            conds.append(ceq(VarRef(v), linexpr_to_expr(group.collapsed[v])))
        space = self.space()
        membership = project_onto(group.domain, keep_outer)
        for c in membership.constraints:
            if not _implied_by(space, c):
                conds.append(constraint_to_cond(c))
        from repro.ir.builder import and_

        if conds:
            return (If(and_(*conds), body),)
        return body


def _guarded(guard: tuple[Constraint, ...], body: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
    cond = constraints_to_cond(list(guard))
    if cond is None:
        return body
    return (If(cond, body),)


def _implied_by(space: Polyhedron, constraint: Constraint) -> bool:
    """True when every point of *space* satisfies *constraint* (sound
    rational check; equalities are implied only if literally present)."""
    from repro.poly import memo
    from repro.poly.constraint import Kind

    if constraint.kind is Kind.EQ:
        return constraint in space.constraints
    if not memo.caching_enabled():
        return _implied_by_check(space, constraint)
    return memo.memoize(
        "implied",
        (space.fingerprint(), constraint.fingerprint_text()),
        lambda: _implied_by_check(space, constraint),
    )


def _implied_by_check(space: Polyhedron, constraint: Constraint) -> bool:
    from repro.poly.constraint import ge0
    from repro.poly.integer import rationally_empty

    # Violation of e >= 0 over the integers: e <= -1.
    violating = space.with_constraints([ge0(-constraint.expr - 1)])
    return rationally_empty(violating)


def _bound_expr(
    bounds: list[LinExpr], *, is_lower: bool, param_domain: Polyhedron | None = None
) -> LinExpr:
    """Collapse multiple affine bounds; only single-bound cases are emitted
    (multi-bound sweeps would need min/max intrinsics in loop headers)."""
    if len(bounds) == 1:
        return bounds[0]
    # Prefer a bound that provably dominates; otherwise fail loudly.
    from repro.poly.optimize import unique_extreme_bound

    best = unique_extreme_bound(bounds, lower=is_lower, param_domain=param_domain)
    if best is None:
        raise TransformError(
            f"multiple irreducible {'lower' if is_lower else 'upper'} bounds: "
            f"{[str(b) for b in bounds]}"
        )
    return best


def _always_true():
    from repro.ir.builder import ceq, val

    return ceq(val(0), val(0))
