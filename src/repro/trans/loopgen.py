"""Loop generation from polyhedral domains.

Shared by tiling and unimodular transforms: given a domain over an ordered
variable tuple, emit the loop nest scanning it lexicographically. Bounds of
each level come from Fourier–Motzkin projection onto the prefix; multiple
irredundant bounds are emitted with ``max``/``min`` intrinsics (which the
executors evaluate directly — no further polyhedral analysis runs after
this stage).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import TransformError
from repro.ir.affine import linexpr_to_expr
from repro.ir.expr import Call, Const, Expr
from repro.ir.stmt import Loop, Stmt
from repro.poly.fm import project_onto
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron


def _combine(
    bounds: list[LinExpr], *, lower: bool, param_domain: Polyhedron | None = None
) -> Expr:
    """Single bound expression; ``max`` of lowers / ``min`` of uppers.

    Bounds provably dominated by another bound over the parameter domain are
    pruned first (FM projections produce many redundant combinations).
    """
    from repro.poly.optimize import affine_ge

    uniq: list[LinExpr] = []
    for b in bounds:
        if b not in uniq:
            uniq.append(b)
    kept: list[LinExpr] = []
    for b in uniq:
        dominated = any(
            other != b
            and (
                affine_ge(other, b, param_domain)
                if lower
                else affine_ge(b, other, param_domain)
            )
            for other in uniq
        )
        if not dominated:
            kept.append(b)
    if not kept:
        # Mutually-dominating distinct bounds cannot survive LinExpr
        # canonicalisation, but guard against an empty result anyway.
        kept = uniq
    exprs = [linexpr_to_expr(b) for b in kept]
    if len(exprs) == 1:
        return exprs[0]
    return Call("max" if lower else "min", exprs)


def emit_loops(
    domain: Polyhedron,
    order: Sequence[str],
    body: tuple[Stmt, ...],
    *,
    steps: Mapping[str, int] | None = None,
) -> Stmt:
    """Loops scanning *domain* in *order* around *body*.

    ``steps`` gives non-unit strides (tile loops); strided dimensions are
    anchored at their projected global lower bound, which together with the
    companion point-loop clamps guarantees exact coverage.
    """
    steps = steps or {}
    if set(order) != set(domain.variables):
        raise TransformError(
            f"loop order {order} does not cover domain dims {domain.variables}"
        )
    from repro.trans.model import assumed_param_domain

    param_domain = assumed_param_domain(sorted(domain.parameters()))
    nest: tuple[Stmt, ...] = body
    for depth in reversed(range(len(order))):
        var = order[depth]
        proj = project_onto(domain, list(order[: depth + 1]))
        lowers, uppers = proj.bounds_on(var)
        if not lowers or not uppers:
            raise TransformError(f"dimension {var} unbounded in {proj}")
        lo = _combine(lowers, lower=True, param_domain=param_domain)
        hi = _combine(uppers, lower=False, param_domain=param_domain)
        step = steps.get(var, 1)
        nest = (Loop(var, lo, hi, nest, Const(step)),)
    assert len(nest) == 1
    return nest[0]
