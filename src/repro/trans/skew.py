"""Skewing + permutation for stencil time tiling (the paper's Jacobi
treatment, Sec. 4).

For the fused Jacobi nest ``(t, i, j)`` the paper skews the space loops by
the time loop and then permutes time innermost, so the temporal reuse the
time loop carries can be exploited by tiling. The composite map is one
unimodular matrix; :func:`skew_and_permute` builds it and delegates to
:mod:`repro.trans.unimodular`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import TransformError
from repro.ir.program import Program
from repro.trans.unimodular import unimodular_transform


def skew_matrix(
    depth: int, skews: Mapping[int, Mapping[int, int]]
) -> list[list[int]]:
    """Identity plus skew factors: ``skews[r][c] = f`` adds ``f * x_c`` to
    dimension ``r`` (0-based)."""
    U = [[1 if r == c else 0 for c in range(depth)] for r in range(depth)]
    for r, row in skews.items():
        for c, f in row.items():
            if r == c:
                raise TransformError("diagonal skew factors are not allowed")
            U[r][c] = f
    return U


def permutation_matrix(order: Sequence[int]) -> list[list[int]]:
    """Rows of the identity permuted: new dim r = old dim ``order[r]``."""
    n = len(order)
    if sorted(order) != list(range(n)):
        raise TransformError(f"{order} is not a permutation of 0..{n - 1}")
    return [[1 if c == order[r] else 0 for c in range(n)] for r in range(n)]


def matmul(A: Sequence[Sequence[int]], B: Sequence[Sequence[int]]) -> list[list[int]]:
    """Integer matrix product."""
    n, m, p = len(A), len(B), len(B[0])
    if any(len(row) != m for row in A):
        raise TransformError("matrix dimension mismatch")
    return [
        [sum(A[r][k] * B[k][c] for k in range(m)) for c in range(p)] for r in range(n)
    ]


def skew_and_permute(
    program: Program,
    *,
    skews: Mapping[int, Mapping[int, int]],
    order: Sequence[int],
    nest_index: int = 0,
    new_names: Sequence[str] | None = None,
    name: str | None = None,
) -> Program:
    """Skew then permute one perfect nest (both 0-based over loop depth).

    Example (Jacobi): ``skews={1: {0: 1}, 2: {0: 1}}`` skews both space
    loops by time; ``order=(1, 2, 0)`` then moves time innermost.
    """
    depth = len(order)
    U = matmul(permutation_matrix(order), skew_matrix(depth, skews))
    return unimodular_transform(
        program, U, nest_index=nest_index, new_names=new_names, name=name
    )
