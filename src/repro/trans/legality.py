"""Legality proofs for loop reordering, from direction vectors.

Sound (conservative) checks used before the Sec.-4 tiling stage:

- :func:`permutation_legal` — a loop permutation preserves semantics iff
  every plausible dependence vector stays lexicographically non-negative
  after permutation (all-zero vectors are loop-independent and keep their
  statement order);
- :func:`fully_permutable` — a nest can be rectangularly tiled (any band
  interleaving of strip-mined loops) iff no dependence has a negative
  component in any band dimension;
- :func:`skewed_directions` — dependence vectors under a unimodular map,
  so skewing choices (Jacobi's time skew) can be *proven* to make a band
  permutable rather than just tested by execution.

A ``False`` answer means "not proven", not "illegal" — callers (LU, whose
pivot machinery is non-affine) fall back to execution validation.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

from repro.deps.access import ValueRange
from repro.deps.selfdeps import SelfDependence, self_dependences
from repro.errors import TransformError
from repro.ir.stmt import Stmt

#: Numeric stand-ins for provable signs ('<' = +1: sink later).
_SIGN = {"<": 1, "=": 0, ">": -1}


def plausible_vectors(dep: SelfDependence) -> list[tuple[int, ...]]:
    """All sign combinations consistent with the per-level summary that are
    lexicographically non-negative in the original order (negative ones
    cannot correspond to real source-before-sink instances)."""
    pools = [[_SIGN[s] for s in sorted(level)] for level in dep.directions]
    out = []
    for combo in itertools.product(*pools):
        # lexicographically non-negative?
        for c in combo:
            if c > 0:
                out.append(combo)
                break
            if c < 0:
                break
        else:
            out.append(combo)  # all zero: loop-independent
    return out


def permutation_legal(
    stmt: Stmt,
    order: Sequence[int],
    *,
    scalars: frozenset[str] = frozenset(),
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
) -> bool:
    """Prove that permuting the nest's loops by *order* (0-based: new level
    ``r`` is old level ``order[r]``) preserves every dependence."""
    deps = self_dependences(
        stmt, scalars=scalars, value_ranges=value_ranges, param_lo=param_lo
    )
    depth = len(deps[0].loop_vars) if deps else None
    if depth is None:
        return True
    if sorted(order) != list(range(depth)):
        raise TransformError(f"{order} is not a permutation of 0..{depth - 1}")
    for dep in deps:
        for vec in plausible_vectors(dep):
            permuted = tuple(vec[order[r]] for r in range(depth))
            if not _lex_nonneg(permuted):
                return False
    return True


def fully_permutable(
    stmt: Stmt,
    band: Sequence[int] | None = None,
    *,
    scalars: frozenset[str] = frozenset(),
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
) -> bool:
    """Prove the band (default: all loops) is fully permutable — the
    rectangular-tiling legality condition."""
    deps = self_dependences(
        stmt, scalars=scalars, value_ranges=value_ranges, param_lo=param_lo
    )
    if not deps:
        return True
    depth = len(deps[0].loop_vars)
    levels = list(band) if band is not None else list(range(depth))
    for dep in deps:
        for vec in plausible_vectors(dep):
            if any(vec[l] < 0 for l in levels):
                return False
    return True


def fully_permutable_under(
    stmt: Stmt,
    U: Sequence[Sequence[int]],
    *,
    scalars: frozenset[str] = frozenset(),
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
) -> bool:
    """Exact check: after the unimodular map ``u = U @ x`` is the whole
    nest fully permutable (hence rectangularly tileable)?

    Works on the dependence *polyhedra* (no direction-vector summarising):
    for each dependence component and each transformed dimension ``r``,
    the set of instances with ``(U @ (sink - source))_r <= -1`` must be
    infeasible.

    Proves the paper's Jacobi treatment: skewing both space loops by time
    and moving time innermost makes the fused stencil fully permutable.
    """
    from repro.poly.constraint import ge0

    deps = self_dependences(
        stmt, scalars=scalars, value_ranges=value_ranges, param_lo=param_lo
    )
    if not deps:
        return True
    depth = len(deps[0].loop_vars)
    if len(U) != depth or any(len(row) != depth for row in U):
        raise TransformError(f"U must be {depth}x{depth}")
    from repro.poly.integer import check_feasibility

    for dep in deps:
        diffs = [dep.sink_minus_source(level) for level in range(depth)]
        for row in U:
            transformed = sum(
                (diffs[c] * row[c] for c in range(depth) if row[c]),
                start=diffs[0] * 0,
            )
            for poly in dep.polys:
                probe = poly.with_constraints([ge0(-transformed - 1)])
                if check_feasibility(probe, param_lo=param_lo).feasible:
                    return False
    return True


def permutation_legal_exact(
    stmt: Stmt,
    order: Sequence[int],
    *,
    scalars: frozenset[str] = frozenset(),
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
) -> bool:
    """Exact permutation legality on the dependence polyhedra: every
    component must keep a lexicographically non-negative distance in the
    new loop order."""
    from repro.poly.constraint import eq0, ge0
    from repro.poly.integer import check_feasibility

    deps = self_dependences(
        stmt, scalars=scalars, value_ranges=value_ranges, param_lo=param_lo
    )
    if not deps:
        return True
    depth = len(deps[0].loop_vars)
    if sorted(order) != list(range(depth)):
        raise TransformError(f"{order} is not a permutation of 0..{depth - 1}")
    for dep in deps:
        diffs = [dep.sink_minus_source(level) for level in range(depth)]
        for poly in dep.polys:
            # Violation: permuted distance lexicographically negative —
            # union over prefixes (= at earlier new levels, < at this one).
            for upto in range(depth):
                constraints = [
                    eq0(diffs[order[r]]) for r in range(upto)
                ] + [ge0(-diffs[order[upto]] - 1)]
                probe = poly.with_constraints(constraints)
                if check_feasibility(probe, param_lo=param_lo).feasible:
                    return False
    return True


def skewed_directions(
    dep_vectors: list[tuple[int, ...]], U: Sequence[Sequence[int]]
) -> list[tuple[int, ...]]:
    """Transform sign vectors by a unimodular map, conservatively.

    Each input component is a *sign*; the transformed component's sign is
    determined when every contributing term agrees (or is zero), else both
    signs are possible and two vectors are emitted. Practical for the small
    matrices used here.
    """
    out: set[tuple[int, ...]] = set()
    for vec in dep_vectors:
        per_row: list[list[int]] = []
        for row in U:
            terms = [row[c] * vec[c] for c in range(len(vec))]
            if all(t == 0 for t in terms):
                per_row.append([0])
            elif all(t >= 0 for t in terms):
                per_row.append([1] if any(t > 0 for t in terms) else [0])
            elif all(t <= 0 for t in terms):
                per_row.append([-1])
            else:
                per_row.append([-1, 0, 1])
        for combo in itertools.product(*per_row):
            out.add(combo)
    return sorted(out)


def _lex_nonneg(vec: tuple[int, ...]) -> bool:
    for c in vec:
        if c > 0:
            return True
        if c < 0:
            return False
    return True
