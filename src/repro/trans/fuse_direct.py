"""Classic loop fusion of adjacent nests (the dependence-preserving kind).

The paper's opening observation is that plain fusion "is mostly
dependence-preserving and thus frequently inapplicable". This module is
that plain fusion: merge two adjacent same-shape nests *only when legal*,
deciding legality with the same violated-dependence machinery FixDeps uses
— the counterpart of :mod:`repro.trans.distribution`, and the baseline
that motivates FixDeps (when :func:`try_fuse_adjacent` returns ``None``,
FixDeps is the paper's answer).
"""

from __future__ import annotations

from typing import Mapping

from repro.deps.access import ValueRange
from repro.deps.fusionpreventing import violated_dependences
from repro.errors import TransformError
from repro.ir.analysis import as_perfect_nest
from repro.ir.program import Program
from repro.ir.stmt import Loop
from repro.trans.fusion import NestEmbedding, fuse_siblings


def _compatible(a: Loop, b: Loop) -> bool:
    na, nb = as_perfect_nest(a), as_perfect_nest(b)
    if na.depth == 0 or na.depth != nb.depth:
        return False
    for la, lb in zip(na.loops, nb.loops):
        if la.lower != lb.lower or la.upper != lb.upper:
            return False
        if not (la.has_unit_step and lb.has_unit_step):
            return False
    return True


def try_fuse_adjacent(
    program: Program,
    index: int = 0,
    *,
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
) -> Program | None:
    """Fuse ``body[index]`` and ``body[index+1]`` when provably legal.

    Returns the fused program, or ``None`` when the nests are incompatible
    or the fusion would violate a dependence (the paper's
    "fusion-preventing" case — hand those to FixDeps instead).
    """
    body = list(program.body)
    if not (0 <= index < len(body) - 1):
        raise TransformError(f"no adjacent pair at index {index}")
    a, b = body[index], body[index + 1]
    if not (isinstance(a, Loop) and isinstance(b, Loop) and _compatible(a, b)):
        return None

    nest_a = as_perfect_nest(a)
    pair = program.with_body((a, b))
    fused_loops = [(l.var, l.lower, l.upper) for l in nest_a.loops]
    var_map_b = {
        vb: va
        for vb, va in zip(as_perfect_nest(b).loop_vars, nest_a.loop_vars)
    }
    try:
        nest = fuse_siblings(
            pair,
            fused_loops,
            [
                NestEmbedding(var_map={v: v for v in nest_a.loop_vars}),
                NestEmbedding(var_map=var_map_b),
            ],
        )
    except TransformError:
        return None
    if violated_dependences(nest, value_ranges=value_ranges, param_lo=param_lo):
        return None
    fused_stmt = nest.to_program().body
    new_body = body[:index] + list(fused_stmt) + body[index + 2 :]
    return program.with_body(tuple(new_body)).with_name(f"{program.name}_fused")


def fuse_all_legal(
    program: Program,
    *,
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
) -> Program:
    """Greedily fuse every legal adjacent pair, left to right."""
    current = program
    index = 0
    while index < len(current.body) - 1:
        fused = try_fuse_adjacent(
            current, index, value_ranges=value_ranges, param_lo=param_lo
        )
        if fused is None:
            index += 1
        else:
            current = fused
    return current.with_name(f"{program.name}_fused")
