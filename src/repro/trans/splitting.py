"""Index-set splitting: peeling guard-selected boundary iterations.

Code sinking plants guards like ``if (i .EQ. k)`` (run once, at the loop's
first iteration) and ``if (i .GE. k+1)`` (run everywhere else) inside
``do i = k, N``. Unswitching cannot remove them — they depend on the loop
variable — but *splitting the index set* can::

    do i = k, N { if (i==k) A; if (i>=k+1) B }
    ==>
    if (k <= N) { A[i:=k] }
    do i = k+1, N { B }

The pass peels the first iteration whenever that provably simplifies at
least one guard, deciding implication/contradiction with the polyhedral
layer (conditions and bounds are affine; opaque guards just stay). Together
with unswitching this completes the paper's "the effect of code sinking is
undone as much as possible".
"""

from __future__ import annotations

from repro.errors import NotAffineError
from repro.ir.affine import cond_to_constraints, expr_to_linexpr
from repro.ir.builder import cle
from repro.ir.expr import Expr
from repro.ir.program import Program
from repro.ir.stmt import If, Loop, Stmt
from repro.poly.constraint import Constraint, eq0, ge0
from repro.poly.linexpr import LinExpr
from repro.poly.polyhedron import Polyhedron
from repro.poly.simplify import is_implied
from repro.trans.peel import substitute_var


def _facts_polyhedron(constraints: list[Constraint]) -> Polyhedron:
    names = sorted({v for c in constraints for v in c.variables()})
    return Polyhedron(tuple(names), constraints)


def _simplify_guards(
    stmts: tuple[Stmt, ...], facts: list[Constraint]
) -> tuple[tuple[Stmt, ...], int]:
    """Drop guards implied by *facts*; remove branches they contradict.

    Returns (new statements, number of simplifications). Only top-level
    guards are touched — nested loops re-bind variables, so recursion stops
    at them.
    """
    fact_poly = _facts_polyhedron(facts)
    changed = 0
    out: list[Stmt] = []
    for s in stmts:
        if isinstance(s, If) and not s.orelse:
            try:
                conds = cond_to_constraints(s.cond)
            except NotAffineError:
                out.append(s)
                continue
            widened = fact_poly.with_variables(
                tuple(
                    dict.fromkeys(
                        fact_poly.variables
                        + tuple(
                            v for c in conds for v in sorted(c.variables())
                        )
                    )
                )
            )
            if all(is_implied(widened, c) for c in conds):
                inner, inner_changed = _simplify_guards(s.then, facts)
                out.extend(inner)
                changed += 1 + inner_changed
                continue
            from repro.poly.integer import rationally_empty

            if rationally_empty(widened.with_constraints(conds)):
                changed += 1
                continue
            out.append(s)
        else:
            out.append(s)
    return tuple(out), changed


def split_first_iteration(
    loop: Loop, outer_facts: list[Constraint] | None = None
) -> list[Stmt] | None:
    """Peel ``var = lower`` off *loop* when it simplifies guards.

    *outer_facts* are constraints known at the loop's position (enclosing
    affine guards); facts mentioning the loop variable are discarded (the
    loop re-binds it). Returns the replacement statements, or None when
    nothing simplifies.
    """
    if not loop.has_unit_step:
        return None
    try:
        lo = expr_to_linexpr(loop.lower)
        hi = expr_to_linexpr(loop.upper)
    except NotAffineError:
        return None
    var = LinExpr.var(loop.var)
    outer = [
        c for c in (outer_facts or []) if loop.var not in c.variables()
    ]

    # Bounds may carry min/max intrinsics (tiled code); expr_to_linexpr
    # above rejects those, so lo/hi here are plain affine.
    first_facts = outer + [eq0(var - lo), ge0(hi - var)]
    rest_facts = outer + [ge0(var - lo - 1), ge0(hi - var)]
    first_body, n1 = _simplify_guards(loop.body, first_facts)
    rest_body, n2 = _simplify_guards(loop.body, rest_facts)
    if n1 + n2 == 0:
        return None

    out: list[Stmt] = []
    if first_body:
        peeled = tuple(
            substitute_var(s, loop.var, loop.lower) for s in first_body
        )
        # The peeled iteration exists only when the range is non-empty.
        out.append(If(cle(loop.lower, loop.upper), peeled))
    if rest_body:
        from repro.ir.expr import BinOp, Const

        out.append(
            Loop(
                loop.var,
                BinOp("+", loop.lower, Const(1)),
                loop.upper,
                rest_body,
            )
        )
    return out


def split_point_guards(program: Program) -> Program:
    """Apply :func:`split_first_iteration` throughout, innermost-first,
    threading enclosing affine guard facts downward."""

    def rec_stmt(s: Stmt, facts: list[Constraint]) -> list[Stmt]:
        if isinstance(s, Loop):
            inner_facts = [c for c in facts if s.var not in c.variables()]
            body: list[Stmt] = []
            for t in s.body:
                body.extend(rec_stmt(t, inner_facts))
            new_loop = Loop(s.var, s.lower, s.upper, tuple(body), s.step)
            replaced = split_first_iteration(new_loop, facts)
            return replaced if replaced is not None else [new_loop]
        if isinstance(s, If):
            try:
                then_facts = facts + cond_to_constraints(s.cond)
            except NotAffineError:
                then_facts = facts
            then: list[Stmt] = []
            for t in s.then:
                then.extend(rec_stmt(t, then_facts))
            orelse: list[Stmt] = []
            for t in s.orelse:
                orelse.extend(rec_stmt(t, facts))
            if not then and not orelse:
                return []
            return [If(s.cond, tuple(then), tuple(orelse))]
        return [s]

    body: list[Stmt] = []
    for s in program.body:
        body.extend(rec_stmt(s, []))
    return program.with_body(tuple(body))
