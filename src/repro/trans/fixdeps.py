"""FixDeps: the paper's top-level repair algorithm (Fig. 2, lines 1–6).

``P' = ElimWW_WR(P)`` then ``P'' = ElimRW(P')``: tiling first (so the
anti-dependence analysis sees the post-tiling execution order — Sec. 3.1.2
notes the elimination *relies* on the flow/output violations being gone),
then array copying with guard simplification (line 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.deps.access import ValueRange
from repro.deps.fusionpreventing import violated_dependences
from repro.errors import TransformError
from repro.ir.program import Program
from repro.trans.elim_rw import ElimRWResult, eliminate_rw
from repro.trans.elim_ww_wr import ElimWWWRResult, eliminate_ww_wr
from repro.trans.model import FusedNest


@dataclass(frozen=True)
class FixDepsReport:
    """The fixed nest and both phases' audit trails."""

    nest: FusedNest
    ww_wr: ElimWWWRResult
    rw: ElimRWResult

    def program(self, name: str | None = None) -> Program:
        """Emit the fixed program."""
        return self.nest.to_program(name)


def fix_dependences(
    nest: FusedNest,
    *,
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
    simplify_copies: bool = True,
    verify: bool = True,
) -> FixDepsReport:
    """Eliminate every fusion-preventing dependence of *nest*.

    With ``verify`` (default), the final nest is re-analysed and must be
    free of violations of any kind — the mechanical counterpart of the
    paper's Theorems 1 and 2. (The re-check skips reads already redirected
    to copy arrays, which is everything ``ElimRW`` rewrote.)
    """
    ww = eliminate_ww_wr(
        nest, value_ranges=value_ranges, param_lo=param_lo, verify=verify
    )
    rw = eliminate_rw(
        ww.nest, value_ranges=value_ranges, param_lo=param_lo, simplify=simplify_copies
    )
    if verify:
        remaining = violated_dependences(
            rw.nest,
            ("flow", "output"),
            value_ranges=value_ranges,
            param_lo=param_lo,
        )
        # Copy statements in prologues are not re-analysed structurally (the
        # prologue is metadata), so flow/output violations re-appearing here
        # indicate a genuine bug.
        if remaining:
            raise TransformError(
                "FixDeps left flow/output violations: "
                + ", ".join(v.describe() for v in remaining)
            )
    return FixDepsReport(nest=rw.nest, ww_wr=ww, rw=rw)
