"""ElimWW_WR: eliminating fusion-preventing flow/output dependences by
loop tiling (paper Fig. 2, lines 7–35).

Processing groups bottom-up (k = K-1 .. 1), each round computes the
violated flow/output set ``W(k)`` in the *current* program, finds the
dimensions that carry violations (``d_i > 0``), and collapses those
dimensions of group ``k``: a full-extent tile, so the whole embedded nest
executes at the fused space's origin of the collapsed dimensions. Full
extents are always a legal tile size (the paper makes the same choice for
LU and QR); after collapsing, group ``k``'s execution coordinates in the
collapsed dimensions equal the space minimum, which no sink can precede —
Theorem 1, which the round-end verification re-checks mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.deps.access import ValueRange
from repro.deps.distances import DistanceReport, dependence_distances
from repro.deps.fusionpreventing import Violation, violated_dependences
from repro.errors import TransformError
from repro.trans.model import FusedNest


@dataclass(frozen=True)
class TilingRound:
    """What one bottom-up round did to one group."""

    group: int
    violations: tuple[Violation, ...]
    distances: DistanceReport | None
    collapsed_dims: tuple[str, ...]


@dataclass(frozen=True)
class ElimWWWRResult:
    """Transformed nest plus a per-round audit trail."""

    nest: FusedNest
    rounds: tuple[TilingRound, ...]

    def collapsed_groups(self) -> dict[int, tuple[str, ...]]:
        """group index -> dimensions collapsed for it."""
        return {r.group: r.collapsed_dims for r in self.rounds if r.collapsed_dims}


def eliminate_ww_wr(
    nest: FusedNest,
    *,
    value_ranges: Mapping[str, ValueRange] | None = None,
    param_lo: int | Mapping[str, int] = 4,
    verify: bool = True,
) -> ElimWWWRResult:
    """Run the bottom-up tiling loop; returns the fixed nest and audit."""
    groups = list(nest.groups)
    current = nest
    rounds: list[TilingRound] = []
    for k in range(len(groups) - 1, 0, -1):
        violations = violated_dependences(
            current,
            ("flow", "output"),
            src_group=groups[k - 1].index,
            value_ranges=value_ranges,
            param_lo=param_lo,
        )
        if not violations:
            rounds.append(TilingRound(groups[k - 1].index, (), None, ()))
            continue
        report = dependence_distances(current, violations, param_lo=param_lo)
        dims = report.collapse_dims()
        if not dims:
            raise TransformError(
                f"group {groups[k - 1].index}: violations found "
                f"({[v.describe() for v in violations]}) but no dimension "
                "carries a positive distance"
            )
        origins = {v: current.fused_lower_bound(v) for v in dims}
        groups[k - 1] = groups[k - 1].with_collapsed(origins)
        current = current.with_groups(tuple(groups))
        rounds.append(
            TilingRound(groups[k - 1].index, tuple(violations), report, dims)
        )
        if verify:
            remaining = violated_dependences(
                current,
                ("flow", "output"),
                src_group=groups[k - 1].index,
                value_ranges=value_ranges,
                param_lo=param_lo,
            )
            if remaining:
                raise TransformError(
                    f"group {groups[k - 1].index}: collapsing {dims} left "
                    f"violations {[v.describe() for v in remaining]}"
                )
    return ElimWWWRResult(nest=current, rounds=tuple(reversed(rounds)))
