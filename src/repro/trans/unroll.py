"""Loop unrolling and unroll-and-jam.

The paper (Sec. 1) observes that loop tiling "subsumes loop unrolling and
unroll-and-jam [17]": a tile of size ``u`` whose point loop is fully
unrolled *is* unroll-and-jam by ``u``. These passes make the subsumption
concrete — and give the benchmark suite a register-blocking baseline.

- :func:`unroll_program` — replicate a loop's body ``factor`` times; a
  fresh scalar tracks where the stepped main loop stopped so the remainder
  loop needs no modulo arithmetic;
- :func:`unroll_and_jam_program` — strip-mine an outer loop and fully
  unroll the point loop *inside* the inner loops, with per-copy boundary
  guards (the tiling-subsumption construction).

Legality of unroll-and-jam equals interchangeability of the jammed band
(provable via :func:`repro.trans.legality.fully_permutable`); all uses are
additionally execution-validated by the tests.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.builder import cle
from repro.ir.expr import BinOp, Const, Expr, VarRef
from repro.ir.program import Program, ScalarDecl
from repro.ir.stmt import Assign, If, Loop, Stmt
from repro.trans.peel import substitute_var
from repro.utils.naming import NameGenerator


def _shifted(var: str, offset: int) -> Expr:
    if offset == 0:
        return VarRef(var)
    return BinOp("+", VarRef(var), Const(offset))


def unroll(
    loop: Loop, factor: int, namer: NameGenerator
) -> tuple[list[Stmt], str]:
    """Unroll *loop* by *factor*.

    Returns ``(statements, cursor_scalar_name)``: the statements are the
    cursor initialisation, the stepped main loop (body replicated at
    offsets ``0..factor-1``, cursor updated), and the remainder loop
    starting at the cursor. The caller must declare the returned scalar
    (``i8``); :func:`unroll_program` does all of that.
    """
    if factor < 1:
        raise TransformError("unroll factor must be >= 1")
    if not loop.has_unit_step:
        raise TransformError("unroll requires a unit-step loop")
    cursor = namer.fresh(f"{loop.var}_next")
    if factor == 1:
        return [loop], cursor  # degenerate; cursor unused but declared

    var = loop.var
    body: list[Stmt] = []
    for off in range(factor):
        shifted = _shifted(var, off)
        for stmt in loop.body:
            body.append(substitute_var(stmt, var, shifted))
    body.append(Assign(VarRef(cursor), BinOp("+", VarRef(var), Const(factor))))
    main = Loop(
        var,
        loop.lower,
        BinOp("-", loop.upper, Const(factor - 1)),
        body,
        Const(factor),
    )
    remainder = Loop(var, VarRef(cursor), loop.upper, loop.body)
    init = Assign(VarRef(cursor), loop.lower)
    return [init, main, remainder], cursor


def unroll_program(
    program: Program, loop_var: str, factor: int, *, name: str | None = None
) -> Program:
    """Unroll the first loop over *loop_var* found in the program body."""
    namer = NameGenerator(program.all_names())
    cursor_holder: list[str] = []

    def rewrite(stmts: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
        out: list[Stmt] = []
        for s in stmts:
            if isinstance(s, Loop):
                if s.var == loop_var and not cursor_holder:
                    replacement, cursor = unroll(s, factor, namer)
                    cursor_holder.append(cursor)
                    out.extend(replacement)
                else:
                    out.append(Loop(s.var, s.lower, s.upper, rewrite(s.body), s.step))
            elif isinstance(s, If):
                out.append(If(s.cond, rewrite(s.then), rewrite(s.orelse)))
            else:
                out.append(s)
        return tuple(out)

    body = rewrite(program.body)
    if not cursor_holder:
        raise TransformError(f"no loop over {loop_var!r} found")
    out = program.adding_scalars([ScalarDecl(cursor_holder[0], "i8")])
    out = out.with_body(body)
    return out.with_name(name or f"{program.name}_unroll{factor}")


def unroll_and_jam(
    nest: Loop, factor: int, *, reserved: frozenset[str] = frozenset()
) -> Stmt:
    """Unroll-and-jam the outer loop of a (at least 2-deep) perfect pair.

    Construction: strip-mine the outer loop by *factor*; the point loop is
    fully unrolled *inside* the inner loop body as ``factor`` copies, each
    guarded by the boundary condition ``outer + off <= upper`` (the guard
    is trivially true except in the last partial tile).
    """
    if factor < 1:
        raise TransformError("jam factor must be >= 1")
    if factor == 1:
        return nest
    if not nest.has_unit_step:
        raise TransformError("unroll_and_jam requires a unit-step outer loop")
    if len(nest.body) != 1 or not isinstance(nest.body[0], Loop):
        raise TransformError("unroll_and_jam needs a perfectly nested pair")
    inner = nest.body[0]
    var = nest.var
    from repro.ir.expr import free_names

    if var in free_names(inner.lower) | free_names(inner.upper):
        raise TransformError(
            "unroll_and_jam: inner bounds depend on the jammed loop "
            "(triangular jam would need per-copy ranges)"
        )

    jammed: list[Stmt] = []
    for off in range(factor):
        shifted = _shifted(var, off)
        copies = [substitute_var(s, var, shifted) for s in inner.body]
        if off == 0:
            jammed.extend(copies)
        else:
            jammed.append(If(cle(shifted, nest.upper), copies))
    new_inner = Loop(inner.var, inner.lower, inner.upper, jammed, inner.step)
    return Loop(var, nest.lower, nest.upper, (new_inner,), Const(factor))


def unroll_and_jam_program(
    program: Program, loop_var: str, factor: int, *, name: str | None = None
) -> Program:
    """Unroll-and-jam the first loop over *loop_var* in the program body."""
    done: list[bool] = []

    def rewrite(stmts: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
        out: list[Stmt] = []
        for s in stmts:
            if isinstance(s, Loop):
                if s.var == loop_var and not done:
                    done.append(True)
                    out.append(
                        unroll_and_jam(
                            s, factor, reserved=frozenset(program.all_names())
                        )
                    )
                else:
                    out.append(Loop(s.var, s.lower, s.upper, rewrite(s.body), s.step))
            elif isinstance(s, If):
                out.append(If(s.cond, rewrite(s.then), rewrite(s.orelse)))
            else:
                out.append(s)
        return tuple(out)

    body = rewrite(program.body)
    if not done:
        raise TransformError(f"no loop over {loop_var!r} found")
    return program.with_body(body).with_name(
        name or f"{program.name}_jam{factor}"
    )
