"""Scalar expansion.

A scalar whose live range crosses iterations of a loop blocks reordering
transformations on that loop: every iteration fights over one memory cell.
Expanding the scalar into an array indexed by the loop variable removes the
false dependences (Feautrier's array expansion, the paper's ref. [5]).

LU needs this for the final tiling step: the pivot row ``m`` is produced by
step ``k``'s search and consumed by step ``k``'s lazy column swaps; once the
``k`` point loop moves inside ``j``, searches of different steps interleave
with the swaps, so ``m`` must become ``m_x(k)``.
"""

from __future__ import annotations

from repro.errors import TransformError
from repro.ir.expr import ArrayRef, Expr, VarRef, as_expr, map_expr
from repro.ir.program import ArrayDecl, Program
from repro.ir.stmt import If, Loop, Stmt, map_stmt_exprs
from repro.utils.naming import NameGenerator


def expand_scalar(
    program: Program,
    scalar: str,
    loop_var: str,
    extent: Expr | int,
    *,
    array_name: str | None = None,
) -> Program:
    """Replace *scalar* by ``array(loop_var)`` inside loops over *loop_var*.

    Occurrences outside any ``do loop_var`` (e.g. a peeled epilogue) keep
    using the scalar — they are separate live ranges by construction.
    """
    if not program.has_scalar(scalar):
        raise TransformError(f"{program.name} has no scalar {scalar!r}")
    namer = NameGenerator(program.all_names())
    name = array_name or namer.fresh(f"{scalar}_x")

    def rewrite_expr(expr: Expr) -> Expr:
        def fn(node: Expr) -> Expr:
            if isinstance(node, VarRef) and node.name == scalar:
                return ArrayRef(name, (VarRef(loop_var),))
            return node

        return map_expr(expr, fn)

    def rewrite(stmt: Stmt, inside: bool) -> Stmt:
        if isinstance(stmt, Loop):
            now_inside = inside or stmt.var == loop_var
            return Loop(
                stmt.var,
                stmt.lower if not inside else rewrite_expr(stmt.lower),
                stmt.upper if not inside else rewrite_expr(stmt.upper),
                tuple(rewrite(s, now_inside) for s in stmt.body),
                stmt.step,
            )
        if not inside:
            if isinstance(stmt, If):
                return If(
                    stmt.cond,
                    tuple(rewrite(s, inside) for s in stmt.then),
                    tuple(rewrite(s, inside) for s in stmt.orelse),
                )
            return stmt
        return map_stmt_exprs(stmt, rewrite_expr)

    body = tuple(rewrite(s, False) for s in program.body)
    decl = ArrayDecl(name, (as_expr(extent),), program.scalar(scalar).dtype)
    out = Program(
        program.name,
        program.params,
        program.arrays + (decl,),
        program.scalars,
        body,
        program.outputs,
    )
    return out
